//! The flagship demo: a UE drives past two single-tower bTelcos while
//! streaming, and nothing breaks.
//!
//! Everything is real (within the simulator): the SAP handshake crosses
//! the network with actual Ed25519/X25519 cryptography, the bTelco's PGW
//! accounts every byte, MPTCP carries the download across the IP change,
//! and both sides' sealed traffic reports reconcile at the broker.
//!
//! Run with: `cargo run --release --example full_stack_handover`

#[path = "../tests/common/mod.rs"]
mod common;

use cellbricks::net::EndpointAddr;
use cellbricks::sim::{SimDuration, SimTime};
use common::{CellBricksWorld, AGW1_SIG, AGW2_SIG, SERVER_IP, TELCO1, TELCO2};

fn main() {
    let mut w = CellBricksWorld::build(0xd01d);

    println!("t=0.0s   UE in range of {TELCO1}; SAP attach...");
    w.ue.start_attach(SimTime::ZERO, TELCO1, AGW1_SIG);
    w.run_to(SimTime::from_secs(1));
    let addr1 = w.ue.host.addr().expect("attached");
    println!(
        "t=1.0s   attached: IP {addr1} (bTelco 1's pool), attach latency {:.1} ms, session #{}",
        w.ue.attach_latency_ms.mean(),
        w.ue.session_id().unwrap()
    );

    println!("t=1.0s   opening an MPTCP download from {SERVER_IP}...");
    w.server.mp_listen(5001);
    let conn =
        w.ue.host
            .mp_connect(w.cursor, EndpointAddr::new(SERVER_IP, 5001));
    w.run_to(SimTime::from_secs(2));
    let server_conn = w.server.take_accepted_mp()[0];
    w.server.mp_set_bulk(w.cursor, server_conn);
    w.run_to(SimTime::from_secs(12));
    let before = w.ue.host.mp(conn).data_received();
    println!(
        "t=12.0s  {:.2} MB received; PGW-1 counters: DL {} / UL {} bytes",
        before as f64 / 1e6,
        w.telco1.bearers.iter().next().map_or(0, |b| b.dl_bytes),
        w.telco1.bearers.iter().next().map_or(0, |b| b.ul_bytes),
    );

    println!("t=12.0s  driving out of range: host-driven handover to {TELCO2}");
    let ho = w.cursor;
    w.ue.detach(ho);
    w.select_radio(2);
    w.ue.start_attach(ho, TELCO2, AGW2_SIG);
    w.run_to(ho + SimDuration::from_secs(1));
    let addr2 = w.ue.host.addr().expect("re-attached");
    println!("t=13.0s  attached to bTelco 2: IP {addr1} → {addr2}; MPTCP address worker armed");

    w.run_to(ho + SimDuration::from_secs(10));
    let after = w.ue.host.mp(conn).data_received();
    println!(
        "t=22.0s  same connection, {:.2} MB total (+{:.2} MB after the switch)",
        after as f64 / 1e6,
        (after - before) as f64 / 1e6
    );
    println!(
        "         subflows created: {} (one per bTelco), alive now: {}",
        w.ue.host.mp(conn).subflows_created,
        w.ue.host.mp(conn).alive_subflows()
    );

    // Let a few billing cycles elapse.
    w.run_to(ho + SimDuration::from_secs(25));
    println!(
        "t=37.0s  broker cross-checked {} billing cycle(s); bad reports: {}",
        w.brokerd.cycles_checked, w.brokerd.bad_reports
    );
    let telco_id = w.ue.serving_telco().unwrap();
    println!(
        "         serving bTelco reputation: {:.2} (mismatches: {})",
        w.brokerd.reputation().score(telco_id),
        w.brokerd.reputation().mismatches(telco_id)
    );
    if let Some(session) = w.ue.session_id() {
        if let Some((dl, ul)) = w.brokerd.settled_bytes(session) {
            println!(
                "         session #{session} settled so far: DL {:.2} MB / UL {:.1} kB",
                dl as f64 / 1e6,
                ul as f64 / 1e3
            );
        }
    }
    println!("\nTwo untrusted single-tower operators served one user mid-download,");
    println!("with no roaming agreement, no IMSI exposure, and verifiable billing.");
}
