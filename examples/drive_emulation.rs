//! One Table-1 cell from the paper's §6.2 drive emulation: iperf over the
//! downtown route by day, today's MNO vs CellBricks, paired on the same
//! carrier rate-policy trace.
//!
//! Run with: `cargo run --release --example drive_emulation`

use cellbricks::apps::emulation::{run, Arch, EmulationConfig, Workload};
use cellbricks::net::TimeOfDay;
use cellbricks::ran::RouteKind;
use cellbricks::sim::SimDuration;

fn main() {
    let duration = SimDuration::from_secs(300);
    println!("Downtown drive, daytime, 300 s, iperf downlink.\n");

    let mut results = Vec::new();
    for arch in [Arch::Mno, Arch::CellBricks] {
        let mut cfg =
            EmulationConfig::new(RouteKind::Downtown, TimeOfDay::Day, arch, Workload::Iperf);
        cfg.duration = duration;
        let out = run(&cfg);
        println!(
            "{:>10?}: {:.2} Mbps mean, {} handovers (MTTHO {:.1} s)",
            arch,
            out.iperf_mbps.unwrap(),
            out.handovers,
            out.mttho_s
        );
        results.push(out.iperf_mbps.unwrap());
    }
    let slowdown = (results[0] - results[1]) / results[0] * 100.0;
    println!("\nCellBricks slowdown vs MNO: {slowdown:+.2}%  (paper Table 1: −1.61% … +3.06%)");
    println!("Swap RouteKind / TimeOfDay / Workload to regenerate any Table 1 cell,");
    println!("or run `cargo run --release -p cellbricks-bench --bin exp_table1` for all of them.");
}
