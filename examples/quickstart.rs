//! Quickstart: the CellBricks secure attachment protocol in five minutes.
//!
//! Runs the SAP message flow (paper §4.1, Figs. 2–3) entirely in memory —
//! no simulated network — so you can see exactly what each party computes
//! and learns:
//!
//! ```text
//! UE ──authReqU──▶ bTelco ──authReqT──▶ broker
//! UE ◀─authRespU── bTelco ◀─brokerReply─┘
//! ```
//!
//! Run with: `cargo run --example quickstart`

use cellbricks::core::principal::{BrokerKeys, TelcoKeys, UeKeys};
use cellbricks::core::sap::{self, QosCap, SubscriberEntry};
use cellbricks::crypto::cert::CertificateAuthority;
use cellbricks::epc::aka::{derive_nas_enc_key, derive_nas_int_key};
use cellbricks::sim::SimRng;

fn main() {
    let mut rng = SimRng::new(0xce11_b41c);

    // --- Setup: the PKI the paper assumes (§4.1). ---
    // Brokers and bTelcos have CA-certified keys; the UE's key pair is
    // issued by its broker and lives in the broker's subscriber DB.
    let ca = CertificateAuthority::from_seed([0xCA; 32]);
    let broker = BrokerKeys::generate("broker.example", &ca, &mut rng);
    let telco = TelcoKeys::generate("corner-cafe-tower.example", &ca, &mut rng);
    let ue = UeKeys::generate(&mut rng);
    println!(
        "UE identity (key digest): {:02x?}...",
        &ue.identity().0[..4]
    );
    println!("bTelco:  {} (single tower, no prior contracts)", telco.name);
    println!("broker:  {}\n", broker.name);

    // --- Step 1: the UE requests service from a tower it has never seen.
    let (req_u, nonce) = sap::ue_build_request(
        &ue,
        "broker.example",
        &broker.encrypt.public_key(),
        telco.identity(),
        &mut rng,
    );
    let wire = req_u.encode();
    println!(
        "1. UE → bTelco   authReqU ({} bytes on the wire)",
        wire.len()
    );
    println!("   The UE identity is sealed to the broker: the bTelco cannot");
    println!("   act as an IMSI catcher.");

    // --- Step 2: the bTelco augments with its QoS capabilities and signs.
    let req_t = sap::telco_wrap_request(
        &telco,
        req_u,
        QosCap {
            max_mbr_bps: 100_000_000,
            qci_supported: vec![9, 8],
            li_capable: true,
        },
    );
    println!(
        "2. bTelco → broker  authReqT ({} bytes, + certificate + qosCap)",
        req_t.encode().len()
    );

    // --- Step 3: the broker authenticates BOTH parties and authorizes.
    let (sign_pk, encrypt_pk) = ue.public();
    let (reply, vec, qos, _ss) = sap::broker_process(
        &broker,
        &ca.public_key(),
        &req_t,
        |id| {
            (id == ue.identity()).then_some(SubscriberEntry {
                sign_pk,
                encrypt_pk,
                plan_mbr_bps: 50_000_000,
                suspect: false,
                alias: 7,
                lawful_intercept: false,
            })
        },
        |_telco| true, // Reputation system admits this bTelco.
        1001,          // Billing session id.
        &mut rng,
    )
    .expect("broker authorizes");
    println!("3. broker → bTelco  brokerReply (authRespT ‖ authRespU)");
    println!("   broker verified: bTelco cert ✓  bTelco sig ✓  UE sig ✓");
    println!(
        "   granted QoS: {} Mbps MBR, QCI {} (min of plan and qosCap)",
        qos.mbr_bps / 1_000_000,
        qos.qci
    );
    assert_eq!(vec.nonce, nonce);

    // --- Step 4: bTelco extracts its authorization proof; UE verifies.
    let t_body = sap::telco_verify_reply(&telco, &ca.public_key(), &reply)
        .expect("bTelco accepts the authorization");
    println!(
        "4. bTelco: authorization proof for UE alias #{} (never the identity)",
        t_body.ue_alias
    );
    let u_body = sap::ue_verify_response(
        &ue,
        &broker.sign.verifying_key(),
        &nonce,
        telco.identity(),
        &reply.resp_u,
    )
    .expect("UE accepts (nonce fresh, broker signature valid)");
    println!("   UE: broker signature ✓  nonce echo ✓  target bTelco ✓");

    // --- Both sides now share `ss`, the KASME-equivalent (§4.1): derive
    // the standard NAS key hierarchy from it, unmodified.
    assert_eq!(u_body.ss, t_body.ss);
    let k_int = derive_nas_int_key(&u_body.ss);
    let k_enc = derive_nas_enc_key(&u_body.ss);
    println!("\nShared secret established; NAS security context derived:");
    println!("   K_NASint = {:02x?}...", &k_int[..4]);
    println!("   K_NASenc = {:02x?}...", &k_enc[..4]);
    println!("\nOne UE→bTelco→broker round trip — versus two S6A round trips");
    println!("for today's EPS-AKA attach. That difference is Fig. 7.");
}
