//! `brokerd` as a real network service: the same SAP wire protocol the
//! simulator uses, served over an actual TCP socket on localhost.
//!
//! A broker thread accepts length-prefixed [`BrokerWire`] frames; a
//! "bTelco" client (with an in-process UE) connects, relays a genuine
//! sealed+signed `authReqT`, and verifies the authorization it gets back.
//! This demonstrates that the protocol layer is transport-agnostic — the
//! paper deploys brokerd on AWS behind Magma's Orc8r the same way.
//!
//! Run with: `cargo run --example broker_server`

use cellbricks::core::brokerd::BrokerWire;
use cellbricks::core::principal::{BrokerKeys, TelcoKeys, UeKeys};
use cellbricks::core::sap::{self, QosCap, SubscriberEntry};
use cellbricks::crypto::cert::CertificateAuthority;
use cellbricks::net::wire::{read_frame, write_frame};
use cellbricks::sim::SimRng;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

struct SubscriberDb {
    users: HashMap<cellbricks::core::principal::Identity, SubscriberEntry>,
}

fn main() {
    let mut rng = SimRng::new(7);
    let ca = CertificateAuthority::from_seed([0xCA; 32]);
    let broker_keys = BrokerKeys::generate("broker.example", &ca, &mut rng);
    let telco_keys = TelcoKeys::generate("tower-1.example", &ca, &mut rng);
    let ue_keys = UeKeys::generate(&mut rng);

    // Provision the subscriber in the broker's database.
    let (sign_pk, encrypt_pk) = ue_keys.public();
    let db = Arc::new(Mutex::new(SubscriberDb {
        users: HashMap::new(),
    }));
    db.lock().users.insert(
        ue_keys.identity(),
        SubscriberEntry {
            sign_pk,
            encrypt_pk,
            plan_mbr_bps: 50_000_000,
            suspect: false,
            alias: 7,
            lawful_intercept: false,
        },
    );

    // --- The broker service thread. ---
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    println!("brokerd listening on {addr}");
    let ca_pk = ca.public_key();
    let server_keys = broker_keys.clone();
    let server_db = Arc::clone(&db);
    let server = std::thread::spawn(move || {
        let mut server_rng = SimRng::new(99);
        let (mut stream, peer) = listener.accept().expect("accept");
        println!("brokerd: connection from {peer}");
        let frame = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(e) => {
                // A hostile or garbled prefix (e.g. oversized length) is
                // a protocol error: drop the connection, don't panic.
                println!("brokerd: dropping connection from {peer}: {e}");
                return;
            }
        };
        let Some(BrokerWire::AuthReq { req_id, req_t }) = BrokerWire::decode(&frame) else {
            panic!("brokerd: malformed request");
        };
        let req = sap::AuthReqT::decode(&req_t).expect("authReqT");
        let db = server_db.lock();
        let result = sap::broker_process(
            &server_keys,
            &ca_pk,
            &req,
            |id| {
                db.users.get(&id).map(|e| SubscriberEntry {
                    sign_pk: e.sign_pk,
                    encrypt_pk: e.encrypt_pk,
                    plan_mbr_bps: e.plan_mbr_bps,
                    suspect: e.suspect,
                    alias: e.alias,
                    lawful_intercept: false,
                })
            },
            |_| true,
            42,
            &mut server_rng,
        );
        let reply = match result {
            Ok((reply, vec, qos, _ss)) => {
                println!(
                    "brokerd: authorized UE {:02x?}... on {} at {} Mbps",
                    &vec.id_u.0[..4],
                    req.t_cert.subject,
                    qos.mbr_bps / 1_000_000
                );
                BrokerWire::AuthOk {
                    req_id,
                    reply: reply.encode(),
                }
            }
            Err(e) => {
                println!("brokerd: refused ({e:?})");
                BrokerWire::AuthErr {
                    req_id,
                    code: e as u8,
                }
            }
        };
        write_frame(&mut stream, &reply.encode()).expect("write");
    });

    // --- The bTelco client (with its UE) on the main thread. ---
    let (req_u, nonce) = sap::ue_build_request(
        &ue_keys,
        "broker.example",
        &broker_keys.encrypt.public_key(),
        telco_keys.identity(),
        &mut rng,
    );
    let req_t = sap::telco_wrap_request(
        &telco_keys,
        req_u,
        QosCap {
            max_mbr_bps: 100_000_000,
            qci_supported: vec![9],
            li_capable: true,
        },
    );
    let mut stream = TcpStream::connect(addr).expect("connect");
    println!("bTelco: forwarding authReqT over TCP...");
    write_frame(
        &mut stream,
        &BrokerWire::AuthReq {
            req_id: 1,
            req_t: req_t.encode(),
        }
        .encode(),
    )
    .expect("send");

    let frame = read_frame(&mut stream).expect("reply");
    match BrokerWire::decode(&frame) {
        Some(BrokerWire::AuthOk { reply, .. }) => {
            let reply = sap::BrokerReply::decode(&reply).expect("reply");
            let t_body =
                sap::telco_verify_reply(&telco_keys, &ca.public_key(), &reply).expect("verify");
            println!(
                "bTelco: authorization verified — UE alias #{}, session #{}",
                t_body.ue_alias, t_body.session_id
            );
            let u_body = sap::ue_verify_response(
                &ue_keys,
                &broker_keys.sign.verifying_key(),
                &nonce,
                telco_keys.identity(),
                &reply.resp_u,
            )
            .expect("UE verify");
            assert_eq!(u_body.ss, t_body.ss);
            println!("UE: response verified — shared secret established over real TCP.");
        }
        other => panic!("unexpected reply: {other:?}"),
    }
    server.join().unwrap();
    println!("done.");
}
