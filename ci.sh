#!/usr/bin/env bash
# Local CI entrypoint — runs the exact same gate as
# .github/workflows/ci.yml so a green `./ci.sh` means a green PR.
#
# The build is fully offline: every third-party dependency is a local
# path shim under crates/shims/, so no registry access is required.
set -euo pipefail
cd "$(dirname "$0")"

# CI_QUICK=1 (the default here and in the workflow) puts informational
# steps — the criterion microbenchmarks — on a reduced profile: they
# still run end to end, they just spend less wall-clock measuring.
# Set CI_QUICK=0 for full-length benchmark numbers.
export CI_QUICK="${CI_QUICK:-1}"

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo build --release --workspace
run cargo test -q --workspace

# Crypto op-count gate: signature verification through the precomputed
# tables must spend at least 5x fewer field multiplications than the
# seed double-and-add path it replaced. The tally (a thread-local
# Fe::mul/Fe::square counter behind the `op-count` feature) is exact and
# deterministic, so — unlike wall-clock — this is a hard gate.
run cargo test --release -q -p cellbricks-crypto --features op-count \
    op_count_gate -- --nocapture

# Microbenchmark smoke: the ed25519/sealed-box criterion harness must
# run end to end. Its numbers are informational (±20% noise on the CI
# box); the op-count gate above is the regression check. Under
# CI_QUICK=1 the criterion shim collects fewer, shorter samples.
run cargo bench -q -p cellbricks-crypto --bench ed25519

# Smoke-check the telemetry pipeline end to end: a short fig7 run must
# produce a metrics snapshot with the per-phase attach histograms.
run cargo run --release -q -p cellbricks-bench --bin exp_fig7 -- --trials 3
test -s results/fig7.metrics.json
grep -q '"fig7.us-east-1.CB.total_ns"' results/fig7.metrics.json
echo
echo "==> results/fig7.metrics.json OK"

# Smoke-check the engine-scale sweep: a reduced run must report the
# scheduler events/sec gauges for each swept endpoint count.
#
# results/exp_scale.metrics.json is the *committed* perf/alloc baseline
# (the one .gitignore exception), written by the last full sweep. Two
# gates against it:
#   1. the committed N=10k steady-state events/sec must stay above the
#      recorded floor — a PR can only re-commit the file from a run that
#      still clears it;
#   2. the fresh smoke run's steady-state alloc.count at N=1k must not
#      regress vs the committed baseline (alloc counts are deterministic
#      in the single-threaded sim; 10% headroom for allocator jitter).
# The smoke run writes to a scratch dir so the committed baseline stays
# untouched (re-commit it only from a deliberate full sweep).
metric() { # metric <file> <gauge-name> -> value
    local v
    v=$(grep -o "\"$2\":{\"value\":[0-9-]*" "$1" | grep -o '[0-9-]*$' || true)
    if [ -z "$v" ]; then
        echo "FAIL: gauge \"$2\" not found in $1 — the run did not" >&2
        echo "      record it (renamed metric, or the phase never ran)" >&2
        return 1
    fi
    echo "$v"
}
ENGINE_N10K_FLOOR=5000000
committed_eps=$(metric results/exp_scale.metrics.json "exp_scale.engine.n10000.events_per_sec")
if [ "$committed_eps" -lt "$ENGINE_N10K_FLOOR" ]; then
    echo "FAIL: committed exp_scale.engine.n10000.events_per_sec=$committed_eps < floor $ENGINE_N10K_FLOOR"
    exit 1
fi
baseline_alloc=$(metric results/exp_scale.metrics.json "exp_scale.engine.n1000.alloc.count")

scratch=$(mktemp -d)
run env CELLBRICKS_RESULTS_DIR="$scratch" \
    cargo run --release -q -p cellbricks-bench --bin exp_scale -- --smoke
test -s "$scratch/exp_scale.metrics.json"
grep -q '"exp_scale.engine.n1000.events_per_sec"' "$scratch/exp_scale.metrics.json"
fresh_alloc=$(metric "$scratch/exp_scale.metrics.json" "exp_scale.engine.n1000.alloc.count")
alloc_cap=$((baseline_alloc + baseline_alloc / 10 + 8))
if [ "$fresh_alloc" -gt "$alloc_cap" ]; then
    echo "FAIL: steady-state alloc.count regressed: $fresh_alloc > cap $alloc_cap (baseline $baseline_alloc)"
    exit 1
fi
rm -rf "$scratch"
echo
echo "==> exp_scale gates OK (committed n10k ${committed_eps} ev/s >= ${ENGINE_N10K_FLOOR}; n1k alloc.count $fresh_alloc <= $alloc_cap)"

# Mega-fleet gates (sharded engine). Floor protocol, documented here
# because every number below depends on it:
#
#   * Wall-clock throughput on a shared box is noisy in one direction
#     only — interference makes a run slower, never faster — so each
#     fresh gate takes the BEST of N=3 runs as the box's capability.
#   * Floors are set at roughly 1/3 of the dev-box best-of-3 (n100k
#     measured ~3.9M ev/s single-shard), so a modest CI box still
#     clears them; the gate exists to catch multiplicative regressions
#     (an accidental O(N) scan, a lost early-out), not 10% drift.
#   * The committed baseline (results/exp_scale.metrics.json, written
#     by the last full sweep) must itself clear the floors — a PR can
#     only re-commit it from a run that does.
#
# CELLBRICKS_SHARDS picks the engine: 1 (default) is the legacy
# single-shard path; >1 partitions the 8-region mega topology by
# region and steps the shards under the conservative barrier.
MEGA_N100K_FLOOR=1300000
MEGA_N1M_FLOOR=1000000
for gate in "n100000 $MEGA_N100K_FLOOR" "n1000000 $MEGA_N1M_FLOOR"; do
    set -- $gate
    v=$(metric results/exp_scale.metrics.json "exp_scale.mega.$1.events_per_sec")
    if [ "$v" -lt "$2" ]; then
        echo "FAIL: committed exp_scale.mega.$1.events_per_sec=$v < floor $2"
        exit 1
    fi
done

mega_best() { # mega_best <n> <shards> <runs> -> best ev/s over <runs> runs
    local n=$1 shards=$2 runs=$3 best=0 d eps
    for _ in $(seq "$runs"); do
        d=$(mktemp -d)
        env CELLBRICKS_RESULTS_DIR="$d" CELLBRICKS_SHARDS="$shards" \
            cargo run --release -q -p cellbricks-bench --bin exp_scale -- \
            --mega-only "$n" >/dev/null
        eps=$(metric "$d/exp_scale.metrics.json" "exp_scale.mega.n$n.events_per_sec")
        rm -rf "$d"
        if [ "$eps" -gt "$best" ]; then best=$eps; fi
    done
    echo "$best"
}

echo
echo "==> mega n100k fresh best-of-3 (CELLBRICKS_SHARDS=${CELLBRICKS_SHARDS:-1})"
fresh_mega=$(mega_best 100000 "${CELLBRICKS_SHARDS:-1}" 3)
if [ "$fresh_mega" -lt "$MEGA_N100K_FLOOR" ]; then
    echo "FAIL: fresh mega n100k best-of-3 $fresh_mega ev/s < floor $MEGA_N100K_FLOOR"
    exit 1
fi
echo "==> mega gates OK (committed floors; fresh n100k best-of-3 $fresh_mega ev/s)"

# Multi-shard speedup gate: 4 shards must beat the committed
# single-shard n10k baseline by >= 1.5x. Only meaningful with real
# cores under the workers — on fewer than 4 cores the barrier adds
# overhead without adding parallelism, so the gate is skipped.
if [ "$(nproc)" -ge 4 ]; then
    want=$((ENGINE_N10K_FLOOR * 3 / 2))
    sharded_eps=$(mega_best 10000 4 3)
    if [ "$sharded_eps" -lt "$want" ]; then
        echo "FAIL: 4-shard mega n10k best-of-3 $sharded_eps ev/s < 1.5x single-shard floor $want"
        exit 1
    fi
    echo "==> multi-shard speedup OK (4 shards: $sharded_eps ev/s >= $want)"
else
    echo "==> multi-shard speedup gate skipped ($(nproc) core(s) < 4)"
fi

# Chaos gate: every scripted fault class (link flap, burst loss, bTelco
# crash+restart, broker outage) must converge — the run itself asserts,
# and the exported metrics must record zero unrecovered phases.
run cargo run --release -q -p cellbricks-bench --bin exp_chaos -- --smoke
test -s results/exp_chaos.metrics.json
grep -q '"fault.unrecovered":0' results/exp_chaos.metrics.json
echo
echo "==> results/exp_chaos.metrics.json OK"

# Broker-plane gate (ROADMAP item 2): authorization throughput must
# scale ~linearly in shard count, and a mid-burst shard-primary kill
# must cost zero failed attaches (replica failover covers the outage).
# The sweep is measured in *simulated* time, so the gauges are a pure
# function of the seed — the floors sit ~20% under the committed values
# only to absorb deliberate timing-model changes, not noise.
BROKER_K1_FLOOR=380
BROKER_K4_FLOOR=1150
bscratch=$(mktemp -d)
run env CELLBRICKS_RESULTS_DIR="$bscratch" \
    cargo run --release -q -p cellbricks-bench --bin exp_broker
bk1=$(metric "$bscratch/exp_broker.metrics.json" "exp_broker.k1.auths_per_sec")
bk4=$(metric "$bscratch/exp_broker.metrics.json" "exp_broker.k4.auths_per_sec")
bfail=$(metric "$bscratch/exp_broker.metrics.json" "exp_broker.kill.failed_attaches")
if [ "$bk1" -lt "$BROKER_K1_FLOOR" ]; then
    echo "FAIL: exp_broker k1 auths_per_sec=$bk1 < floor $BROKER_K1_FLOOR"
    exit 1
fi
if [ "$bk4" -lt "$BROKER_K4_FLOOR" ]; then
    echo "FAIL: exp_broker k4 auths_per_sec=$bk4 < floor $BROKER_K4_FLOOR"
    exit 1
fi
if [ "$bk4" -lt $((bk1 * 5 / 2)) ]; then
    echo "FAIL: exp_broker scaling k1->k4 is sublinear: $bk1 -> $bk4 (< 2.5x)"
    exit 1
fi
if [ "$bfail" -ne 0 ]; then
    echo "FAIL: exp_broker kill phase recorded $bfail failed attaches (want 0)"
    exit 1
fi
rm -rf "$bscratch"
echo
echo "==> exp_broker gates OK (k1 $bk1 au/s, k4 $bk4 au/s, kill failed_attaches 0)"

# brokerd wire-service gate (ROADMAP item 3 / PR 9). Two layers:
#
#   1. The *committed* results/exp_brokerd.metrics.json — written by the
#      last full run — must itself record a served-auth/s at C=16 above
#      the floor, a cross-connection batching win >= 1.5x over the
#      single-request-per-batch baseline, and zero bad frames / lost
#      requests. A PR can only re-commit it from a run that clears this.
#   2. A fresh run reproduces the service end to end on this box. This
#      is wall-clock on a shared machine, so the fresh floor sits at
#      ~1/3 of the dev-box best (same protocol as the mega gates) and
#      only the correctness counters (bad_frames, lost) are exact.
#      CI_QUICK=1 runs --smoke (C in {1,4}, small burst); CI_QUICK=0
#      runs the full sweep and holds the fresh run to the C=16 floor.
BROKERD_C16_FLOOR=1600
BROKERD_WIN_X100_FLOOR=150
BROKERD_SMOKE_FLOOR=1000
wk=$(metric results/exp_brokerd.metrics.json "exp_brokerd.c16.served_per_sec")
ww=$(metric results/exp_brokerd.metrics.json "exp_brokerd.batch_win_x100")
wb=$(metric results/exp_brokerd.metrics.json "exp_brokerd.bad_frames")
wl=$(metric results/exp_brokerd.metrics.json "exp_brokerd.lost")
if [ "$wk" -lt "$BROKERD_C16_FLOOR" ]; then
    echo "FAIL: committed exp_brokerd.c16.served_per_sec=$wk < floor $BROKERD_C16_FLOOR"
    exit 1
fi
if [ "$ww" -lt "$BROKERD_WIN_X100_FLOOR" ]; then
    echo "FAIL: committed exp_brokerd.batch_win_x100=$ww < floor $BROKERD_WIN_X100_FLOOR"
    exit 1
fi
if [ "$wb" -ne 0 ] || [ "$wl" -ne 0 ]; then
    echo "FAIL: committed exp_brokerd recorded bad_frames=$wb lost=$wl (want 0/0)"
    exit 1
fi
wscratch=$(mktemp -d)
if [ "$CI_QUICK" = "1" ]; then
    run env CELLBRICKS_RESULTS_DIR="$wscratch" \
        cargo run --release -q -p cellbricks-bench --bin exp_brokerd -- --smoke
    fresh_wire=$(metric "$wscratch/exp_brokerd.metrics.json" "exp_brokerd.c4.served_per_sec")
    wire_floor=$BROKERD_SMOKE_FLOOR
else
    run env CELLBRICKS_RESULTS_DIR="$wscratch" \
        cargo run --release -q -p cellbricks-bench --bin exp_brokerd
    fresh_wire=$(metric "$wscratch/exp_brokerd.metrics.json" "exp_brokerd.c16.served_per_sec")
    wire_floor=$BROKERD_C16_FLOOR
fi
fresh_wb=$(metric "$wscratch/exp_brokerd.metrics.json" "exp_brokerd.bad_frames")
fresh_wl=$(metric "$wscratch/exp_brokerd.metrics.json" "exp_brokerd.lost")
if [ "$fresh_wire" -lt "$wire_floor" ]; then
    echo "FAIL: fresh exp_brokerd served/s $fresh_wire < floor $wire_floor"
    exit 1
fi
if [ "$fresh_wb" -ne 0 ] || [ "$fresh_wl" -ne 0 ]; then
    echo "FAIL: fresh exp_brokerd recorded bad_frames=$fresh_wb lost=$fresh_wl (want 0/0)"
    exit 1
fi
rm -rf "$wscratch"
echo
echo "==> exp_brokerd gates OK (committed c16 $wk au/s, win ${ww}x100; fresh $fresh_wire au/s, bad_frames 0, lost 0)"

# Multi-core brokerd scaling gate (PR 10): with >= 4 real cores, the
# W=4 crypto pipeline must at least double W=1 served-auth/s at C=16.
# Both rates come from fresh full runs on the same box, so the ratio
# cancels machine speed. W=1 replies are byte-identical to the inline
# server (pinned by crates/core/tests/broker_pipeline.rs), so the
# comparison is apples to apples. Skipped below 4 cores — same pattern
# as the multi-shard gate: without real parallelism the worker pool
# only adds hand-off overhead.
if [ "$(nproc)" -ge 4 ]; then
    brokerd_rate() { # brokerd_rate <workers> -> C=16 served-auth/s
        local d rate
        d=$(mktemp -d)
        env CELLBRICKS_RESULTS_DIR="$d" CELLBRICKS_BROKERD_WORKERS="$1" \
            cargo run --release -q -p cellbricks-bench --bin exp_brokerd >/dev/null
        rate=$(metric "$d/exp_brokerd.metrics.json" "exp_brokerd.c16.served_per_sec")
        rm -rf "$d"
        echo "$rate"
    }
    bw1=$(brokerd_rate 1)
    bw4=$(brokerd_rate 4)
    if [ "$bw4" -lt $((bw1 * 2)) ]; then
        echo "FAIL: brokerd W=4 served/s $bw4 < 2x W=1 served/s $bw1"
        exit 1
    fi
    echo "==> brokerd multi-core scaling OK (W=1 $bw1 -> W=4 $bw4 au/s)"
else
    echo "==> brokerd multi-core scaling gate skipped ($(nproc) core(s) < 4)"
fi

# Figure-replay gate: the committed results/*.txt are claims this tree
# must keep reproducing bit-for-bit. Every experiment is a pure function
# of its seed (no wall clock, no ambient RNG), so each binary is rerun
# into a scratch dir and its stdout diffed against the committed copy —
# any drift in the simulation, transport, or congestion-control hot
# paths (deliberate or accidental) turns the gate red until the figures
# are regenerated and re-reviewed.
replay=$(mktemp -d)
for exp in fig7 fig8 fig9 fig10 table1 cc; do
    echo
    echo "==> replay exp_$exp"
    env CELLBRICKS_RESULTS_DIR="$replay" \
        cargo run --release -q -p cellbricks-bench --bin "exp_$exp" \
        >"$replay/$exp.txt"
    if ! diff -u "results/$exp.txt" "$replay/$exp.txt"; then
        echo "FAIL: exp_$exp no longer reproduces results/$exp.txt byte-identically"
        exit 1
    fi
    echo "==> results/$exp.txt replays byte-identically"
done

# The exp_cc replay above doubles as the CC ablation smoke: its metrics
# snapshot must carry the per-algorithm cc.* counters, proving each
# algorithm actually ran behind the trait (not silently defaulted).
test -s "$replay/cc.metrics.json"
for key in cc.cubic.loss_events cc.reno.loss_events cc.bbr.probe_rtt_entries; do
    if ! grep -q "\"$key\"" "$replay/cc.metrics.json"; then
        echo "FAIL: counter \"$key\" missing from cc.metrics.json"
        exit 1
    fi
done
rm -rf "$replay"
echo
echo "==> figure replay + cc counters OK"

echo
echo "CI gate passed."
