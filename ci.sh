#!/usr/bin/env bash
# Local CI entrypoint — runs the exact same gate as
# .github/workflows/ci.yml so a green `./ci.sh` means a green PR.
#
# The build is fully offline: every third-party dependency is a local
# path shim under crates/shims/, so no registry access is required.
set -euo pipefail
cd "$(dirname "$0")"

# CI_QUICK=1 (the default here and in the workflow) puts informational
# steps — the criterion microbenchmarks — on a reduced profile: they
# still run end to end, they just spend less wall-clock measuring.
# Set CI_QUICK=0 for full-length benchmark numbers.
export CI_QUICK="${CI_QUICK:-1}"

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo build --release --workspace
run cargo test -q --workspace

# Crypto op-count gate: signature verification through the precomputed
# tables must spend at least 5x fewer field multiplications than the
# seed double-and-add path it replaced. The tally (a thread-local
# Fe::mul/Fe::square counter behind the `op-count` feature) is exact and
# deterministic, so — unlike wall-clock — this is a hard gate.
run cargo test --release -q -p cellbricks-crypto --features op-count \
    op_count_gate -- --nocapture

# Microbenchmark smoke: the ed25519/sealed-box criterion harness must
# run end to end. Its numbers are informational (±20% noise on the CI
# box); the op-count gate above is the regression check. Under
# CI_QUICK=1 the criterion shim collects fewer, shorter samples.
run cargo bench -q -p cellbricks-crypto --bench ed25519

# Smoke-check the telemetry pipeline end to end: a short fig7 run must
# produce a metrics snapshot with the per-phase attach histograms.
run cargo run --release -q -p cellbricks-bench --bin exp_fig7 -- --trials 3
test -s results/fig7.metrics.json
grep -q '"fig7.us-east-1.CB.total_ns"' results/fig7.metrics.json
echo
echo "==> results/fig7.metrics.json OK"

# Smoke-check the engine-scale sweep: a reduced run must report the
# scheduler events/sec gauges for each swept endpoint count.
#
# results/exp_scale.metrics.json is the *committed* perf/alloc baseline
# (the one .gitignore exception), written by the last full sweep. Two
# gates against it:
#   1. the committed N=10k steady-state events/sec must stay above the
#      recorded floor — a PR can only re-commit the file from a run that
#      still clears it;
#   2. the fresh smoke run's steady-state alloc.count at N=1k must not
#      regress vs the committed baseline (alloc counts are deterministic
#      in the single-threaded sim; 10% headroom for allocator jitter).
# The smoke run writes to a scratch dir so the committed baseline stays
# untouched (re-commit it only from a deliberate full sweep).
metric() { # metric <file> <gauge-name> -> value
    local v
    v=$(grep -o "\"$2\":{\"value\":[0-9-]*" "$1" | grep -o '[0-9-]*$' || true)
    if [ -z "$v" ]; then
        echo "FAIL: gauge \"$2\" not found in $1 — the run did not" >&2
        echo "      record it (renamed metric, or the phase never ran)" >&2
        return 1
    fi
    echo "$v"
}
ENGINE_N10K_FLOOR=5000000
committed_eps=$(metric results/exp_scale.metrics.json "exp_scale.engine.n10000.events_per_sec")
if [ "$committed_eps" -lt "$ENGINE_N10K_FLOOR" ]; then
    echo "FAIL: committed exp_scale.engine.n10000.events_per_sec=$committed_eps < floor $ENGINE_N10K_FLOOR"
    exit 1
fi
baseline_alloc=$(metric results/exp_scale.metrics.json "exp_scale.engine.n1000.alloc.count")

scratch=$(mktemp -d)
run env CELLBRICKS_RESULTS_DIR="$scratch" \
    cargo run --release -q -p cellbricks-bench --bin exp_scale -- --smoke
test -s "$scratch/exp_scale.metrics.json"
grep -q '"exp_scale.engine.n1000.events_per_sec"' "$scratch/exp_scale.metrics.json"
fresh_alloc=$(metric "$scratch/exp_scale.metrics.json" "exp_scale.engine.n1000.alloc.count")
alloc_cap=$((baseline_alloc + baseline_alloc / 10 + 8))
if [ "$fresh_alloc" -gt "$alloc_cap" ]; then
    echo "FAIL: steady-state alloc.count regressed: $fresh_alloc > cap $alloc_cap (baseline $baseline_alloc)"
    exit 1
fi
rm -rf "$scratch"
echo
echo "==> exp_scale gates OK (committed n10k ${committed_eps} ev/s >= ${ENGINE_N10K_FLOOR}; n1k alloc.count $fresh_alloc <= $alloc_cap)"

# Chaos gate: every scripted fault class (link flap, burst loss, bTelco
# crash+restart, broker outage) must converge — the run itself asserts,
# and the exported metrics must record zero unrecovered phases.
run cargo run --release -q -p cellbricks-bench --bin exp_chaos -- --smoke
test -s results/exp_chaos.metrics.json
grep -q '"fault.unrecovered":0' results/exp_chaos.metrics.json
echo
echo "==> results/exp_chaos.metrics.json OK"

# Figure-replay gate: the committed results/*.txt are claims this tree
# must keep reproducing bit-for-bit. Every experiment is a pure function
# of its seed (no wall clock, no ambient RNG), so each binary is rerun
# into a scratch dir and its stdout diffed against the committed copy —
# any drift in the simulation, transport, or congestion-control hot
# paths (deliberate or accidental) turns the gate red until the figures
# are regenerated and re-reviewed.
replay=$(mktemp -d)
for exp in fig7 fig8 fig9 fig10 table1 cc; do
    echo
    echo "==> replay exp_$exp"
    env CELLBRICKS_RESULTS_DIR="$replay" \
        cargo run --release -q -p cellbricks-bench --bin "exp_$exp" \
        >"$replay/$exp.txt"
    if ! diff -u "results/$exp.txt" "$replay/$exp.txt"; then
        echo "FAIL: exp_$exp no longer reproduces results/$exp.txt byte-identically"
        exit 1
    fi
    echo "==> results/$exp.txt replays byte-identically"
done

# The exp_cc replay above doubles as the CC ablation smoke: its metrics
# snapshot must carry the per-algorithm cc.* counters, proving each
# algorithm actually ran behind the trait (not silently defaulted).
test -s "$replay/cc.metrics.json"
for key in cc.cubic.loss_events cc.reno.loss_events cc.bbr.probe_rtt_entries; do
    if ! grep -q "\"$key\"" "$replay/cc.metrics.json"; then
        echo "FAIL: counter \"$key\" missing from cc.metrics.json"
        exit 1
    fi
done
rm -rf "$replay"
echo
echo "==> figure replay + cc counters OK"

echo
echo "CI gate passed."
