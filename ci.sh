#!/usr/bin/env bash
# Local CI entrypoint — runs the exact same gate as
# .github/workflows/ci.yml so a green `./ci.sh` means a green PR.
#
# The build is fully offline: every third-party dependency is a local
# path shim under crates/shims/, so no registry access is required.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo build --release --workspace
run cargo test -q --workspace

# Smoke-check the telemetry pipeline end to end: a short fig7 run must
# produce a metrics snapshot with the per-phase attach histograms.
run cargo run --release -q -p cellbricks-bench --bin exp_fig7 -- --trials 3
test -s results/fig7.metrics.json
grep -q '"fig7.us-east-1.CB.total_ns"' results/fig7.metrics.json
echo
echo "==> results/fig7.metrics.json OK"

# Smoke-check the engine-scale sweep: a reduced run must report the
# scheduler events/sec gauges for each swept endpoint count.
run cargo run --release -q -p cellbricks-bench --bin exp_scale -- --smoke
test -s results/exp_scale.metrics.json
grep -q '"exp_scale.engine.n1000.events_per_sec"' results/exp_scale.metrics.json
echo
echo "==> results/exp_scale.metrics.json OK"

# Chaos gate: every scripted fault class (link flap, burst loss, bTelco
# crash+restart, broker outage) must converge — the run itself asserts,
# and the exported metrics must record zero unrecovered phases.
run cargo run --release -q -p cellbricks-bench --bin exp_chaos -- --smoke
test -s results/exp_chaos.metrics.json
grep -q '"fault.unrecovered":0' results/exp_chaos.metrics.json
echo
echo "==> results/exp_chaos.metrics.json OK"

echo
echo "CI gate passed."
