//! Cross-crate guards on the *shape* of every paper result: these are the
//! claims EXPERIMENTS.md reports, pinned as tests so regressions in any
//! substrate (transport, policer, RAN, SAP) show up immediately.
//!
//! Durations are shortened relative to the experiment binaries; the
//! assertions check orderings and coarse magnitudes, not exact values.

use cellbricks::apps::emulation::{run, Arch, EmulationConfig, Workload};
use cellbricks::core::attach_bench::{run_baseline, run_cellbricks, ProcProfile, PLACEMENTS};
use cellbricks::net::TimeOfDay;
use cellbricks::ran::RouteKind;
use cellbricks::sim::SimDuration;

fn quick(route: RouteKind, tod: TimeOfDay, arch: Arch, workload: Workload) -> EmulationConfig {
    let mut cfg = EmulationConfig::new(route, tod, arch, workload);
    cfg.duration = SimDuration::from_secs(150);
    cfg
}

// --- Fig. 7 shape: CB saves exactly the S6A round trips. ---

#[test]
fn fig7_cb_saving_grows_with_cloud_distance() {
    let p = ProcProfile::default();
    let mut savings = Vec::new();
    for placement in PLACEMENTS {
        let bl = run_baseline(placement, &p, 5, 7);
        let cb = run_cellbricks(placement, &p, 5, 7);
        savings.push((bl.total_ms - cb.total_ms) / bl.total_ms);
    }
    // local < us-west < us-east (paper: ~0%, 14.0%, 40.8%).
    assert!(
        savings[0] < savings[1] && savings[1] < savings[2],
        "{savings:?}"
    );
    assert!(
        (savings[2] - 0.408).abs() < 0.1,
        "us-east saving {}",
        savings[2]
    );
}

// --- Table 1 shape: CB within a few percent of MNO. ---

#[test]
fn table1_iperf_slowdown_within_paper_band() {
    let mno = run(&quick(
        RouteKind::Downtown,
        TimeOfDay::Day,
        Arch::Mno,
        Workload::Iperf,
    ));
    let cb = run(&quick(
        RouteKind::Downtown,
        TimeOfDay::Day,
        Arch::CellBricks,
        Workload::Iperf,
    ));
    let slowdown = (mno.iperf_mbps.unwrap() - cb.iperf_mbps.unwrap()) / mno.iperf_mbps.unwrap();
    // Paper: −1.61% … +3.06%; allow a wider CI for the short run.
    assert!(slowdown.abs() < 0.08, "slowdown {slowdown:.3}");
}

#[test]
fn table1_day_night_throughput_regimes() {
    let day = run(&quick(
        RouteKind::Downtown,
        TimeOfDay::Day,
        Arch::Mno,
        Workload::Iperf,
    ));
    let night = run(&quick(
        RouteKind::Downtown,
        TimeOfDay::Night,
        Arch::Mno,
        Workload::Iperf,
    ));
    let d = day.iperf_mbps.unwrap();
    let n = night.iperf_mbps.unwrap();
    assert!((0.6..1.6).contains(&d), "day {d} Mbps");
    assert!(n > 6.0, "night {n} Mbps");
    assert!(n / d > 5.0, "bimodal policing ratio {:.1}", n / d);
}

#[test]
fn table1_voip_mos_unaffected_by_architecture() {
    let mno = run(&quick(
        RouteKind::Suburb,
        TimeOfDay::Day,
        Arch::Mno,
        Workload::Voip,
    ));
    let cb = run(&quick(
        RouteKind::Suburb,
        TimeOfDay::Day,
        Arch::CellBricks,
        Workload::Voip,
    ));
    let (m, c) = (mno.mos.unwrap(), cb.mos.unwrap());
    assert!((4.0..4.5).contains(&m), "MNO MOS {m}");
    assert!((m - c).abs() < 0.1, "MOS {m} vs {c}");
}

#[test]
fn table1_video_levels_track_time_of_day() {
    let day = run(&quick(
        RouteKind::Downtown,
        TimeOfDay::Day,
        Arch::CellBricks,
        Workload::Video,
    ));
    let night = run(&quick(
        RouteKind::Downtown,
        TimeOfDay::Night,
        Arch::CellBricks,
        Workload::Video,
    ));
    let d = day.video_level.unwrap();
    let n = night.video_level.unwrap();
    assert!((1.2..2.6).contains(&d), "day level {d} (paper ≈2)");
    assert!(n > 4.4, "night level {n} (paper ≈4.9)");
}

#[test]
fn table1_mttho_ordering_matches_paper() {
    // Highway < Downtown < Suburb MTTHO; night < day per route.
    let get = |route, tod| run(&quick(route, tod, Arch::Mno, Workload::Ping)).mttho_s;
    let suburb_d = get(RouteKind::Suburb, TimeOfDay::Day);
    let downtown_d = get(RouteKind::Downtown, TimeOfDay::Day);
    let highway_d = get(RouteKind::Highway, TimeOfDay::Day);
    let highway_n = get(RouteKind::Highway, TimeOfDay::Night);
    assert!(
        highway_d < suburb_d,
        "highway {highway_d} vs suburb {suburb_d}"
    );
    assert!(
        highway_n < highway_d,
        "night {highway_n} vs day {highway_d}"
    );
    let _ = downtown_d;
}

// --- Fig. 8/9 shape: the dip exists; lower attach latency is better. ---

#[test]
fn fig8_cb_dips_then_recovers_around_handover() {
    let mut cfg = quick(
        RouteKind::Downtown,
        TimeOfDay::Day,
        Arch::CellBricks,
        Workload::Iperf,
    );
    cfg.duration = SimDuration::from_secs(50);
    cfg.forced_handovers_s = Some(vec![23.5]);
    let out = run(&cfg);
    let rates = out.iperf_series.unwrap().rates_per_sec();
    let steady: f64 = rates[10..20].iter().sum::<f64>() / 10.0;
    let dip = rates[23].min(rates[24]);
    let recovered: f64 = rates[30..40].iter().sum::<f64>() / 10.0;
    // With 1 s bins the 500 ms dark period plus the token-bucket catch-up
    // burst partially cancel within the handover bin; the dip is visible
    // but modest (the paper's Fig. 8 plots the same 1 s granularity).
    assert!(dip < steady * 0.95, "dip {dip} vs steady {steady}");
    assert!(
        recovered > steady * 0.6,
        "recovered {recovered} vs {steady}"
    );
}

#[test]
fn fig9_unmodified_wait_hurts_first_second() {
    let handovers = vec![30.0, 60.0, 90.0];
    let mk = |wait_ms: u64| {
        let mut cfg = quick(
            RouteKind::Downtown,
            TimeOfDay::Night,
            Arch::CellBricks,
            Workload::Iperf,
        );
        cfg.duration = SimDuration::from_secs(110);
        cfg.forced_handovers_s = Some(handovers.clone());
        cfg.mptcp_wait = SimDuration::from_millis(wait_ms);
        let out = run(&cfg);
        let sums = out.iperf_series.unwrap();
        let sums = sums.sums();
        handovers
            .iter()
            .map(|&h| sums[h as usize] + sums[h as usize + 1])
            .sum::<f64>()
    };
    let no_wait = mk(0);
    let full_wait = mk(500);
    assert!(
        no_wait > full_wait,
        "removing the 500 ms wait must help right after handovers: {no_wait} vs {full_wait}"
    );
}

// --- QUIC-migration ablation shape (§4.2 future work). ---

#[test]
fn quic_migration_recovers_at_least_as_fast_as_patched_mptcp() {
    use cellbricks::apps::emulation::run_with_apps;
    use cellbricks::apps::iperf::{IperfClient, IperfServer, Transport};
    use cellbricks::apps::quic_app::{QuicIperfClient, QuicIperfServer};
    use cellbricks::net::EndpointAddr;
    use std::net::Ipv4Addr;

    const SRV_IP: Ipv4Addr = Ipv4Addr::new(52, 9, 1, 1);
    let handovers = vec![30.0, 60.0, 90.0];
    let mut cfg = quick(
        RouteKind::Downtown,
        TimeOfDay::Night,
        Arch::CellBricks,
        Workload::Iperf,
    );
    cfg.duration = SimDuration::from_secs(110);
    cfg.forced_handovers_s = Some(handovers.clone());
    cfg.mptcp_wait = SimDuration::ZERO;
    cfg.attach_delay = SimDuration::from_millis(32);

    let (mptcp, _, _) = run_with_apps(
        &cfg,
        IperfClient::new(
            EndpointAddr::new(SRV_IP, 5001),
            Transport::Mptcp,
            SimDuration::from_secs(1),
        ),
        IperfServer::new(5001),
    );
    let (quic, server, _) = run_with_apps(
        &cfg,
        QuicIperfClient::new(EndpointAddr::new(SRV_IP, 8443), SimDuration::from_secs(1)),
        QuicIperfServer::new(),
    );
    assert_eq!(
        server.migrations,
        handovers.len() as u32,
        "every handover migrated the path"
    );
    // Post-handover bytes in the 2 s after each handover: migration must
    // not lose to the patched (no-wait) MPTCP.
    let window = |sums: &[f64]| -> f64 {
        handovers
            .iter()
            .map(|&h| sums[h as usize] + sums[h as usize + 1])
            .sum()
    };
    let quic_bytes = window(quic.series.sums());
    let mptcp_bytes = window(mptcp.series.sums());
    assert!(
        quic_bytes > mptcp_bytes * 0.8,
        "QUIC {quic_bytes} vs MPTCP {mptcp_bytes} post-handover bytes"
    );
}
