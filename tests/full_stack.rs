//! End-to-end integration: the complete CellBricks system over the
//! simulated network — SAP attach with real cryptography, MPTCP data
//! through the bTelco's accounted bearer, a host-driven handover to a
//! *different* bTelco, and verifiable billing at the broker.

mod common;

use cellbricks::net::EndpointAddr;
use cellbricks::sim::{SimDuration, SimTime};
use common::{CellBricksWorld, AGW1_SIG, AGW2_SIG, SERVER_IP, TELCO1, TELCO2};

#[test]
fn sap_attach_assigns_address_from_btelco_pool() {
    let mut w = CellBricksWorld::build(1);
    w.ue.start_attach(SimTime::ZERO, TELCO1, AGW1_SIG);
    w.run_to(SimTime::from_secs(1));
    assert!(w.ue.is_attached(), "UE attached via SAP");
    let addr = w.ue.host.addr().expect("address assigned");
    assert_eq!(addr.octets()[..2], [10, 1], "address from bTelco 1's pool");
    assert_eq!(w.telco1.attach_count, 1);
    assert_eq!(w.brokerd.auth_ok, 1);
    assert_eq!(w.brokerd.auth_err, 0);
    // The bTelco learned only an alias, never the UE identity: the bearer
    // subscriber field is the broker-issued alias (1 for the first user).
    let bearer = w.telco1.bearers.iter().next().expect("bearer");
    assert_eq!(bearer.subscriber, 1);
}

#[test]
fn data_flows_through_accounted_bearer() {
    let mut w = CellBricksWorld::build(2);
    w.ue.start_attach(SimTime::ZERO, TELCO1, AGW1_SIG);
    w.run_to(SimTime::from_secs(1));
    assert!(w.ue.is_attached());

    // UE opens an MPTCP connection to the server and downloads 300 kB.
    w.server.mp_listen(5001);
    let conn =
        w.ue.host
            .mp_connect(w.cursor, EndpointAddr::new(SERVER_IP, 5001));
    w.run_to(SimTime::from_secs(2));
    let accepted = w.server.take_accepted_mp();
    assert_eq!(accepted.len(), 1, "server accepted the connection");
    w.server.mp_write(w.cursor, accepted[0], 300_000);
    w.run_to(SimTime::from_secs(8));

    assert_eq!(w.ue.host.mp(conn).data_received(), 300_000);
    // The PGW counted the downlink (payload + headers > 300 kB).
    let ue_ip = w.ue.host.addr().unwrap();
    let bearer = w.telco1.bearers.get(ue_ip).expect("bearer");
    assert!(
        bearer.dl_bytes > 300_000,
        "PGW counted {} DL bytes",
        bearer.dl_bytes
    );
    assert!(bearer.ul_bytes > 0, "ACK traffic counted uplink");
}

#[test]
fn handover_to_second_btelco_preserves_connection() {
    let mut w = CellBricksWorld::build(3);
    w.ue.start_attach(SimTime::ZERO, TELCO1, AGW1_SIG);
    w.run_to(SimTime::from_secs(1));
    w.server.mp_listen(5001);
    let conn =
        w.ue.host
            .mp_connect(w.cursor, EndpointAddr::new(SERVER_IP, 5001));
    w.run_to(SimTime::from_secs(2));
    let server_conn = w.server.take_accepted_mp()[0];
    w.server.mp_set_bulk(w.cursor, server_conn);
    w.run_to(SimTime::from_secs(6));
    let before = w.ue.host.mp(conn).data_received();
    assert!(
        before > 100_000,
        "downlink flowing before handover: {before}"
    );
    let addr_before = w.ue.host.addr().unwrap();

    // Host-driven handover: detach from bTelco 1, attach to bTelco 2.
    let ho_at = w.cursor;
    w.ue.detach(ho_at);
    w.select_radio(2);
    w.ue.start_attach(ho_at, TELCO2, AGW2_SIG);
    w.run_to(ho_at + SimDuration::from_secs(1));
    assert!(w.ue.is_attached(), "attached to bTelco 2");
    let addr_after = w.ue.host.addr().unwrap();
    assert_ne!(addr_before, addr_after, "IP changed across bTelcos");
    assert_eq!(addr_after.octets()[..2], [10, 2], "bTelco 2's pool");

    // MPTCP rejoined: the same connection keeps delivering.
    w.run_to(ho_at + SimDuration::from_secs(8));
    let after = w.ue.host.mp(conn).data_received();
    assert!(
        after > before + 200_000,
        "connection survived the bTelco switch: {before} -> {after}"
    );
    // Both bTelcos served this UE; sessions were separate.
    assert_eq!(w.telco1.attach_count, 1);
    assert_eq!(w.telco2.attach_count, 1);
    assert_eq!(w.brokerd.auth_ok, 2);
}

#[test]
fn billing_reports_cross_check_at_broker() {
    let mut w = CellBricksWorld::build(4);
    w.ue.start_attach(SimTime::ZERO, TELCO1, AGW1_SIG);
    w.run_to(SimTime::from_secs(1));
    let session = w.ue.session_id().expect("session");

    w.server.mp_listen(5001);
    let _conn =
        w.ue.host
            .mp_connect(w.cursor, EndpointAddr::new(SERVER_IP, 5001));
    w.run_to(SimTime::from_secs(2));
    let server_conn = w.server.take_accepted_mp()[0];
    w.server.mp_set_bulk(w.cursor, server_conn);

    // Run past several reporting cycles.
    w.run_to(SimTime::from_secs(22));
    assert!(
        w.brokerd.cycles_checked >= 2,
        "broker cross-checked {} cycles",
        w.brokerd.cycles_checked
    );
    assert_eq!(w.brokerd.bad_reports, 0);
    // An honest bTelco keeps a perfect score and stays admitted.
    let telco_id = w.ue.serving_telco().unwrap();
    assert_eq!(w.brokerd.reputation().mismatches(telco_id), 0);
    assert!(w.brokerd.reputation().admit(telco_id));
    // Settled usage reflects real traffic.
    let (dl, _ul) = w.brokerd.settled_bytes(session).expect("settlement");
    assert!(dl > 1_000_000, "settled {dl} DL bytes");
}

#[test]
fn detach_releases_bearer_and_final_report() {
    let mut w = CellBricksWorld::build(5);
    w.ue.start_attach(SimTime::ZERO, TELCO1, AGW1_SIG);
    w.run_to(SimTime::from_secs(1));
    assert_eq!(w.telco1.bearers.len(), 1);
    w.ue.detach(w.cursor);
    w.run_to(SimTime::from_secs(2));
    assert_eq!(w.telco1.bearers.len(), 0, "bearer released");
    assert!(w.ue.host.addr().is_none(), "address invalidated");
}

#[test]
fn second_attach_after_detach_gets_fresh_session() {
    let mut w = CellBricksWorld::build(6);
    w.ue.start_attach(SimTime::ZERO, TELCO1, AGW1_SIG);
    w.run_to(SimTime::from_secs(1));
    let s1 = w.ue.session_id().unwrap();
    w.ue.detach(w.cursor);
    w.run_to(SimTime::from_secs(2));
    w.ue.start_attach(w.cursor, TELCO1, AGW1_SIG);
    w.run_to(SimTime::from_secs(3));
    let s2 = w.ue.session_id().unwrap();
    assert_ne!(s1, s2, "fresh billing session per attachment");
    assert_eq!(w.ue.attaches, 2);
    assert_eq!(w.ue.failures, 0);
}

#[test]
fn granted_mbr_caps_subscriber_throughput() {
    // Provision a 2 Mbps plan; even on a 30 Mbps radio the bTelco's MBR
    // policer (enforcing the broker's qosInfo, §4.1) caps the download.
    let mut w = CellBricksWorld::build_with_plan(7, 2_000_000);
    w.ue.start_attach(SimTime::ZERO, TELCO1, AGW1_SIG);
    w.run_to(SimTime::from_secs(1));
    w.server.mp_listen(5001);
    let conn =
        w.ue.host
            .mp_connect(w.cursor, EndpointAddr::new(SERVER_IP, 5001));
    w.run_to(SimTime::from_secs(2));
    let sc = w.server.take_accepted_mp()[0];
    w.server.mp_set_bulk(w.cursor, sc);
    w.run_to(SimTime::from_secs(22));
    let received = w.ue.host.mp(conn).data_received();
    let mbps = received as f64 * 8.0 / 20.0 / 1e6;
    assert!(
        mbps < 2.2,
        "MBR enforcement held the flow to {mbps:.2} Mbps (granted 2)"
    );
    assert!(
        mbps > 1.0,
        "flow still ran at a useful rate: {mbps:.2} Mbps"
    );
    let bearer = w.telco1.bearers.iter().next().unwrap();
    assert!(bearer.dl_dropped > 0, "policer did drop over-rate packets");
}

#[test]
fn attach_retries_through_signalling_loss() {
    // Blackhole the radio during the UE's first attach request; the UE's
    // retry (with a fresh nonce, since the broker rejects replays) must
    // succeed once the radio recovers.
    let mut w = CellBricksWorld::build(8);
    w.world.set_outage(w.radio1, SimTime::from_secs(1)); // Radio dark 1 s.
    w.ue.start_attach(SimTime::ZERO, TELCO1, AGW1_SIG);
    w.run_to(SimTime::from_secs(6));
    assert!(w.ue.is_attached(), "attach succeeded after retry");
    assert!(w.ue.attach_retries >= 1, "a retry was needed");
    assert_eq!(w.ue.failures, 0);
    // The first attempt took >2 s (retry window), reflected in latency.
    assert!(w.ue.attach_latency_ms.mean() > 1_000.0);
}
