//! Adversarial billing over the full network: a bTelco that inflates its
//! usage reports is caught by the broker's Fig. 5 cross-check and loses
//! admission; a tampered UE report is rejected and the user is suspected.

mod common;

use cellbricks::core::brokerd::BrokerWire;
use cellbricks::net::{Endpoint, EndpointAddr, Packet};
use cellbricks::sim::SimTime;
use common::{CellBricksWorld, AGW1_SIG, BROKER_IP, SERVER_IP, TELCO1};

/// Build the world, attach, and start a bulk download so usage accrues.
fn world_with_traffic(seed: u64, overcount: f64) -> CellBricksWorld {
    let mut w = CellBricksWorld::build(seed);
    // Make bTelco 1 dishonest.
    w.telco1.set_overcount_factor(overcount);
    w.ue.start_attach(SimTime::ZERO, TELCO1, AGW1_SIG);
    w.run_to(SimTime::from_secs(1));
    assert!(w.ue.is_attached());
    w.server.mp_listen(5001);
    let _conn =
        w.ue.host
            .mp_connect(w.cursor, EndpointAddr::new(SERVER_IP, 5001));
    w.run_to(SimTime::from_secs(2));
    let sc = w.server.take_accepted_mp()[0];
    w.server.mp_set_bulk(w.cursor, sc);
    w
}

#[test]
fn honest_btelco_keeps_admission() {
    let mut w = world_with_traffic(10, 1.0);
    w.run_to(SimTime::from_secs(33));
    let telco = w.ue.serving_telco().unwrap();
    assert!(w.brokerd.cycles_checked >= 5);
    // "Small discrepancies are expected and tolerated" (§4.3): radio-queue
    // loss during slow start can flag an occasional cycle; the weighted
    // score must stay high and the bTelco admitted.
    assert!(w.brokerd.reputation().mismatches(telco) <= 1);
    assert!(w.brokerd.reputation().score(telco) > 0.9);
    assert!(w.brokerd.reputation().admit(telco));
}

#[test]
fn inflating_btelco_loses_admission() {
    let mut w = world_with_traffic(11, 1.6);
    w.run_to(SimTime::from_secs(33));
    let telco = w.ue.serving_telco().unwrap();
    assert!(
        w.brokerd.reputation().mismatches(telco) >= 3,
        "mismatches {}",
        w.brokerd.reputation().mismatches(telco)
    );
    assert!(
        !w.brokerd.reputation().admit(telco),
        "score {}",
        w.brokerd.reputation().score(telco)
    );
}

#[test]
fn refused_btelco_cannot_authorize_new_sessions() {
    let mut w = world_with_traffic(12, 1.6);
    w.run_to(SimTime::from_secs(33));
    assert!(!w.brokerd.reputation().admit(w.ue.serving_telco().unwrap()));
    // A fresh attach through the cheater is now refused by the broker.
    w.ue.detach(w.cursor);
    w.run_to(SimTime::from_secs(34));
    w.ue.start_attach(w.cursor, TELCO1, AGW1_SIG);
    w.run_to(SimTime::from_secs(36));
    assert!(
        !w.ue.is_attached(),
        "broker refused the disreputable bTelco"
    );
    assert!(w.ue.failures >= 1);
    assert!(w.brokerd.auth_err >= 1);
}

#[test]
fn settlement_falls_back_to_ue_figures_on_mismatch() {
    let mut w = world_with_traffic(13, 2.0);
    w.run_to(SimTime::from_secs(22));
    let session = w.ue.session_id().unwrap();
    let (settled_dl, _) = w.brokerd.settled_bytes(session).unwrap();
    // The bTelco claimed 2x; settlement must track the UE's honest figure
    // (what actually crossed the radio), not the inflated claim.
    let bearer_dl = w.telco1.bearers.iter().next().map_or(0, |b| b.dl_bytes);
    assert!(
        settled_dl < (bearer_dl as f64 * 1.3) as u64,
        "settled {settled_dl} vs PGW {bearer_dl} (inflated claim rejected)"
    );
}

#[test]
fn forged_ue_report_marks_user_suspect() {
    let mut w = world_with_traffic(14, 1.0);
    w.run_to(SimTime::from_secs(5));
    let session = w.ue.session_id().unwrap();
    // An attacker (who does not hold the broker-issued baseband key)
    // injects a forged "UE" report for the session.
    let forged = BrokerWire::Report {
        session_id: session,
        from_ue: true,
        sealed: bytes::Bytes::from_static(&[0u8; 96]),
    };
    let mut sink = Vec::new();
    w.brokerd.handle_packet(
        SimTime::from_secs(5),
        Packet::control(AGW1_SIG, BROKER_IP, forged.encode()),
        &mut sink,
    );
    assert_eq!(w.brokerd.bad_reports, 1);
    // The paper's §4.3: unverifiable UE reports put the user on the
    // suspect list, and suspect users are refused service.
    let user = w.ue_identity();
    assert!(w.brokerd.reputation().is_suspect(user));
}

#[test]
fn under_reporting_btelco_loses_admission() {
    // A telco claiming *less* than delivered is just as dishonest as an
    // inflating one (it could be laundering usage onto another session, or
    // simply broken). The old dl_t-scaled check waved this through.
    let mut w = world_with_traffic(15, 0.4);
    w.run_to(SimTime::from_secs(33));
    let telco = w.ue.serving_telco().unwrap();
    assert!(
        w.brokerd.reputation().mismatches(telco) >= 3,
        "mismatches {}",
        w.brokerd.reputation().mismatches(telco)
    );
    assert!(
        !w.brokerd.reputation().admit(telco),
        "under-reporting telco must lose admission; score {}",
        w.brokerd.reputation().score(telco)
    );
}

#[test]
fn zero_reporting_btelco_detected() {
    // The crash-shaped failure: the telco reports zero downlink while the
    // UE's sealed meter shows real traffic. Every checked cycle must
    // mismatch and settlement must follow the UE figure.
    let mut w = world_with_traffic(16, 0.0);
    w.run_to(SimTime::from_secs(22));
    let telco = w.ue.serving_telco().unwrap();
    assert!(w.brokerd.cycles_checked >= 3);
    assert!(
        w.brokerd.reputation().mismatches(telco) >= 3,
        "mismatches {}",
        w.brokerd.reputation().mismatches(telco)
    );
    let session = w.ue.session_id().unwrap();
    let (settled_dl, _) = w.brokerd.settled_bytes(session).unwrap();
    assert!(
        settled_dl > 100_000,
        "settlement must fall back to the UE figure, got {settled_dl}"
    );
    assert!(!w.brokerd.reputation().admit(telco));
}

mod verify_cycle_symmetry {
    use cellbricks::core::billing::{verify_cycle, CycleVerdict, TrafficReport};
    use proptest::prelude::*;

    fn report(dl_bytes: u64) -> TrafficReport {
        TrafficReport {
            session_id: 1,
            seq: 0,
            ul_bytes: 0,
            dl_bytes,
            duration_ms: 5_000,
            dl_loss_ppm: 0,
            ul_loss_ppm: 0,
            avg_dl_kbps: 0,
            avg_ul_kbps: 0,
            delay_ms: 0,
        }
    }

    proptest! {
        /// With no UE-observed loss, the check treats a claim of
        /// `dl_u + d` exactly like a claim of `dl_u - d`: the threshold
        /// scales off the trusted figure only, so inflation and deflation
        /// are symmetric (same verdict, same weight).
        #[test]
        fn prop_inflation_deflation_symmetric(
            dl_u in 1u64..1_000_000_000,
            delta_ppm in 0u64..1_000_000,
        ) {
            let d = dl_u * delta_ppm / 1_000_000;
            let ue = report(dl_u);
            let over = verify_cycle(&ue, &report(dl_u + d), 0.05);
            let under = verify_cycle(&ue, &report(dl_u - d), 0.05);
            match (over, under) {
                (CycleVerdict::Consistent, CycleVerdict::Consistent) => {}
                (
                    CycleVerdict::Mismatch { weight: wo },
                    CycleVerdict::Mismatch { weight: wu },
                ) => prop_assert!((wo - wu).abs() < 1e-9),
                (a, b) => prop_assert!(false, "asymmetric verdicts: {a:?} vs {b:?}"),
            }
        }
    }
}
