//! Consistent-hash ring properties (ISSUE 8 satellite), in the style of
//! `tests/shard_invariance.rs`: the properties that make resharding the
//! broker plane safe are checked over generated identity populations,
//! not hand-picked examples.
//!
//! - **Determinism**: shard assignment is a pure function of the shard
//!   set — two independently built rings always agree, across runs and
//!   machines (no `RandomState` anywhere in the ring).
//! - **Removal exactness**: dropping shard `s` moves *only* the keys
//!   that `s` owned; every other key keeps its assignment.
//! - **Addition bound**: adding a shard steals keys only for itself —
//!   a key either keeps its shard or moves to the new one — and the
//!   stolen fraction is ~1/K (checked with generous slack, since 64
//!   vnodes only bounds imbalance to ~2x).

use cellbricks::core::broker_plane::BrokerRing;
use cellbricks::core::principal::Identity;
use proptest::prelude::*;

const VNODES: u32 = 64;

fn identities(n: usize) -> impl Strategy<Value = Vec<Identity>> {
    proptest::collection::vec(any::<[u8; 16]>().prop_map(Identity), n..n + 1)
}

proptest! {
    /// Two rings built from the same shard count agree on every key, for
    /// every shard count — and assignments are invariant under the
    /// *order* shards were added in.
    #[test]
    fn assignment_is_deterministic(ids in identities(64), k in 1u32..9) {
        let a = BrokerRing::new(k, VNODES);
        let b = BrokerRing::new(k, VNODES);
        // Same shard set reached along a different history (grow past
        // it, then shrink back): assignments depend only on the set.
        let mut c = BrokerRing::new(k + 1, VNODES);
        c.remove_shard(k);
        for id in &ids {
            let s = a.shard_of(id);
            prop_assert!(s < k);
            prop_assert_eq!(b.shard_of(id), s);
            prop_assert_eq!(c.shard_of(id), s);
        }
    }

    /// Removing a shard relocates exactly the keys it owned; everyone
    /// else stays put (the "only ~1/K keys move" contract).
    #[test]
    fn removal_moves_only_owned_keys(ids in identities(256), k in 2u32..9, victim_ix in 0u32..8) {
        let victim = victim_ix % k;
        let full = BrokerRing::new(k, VNODES);
        let mut reduced = BrokerRing::new(k, VNODES);
        reduced.remove_shard(victim);
        for id in &ids {
            let before = full.shard_of(id);
            let after = reduced.shard_of(id);
            prop_assert_ne!(after, victim, "removed shard still assigned");
            if before != victim {
                prop_assert_eq!(after, before, "unowned key moved on removal");
            }
        }
    }

    /// Adding a shard only moves keys *to* the new shard, and the moved
    /// fraction over a large population is on the order of 1/(K+1) —
    /// bounded here by 3x to leave room for vnode placement variance.
    #[test]
    fn addition_steals_roughly_one_kth(ids in identities(512), k in 1u32..8) {
        let old = BrokerRing::new(k, VNODES);
        let mut grown = BrokerRing::new(k, VNODES);
        grown.add_shard(k);
        let mut moved = 0usize;
        for id in &ids {
            let before = old.shard_of(id);
            let after = grown.shard_of(id);
            if after != before {
                prop_assert_eq!(after, k, "key moved to an old shard");
                moved += 1;
            }
        }
        let cap = 3 * ids.len() / (k as usize + 1);
        prop_assert!(
            moved <= cap,
            "adding 1 shard to {} moved {}/{} keys (cap {})",
            k, moved, ids.len(), cap
        );
    }
}

/// Fixed-population sanity check: the churn `add(K) → remove(K)` is a
/// no-op — the ring returns to exactly its prior assignment.
#[test]
fn add_then_remove_restores_assignment() {
    let base = BrokerRing::new(4, VNODES);
    let mut churned = BrokerRing::new(4, VNODES);
    churned.add_shard(4);
    churned.remove_shard(4);
    for i in 0..4096u32 {
        let mut bytes = [0u8; 16];
        bytes[..4].copy_from_slice(&i.to_le_bytes());
        let id = Identity(bytes);
        assert_eq!(churned.shard_of(&id), base.shard_of(&id));
    }
}
