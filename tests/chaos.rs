//! Chaos suite: every fault class the `FaultPlan` can script — link
//! flaps, Gilbert–Elliott burst loss, bTelco crash+restart, broker
//! unavailability — followed by the system converging back to steady
//! state: the UE re-attached and the bulk transfer moving again. Plus the
//! recovery-hardening properties themselves: capped exponential backoff
//! on attach retries, detach clearing pending-attach state, and
//! bit-identical replays per seed.

mod common;

use cellbricks::core::principal::{BrokerKeys, UeKeys};
use cellbricks::core::ue::{RecoveryConfig, UeDevice, UeDeviceConfig};
use cellbricks::crypto::cert::CertificateAuthority;
use cellbricks::epc::nas::NasMessage;
use cellbricks::net::{BurstLoss, Endpoint, EndpointAddr, FaultPlan, NodeId, Packet, PacketKind};
use cellbricks::sim::{SimDuration, SimRng, SimTime};
use cellbricks::transport::MpId;
use common::{CellBricksWorld, AGW1_SIG, BROKER_IP, SERVER_IP, TELCO1, UE_SIG};

const SECS: fn(u64) -> SimTime = SimTime::from_secs;

/// Attach via bTelco 1 and start a server→UE bulk download.
fn chaos_world_with_traffic(seed: u64) -> (CellBricksWorld, MpId) {
    let mut w = CellBricksWorld::build_chaos(seed);
    w.ue.start_attach(SimTime::ZERO, TELCO1, AGW1_SIG);
    w.run_to(SECS(1));
    assert!(w.ue.is_attached());
    w.server.mp_listen(5001);
    let conn =
        w.ue.host
            .mp_connect(w.cursor, EndpointAddr::new(SERVER_IP, 5001));
    w.run_to(SECS(2));
    let sc = w.server.take_accepted_mp()[0];
    w.server.mp_set_bulk(w.cursor, sc);
    (w, conn)
}

#[test]
fn link_flap_recovers() {
    let (mut w, conn) = chaos_world_with_traffic(21);
    w.run_to(SECS(5));
    let before = w.ue.host.mp(conn).data_received();
    assert!(before > 100_000, "flowing before faults: {before}");

    // Three 400 ms outages, 600 ms apart, on the serving radio.
    let mut plan = FaultPlan::new();
    plan.link_flaps(
        w.radio1,
        SECS(5),
        3,
        SimDuration::from_millis(400),
        SimDuration::from_millis(600),
    );
    w.driver.set_fault_plan(plan);
    w.run_to(SECS(9));
    assert_eq!(w.driver.pending_faults(), 0, "all flaps applied");

    // Convergence: still attached, transfer moving again after the train.
    let mid = w.ue.host.mp(conn).data_received();
    w.run_to(SECS(14));
    let after = w.ue.host.mp(conn).data_received();
    assert!(w.ue.is_attached(), "UE survived the flap train");
    assert!(
        after > mid + 500_000,
        "transfer resumed after flaps: {mid} -> {after}"
    );
}

#[test]
fn burst_loss_recovers() {
    let (mut w, conn) = chaos_world_with_traffic(22);
    w.run_to(SECS(5));
    let drops_before = w.world.link_stats(w.radio1).ba_dropped;

    // A flaky-cell burst-loss window over [5 s, 10 s) on the radio.
    let mut plan = FaultPlan::new();
    plan.burst_loss_window(w.radio1, SECS(5), SECS(10), BurstLoss::flaky_cell());
    w.driver.set_fault_plan(plan);
    w.run_to(SECS(10));

    // The bad states actually bit (downlink = b→a on the UE-eNB link).
    let drops_during = w.world.link_stats(w.radio1).ba_dropped - drops_before;
    assert!(drops_during > 20, "burst losses observed: {drops_during}");

    // Model removed at window end; the transfer converges back.
    let mid = w.ue.host.mp(conn).data_received();
    w.run_to(SECS(16));
    let after = w.ue.host.mp(conn).data_received();
    assert!(w.ue.is_attached());
    assert!(
        after > mid + 500_000,
        "transfer recovered after the burst window: {mid} -> {after}"
    );
}

#[test]
fn telco_crash_restart_reattaches_and_resumes() {
    let (mut w, conn) = chaos_world_with_traffic(23);
    w.run_to(SECS(5));
    let session_before = w.ue.session_id().unwrap();

    // bTelco 1 crashes at 5 s, back up at 6 s, all volatile state gone.
    let mut plan = FaultPlan::new();
    plan.crash_restart(w.agw1_node, SECS(5), SimDuration::from_secs(1));
    w.driver.set_fault_plan(plan);
    w.run_to(SECS(6));
    assert_eq!(w.telco1.crashes, 1);
    assert_eq!(w.telco1.session_count(), 0, "crash wiped the session");

    // The inactivity watchdog notices the dead downlink and re-attaches;
    // the broker issues a *new* session (the old one died with the telco's
    // meters — its UE-side reports still settle via the Fig. 5 fallback).
    w.run_to(SECS(20));
    assert!(w.ue.watchdog_reattaches >= 1, "watchdog fired");
    assert!(w.ue.is_attached(), "re-attached after restart");
    let session_after = w.ue.session_id().unwrap();
    assert_ne!(session_before, session_after, "fresh SAP session");
    assert!(w.telco1.attach_count >= 2, "post-restart attach counted");

    let mid = w.ue.host.mp(conn).data_received();
    w.run_to(SECS(28));
    let after = w.ue.host.mp(conn).data_received();
    assert!(
        after > mid + 200_000,
        "transfer resumed on the new session: {mid} -> {after}"
    );
}

#[test]
fn broker_outage_delays_but_not_denies_attach() {
    let mut w = CellBricksWorld::build_chaos(24);
    // Broker dark over [0 s, 6 s): every authReqT relay is dropped, so the
    // attach must ride the UE's retry machinery until the window ends.
    let mut plan = FaultPlan::new();
    plan.unavailable(w.broker_node, SimTime::ZERO, SimDuration::from_secs(6));
    w.driver.set_fault_plan(plan);

    w.ue.start_attach(SimTime::ZERO, TELCO1, AGW1_SIG);
    w.run_to(SECS(5));
    assert!(
        !w.ue.is_attached(),
        "cannot attach while the broker is dark"
    );
    assert!(w.ue.attach_retries >= 1, "retries fired during the outage");
    assert!(w.brokerd.dropped_while_down > 0);

    w.run_to(SECS(30));
    assert!(
        w.ue.is_attached(),
        "attach converged once the broker returned (retries {}, failures {})",
        w.ue.attach_retries,
        w.ue.failures
    );
    // And traffic actually flows on the session born from recovery.
    w.server.mp_listen(5001);
    let conn =
        w.ue.host
            .mp_connect(w.cursor, EndpointAddr::new(SERVER_IP, 5001));
    w.run_to(SECS(32));
    let sc = w.server.take_accepted_mp()[0];
    w.server.mp_set_bulk(w.cursor, sc);
    w.run_to(SECS(36));
    assert!(w.ue.host.mp(conn).data_received() > 100_000);
}

/// Pins the `busy_until`/`pending` ↔ `Unavailable` semantics (ISSUE 8
/// satellite): a request that *arrived* before the outage may have its
/// reply staged inside the window, but nothing leaves the broker until
/// recovery — and the late reply, whose nonce belongs to an attempt the
/// UE has already given up on, must be discarded as stale rather than
/// destroying the in-flight retry.
///
/// The timing is cut deliberately fine. The SAP request reaches the
/// broker at ≈24.5 ms (UE proc 3 + radio 8 + eNB 0.5 + back 2 + AGW
/// proc 2 + core 5 + cloud 4) and the reply is staged for ≈26.5 ms
/// (proc 2 ms); the outage window [25 ms, 3 s) opens between the two.
#[test]
fn reply_staged_before_outage_flushes_at_recovery_as_stale() {
    let mut w = CellBricksWorld::build_chaos(26);
    let mut plan = FaultPlan::new();
    plan.unavailable(
        w.broker_node,
        SimTime::from_millis(25),
        SimDuration::from_millis(2_975),
    );
    w.driver.set_fault_plan(plan);
    w.ue.start_attach(SimTime::ZERO, TELCO1, AGW1_SIG);

    // Precondition for the scenario: the broker authorized the request
    // before going dark, so the reply is sitting in its egress queue.
    w.run_to(SimTime::from_millis(25));
    assert_eq!(w.brokerd.auth_ok, 1, "request processed before outage");
    assert_eq!(
        w.world.link_stats(w.cloud).ba_delivered,
        0,
        "reply not yet on the wire"
    );

    // Deep inside the window: the staged reply must NOT have been
    // emitted (broker→internet stays silent), and the ~2 s retry that
    // landed mid-outage must have been dropped, not queued.
    w.run_to(SimTime::from_millis(2_900));
    assert_eq!(
        w.world.link_stats(w.cloud).ba_delivered,
        0,
        "nothing leaves the broker mid-outage"
    );
    assert!(w.ue.attach_retries >= 1, "retry fired during the window");
    assert!(
        w.brokerd.dropped_while_down >= 1,
        "mid-outage request dropped"
    );

    // Recovery: the stale reply flushes, fails nonce verification
    // against the newer in-flight attempt, and is counted — without
    // killing the pending attach or booking a failure.
    w.run_to(SECS(4));
    assert!(
        w.world.link_stats(w.cloud).ba_delivered >= 1,
        "staged reply flushed at recovery"
    );
    assert_eq!(w.ue.stale_accepts, 1, "late reply discarded as stale");
    assert_eq!(w.ue.failures, 0, "stale reply must not book a failure");

    // The retry machinery, still alive, converges on the next attempt
    // (checked at 7 s, before the idle watchdog re-attaches on its own).
    w.run_to(SECS(7));
    assert!(w.ue.is_attached(), "attach survived the stale reply");
    assert_eq!(w.ue.attaches, 1);
    assert_eq!(w.ue.failures, 0);
    assert_eq!(w.brokerd.auth_ok, 2, "one pre-outage auth, one converging");
}

#[test]
fn mptcp_fails_over_under_scripted_flaps() {
    let (mut w, conn) = chaos_world_with_traffic(25);
    w.run_to(SECS(5));
    let before = w.ue.host.mp(conn).data_received();

    // Radio 1 starts flapping hard; the host gives up on bTelco 1 and
    // hands over to bTelco 2 mid-train (break-before-make, §4.2).
    let mut plan = FaultPlan::new();
    plan.link_flaps(
        w.radio1,
        SECS(5),
        10,
        SimDuration::from_millis(500),
        SimDuration::from_millis(500),
    );
    w.driver.set_fault_plan(plan);
    w.run_to(SECS(6));
    let ho_at = w.cursor;
    w.select_radio(2);
    w.ue.handover(ho_at, common::TELCO2, common::AGW2_SIG);
    w.run_to(SECS(8));
    assert!(w.ue.is_attached(), "attached to bTelco 2");
    assert_eq!(
        w.ue.host.addr().unwrap().octets()[..2],
        [10, 2],
        "bTelco 2's pool"
    );

    // The same MPTCP connection keeps delivering over the new subflow
    // while radio 1 is still flapping.
    w.run_to(SECS(15));
    let after = w.ue.host.mp(conn).data_received();
    assert!(
        after > before + 500_000,
        "connection failed over and kept moving: {before} -> {after}"
    );
}

/// Drive a UE with no network at all: every request is lost, so each
/// retry fires on deadline — the emission times expose the backoff shape.
fn attach_request_times(recovery: RecoveryConfig, max_tries: u32) -> Vec<SimTime> {
    let mut rng = SimRng::new(77);
    let ca = CertificateAuthority::from_seed([0xCA; 32]);
    let broker_keys = BrokerKeys::generate("broker.example", &ca, &mut rng);
    let ue_keys = UeKeys::generate(&mut rng);
    let mut ue = UeDevice::new(
        NodeId(0),
        UeDeviceConfig {
            ue_sig: UE_SIG,
            keys: ue_keys,
            broker_name: "broker.example".to_string(),
            broker_sign_pk: broker_keys.sign.verifying_key(),
            broker_encrypt_pk: broker_keys.encrypt.public_key(),
            broker_ctrl_ip: BROKER_IP,
            proc_delay: SimDuration::ZERO,
            verify_delay: SimDuration::ZERO,
            report_interval: SimDuration::from_secs(5),
            attach_retry_after: SimDuration::from_secs(2),
            attach_max_tries: max_tries,
            recovery,
            plane: None,
        },
        rng.fork(),
    );
    ue.start_attach(SimTime::ZERO, TELCO1, AGW1_SIG);
    let mut times = Vec::new();
    let horizon = SECS(200);
    while let Some(at) = ue.poll_at() {
        if at > horizon {
            break;
        }
        let mut out = Vec::new();
        ue.poll(at, &mut out);
        for pkt in out {
            if let PacketKind::Control(bytes) = &pkt.kind {
                if matches!(
                    NasMessage::decode(bytes),
                    Some(NasMessage::SapAttachRequest { .. })
                ) {
                    times.push(at);
                }
            }
        }
    }
    times
}

#[test]
fn attach_retry_spacing_grows_exponentially_to_cap() {
    let recovery = RecoveryConfig {
        backoff_factor: 2.0,
        backoff_cap: SimDuration::from_secs(16),
        jitter: 0.0,
        reattach_after: None,
    };
    let times = attach_request_times(recovery, 7);
    assert_eq!(times.len(), 7, "all tries issued: {times:?}");
    let gaps: Vec<f64> = times
        .windows(2)
        .map(|p| p[1].since(p[0]).as_secs_f64())
        .collect();
    // base 2 s, doubling, capped at 16 s: 2, 4, 8, 16, 16, 16.
    for (i, pair) in gaps.windows(2).enumerate() {
        assert!(
            pair[1] >= pair[0],
            "spacing must never shrink at step {i}: {gaps:?}"
        );
    }
    assert!(
        (gaps[0] - 2.0).abs() < 1e-9,
        "first gap is the base: {gaps:?}"
    );
    assert!(gaps[1] > gaps[0] * 1.9, "second gap ~doubled: {gaps:?}");
    assert!(gaps[2] > gaps[1] * 1.9, "third gap ~doubled: {gaps:?}");
    assert!((gaps[4] - 16.0).abs() < 1e-9, "capped at 16 s: {gaps:?}");
    assert!((gaps[5] - 16.0).abs() < 1e-9, "stays at the cap: {gaps:?}");
}

#[test]
fn attach_retry_jitter_spreads_but_respects_shape() {
    let recovery = RecoveryConfig {
        backoff_factor: 2.0,
        backoff_cap: SimDuration::from_secs(16),
        jitter: 0.2,
        reattach_after: None,
    };
    let times = attach_request_times(recovery, 6);
    assert_eq!(times.len(), 6);
    let gaps: Vec<f64> = times
        .windows(2)
        .map(|p| p[1].since(p[0]).as_secs_f64())
        .collect();
    // Each gap stays within ±20% of its nominal 2·2^i, and the overall
    // trend still grows: jitter desynchronizes, it does not destroy shape.
    for (i, g) in gaps.iter().enumerate() {
        let nominal = (2.0 * 2f64.powi(i32::try_from(i).unwrap())).min(16.0);
        assert!(
            (*g - nominal).abs() <= nominal * 0.2 + 1e-9,
            "gap {i} = {g} outside ±20% of {nominal}"
        );
    }
    assert!(
        gaps[3] > gaps[0],
        "later gaps dominate earlier ones: {gaps:?}"
    );
}

#[test]
fn detach_during_pending_attach_clears_retry_state() {
    // The satellite bugfix: detaching mid-attach used to leave the retry
    // timer armed, so the UE kept signing fresh SAP requests at a telco it
    // deliberately left.
    let mut rng = SimRng::new(78);
    let ca = CertificateAuthority::from_seed([0xCA; 32]);
    let broker_keys = BrokerKeys::generate("broker.example", &ca, &mut rng);
    let ue_keys = UeKeys::generate(&mut rng);
    let mut ue = UeDevice::new(
        NodeId(0),
        UeDeviceConfig {
            ue_sig: UE_SIG,
            keys: ue_keys,
            broker_name: "broker.example".to_string(),
            broker_sign_pk: broker_keys.sign.verifying_key(),
            broker_encrypt_pk: broker_keys.encrypt.public_key(),
            broker_ctrl_ip: BROKER_IP,
            proc_delay: SimDuration::ZERO,
            verify_delay: SimDuration::ZERO,
            report_interval: SimDuration::from_secs(5),
            attach_retry_after: SimDuration::from_secs(2),
            attach_max_tries: 5,
            recovery: RecoveryConfig::default(),
            plane: None,
        },
        rng.fork(),
    );
    ue.start_attach(SimTime::ZERO, TELCO1, AGW1_SIG);
    // Drain the initial request.
    let mut out = Vec::new();
    ue.poll(SimTime::ZERO, &mut out);
    assert_eq!(out.len(), 1, "initial SAP request issued");

    // Abandon the attach before any answer arrives.
    ue.detach(SimTime::from_millis(500));
    let mut after: Vec<Packet> = Vec::new();
    let mut guard = 0;
    while let Some(at) = ue.poll_at() {
        guard += 1;
        assert!(guard < 10, "no livelock");
        let mut o = Vec::new();
        ue.poll(at, &mut o);
        after.extend(o);
        if at > SECS(60) {
            break;
        }
    }
    let stray_saps = after
        .iter()
        .filter(|p| {
            matches!(&p.kind, PacketKind::Control(b)
                if matches!(NasMessage::decode(b), Some(NasMessage::SapAttachRequest { .. })))
        })
        .count();
    assert_eq!(stray_saps, 0, "no SAP retries after a deliberate detach");
    assert_eq!(ue.attach_retries, 0);
}

#[test]
fn telco_crash_reattach_resets_cc_state() {
    // Regression for the CC-reset fix: a bTelco crash+restart wipes the
    // IpPool, so the watchdog re-attach leases the SAME first address
    // again and an established plain-TCP connection stays addressable —
    // but its CUBIC epoch/w_max describe the pre-crash path. The host
    // must reset per-connection CC state through the trait on re-attach.
    let mut w = CellBricksWorld::build_chaos(26);
    w.ue.start_attach(SimTime::ZERO, TELCO1, AGW1_SIG);
    w.run_to(SECS(1));
    assert!(w.ue.is_attached());
    let addr = w.ue.host.addr().unwrap();

    // Bulk upload FROM the UE so the UE-side sender CC is under test.
    w.server.tcp_listen(5002);
    let c =
        w.ue.host
            .tcp_connect(w.cursor, EndpointAddr::new(SERVER_IP, 5002));
    w.run_to(SECS(2));
    assert_eq!(w.server.take_accepted_tcp().len(), 1, "upload accepted");
    w.ue.host.tcp_set_bulk(w.cursor, c);
    w.run_to(SECS(8));

    // By now the radio queue has bitten (Hystart exit or loss), so the
    // sender carries learned path state: a finite ssthresh.
    let ssthresh_before = w.ue.host.tcp(c).debug_cc().3;
    assert!(
        ssthresh_before.is_finite(),
        "sender learned the path before the crash: {ssthresh_before}"
    );

    // bTelco 1 crashes at 8 s, restarts 1 s later, volatile state gone.
    let mut plan = FaultPlan::new();
    plan.crash_restart(w.agw1_node, SECS(8), SimDuration::from_secs(1));
    w.driver.set_fault_plan(plan);

    // Step in 100 ms increments until the watchdog re-attaches with the
    // same address, then inspect CC state right at the re-attach edge —
    // before post-recovery acks or timers can move it again.
    let mut t = SECS(9);
    loop {
        w.run_to(t);
        if w.ue.watchdog_reattaches >= 1 && w.ue.is_attached() && w.ue.host.addr() == Some(addr) {
            break;
        }
        assert!(t < SECS(40), "re-attach converged within the horizon");
        t += SimDuration::from_millis(100);
    }
    let (cwnd, ssthresh_after) = {
        let tcp = w.ue.host.tcp(c);
        (tcp.cwnd(), tcp.debug_cc().3)
    };
    assert!(
        ssthresh_after.is_infinite(),
        "re-attach reset CC: no w_max/ssthresh leak ({ssthresh_after})"
    );
    assert!(cwnd >= 14_600, "cwnd back at the initial window: {cwnd}");

    // And the reset connection actually resumes moving data.
    let una_mid = w.ue.host.tcp(c).debug_seq().0;
    w.run_to(t + SimDuration::from_secs(10));
    let una_after = w.ue.host.tcp(c).debug_seq().0;
    assert!(
        una_after > una_mid + 200_000,
        "upload resumed after the reset: {una_mid} -> {una_after}"
    );
}

/// One composite chaos run; returns every world-local metric worth
/// comparing, floats captured bit-exactly.
fn composite_chaos_fingerprint(seed: u64) -> Vec<u64> {
    let (mut w, conn) = chaos_world_with_traffic(seed);
    let mut plan = FaultPlan::new();
    plan.link_flaps(
        w.radio1,
        SECS(4),
        2,
        SimDuration::from_millis(300),
        SimDuration::from_millis(700),
    );
    plan.burst_loss_window(w.radio1, SECS(7), SECS(9), BurstLoss::flaky_cell());
    plan.crash_restart(w.agw1_node, SECS(10), SimDuration::from_secs(1));
    plan.unavailable(w.broker_node, SECS(12), SimDuration::from_secs(2));
    w.driver.set_fault_plan(plan);
    w.run_to(SECS(30));

    let r1 = w.world.link_stats(w.radio1);
    vec![
        w.ue.attaches,
        w.ue.failures,
        w.ue.attach_retries,
        w.ue.watchdog_reattaches,
        w.ue.host.mp(conn).data_received(),
        w.telco1.crashes,
        w.telco1.dropped_while_down,
        w.telco1.attach_count,
        w.telco1.no_bearer_drops,
        w.brokerd.dropped_while_down,
        w.brokerd.auth_ok,
        w.brokerd.cycles_checked,
        r1.ab_delivered,
        r1.ab_dropped,
        r1.ba_delivered,
        r1.ba_dropped,
        w.ue.attach_latency_ms.mean().to_bits(),
        w.ue.attach_latency_ms.max().to_bits(),
    ]
}

#[test]
fn composite_chaos_replays_bit_identically() {
    let a = composite_chaos_fingerprint(42);
    let b = composite_chaos_fingerprint(42);
    assert_eq!(a, b, "same seed, same faults, same world — bit for bit");
    // And the run exercised real faults, not a quiet world.
    assert!(a[0] >= 2, "re-attached at least once: {a:?}");
    let c = composite_chaos_fingerprint(43);
    assert_ne!(a, c, "a different seed takes a different trajectory");
}
