//! Broker-plane integration: K consistent-hash shards, each a
//! primary/standby `Brokerd` pair over a shared store, driven through
//! the real network with real SAP crypto (ISSUE 8 tentpole).
//!
//! Covered here:
//! - latency-aware selection: with both replicas reachable, every auth
//!   lands on the (lower-RTT) primary of the UE's home shard;
//! - deterministic failover: a shard primary killed mid-attach-burst
//!   costs retries, never failures — the retry quarantines the dark
//!   replica and re-resolves on the standby, whose shared store already
//!   holds the subscriber and nonce state;
//! - leak hygiene at plane scale: attach/detach churn holds the live
//!   session count at a steady state bounded by the retention window,
//!   not by run length (the satellite-2 fix, exercised through the
//!   plane rather than a single broker).

use cellbricks::core::broker_plane::{BrokerPlane, BrokerPlaneConfig, ReplicaSite};
use cellbricks::core::btelco::{BTelcoGateway, BTelcoGatewayConfig};
use cellbricks::core::principal::{BrokerKeys, TelcoKeys, UeKeys};
use cellbricks::core::sap::QosCap;
use cellbricks::core::ue::{RecoveryConfig, UeDevice, UeDeviceConfig};
use cellbricks::crypto::cert::CertificateAuthority;
use cellbricks::epc::enb::Enb;
use cellbricks::net::{
    Driver, Endpoint, FaultPlan, LinkConfig, NetWorld, NodeId, Router, Topology,
};
use cellbricks::sim::{SimDuration, SimRng, SimTime};
use std::net::Ipv4Addr;

const AGW_SIG: Ipv4Addr = Ipv4Addr::new(172, 16, 1, 1);
const TELCO: &str = "tower-1.example";

struct PlaneWorld {
    world: NetWorld,
    enb: Enb,
    telco: BTelcoGateway,
    internet: Router,
    plane: BrokerPlane,
    ues: Vec<UeDevice>,
    /// Home shard of each UE, per the ring.
    home: Vec<usize>,
    driver: Driver,
    cursor: SimTime,
    primary_nodes: Vec<NodeId>,
}

/// N UEs — one eNB/AGW — internet — K shards × {primary, standby}.
/// Primaries sit behind a 2 ms cloud link, standbys behind 5 ms, so
/// lowest-RTT selection has a right answer.
fn build(n: usize, k: usize, seed: u64, retention: SimDuration) -> PlaneWorld {
    let mut rng = SimRng::new(seed);
    let ca = CertificateAuthority::from_seed([0xCA; 32]);
    let broker_keys = BrokerKeys::generate("broker.example", &ca, &mut rng);
    let telco_keys = TelcoKeys::generate(TELCO, &ca, &mut rng);
    let ms = SimDuration::from_millis;

    let mut t = Topology::new();
    let enb_node = t.add_node("enb");
    let agw_node = t.add_node("agw");
    let inet_node = t.add_node("inet");
    let back = t.add_symmetric_link(enb_node, agw_node, LinkConfig::delay_only(ms(1)));
    let core = t.add_symmetric_link(agw_node, inet_node, LinkConfig::delay_only(ms(2)));
    t.add_default_route(enb_node, back);
    t.add_default_route(agw_node, core);
    t.add_route(inet_node, AGW_SIG, 32, core);

    let mut sites = Vec::new();
    let mut primary_nodes = Vec::new();
    for s in 0..k {
        let mut mk = |tag: &str, ip_last: u8, latency| {
            let node = t.add_node(&format!("b{s}{tag}"));
            let ip = Ipv4Addr::new(172, 16, 10 + s as u8, ip_last);
            let link = t.add_symmetric_link(inet_node, node, LinkConfig::delay_only(latency));
            t.add_route(inet_node, ip, 32, link);
            t.add_default_route(node, link);
            ReplicaSite { node, ip }
        };
        let primary = mk("a", 1, ms(2));
        let standby = mk("b", 2, ms(5));
        primary_nodes.push(primary.node);
        sites.push((primary, standby));
    }

    let mut plane = BrokerPlane::build(
        BrokerPlaneConfig {
            base_name: "broker.example".to_string(),
            keys: broker_keys.clone(),
            ca: ca.public_key(),
            proc_delay: ms(2),
            epsilon: 0.05,
            session_retention: retention,
            vnodes: 64,
            replica_penalty: SimDuration::from_secs(30),
        },
        &sites,
        &mut rng,
    );

    let telco = BTelcoGateway::new(
        agw_node,
        BTelcoGatewayConfig {
            sig_ip: AGW_SIG,
            pool_base: Ipv4Addr::new(10, 1, 0, 0),
            keys: telco_keys,
            ca: ca.public_key(),
            brokers: plane.directory(),
            qos_cap: QosCap {
                max_mbr_bps: 100_000_000,
                qci_supported: vec![9],
                li_capable: true,
            },
            proc_delay: SimDuration::from_micros(500),
            report_interval: SimDuration::from_secs(3_600),
            overcount_factor: 1.0,
        },
        rng.fork(),
    );
    let enb = Enb::new(enb_node, SimDuration::from_micros(100));

    let mut ues = Vec::with_capacity(n);
    let mut home = Vec::with_capacity(n);
    for i in 0..n {
        let ue_sig = Ipv4Addr::new(169, 254, 1, i as u8 + 1);
        let ue_node = t.add_node(&format!("ue{i}"));
        let radio = t.add_symmetric_link(ue_node, enb_node, LinkConfig::delay_only(ms(4)));
        t.add_default_route(ue_node, radio);
        t.add_route(enb_node, ue_sig, 32, radio);
        t.add_route(agw_node, ue_sig, 32, back);

        let keys = UeKeys::generate(&mut rng);
        let id = keys.identity();
        let (sign_pk, encrypt_pk) = keys.public();
        home.push(plane.provision(id, sign_pk, encrypt_pk, 50_000_000));
        let ue_plane = plane.ue_plane(&id, |node| {
            t.path_latency(ue_node, node).expect("replica reachable")
        });
        let fallback_ip = ue_plane.replicas[0].ctrl_ip;
        ues.push(UeDevice::new(
            ue_node,
            UeDeviceConfig {
                ue_sig,
                keys,
                broker_name: "broker.example".to_string(),
                broker_sign_pk: broker_keys.sign.verifying_key(),
                broker_encrypt_pk: broker_keys.encrypt.public_key(),
                broker_ctrl_ip: fallback_ip,
                proc_delay: SimDuration::from_millis(1),
                verify_delay: SimDuration::from_millis(1),
                report_interval: SimDuration::from_secs(3_600),
                attach_retry_after: SimDuration::from_secs(2),
                attach_max_tries: 5,
                recovery: RecoveryConfig::default(),
                plane: Some(ue_plane),
            },
            rng.fork(),
        ));
    }

    PlaneWorld {
        world: NetWorld::new(t, rng.fork()),
        enb,
        telco,
        internet: Router::new(inet_node, SimDuration::ZERO),
        plane,
        ues,
        home,
        driver: Driver::new(),
        cursor: SimTime::ZERO,
        primary_nodes,
    }
}

impl PlaneWorld {
    fn run_to(&mut self, until: SimTime) {
        let mut endpoints: Vec<&mut dyn Endpoint> = Vec::new();
        endpoints.push(&mut self.enb);
        endpoints.push(&mut self.telco);
        endpoints.push(&mut self.internet);
        for b in self.plane.endpoints_mut() {
            endpoints.push(b);
        }
        for ue in &mut self.ues {
            endpoints.push(ue);
        }
        self.driver.run_to(&mut self.world, &mut endpoints, until);
        self.cursor = until;
    }

    fn attach_all(&mut self) {
        for ue in &mut self.ues {
            ue.start_attach(SimTime::ZERO, TELCO, AGW_SIG);
        }
    }

    fn attached(&self) -> usize {
        self.ues.iter().filter(|u| u.is_attached()).count()
    }

    fn failures(&self) -> u64 {
        self.ues.iter().map(|u| u.failures).sum()
    }
}

#[test]
fn burst_lands_on_lowest_rtt_primaries_only() {
    let mut w = build(12, 2, 42, SimDuration::from_secs(86_400));
    // The ring must actually spread this population over both shards —
    // otherwise the test proves less than it claims.
    assert!(
        (0..2).all(|s| w.home.contains(&s)),
        "seed routes UEs to both shards: {:?}",
        w.home
    );
    w.attach_all();
    w.run_to(SimTime::from_secs(5));
    assert_eq!(w.attached(), 12, "whole burst attached");
    assert_eq!(w.failures(), 0);
    for (s, shard) in w.plane.shards.iter().enumerate() {
        let homed = w.home.iter().filter(|&&h| h == s).count() as u64;
        assert_eq!(
            shard.primary.auth_ok, homed,
            "shard {s} primary authorized exactly its homed UEs"
        );
        assert_eq!(
            shard.standby.auth_ok, 0,
            "standby idle while the primary answers"
        );
        // Sharding is real: each shard's store only ever saw its own keys.
        assert_eq!(shard.primary.subscriber_count(), homed as usize);
    }
}

#[test]
fn mid_burst_primary_kill_fails_over_with_zero_failed_attaches() {
    let mut w = build(12, 2, 42, SimDuration::from_secs(86_400));
    let victim_shard = 0usize;
    let victims = w.home.iter().filter(|&&h| h == victim_shard).count();
    assert!(victims >= 1, "shard 0 serves someone: {:?}", w.home);

    // The shard-0 primary goes dark 5 ms into the burst — after the
    // requests are in flight, before any reply is out — and stays dark
    // past every retry, so only standby failover can finish the burst.
    let mut plan = FaultPlan::new();
    plan.unavailable(
        w.primary_nodes[victim_shard],
        SimTime::from_millis(5),
        SimDuration::from_secs(60),
    );
    w.driver.set_fault_plan(plan);
    w.attach_all();
    w.run_to(SimTime::from_secs(20));

    assert_eq!(w.attached(), 12, "burst completed through the kill");
    assert_eq!(w.failures(), 0, "failover must not cost a failed attach");
    let shard0 = &w.plane.shards[victim_shard];
    assert_eq!(
        shard0.standby.auth_ok as usize, victims,
        "every shard-0 UE re-resolved on the standby"
    );
    assert!(
        w.ues
            .iter()
            .zip(&w.home)
            .filter(|&(_, &h)| h == victim_shard)
            .all(|(u, _)| u.attach_retries >= 1),
        "failover rode the retry timer"
    );
    // The other shard never noticed.
    let shard1 = &w.plane.shards[1];
    assert_eq!(shard1.standby.auth_ok, 0);
    assert_eq!(shard1.primary.auth_ok as usize, 12 - victims);
}

#[test]
fn reattach_churn_holds_sessions_at_steady_state() {
    // 5 s retention against 60 s of detach/re-attach churn: the live
    // session count must track the retention window, not total churn.
    let mut w = build(8, 2, 42, SimDuration::from_secs(5));
    w.attach_all();
    w.run_to(SimTime::from_secs(2));
    assert_eq!(w.attached(), 8);

    let mut created = 8u64;
    for cycle in 1..=15u64 {
        let at = SimTime::from_secs(2 + cycle * 4);
        for ue in &mut w.ues {
            ue.detach(at);
            ue.start_attach(at, TELCO, AGW_SIG);
        }
        created += 8;
        w.run_to(SimTime::from_secs(2 + cycle * 4 + 2));
        assert_eq!(w.attached(), 8, "cycle {cycle} re-attached");
    }

    let live = w.plane.sessions_live();
    let reclaimed: u64 = w
        .plane
        .shards
        .iter()
        .map(|s| s.primary.sessions_reclaimed())
        .sum();
    assert!(
        live <= 3 * 8,
        "live sessions bounded by the retention window, got {live} of {created} created"
    );
    assert_eq!(
        reclaimed + live as u64,
        created,
        "every settled session is either live-in-window or reclaimed"
    );
}
