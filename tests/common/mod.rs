//! A complete two-bTelco CellBricks world for integration tests and the
//! flagship example: UE — {eNB₁—AGW₁, eNB₂—AGW₂} — internet — {broker,
//! server}. Every control message and data packet crosses the simulated
//! network; all SAP cryptography is real.

use cellbricks::core::brokerd::{Brokerd, BrokerdConfig};
use cellbricks::core::btelco::{BTelcoGateway, BTelcoGatewayConfig, BrokerContact};
use cellbricks::core::principal::{BrokerKeys, TelcoKeys, UeKeys};
use cellbricks::core::sap::QosCap;
use cellbricks::core::ue::{RecoveryConfig, UeDevice, UeDeviceConfig};
use cellbricks::crypto::cert::CertificateAuthority;
use cellbricks::epc::enb::Enb;
use cellbricks::net::{Driver, Endpoint, LinkConfig, LinkId, NetWorld, NodeId, Router, Topology};
use cellbricks::sim::{SimDuration, SimRng, SimTime};
use cellbricks::transport::Host;
use std::collections::HashMap;
use std::net::Ipv4Addr;

pub const UE_SIG: Ipv4Addr = Ipv4Addr::new(169, 254, 0, 1);
pub const AGW1_SIG: Ipv4Addr = Ipv4Addr::new(172, 16, 1, 1);
pub const AGW2_SIG: Ipv4Addr = Ipv4Addr::new(172, 16, 2, 1);
pub const BROKER_IP: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 1);
pub const SERVER_IP: Ipv4Addr = Ipv4Addr::new(52, 9, 1, 1);

pub const TELCO1: &str = "tower-1.example";
pub const TELCO2: &str = "tower-2.example";
pub const BROKER: &str = "broker.example";

// Different test binaries use different subsets of the harness.
#[allow(dead_code)]
pub struct CellBricksWorld {
    pub world: NetWorld,
    pub ue: UeDevice,
    pub ue_identity: cellbricks::core::principal::Identity,
    pub enb1: Enb,
    pub enb2: Enb,
    pub telco1: BTelcoGateway,
    pub telco2: BTelcoGateway,
    pub brokerd: Brokerd,
    pub internet: Router,
    pub server: Host,
    pub radio1: LinkId,
    pub radio2: LinkId,
    pub cloud: LinkId,
    pub ue_node: NodeId,
    pub agw1_node: NodeId,
    pub agw2_node: NodeId,
    pub broker_node: NodeId,
    pub cursor: SimTime,
    pub driver: Driver,
}

impl CellBricksWorld {
    pub fn build(seed: u64) -> CellBricksWorld {
        Self::build_with_plan(seed, 50_000_000)
    }

    /// A world tuned for chaos testing: the UE recovers on its own —
    /// jittered capped exponential backoff on attach retries, more
    /// retries, and the inactivity watchdog armed so a crashed bTelco is
    /// detected and re-attached without harness help.
    #[allow(dead_code)]
    pub fn build_chaos(seed: u64) -> CellBricksWorld {
        let mut w = Self::build(seed);
        w.ue.set_recovery(RecoveryConfig {
            backoff_factor: 2.0,
            backoff_cap: SimDuration::from_secs(8),
            jitter: 0.1,
            reattach_after: Some(SimDuration::from_secs(2)),
        });
        w
    }

    /// Build with a specific subscriber plan MBR (bits/s).
    pub fn build_with_plan(seed: u64, plan_mbr_bps: u64) -> CellBricksWorld {
        let mut rng = SimRng::new(seed);
        let ca = CertificateAuthority::from_seed([0xCA; 32]);
        let broker_keys = BrokerKeys::generate(BROKER, &ca, &mut rng);
        let telco1_keys = TelcoKeys::generate(TELCO1, &ca, &mut rng);
        let telco2_keys = TelcoKeys::generate(TELCO2, &ca, &mut rng);
        let ue_keys = UeKeys::generate(&mut rng);

        let mut t = Topology::new();
        let ue_node = t.add_node("ue");
        let enb1_node = t.add_node("enb1");
        let enb2_node = t.add_node("enb2");
        let agw1_node = t.add_node("agw1");
        let agw2_node = t.add_node("agw2");
        let inet_node = t.add_node("internet");
        let broker_node = t.add_node("broker");
        let server_node = t.add_node("server");

        let ms = SimDuration::from_millis;
        // Radios: 100 Mbps LTE-like cells.
        let radio_cfg = LinkConfig::fixed_rate(ms(8), 30.0e6, ms(150));
        let radio1 = t.add_symmetric_link(ue_node, enb1_node, radio_cfg.clone());
        let radio2 = t.add_symmetric_link(ue_node, enb2_node, radio_cfg);
        let back1 = t.add_symmetric_link(enb1_node, agw1_node, LinkConfig::delay_only(ms(2)));
        let back2 = t.add_symmetric_link(enb2_node, agw2_node, LinkConfig::delay_only(ms(2)));
        let core1 = t.add_symmetric_link(agw1_node, inet_node, LinkConfig::delay_only(ms(5)));
        let core2 = t.add_symmetric_link(agw2_node, inet_node, LinkConfig::delay_only(ms(5)));
        let cloud = t.add_symmetric_link(inet_node, broker_node, LinkConfig::delay_only(ms(4)));
        let edge = t.add_symmetric_link(inet_node, server_node, LinkConfig::delay_only(ms(3)));

        // UE: default via the first radio (switched on handover).
        t.add_default_route(ue_node, radio1);
        // eNBs relay between the UE and their AGW.
        t.add_route(enb1_node, UE_SIG, 32, radio1);
        t.add_route(enb1_node, Ipv4Addr::new(10, 1, 0, 0), 16, radio1);
        t.add_default_route(enb1_node, back1);
        t.add_route(enb2_node, UE_SIG, 32, radio2);
        t.add_route(enb2_node, Ipv4Addr::new(10, 2, 0, 0), 16, radio2);
        t.add_default_route(enb2_node, back2);
        // AGWs: UE-facing prefixes toward their eNB, everything else up.
        t.add_route(agw1_node, UE_SIG, 32, back1);
        t.add_route(agw1_node, Ipv4Addr::new(10, 1, 0, 0), 16, back1);
        t.add_default_route(agw1_node, core1);
        t.add_route(agw2_node, UE_SIG, 32, back2);
        t.add_route(agw2_node, Ipv4Addr::new(10, 2, 0, 0), 16, back2);
        t.add_default_route(agw2_node, core2);
        // Internet: route by bTelco pool / service addresses.
        t.add_route(inet_node, Ipv4Addr::new(10, 1, 0, 0), 16, core1);
        t.add_route(inet_node, Ipv4Addr::new(10, 2, 0, 0), 16, core2);
        t.add_route(inet_node, AGW1_SIG, 32, core1);
        t.add_route(inet_node, AGW2_SIG, 32, core2);
        t.add_route(inet_node, BROKER_IP, 32, cloud);
        t.add_route(inet_node, SERVER_IP, 32, edge);
        t.add_default_route(broker_node, cloud);
        t.add_default_route(server_node, edge);

        let world = NetWorld::new(t, rng.fork());

        let mut brokerd = Brokerd::new(
            broker_node,
            BrokerdConfig {
                ip: BROKER_IP,
                keys: broker_keys.clone(),
                ca: ca.public_key(),
                proc_delay: SimDuration::from_millis(2),
                // Paper §4.3: ε is "derived from the acceptable link loss
                // rate". The PGW meters bytes *before* the radio link, so
                // slow-start overshoot dropped at the radio queue shows up
                // as UE-vs-bTelco discrepancy; 5% covers it.
                epsilon: 0.05,
                session_retention: SimDuration::from_secs(86_400),
            },
            rng.fork(),
        );
        let (sign_pk, encrypt_pk) = ue_keys.public();
        brokerd.provision(ue_keys.identity(), sign_pk, encrypt_pk, plan_mbr_bps);

        let mut brokers = HashMap::new();
        brokers.insert(
            BROKER.to_string(),
            BrokerContact {
                ctrl_ip: BROKER_IP,
                encrypt_pk: broker_keys.encrypt.public_key(),
            },
        );
        let telco_cfg = |sig_ip, pool, keys| BTelcoGatewayConfig {
            sig_ip,
            pool_base: pool,
            keys,
            ca: ca.public_key(),
            brokers: brokers.clone(),
            qos_cap: QosCap {
                max_mbr_bps: 100_000_000,
                qci_supported: vec![9],
                li_capable: true,
            },
            proc_delay: SimDuration::from_millis(2),
            report_interval: SimDuration::from_secs(5),
            overcount_factor: 1.0,
        };
        let telco1 = BTelcoGateway::new(
            agw1_node,
            telco_cfg(AGW1_SIG, Ipv4Addr::new(10, 1, 0, 0), telco1_keys),
            rng.fork(),
        );
        let telco2 = BTelcoGateway::new(
            agw2_node,
            telco_cfg(AGW2_SIG, Ipv4Addr::new(10, 2, 0, 0), telco2_keys),
            rng.fork(),
        );

        let ue_identity = ue_keys.identity();
        let ue = UeDevice::new(
            ue_node,
            UeDeviceConfig {
                ue_sig: UE_SIG,
                keys: ue_keys,
                broker_name: BROKER.to_string(),
                broker_sign_pk: broker_keys.sign.verifying_key(),
                broker_encrypt_pk: broker_keys.encrypt.public_key(),
                broker_ctrl_ip: BROKER_IP,
                proc_delay: SimDuration::from_millis(3),
                verify_delay: SimDuration::from_millis(2),
                report_interval: SimDuration::from_secs(5),
                attach_retry_after: SimDuration::from_secs(2),
                attach_max_tries: 3,
                recovery: RecoveryConfig::default(),
                plane: None,
            },
            rng.fork(),
        );

        CellBricksWorld {
            world,
            ue,
            ue_identity,
            enb1: Enb::new(enb1_node, SimDuration::from_micros(500)),
            enb2: Enb::new(enb2_node, SimDuration::from_micros(500)),
            telco1,
            telco2,
            brokerd,
            internet: Router::new(inet_node, SimDuration::ZERO),
            server: Host::new(server_node, Some(SERVER_IP)),
            radio1,
            radio2,
            cloud,
            ue_node,
            agw1_node,
            agw2_node,
            broker_node,
            cursor: SimTime::ZERO,
            driver: Driver::new(),
        }
    }

    /// Advance the whole world to `until`.
    #[allow(dead_code)]
    pub fn run_to(&mut self, until: SimTime) {
        struct ServerEp<'a>(&'a mut Host);
        impl Endpoint for ServerEp<'_> {
            fn node(&self) -> NodeId {
                self.0.node()
            }
            fn handle_packet(
                &mut self,
                now: SimTime,
                pkt: cellbricks::net::Packet,
                out: &mut Vec<cellbricks::net::Packet>,
            ) {
                self.0.handle_packet(now, pkt);
                self.0.drain_out(out);
            }
            fn poll_at(&self) -> Option<SimTime> {
                self.0.poll_at()
            }
            fn poll(&mut self, now: SimTime, out: &mut Vec<cellbricks::net::Packet>) {
                self.0.poll(now);
                self.0.drain_out(out);
            }
        }
        let mut server = ServerEp(&mut self.server);
        self.driver.run_to(
            &mut self.world,
            &mut [
                &mut self.ue,
                &mut self.enb1,
                &mut self.enb2,
                &mut self.telco1,
                &mut self.telco2,
                &mut self.brokerd,
                &mut self.internet,
                &mut server,
            ],
            until,
        );
        self.cursor = until;
    }

    /// The provisioned subscriber's identity.
    #[allow(dead_code)]
    pub fn ue_identity(&self) -> cellbricks::core::principal::Identity {
        self.ue_identity
    }

    /// Point the UE's radio at bTelco 1 or 2 (cell selection outcome).
    #[allow(dead_code)]
    pub fn select_radio(&mut self, telco: u8) {
        let link = if telco == 1 { self.radio1 } else { self.radio2 };
        self.world
            .topology_mut()
            .replace_default_route(self.ue_node, link);
    }
}
