//! Deployment-model integration tests for the paper's §3 claims:
//!
//! * **Multi-tenancy** — "a single bTelco cell site can support multiple
//!   brokers": two UEs subscribed to *different* brokers attach through
//!   the same bTelco; authorizations and billing stay isolated.
//! * **Incremental deployment** — "UEs run both legacy and SAP
//!   authentication protocols in a dual-stack mode": one device attaches
//!   to a legacy MNO with EPS-AKA, then to a CellBricks bTelco with SAP,
//!   in the same world, with no change to the legacy side.

use cellbricks::core::brokerd::{Brokerd, BrokerdConfig};
use cellbricks::core::btelco::{BTelcoGateway, BTelcoGatewayConfig, BrokerContact};
use cellbricks::core::principal::{BrokerKeys, TelcoKeys, UeKeys};
use cellbricks::core::sap::QosCap;
use cellbricks::core::ue::{UeDevice, UeDeviceConfig};
use cellbricks::crypto::cert::CertificateAuthority;
use cellbricks::epc::agw::{Agw, AgwConfig};
use cellbricks::epc::aka::SharedKey;
use cellbricks::epc::enb::Enb;
use cellbricks::epc::subscriber_db::SubscriberDb;
use cellbricks::epc::ue_nas::{UeNas, UeNasConfig};
use cellbricks::net::{Driver, Endpoint, LinkConfig, NetWorld, NodeId, Packet, Topology};
use cellbricks::sim::{SimDuration, SimRng, SimTime};
use std::collections::HashMap;
use std::net::Ipv4Addr;

const AGW_SIG: Ipv4Addr = Ipv4Addr::new(172, 16, 1, 1);

fn qos() -> QosCap {
    QosCap {
        max_mbr_bps: 100_000_000,
        qci_supported: vec![9],
        li_capable: true,
    }
}

#[test]
fn one_btelco_serves_two_brokers() {
    let mut rng = SimRng::new(21);
    let ca = CertificateAuthority::from_seed([0xCA; 32]);
    let broker_a_keys = BrokerKeys::generate("broker-a.example", &ca, &mut rng);
    let broker_b_keys = BrokerKeys::generate("broker-b.example", &ca, &mut rng);
    let telco_keys = TelcoKeys::generate("tower-1.example", &ca, &mut rng);
    let ue1_keys = UeKeys::generate(&mut rng);
    let ue2_keys = UeKeys::generate(&mut rng);

    const BROKER_A_IP: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 1);
    const BROKER_B_IP: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 2);
    const UE1_SIG: Ipv4Addr = Ipv4Addr::new(169, 254, 0, 1);
    const UE2_SIG: Ipv4Addr = Ipv4Addr::new(169, 254, 0, 2);

    let mut t = Topology::new();
    let ue1_node = t.add_node("ue1");
    let ue2_node = t.add_node("ue2");
    let enb_node = t.add_node("enb");
    let agw_node = t.add_node("agw");
    let cloud_a = t.add_node("broker-a");
    let cloud_b = t.add_node("broker-b");
    let ms = SimDuration::from_millis;
    let r1 = t.add_symmetric_link(ue1_node, enb_node, LinkConfig::delay_only(ms(5)));
    let r2 = t.add_symmetric_link(ue2_node, enb_node, LinkConfig::delay_only(ms(5)));
    let back = t.add_symmetric_link(enb_node, agw_node, LinkConfig::delay_only(ms(1)));
    let ca_link = t.add_symmetric_link(agw_node, cloud_a, LinkConfig::delay_only(ms(3)));
    let cb_link = t.add_symmetric_link(agw_node, cloud_b, LinkConfig::delay_only(ms(3)));
    t.add_default_route(ue1_node, r1);
    t.add_default_route(ue2_node, r2);
    t.add_route(enb_node, UE1_SIG, 32, r1);
    t.add_route(enb_node, UE2_SIG, 32, r2);
    t.add_default_route(enb_node, back);
    t.add_route(agw_node, UE1_SIG, 32, back);
    t.add_route(agw_node, UE2_SIG, 32, back);
    t.add_route(agw_node, BROKER_A_IP, 32, ca_link);
    t.add_route(agw_node, BROKER_B_IP, 32, cb_link);
    t.add_default_route(cloud_a, ca_link);
    t.add_default_route(cloud_b, cb_link);

    let mk_broker = |node, ip, keys: &BrokerKeys, rng: &mut SimRng| {
        Brokerd::new(
            node,
            BrokerdConfig {
                ip,
                keys: keys.clone(),
                ca: ca.public_key(),
                proc_delay: ms(2),
                epsilon: 0.05,
                session_retention: SimDuration::from_secs(86_400),
            },
            rng.fork(),
        )
    };
    let mut broker_a = mk_broker(cloud_a, BROKER_A_IP, &broker_a_keys, &mut rng);
    let mut broker_b = mk_broker(cloud_b, BROKER_B_IP, &broker_b_keys, &mut rng);
    let (s1, e1) = ue1_keys.public();
    broker_a.provision(ue1_keys.identity(), s1, e1, 50_000_000);
    let (s2, e2) = ue2_keys.public();
    broker_b.provision(ue2_keys.identity(), s2, e2, 50_000_000);

    // The bTelco knows how to reach BOTH brokers — that is the entire
    // "integration" a multi-tenant bTelco needs.
    let mut brokers = HashMap::new();
    brokers.insert(
        "broker-a.example".to_string(),
        BrokerContact {
            ctrl_ip: BROKER_A_IP,
            encrypt_pk: broker_a_keys.encrypt.public_key(),
        },
    );
    brokers.insert(
        "broker-b.example".to_string(),
        BrokerContact {
            ctrl_ip: BROKER_B_IP,
            encrypt_pk: broker_b_keys.encrypt.public_key(),
        },
    );
    let mut telco = BTelcoGateway::new(
        agw_node,
        BTelcoGatewayConfig {
            sig_ip: AGW_SIG,
            pool_base: Ipv4Addr::new(10, 1, 0, 0),
            keys: telco_keys,
            ca: ca.public_key(),
            brokers,
            qos_cap: qos(),
            proc_delay: ms(1),
            report_interval: SimDuration::from_secs(3_600),
            overcount_factor: 1.0,
        },
        rng.fork(),
    );
    let mut enb = Enb::new(enb_node, SimDuration::from_micros(500));
    let mk_ue =
        |node, sig, keys: UeKeys, bname: &str, bkeys: &BrokerKeys, bip, rng: &mut SimRng| {
            UeDevice::new(
                node,
                UeDeviceConfig {
                    ue_sig: sig,
                    keys,
                    broker_name: bname.to_string(),
                    broker_sign_pk: bkeys.sign.verifying_key(),
                    broker_encrypt_pk: bkeys.encrypt.public_key(),
                    broker_ctrl_ip: bip,
                    proc_delay: ms(1),
                    verify_delay: ms(1),
                    report_interval: SimDuration::from_secs(3_600),
                    attach_retry_after: SimDuration::from_secs(2),
                    attach_max_tries: 3,
                    recovery: cellbricks::core::ue::RecoveryConfig::default(),
                    plane: None,
                },
                rng.fork(),
            )
        };
    let mut ue1 = mk_ue(
        ue1_node,
        UE1_SIG,
        ue1_keys,
        "broker-a.example",
        &broker_a_keys,
        BROKER_A_IP,
        &mut rng,
    );
    let mut ue2 = mk_ue(
        ue2_node,
        UE2_SIG,
        ue2_keys,
        "broker-b.example",
        &broker_b_keys,
        BROKER_B_IP,
        &mut rng,
    );

    let mut world = NetWorld::new(t, rng.fork());
    ue1.start_attach(SimTime::ZERO, "tower-1.example", AGW_SIG);
    ue2.start_attach(SimTime::ZERO, "tower-1.example", AGW_SIG);
    Driver::new().run_to(
        &mut world,
        &mut [
            &mut ue1,
            &mut ue2,
            &mut enb,
            &mut telco,
            &mut broker_a,
            &mut broker_b,
        ],
        SimTime::from_secs(2),
    );

    // Both users attached through the same tower, each authorized by
    // their own broker; the bTelco holds two isolated bearers.
    assert!(ue1.is_attached());
    assert!(ue2.is_attached());
    assert_eq!(telco.attach_count, 2);
    assert_eq!(broker_a.auth_ok, 1);
    assert_eq!(broker_b.auth_ok, 1);
    assert_eq!(telco.bearers.len(), 2);
    assert_ne!(ue1.host.addr(), ue2.host.addr());
}

/// A dual-stack device: the legacy NAS client and the CellBricks SAP
/// client sharing one node (paper §3.1's incremental-deployment mode).
struct DualStackUe {
    nas: UeNas,
    sap: UeDevice,
}

impl Endpoint for DualStackUe {
    fn node(&self) -> NodeId {
        self.nas.node()
    }
    fn handle_packet(&mut self, now: SimTime, pkt: Packet, out: &mut Vec<Packet>) {
        // Both stacks see every packet; each ignores what isn't for it.
        self.nas.handle_packet(now, pkt.clone(), out);
        self.sap.handle_packet(now, pkt, out);
    }
    fn poll_at(&self) -> Option<SimTime> {
        match (self.nas.poll_at(), self.sap.poll_at()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }
    fn poll(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        if self.nas.poll_at().is_some_and(|t| t <= now) {
            self.nas.poll(now, out);
        }
        if self.sap.poll_at().is_some_and(|t| t <= now) {
            self.sap.poll(now, out);
        }
    }
}

#[test]
fn dual_stack_ue_roams_from_legacy_mno_to_btelco() {
    let mut rng = SimRng::new(22);
    let ca = CertificateAuthority::from_seed([0xCA; 32]);
    let broker_keys = BrokerKeys::generate("broker.example", &ca, &mut rng);
    let telco_keys = TelcoKeys::generate("tower-1.example", &ca, &mut rng);
    let ue_keys = UeKeys::generate(&mut rng);

    const UE_SIG: Ipv4Addr = Ipv4Addr::new(169, 254, 0, 1);
    const MNO_SIG: Ipv4Addr = Ipv4Addr::new(172, 16, 9, 1);
    const SDB_IP: Ipv4Addr = Ipv4Addr::new(172, 16, 9, 2);
    const BROKER_IP: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 1);

    // Topology: UE — eNB — {legacy MNO AGW+HSS, CellBricks bTelco+broker}.
    let mut t = Topology::new();
    let ue_node = t.add_node("ue");
    let enb_node = t.add_node("enb");
    let mno_node = t.add_node("mno-agw");
    let hss_node = t.add_node("hss");
    let agw_node = t.add_node("btelco-agw");
    let cloud = t.add_node("broker");
    let ms = SimDuration::from_millis;
    let radio = t.add_symmetric_link(ue_node, enb_node, LinkConfig::delay_only(ms(5)));
    let to_mno = t.add_symmetric_link(enb_node, mno_node, LinkConfig::delay_only(ms(1)));
    let to_hss = t.add_symmetric_link(mno_node, hss_node, LinkConfig::delay_only(ms(2)));
    let to_bt = t.add_symmetric_link(enb_node, agw_node, LinkConfig::delay_only(ms(1)));
    let to_brk = t.add_symmetric_link(agw_node, cloud, LinkConfig::delay_only(ms(3)));
    t.add_default_route(ue_node, radio);
    t.add_route(enb_node, UE_SIG, 32, radio);
    t.add_route(enb_node, MNO_SIG, 32, to_mno);
    t.add_default_route(enb_node, to_bt);
    t.add_route(mno_node, UE_SIG, 32, to_mno);
    t.add_default_route(mno_node, to_hss);
    t.add_default_route(hss_node, to_hss);
    t.add_route(agw_node, UE_SIG, 32, to_bt);
    t.add_default_route(agw_node, to_brk);
    t.add_default_route(cloud, to_brk);

    // Legacy side, entirely unmodified.
    let mut mno = Agw::new(
        mno_node,
        AgwConfig {
            sig_ip: MNO_SIG,
            sdb_ip: SDB_IP,
            pool_base: Ipv4Addr::new(10, 9, 0, 0),
            proc_delay: ms(2),
        },
    );
    let mut hss = SubscriberDb::new(hss_node, SDB_IP, ms(2), rng.fork());
    hss.provision(4242, SharedKey([7; 16]));

    // CellBricks side.
    let mut brokerd = Brokerd::new(
        cloud,
        BrokerdConfig {
            ip: BROKER_IP,
            keys: broker_keys.clone(),
            ca: ca.public_key(),
            proc_delay: ms(2),
            epsilon: 0.05,
            session_retention: SimDuration::from_secs(86_400),
        },
        rng.fork(),
    );
    let (spk, epk) = ue_keys.public();
    brokerd.provision(ue_keys.identity(), spk, epk, 50_000_000);
    let mut brokers = HashMap::new();
    brokers.insert(
        "broker.example".to_string(),
        BrokerContact {
            ctrl_ip: BROKER_IP,
            encrypt_pk: broker_keys.encrypt.public_key(),
        },
    );
    let mut telco = BTelcoGateway::new(
        agw_node,
        BTelcoGatewayConfig {
            sig_ip: AGW_SIG,
            pool_base: Ipv4Addr::new(10, 1, 0, 0),
            keys: telco_keys,
            ca: ca.public_key(),
            brokers,
            qos_cap: qos(),
            proc_delay: ms(1),
            report_interval: SimDuration::from_secs(3_600),
            overcount_factor: 1.0,
        },
        rng.fork(),
    );
    let mut enb = Enb::new(enb_node, SimDuration::from_micros(500));

    // The dual-stack device: legacy SIM credentials + broker-issued keys.
    let mut ue = DualStackUe {
        nas: UeNas::new(
            ue_node,
            UeNasConfig {
                imsi: 4242,
                key: SharedKey([7; 16]),
                ue_sig: UE_SIG,
                agw_sig: MNO_SIG,
                proc_delay: ms(1),
            },
        ),
        sap: UeDevice::new(
            ue_node,
            UeDeviceConfig {
                ue_sig: UE_SIG,
                keys: ue_keys,
                broker_name: "broker.example".to_string(),
                broker_sign_pk: broker_keys.sign.verifying_key(),
                broker_encrypt_pk: broker_keys.encrypt.public_key(),
                broker_ctrl_ip: BROKER_IP,
                proc_delay: ms(1),
                verify_delay: ms(1),
                report_interval: SimDuration::from_secs(3_600),
                attach_retry_after: SimDuration::from_secs(2),
                attach_max_tries: 3,
                recovery: cellbricks::core::ue::RecoveryConfig::default(),
                plane: None,
            },
            rng.fork(),
        ),
    };

    let mut world = NetWorld::new(t, rng.fork());

    // Phase 1: attach to the legacy MNO with plain EPS-AKA.
    ue.nas.start_attach(SimTime::ZERO);
    let mut driver = Driver::new();
    driver.run_to(
        &mut world,
        &mut [
            &mut ue,
            &mut enb,
            &mut mno,
            &mut hss,
            &mut telco,
            &mut brokerd,
        ],
        SimTime::from_secs(1),
    );
    assert!(ue.nas.is_attached(), "legacy EPS-AKA attach succeeded");
    assert_eq!(ue.nas.ue_ip.unwrap().octets()[..2], [10, 9], "MNO pool");

    // Phase 2: roam onto a CellBricks bTelco via SAP — the legacy core
    // required no change and is not even aware of it.
    ue.nas.start_detach(SimTime::from_secs(1));
    ue.sap
        .start_attach(SimTime::from_secs(1), "tower-1.example", AGW_SIG);
    driver.run_to(
        &mut world,
        &mut [
            &mut ue,
            &mut enb,
            &mut mno,
            &mut hss,
            &mut telco,
            &mut brokerd,
        ],
        SimTime::from_secs(2),
    );
    assert!(
        ue.sap.is_attached(),
        "SAP attach succeeded alongside legacy"
    );
    assert_eq!(
        ue.sap.host.addr().unwrap().octets()[..2],
        [10, 1],
        "bTelco pool"
    );
    assert_eq!(mno.bearers.len(), 0, "legacy bearer released");
    assert_eq!(telco.attach_count, 1);
    assert_eq!(brokerd.auth_ok, 1);
}
