//! Shard-count invariance: the sharded engine must produce bit-identical
//! results for any shard count.
//!
//! The full-stack CellBricks world (real SAP crypto, MPTCP transfer,
//! fault injection) is partitioned by bTelco region — UE/internet/broker/
//! server in region 0, eNB₁/AGW₁ in region 1, eNB₂/AGW₂ in region 2 —
//! and run under the conservative-lookahead barrier at 1, 2 and 4
//! shards. Per-direction RNG streams plus canonical cross-shard arrival
//! ordering make every endpoint see identical inputs in identical order
//! regardless of the partition, so attach counters, attach-latency bits,
//! transferred bytes and link counters must all match exactly.

mod common;

use cellbricks::core::brokerd::Brokerd;
use cellbricks::core::btelco::BTelcoGateway;
use cellbricks::core::ue::UeDevice;
use cellbricks::epc::enb::Enb;
use cellbricks::net::{
    make_cells, merged_link_stats, run_sharded, Endpoint, EndpointAddr, FaultPlan, LinkId, NodeId,
    Packet, Router, ShardCell, ShardPlan,
};
use cellbricks::sim::{SimDuration, SimTime};
use cellbricks::transport::Host;
use common::{CellBricksWorld, AGW1_SIG, SERVER_IP, TELCO1};

const SECS: fn(u64) -> SimTime = SimTime::from_secs;

/// One common stream seed for every run: the per-link-direction RNG
/// streams derive from it identically in every shard, which is what
/// makes different shard counts comparable at all.
const STREAM_SEED: u64 = 0xCB5E_ED00;

/// The CellBricks world rehosted on shard cells. The endpoints stay
/// plain owned values; each `run_to` re-partitions `&mut` views of them
/// by owning shard.
struct ShardedCb {
    cells: Vec<ShardCell>,
    plan: ShardPlan,
    lookahead: SimDuration,
    ue: UeDevice,
    enb1: Enb,
    enb2: Enb,
    telco1: BTelcoGateway,
    telco2: BTelcoGateway,
    brokerd: Brokerd,
    internet: Router,
    server: Host,
    radio1: LinkId,
    agw1_node: NodeId,
    cursor: SimTime,
}

struct ServerEp<'a>(&'a mut Host);
impl Endpoint for ServerEp<'_> {
    fn node(&self) -> NodeId {
        self.0.node()
    }
    fn handle_packet(&mut self, now: SimTime, pkt: Packet, out: &mut Vec<Packet>) {
        self.0.handle_packet(now, pkt);
        self.0.drain_out(out);
    }
    fn poll_at(&self) -> Option<SimTime> {
        self.0.poll_at()
    }
    fn poll(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        self.0.poll(now);
        self.0.drain_out(out);
    }
}

/// Partition the two-bTelco world by region and split it into `shards`
/// cells. The lookahead is pinned to 5 ms — the AGW↔internet latency,
/// the smallest link that can cross shards under this partition — for
/// every shard count, so all runs step through identical windows.
fn sharded(mut w: CellBricksWorld, shards: usize) -> ShardedCb {
    let enb1_node = Endpoint::node(&w.enb1);
    let enb2_node = Endpoint::node(&w.enb2);
    let t = w.world.topology_mut();
    t.set_region(enb1_node, 1);
    t.set_region(w.agw1_node, 1);
    t.set_region(enb2_node, 2);
    t.set_region(w.agw2_node, 2);
    let plan = ShardPlan::by_region(w.world.topology(), shards);
    let lookahead = SimDuration::from_millis(5);
    if let Some(l) = plan.lookahead(w.world.topology()) {
        assert!(lookahead <= l, "pinned lookahead must stay conservative");
    }
    let cells = make_cells(w.world, &plan, STREAM_SEED);
    ShardedCb {
        cells,
        plan,
        lookahead,
        ue: w.ue,
        enb1: w.enb1,
        enb2: w.enb2,
        telco1: w.telco1,
        telco2: w.telco2,
        brokerd: w.brokerd,
        internet: w.internet,
        server: w.server,
        radio1: w.radio1,
        agw1_node: w.agw1_node,
        cursor: SimTime::ZERO,
    }
}

impl ShardedCb {
    fn run_to(&mut self, until: SimTime) {
        let mut server = ServerEp(&mut self.server);
        let mut buckets: Vec<Vec<&mut (dyn Endpoint + Send)>> =
            (0..self.cells.len()).map(|_| Vec::new()).collect();
        macro_rules! put {
            ($e:expr) => {{
                let node = Endpoint::node($e);
                buckets[self.plan.shard_of(node)].push($e);
            }};
        }
        put!(&mut self.ue);
        put!(&mut self.enb1);
        put!(&mut self.enb2);
        put!(&mut self.telco1);
        put!(&mut self.telco2);
        put!(&mut self.brokerd);
        put!(&mut self.internet);
        put!(&mut server);
        run_sharded(&mut self.cells, &mut buckets, until, self.lookahead);
        self.cursor = until;
    }

    /// Script faults: the plan is partitioned so each shard's driver
    /// applies exactly the actions touching state it owns (link faults
    /// land on both end-owning shards).
    fn set_faults(&mut self, plan: FaultPlan) {
        let parts = self
            .plan
            .partition_faults(plan, self.cells[0].world.topology());
        for (cell, part) in self.cells.iter_mut().zip(parts) {
            cell.driver.set_fault_plan(part);
        }
    }

    fn radio1_stats(&self) -> [u64; 6] {
        let s = merged_link_stats(&self.cells, self.radio1);
        [
            s.ab_delivered,
            s.ab_dropped,
            s.ba_delivered,
            s.ba_dropped,
            s.ab_policer_hits,
            s.ba_policer_hits,
        ]
    }
}

/// Fig. 7-shaped local scenario: one SAP attach, everything measured to
/// the bit.
fn attach_outcome(seed: u64, shards: usize) -> (u64, u64, Option<u64>, u64, [u64; 6]) {
    let w = CellBricksWorld::build(seed);
    let mut s = sharded(w, shards);
    if shards > 1 {
        assert_ne!(
            s.plan.shard_of(Endpoint::node(&s.ue)),
            s.plan.shard_of(s.agw1_node),
            "partition actually splits the SAP path"
        );
    }
    s.ue.start_attach(SimTime::ZERO, TELCO1, AGW1_SIG);
    s.run_to(SECS(2));
    assert!(s.ue.is_attached(), "attach converged at {shards} shards");
    (
        s.ue.attaches,
        s.ue.failures,
        s.ue.last_attach_latency.map(|d| d.as_nanos()),
        s.ue.proc_time.as_nanos(),
        s.radio1_stats(),
    )
}

#[test]
fn attach_is_shard_count_invariant() {
    let one = attach_outcome(31, 1);
    let two = attach_outcome(31, 2);
    let four = attach_outcome(31, 4);
    assert_eq!(one, two, "1 vs 2 shards");
    assert_eq!(one, four, "1 vs 4 shards");
    assert_eq!(one.0, 1, "exactly one attach");
}

/// Multi-bTelco chaos scenario: bulk MPTCP downlink, a radio flap train
/// on the cross-shard radio link, then a bTelco crash+restart that the
/// UE's inactivity watchdog must recover from — all bit-identical for
/// any shard count, with recovery proven (the `fault.unrecovered = 0`
/// analogue: the UE ends re-attached and the transfer moving).
fn chaos_outcome(seed: u64, shards: usize) -> (u64, u64, u64, u64, bool, u64, [u64; 6]) {
    let w = CellBricksWorld::build_chaos(seed);
    let mut s = sharded(w, shards);
    s.ue.start_attach(SimTime::ZERO, TELCO1, AGW1_SIG);
    s.run_to(SECS(1));
    assert!(s.ue.is_attached());
    s.server.mp_listen(5001);
    let conn =
        s.ue.host
            .mp_connect(s.cursor, EndpointAddr::new(SERVER_IP, 5001));
    s.run_to(SECS(2));
    let sc = s.server.take_accepted_mp()[0];
    s.server.mp_set_bulk(s.cursor, sc);
    s.run_to(SECS(5));
    let before = s.ue.host.mp(conn).data_received();
    assert!(before > 100_000, "flowing before faults: {before}");

    // Three 400 ms flaps on the serving radio from 5 s, then the serving
    // bTelco crashes at 10 s and restarts at 11 s with its sessions gone.
    let mut plan = FaultPlan::new();
    plan.link_flaps(
        s.radio1,
        SECS(5),
        3,
        SimDuration::from_millis(400),
        SimDuration::from_millis(600),
    );
    plan.crash_restart(s.agw1_node, SECS(10), SimDuration::from_secs(1));
    s.set_faults(plan);
    s.run_to(SECS(25));

    // Recovered: watchdog fired, UE re-attached, transfer moving again.
    assert!(s.ue.watchdog_reattaches >= 1, "watchdog fired");
    assert!(s.ue.is_attached(), "re-attached after the crash");
    let after = s.ue.host.mp(conn).data_received();
    assert!(
        after > before,
        "transfer advanced through the fault train: {before} -> {after}"
    );
    (
        s.ue.attaches,
        s.ue.failures,
        s.ue.attach_retries,
        s.ue.watchdog_reattaches,
        s.ue.is_attached(),
        after,
        s.radio1_stats(),
    )
}

#[test]
fn chaos_is_shard_count_invariant() {
    let one = chaos_outcome(37, 1);
    let two = chaos_outcome(37, 2);
    let four = chaos_outcome(37, 4);
    assert_eq!(one, two, "1 vs 2 shards");
    assert_eq!(one, four, "1 vs 4 shards");
}
