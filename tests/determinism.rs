//! Determinism regression for the indexed simulation engine.
//!
//! Runs the Fig. 7 local-placement benchmark twice with the same seed,
//! entirely through [`cellbricks::net::Driver`], and asserts that the
//! resulting rows are byte-identical (`f64::to_bits`, not approximate)
//! and that the engine processed exactly the same number of arrival and
//! poll events and sent exactly the same number of packets. Any change
//! to event ordering — a different heap tie-break, a stale timer entry
//! dispatched twice, a dirty endpoint re-queried at the wrong instant —
//! shows up here as a counter or bit mismatch.

use cellbricks::core::attach_bench::{
    run_baseline, run_cellbricks, Fig7Row, ProcProfile, PLACEMENTS,
};
use cellbricks_telemetry as telemetry;

/// Counters that must advance identically across the two runs.
const COUNTERS: [&str; 3] = [
    "net.world.packets_sent",
    "sim.scheduler.events.arrival",
    "sim.scheduler.events.poll",
];

fn counter_values() -> [u64; 3] {
    COUNTERS.map(|name| telemetry::counter(name).get())
}

fn fig7_local() -> (Fig7Row, Fig7Row, [u64; 3]) {
    let before = counter_values();
    let profile = ProcProfile::default();
    let bl = run_baseline(PLACEMENTS[0], &profile, 5, 42);
    let cb = run_cellbricks(PLACEMENTS[0], &profile, 5, 42);
    let after = counter_values();
    let deltas = [
        after[0] - before[0],
        after[1] - before[1],
        after[2] - before[2],
    ];
    (bl, cb, deltas)
}

fn bits(row: &Fig7Row) -> [u64; 5] {
    [
        row.total_ms.to_bits(),
        row.ue_ms.to_bits(),
        row.enb_ms.to_bits(),
        row.agw_cloud_ms.to_bits(),
        row.other_ms.to_bits(),
    ]
}

#[test]
fn fig7_replays_bit_identically() {
    // Telemetry must be on so the scheduler counters actually advance.
    telemetry::enable();

    let (bl1, cb1, ev1) = fig7_local();
    let (bl2, cb2, ev2) = fig7_local();

    assert_eq!(bits(&bl1), bits(&bl2), "BL row drifted: {bl1:?} vs {bl2:?}");
    assert_eq!(bits(&cb1), bits(&cb2), "CB row drifted: {cb1:?} vs {cb2:?}");
    for (i, name) in COUNTERS.iter().enumerate() {
        assert_eq!(
            ev1[i], ev2[i],
            "{name} delta differs between identical runs"
        );
        assert!(ev1[i] > 0, "{name} never advanced — engine not counting");
    }
}
