//! Determinism regression for the indexed simulation engine.
//!
//! Runs the Fig. 7 local-placement benchmark twice with the same seed,
//! entirely through [`cellbricks::net::Driver`], and asserts that the
//! resulting rows are byte-identical (`f64::to_bits`, not approximate)
//! and that the engine processed exactly the same number of arrival and
//! poll events and sent exactly the same number of packets. Any change
//! to event ordering — a different heap tie-break, a stale timer entry
//! dispatched twice, a dirty endpoint re-queried at the wrong instant —
//! shows up here as a counter or bit mismatch.

use cellbricks::core::attach_bench::{
    run_baseline, run_cellbricks, Fig7Row, ProcProfile, PLACEMENTS,
};
use cellbricks_telemetry as telemetry;

/// Counters that must advance identically across the two runs.
const COUNTERS: [&str; 3] = [
    "net.world.packets_sent",
    "sim.scheduler.events.arrival",
    "sim.scheduler.events.poll",
];

fn counter_values() -> [u64; 3] {
    COUNTERS.map(|name| telemetry::counter(name).get())
}

fn fig7_local() -> (Fig7Row, Fig7Row, [u64; 3]) {
    let before = counter_values();
    let profile = ProcProfile::default();
    let bl = run_baseline(PLACEMENTS[0], &profile, 5, 42);
    let cb = run_cellbricks(PLACEMENTS[0], &profile, 5, 42);
    let after = counter_values();
    let deltas = [
        after[0] - before[0],
        after[1] - before[1],
        after[2] - before[2],
    ];
    (bl, cb, deltas)
}

fn bits(row: &Fig7Row) -> [u64; 5] {
    [
        row.total_ms.to_bits(),
        row.ue_ms.to_bits(),
        row.enb_ms.to_bits(),
        row.agw_cloud_ms.to_bits(),
        row.other_ms.to_bits(),
    ]
}

/// Golden bit patterns for the fig7-local rows (5 trials, seed 42),
/// recorded with the heap-backed scheduler before the timer-wheel
/// migration. The wheel-backed `Driver` must reproduce them exactly:
/// the wheel's `(deadline, seq)` dispatch order is contractually
/// identical to `EventQueue`'s, so any divergence here means the
/// scheduler reordered events, not that the model changed.
const FIG7_LOCAL_BL_BITS: [u64; 5] = [
    0x403d4ccccccccccd, // total = 29.3 ms
    0x4012000000000000, // ue = 4.5 ms
    0x400c000000000000, // enb = 3.5 ms
    0x4034000000000000, // agw+cloud = 20 ms
    0x3ff4ccccccccccd0, // other
];
const FIG7_LOCAL_CB_BITS: [u64; 5] = [
    0x403b000000000000, // total = 27 ms
    0x4014000000000000, // ue = 5 ms
    0x3ff0000000000000, // enb = 1 ms
    0x40344ccccccccccd, // agw+cloud = 20.3 ms
    0x3fe6666666666660, // other
];

/// The wheel-backed engine replays fig7-local onto the exact bit
/// patterns recorded under the pre-wheel heap scheduler.
#[test]
fn fig7_wheel_replay_matches_heap_era_golden_bits() {
    telemetry::enable();
    let (bl, cb, _) = fig7_local();
    assert_eq!(
        bits(&bl),
        FIG7_LOCAL_BL_BITS,
        "BL row diverged from the recorded heap-scheduler golden: {bl:?}"
    );
    assert_eq!(
        bits(&cb),
        FIG7_LOCAL_CB_BITS,
        "CB row diverged from the recorded heap-scheduler golden: {cb:?}"
    );
}

#[test]
fn fig7_replays_bit_identically() {
    // Telemetry must be on so the scheduler counters actually advance.
    telemetry::enable();

    let (bl1, cb1, ev1) = fig7_local();
    let (bl2, cb2, ev2) = fig7_local();

    assert_eq!(bits(&bl1), bits(&bl2), "BL row drifted: {bl1:?} vs {bl2:?}");
    assert_eq!(bits(&cb1), bits(&cb2), "CB row drifted: {cb1:?} vs {cb2:?}");
    for (i, name) in COUNTERS.iter().enumerate() {
        assert_eq!(
            ev1[i], ev2[i],
            "{name} delta differs between identical runs"
        );
        assert!(ev1[i] > 0, "{name} never advanced — engine not counting");
    }
}
