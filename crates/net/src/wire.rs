//! Tiny binary codec helpers shared by the NAS, S6A and SAP wire formats.
//!
//! Hand-rolled (rather than serde) because these stand in for 3GPP
//! protocol encodings: fixed-width integers, length-prefixed byte strings,
//! and explicit type tags, with decoding returning `None` on any
//! truncation or garbage.

use bytes::{BufMut, Bytes, BytesMut};
use std::net::Ipv4Addr;

/// Incremental writer over a growable buffer.
#[derive(Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a u8.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }
    /// Append a big-endian u16.
    pub fn put_u16(&mut self, v: u16) -> &mut Self {
        self.buf.put_u16(v);
        self
    }
    /// Append a big-endian u32.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32(v);
        self
    }
    /// Append a big-endian u64.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64(v);
        self
    }
    /// Append raw bytes (fixed-width field; length not encoded).
    pub fn put_fixed(&mut self, v: &[u8]) -> &mut Self {
        self.buf.put_slice(v);
        self
    }
    /// Append a u32-length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.put_u32(v.len() as u32);
        self.buf.put_slice(v);
        self
    }
    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }
    /// Append an IPv4 address.
    pub fn put_ip(&mut self, v: Ipv4Addr) -> &mut Self {
        self.buf.put_slice(&v.octets());
        self
    }

    /// Finish, returning the encoded bytes.
    #[must_use]
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Incremental reader; every accessor returns `None` on truncation.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Some(head)
    }

    /// Read a u8.
    pub fn get_u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    /// Read a big-endian u16.
    pub fn get_u16(&mut self) -> Option<u16> {
        Some(u16::from_be_bytes(self.take(2)?.try_into().ok()?))
    }
    /// Read a big-endian u32.
    pub fn get_u32(&mut self) -> Option<u32> {
        Some(u32::from_be_bytes(self.take(4)?.try_into().ok()?))
    }
    /// Read a big-endian u64.
    pub fn get_u64(&mut self) -> Option<u64> {
        Some(u64::from_be_bytes(self.take(8)?.try_into().ok()?))
    }
    /// Read `N` raw bytes into an array.
    pub fn get_fixed<const N: usize>(&mut self) -> Option<[u8; N]> {
        self.take(N)?.try_into().ok()
    }
    /// Read a u32-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Option<Vec<u8>> {
        let len = self.get_u32()? as usize;
        if len > 1 << 24 {
            return None; // Hostile length.
        }
        Some(self.take(len)?.to_vec())
    }
    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Option<String> {
        String::from_utf8(self.get_bytes()?).ok()
    }
    /// Read an IPv4 address.
    pub fn get_ip(&mut self) -> Option<Ipv4Addr> {
        let o: [u8; 4] = self.get_fixed()?;
        Some(Ipv4Addr::from(o))
    }
    /// True when fully consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
    /// Remaining unread bytes.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = Writer::new();
        w.put_u8(7)
            .put_u16(300)
            .put_u32(70_000)
            .put_u64(1 << 40)
            .put_fixed(&[1, 2, 3])
            .put_bytes(b"hello")
            .put_str("world")
            .put_ip(Ipv4Addr::new(10, 1, 2, 3));
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8(), Some(7));
        assert_eq!(r.get_u16(), Some(300));
        assert_eq!(r.get_u32(), Some(70_000));
        assert_eq!(r.get_u64(), Some(1 << 40));
        assert_eq!(r.get_fixed::<3>(), Some([1, 2, 3]));
        assert_eq!(r.get_bytes().as_deref(), Some(b"hello".as_slice()));
        assert_eq!(r.get_str().as_deref(), Some("world"));
        assert_eq!(r.get_ip(), Some(Ipv4Addr::new(10, 1, 2, 3)));
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_returns_none() {
        let mut w = Writer::new();
        w.put_u32(5);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes[..2]);
        assert_eq!(r.get_u32(), None);
    }

    #[test]
    fn hostile_length_rejected() {
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_bytes(), None);
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = Writer::new();
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_str(), None);
    }
}
