//! Tiny binary codec helpers shared by the NAS, S6A and SAP wire formats.
//!
//! Hand-rolled (rather than serde) because these stand in for 3GPP
//! protocol encodings: fixed-width integers, length-prefixed byte strings,
//! and explicit type tags, with decoding returning `None` on any
//! truncation or garbage.
//!
//! The [`frame_into`]/[`unframe`]/[`write_frame`]/[`read_frame`] family
//! is the *transport* framing for control-plane messages carried over
//! real sockets (the `brokerd` daemon, its load generator, and the
//! `broker_server` example): a u32 big-endian length prefix followed by
//! exactly that many payload bytes. One framing implementation, used for
//! both datagram (one frame per datagram) and stream transports.

use bytes::{BufMut, Bytes, BytesMut};
use std::io;
use std::net::Ipv4Addr;

/// Incremental writer over a growable buffer.
#[derive(Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a u8.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }
    /// Append a big-endian u16.
    pub fn put_u16(&mut self, v: u16) -> &mut Self {
        self.buf.put_u16(v);
        self
    }
    /// Append a big-endian u32.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32(v);
        self
    }
    /// Append a big-endian u64.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64(v);
        self
    }
    /// Append raw bytes (fixed-width field; length not encoded).
    pub fn put_fixed(&mut self, v: &[u8]) -> &mut Self {
        self.buf.put_slice(v);
        self
    }
    /// Append a u32-length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.put_u32(v.len() as u32);
        self.buf.put_slice(v);
        self
    }
    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }
    /// Append an IPv4 address.
    pub fn put_ip(&mut self, v: Ipv4Addr) -> &mut Self {
        self.buf.put_slice(&v.octets());
        self
    }

    /// Finish, returning the encoded bytes.
    #[must_use]
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Incremental reader; every accessor returns `None` on truncation.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Some(head)
    }

    /// Read a u8.
    pub fn get_u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    /// Read a big-endian u16.
    pub fn get_u16(&mut self) -> Option<u16> {
        Some(u16::from_be_bytes(self.take(2)?.try_into().ok()?))
    }
    /// Read a big-endian u32.
    pub fn get_u32(&mut self) -> Option<u32> {
        Some(u32::from_be_bytes(self.take(4)?.try_into().ok()?))
    }
    /// Read a big-endian u64.
    pub fn get_u64(&mut self) -> Option<u64> {
        Some(u64::from_be_bytes(self.take(8)?.try_into().ok()?))
    }
    /// Read `N` raw bytes into an array.
    pub fn get_fixed<const N: usize>(&mut self) -> Option<[u8; N]> {
        self.take(N)?.try_into().ok()
    }
    /// Read a u32-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Option<Vec<u8>> {
        let len = self.get_u32()? as usize;
        if len > 1 << 24 {
            return None; // Hostile length.
        }
        Some(self.take(len)?.to_vec())
    }
    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Option<String> {
        String::from_utf8(self.get_bytes()?).ok()
    }
    /// Read an IPv4 address.
    pub fn get_ip(&mut self) -> Option<Ipv4Addr> {
        let o: [u8; 4] = self.get_fixed()?;
        Some(Ipv4Addr::from(o))
    }
    /// True when fully consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
    /// Remaining unread bytes.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }
}

/// Largest frame payload either side will accept. Generously above any
/// legitimate control-plane message (an `authReqT` is well under 1 KiB);
/// a prefix past this is a protocol error, not a reason to allocate.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Why a length-prefixed frame could not be parsed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// The hostile declared length.
        len: usize,
    },
    /// The buffer ends before the declared payload does (or before the
    /// 4-byte prefix itself is complete).
    Truncated,
    /// A datagram carried bytes past the end of its single frame.
    TrailingBytes,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { len } => {
                write!(f, "oversized frame: {len} > {MAX_FRAME_LEN} bytes")
            }
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::TrailingBytes => write!(f, "bytes after end of frame"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Append one length-prefixed frame to `out` (a reusable buffer — the
/// datagram send path frames every reply into one scratch allocation).
pub fn frame_into(payload: &[u8], out: &mut Vec<u8>) {
    debug_assert!(payload.len() <= MAX_FRAME_LEN);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
}

/// One length-prefixed frame as a fresh buffer.
#[must_use]
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    frame_into(payload, &mut out);
    out
}

/// Parse a datagram as exactly one length-prefixed frame, returning the
/// payload in place (no copy).
///
/// # Errors
/// [`FrameError`] on a hostile length, a short datagram, or trailing
/// bytes — the caller counts these and drops the datagram.
pub fn unframe(datagram: &[u8]) -> Result<&[u8], FrameError> {
    let Some(prefix) = datagram.get(..4) else {
        return Err(FrameError::Truncated);
    };
    let len = u32::from_be_bytes(prefix.try_into().expect("4-byte slice")) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized { len });
    }
    let body = &datagram[4..];
    match body.len().cmp(&len) {
        std::cmp::Ordering::Less => Err(FrameError::Truncated),
        std::cmp::Ordering::Greater => Err(FrameError::TrailingBytes),
        std::cmp::Ordering::Equal => Ok(body),
    }
}

/// Write one length-prefixed frame to a stream transport.
///
/// # Errors
/// `InvalidInput` for a payload over [`MAX_FRAME_LEN`] (never produced by
/// this codebase's encoders), or any underlying I/O error.
pub fn write_frame<W: io::Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            FrameError::Oversized { len: payload.len() }.to_string(),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)
}

/// Read one length-prefixed frame from a stream transport.
///
/// A hostile length prefix surfaces as a clean `InvalidData` error — the
/// peer is speaking a different protocol (or attacking), and the correct
/// response is to drop the connection, not to allocate or panic.
///
/// # Errors
/// `InvalidData` on an oversized prefix; `UnexpectedEof` (from the
/// underlying reads) on truncation; any other underlying I/O error.
pub fn read_frame<R: io::Read>(r: &mut R) -> io::Result<Vec<u8>> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix)?;
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FrameError::Oversized { len }.to_string(),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = Writer::new();
        w.put_u8(7)
            .put_u16(300)
            .put_u32(70_000)
            .put_u64(1 << 40)
            .put_fixed(&[1, 2, 3])
            .put_bytes(b"hello")
            .put_str("world")
            .put_ip(Ipv4Addr::new(10, 1, 2, 3));
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8(), Some(7));
        assert_eq!(r.get_u16(), Some(300));
        assert_eq!(r.get_u32(), Some(70_000));
        assert_eq!(r.get_u64(), Some(1 << 40));
        assert_eq!(r.get_fixed::<3>(), Some([1, 2, 3]));
        assert_eq!(r.get_bytes().as_deref(), Some(b"hello".as_slice()));
        assert_eq!(r.get_str().as_deref(), Some("world"));
        assert_eq!(r.get_ip(), Some(Ipv4Addr::new(10, 1, 2, 3)));
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_returns_none() {
        let mut w = Writer::new();
        w.put_u32(5);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes[..2]);
        assert_eq!(r.get_u32(), None);
    }

    #[test]
    fn hostile_length_rejected() {
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_bytes(), None);
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = Writer::new();
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_str(), None);
    }

    #[test]
    fn frame_roundtrips_datagram_and_stream() {
        let payload = b"hello broker";
        let datagram = frame(payload);
        assert_eq!(unframe(&datagram), Ok(payload.as_slice()));

        let mut stream = Vec::new();
        write_frame(&mut stream, payload).unwrap();
        assert_eq!(stream, datagram);
        let got = read_frame(&mut stream.as_slice()).unwrap();
        assert_eq!(got, payload);
    }

    #[test]
    fn unframe_rejects_hostile_shapes() {
        assert_eq!(unframe(&[]), Err(FrameError::Truncated));
        assert_eq!(unframe(&[0, 0, 1]), Err(FrameError::Truncated));
        assert_eq!(unframe(&[0, 0, 0, 2, 7]), Err(FrameError::Truncated));
        assert_eq!(unframe(&[0, 0, 0, 1, 7, 8]), Err(FrameError::TrailingBytes));
        let oversized = frame(b"x");
        let mut evil = oversized.clone();
        evil[..4].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(
            unframe(&evil),
            Err(FrameError::Oversized {
                len: u32::MAX as usize
            })
        );
    }

    #[test]
    fn read_frame_oversized_is_a_clean_error() {
        let mut evil = Vec::new();
        evil.extend_from_slice(&u32::MAX.to_be_bytes());
        evil.extend_from_slice(b"junk");
        let err = read_frame(&mut evil.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = write_frame(&mut Vec::new(), &vec![0u8; MAX_FRAME_LEN + 1]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
