//! The indexed simulation engine.
//!
//! [`Driver`] owns the scheduling state for a set of [`Endpoint`]s over a
//! [`NetWorld`] and advances virtual time without ever scanning the whole
//! endpoint population per event:
//!
//! * **registry** — endpoints are keyed by [`NodeId`] once per endpoint
//!   set (rebuilt only if the set changes between runs), so arrival
//!   dispatch is a single hash lookup;
//! * **timer index** — every endpoint's `poll_at()` lives in a
//!   hierarchical [`TimerWheel`]: re-arming cancels the old entry and
//!   inserts the new one, both O(1), so there are no stale entries to
//!   skip and no per-op heap traversal (the generation-counter
//!   lazy-invalidation scheme this replaced is described in DESIGN.md);
//! * **dirty set** — only endpoints that just received a packet or just
//!   polled are re-queried for `poll_at()`; everything else is passive
//!   and cannot have moved its own timer;
//! * **reusable buffers** — arrivals and endpoint output are drained
//!   into buffers owned by the driver, so the hot loop performs no
//!   per-iteration allocation.
//!
//! The engine preserves the exact event order of the original
//! scan-per-event loop: arrivals dispatch in queue order (time, then
//! FIFO), due endpoints poll in endpoint-slice order, and the clock never
//! runs backwards. Invariants are documented in `DESIGN.md` §Engine.

use crate::fault::{EndpointFault, FaultAction, FaultPlan};
use crate::packet::PacketKind;
use crate::topology::NodeId;
use crate::world::{Endpoint, NetWorld};
use cellbricks_sim::{SimTime, TimerId, TimerWheel};
use cellbricks_telemetry as telemetry;

/// Dense `NodeId → endpoint index` lookup (see [`Driver::node_map`]).
#[inline]
fn endpoint_index(map: &[Option<u32>], node: NodeId) -> Option<usize> {
    map.get(node.0).copied().flatten().map(|i| i as usize)
}

/// Fault-injection telemetry handles, registered lazily on the first
/// applied fault so no-fault runs leave the metrics snapshot untouched.
struct FaultMetrics {
    link_outage: telemetry::Counter,
    burst_window: telemetry::Counter,
    endpoint_crash: telemetry::Counter,
    endpoint_unavailable: telemetry::Counter,
}

impl FaultMetrics {
    fn register() -> Self {
        Self {
            link_outage: telemetry::counter("fault.link_outage"),
            burst_window: telemetry::counter("fault.burst_window"),
            endpoint_crash: telemetry::counter("fault.endpoint_crash"),
            endpoint_unavailable: telemetry::counter("fault.endpoint_unavailable"),
        }
    }
}

/// Scheduler telemetry handles, registered once per [`Driver`]; the
/// wall-clock service timers only run when telemetry is enabled so the
/// disabled path costs one atomic load per dispatched event.
struct EngineMetrics {
    ev_arrival: telemetry::Counter,
    ev_poll: telemetry::Counter,
    svc_tcp: telemetry::Histogram,
    svc_udp: telemetry::Histogram,
    svc_control: telemetry::Histogram,
    svc_poll: telemetry::Histogram,
    q_depth: telemetry::Gauge,
    arena_cap: telemetry::Gauge,
    arena_occ: telemetry::Gauge,
    arena_bytes: telemetry::Gauge,
}

impl EngineMetrics {
    fn register() -> Self {
        Self {
            ev_arrival: telemetry::counter("sim.scheduler.events.arrival"),
            ev_poll: telemetry::counter("sim.scheduler.events.poll"),
            svc_tcp: telemetry::histogram("sim.scheduler.service_ns.tcp"),
            svc_udp: telemetry::histogram("sim.scheduler.service_ns.udp"),
            svc_control: telemetry::histogram("sim.scheduler.service_ns.control"),
            svc_poll: telemetry::histogram("sim.scheduler.service_ns.poll"),
            q_depth: telemetry::gauge("sim.scheduler.ready_events"),
            arena_cap: telemetry::gauge("sim.arena.engine.capacity"),
            arena_occ: telemetry::gauge("sim.arena.engine.occupancy"),
            arena_bytes: telemetry::gauge("sim.arena.engine.bytes_peak"),
        }
    }
}

/// The reusable simulation engine: registry, timer index, dirty set and
/// scratch buffers. Create one per simulation (or per segmented run) and
/// call [`run_to`](Driver::run_to) repeatedly with a monotone horizon.
pub struct Driver {
    /// Registered endpoint nodes, in endpoint-slice order.
    nodes: Vec<NodeId>,
    /// NodeId → endpoint index, built when the endpoint set is first
    /// seen. `NodeId`s are dense topology indices, so this is a direct
    /// table rather than a hash map — arrival dispatch is one bounds
    /// check + one load per packet.
    node_map: Vec<Option<u32>>,
    /// The `poll_at` instant currently indexed per endpoint (None: no
    /// live wheel entry).
    scheduled: Vec<Option<SimTime>>,
    /// Live wheel handle per endpoint, for O(1) cancel on re-arm.
    timer_ids: Vec<Option<TimerId>>,
    /// Timer index over endpoint indices.
    timers: TimerWheel<usize>,
    dirty: Vec<bool>,
    dirty_list: Vec<usize>,
    /// Endpoints due at the current instant (sorted to slice order).
    due: Vec<usize>,
    /// Reusable arrival buffer (drained each iteration).
    arrivals: Vec<(SimTime, NodeId, crate::packet::Packet)>,
    /// Reusable endpoint-output buffer.
    out: Vec<crate::packet::Packet>,
    /// The floor of the next run window (the previous window's end).
    clock: SimTime,
    /// Event ordinal for service-time sampling (see
    /// [`sample_service_time`](Self::sample_service_time)).
    svc_tick: u64,
    /// Scripted faults still to apply (empty by default).
    faults: FaultPlan,
    metrics: EngineMetrics,
    fault_metrics: Option<FaultMetrics>,
    /// Last value this driver contributed to the shared
    /// `sim.scheduler.ready_events` gauge. Shard workers share one gauge
    /// (the registry is keyed by name), so each driver publishes deltas
    /// against its own last value and the gauge reads as the sum across
    /// workers — a plain `set` would race and clobber.
    q_depth_last: i64,
    /// Same delta scheme for the `sim.arena.engine.*` gauges.
    arena_last: (i64, i64, i64),
}

impl Default for Driver {
    fn default() -> Self {
        Self::new()
    }
}

impl Driver {
    /// An engine whose clock starts at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self::starting_at(SimTime::ZERO)
    }

    /// An engine whose clock starts at `from` (events and "as soon as
    /// possible" polls due earlier are processed at `from`).
    #[must_use]
    pub fn starting_at(from: SimTime) -> Self {
        Self {
            nodes: Vec::new(),
            node_map: Vec::new(),
            scheduled: Vec::new(),
            timer_ids: Vec::new(),
            timers: TimerWheel::new(),
            dirty: Vec::new(),
            dirty_list: Vec::new(),
            due: Vec::new(),
            arrivals: Vec::new(),
            out: Vec::new(),
            clock: from,
            svc_tick: 0,
            faults: FaultPlan::new(),
            metrics: EngineMetrics::register(),
            fault_metrics: None,
            q_depth_last: 0,
            arena_last: (0, 0, 0),
        }
    }

    /// Install `plan`, replacing any previous one. Due actions are
    /// applied at the head of each instant — before that instant's
    /// arrivals dispatch — so a fault at time *t* affects traffic sent at
    /// *t* (packets already in flight still arrive).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Number of scheduled fault actions not yet applied.
    #[must_use]
    pub fn pending_faults(&self) -> usize {
        self.faults.len()
    }

    /// The floor of the next run window.
    #[must_use]
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// (Re)build the registry if the endpoint set changed, and mark every
    /// endpoint dirty: the caller may have mutated endpoints (started
    /// flows, armed timers) since the previous window.
    ///
    /// # Panics
    /// Panics if two endpoints share a node.
    fn sync_registry(&mut self, endpoints: &[&mut dyn Endpoint]) {
        let unchanged = self.nodes.len() == endpoints.len()
            && self
                .nodes
                .iter()
                .zip(endpoints.iter())
                .all(|(n, e)| *n == e.node());
        if !unchanged {
            self.nodes.clear();
            self.nodes.extend(endpoints.iter().map(|e| e.node()));
            self.node_map.clear();
            let table = self.nodes.iter().map(|n| n.0).max().map_or(0, |m| m + 1);
            self.node_map.resize(table, None);
            for (i, n) in self.nodes.iter().enumerate() {
                assert!(
                    self.node_map[n.0].replace(i as u32).is_none(),
                    "two endpoints share a node"
                );
            }
            self.scheduled.clear();
            self.scheduled.resize(endpoints.len(), None);
            self.timer_ids.clear();
            self.timer_ids.resize(endpoints.len(), None);
            self.timers.clear();
            self.dirty.clear();
            self.dirty.resize(endpoints.len(), false);
            self.dirty_list.clear();
            if telemetry::is_enabled() {
                self.publish_arena_stats();
            }
        }
        for i in 0..endpoints.len() {
            self.mark_dirty(i);
        }
    }

    /// Publish the engine's dense per-endpoint tables (the registry,
    /// timer index and dirty set — the NodeId-keyed "engine arena") to
    /// the `sim.arena.engine.*` gauges, as deltas against this driver's
    /// previous contribution so shard workers sum instead of clobber.
    fn publish_arena_stats(&mut self) {
        let cap = (self.node_map.capacity()
            + self.scheduled.capacity()
            + self.timer_ids.capacity()
            + self.dirty.capacity()) as i64;
        let occ = (self.nodes.len() * 4) as i64;
        let bytes = (self.nodes.capacity() * std::mem::size_of::<NodeId>()
            + self.node_map.capacity() * std::mem::size_of::<Option<u32>>()
            + self.scheduled.capacity() * std::mem::size_of::<Option<SimTime>>()
            + self.timer_ids.capacity() * std::mem::size_of::<Option<TimerId>>()
            + self.dirty.capacity()) as i64;
        let (lc, lo, lb) = self.arena_last;
        self.metrics.arena_cap.add(cap - lc);
        self.metrics.arena_occ.add(occ - lo);
        self.metrics.arena_bytes.add(bytes - lb);
        self.arena_last = (cap, occ, bytes);
    }

    fn mark_dirty(&mut self, i: usize) {
        if !self.dirty[i] {
            self.dirty[i] = true;
            self.dirty_list.push(i);
        }
    }

    /// Start a service-time measurement for 1 event in 32, by event
    /// ordinal. Unsampled timing (two `Instant::now` calls per event)
    /// was a measurable slice of the steady-state event budget; a
    /// deterministic sparse sample keeps the `service_ns` percentiles
    /// honest at a fraction of the instrumentation cost. (1-in-8
    /// originally; widened to 1-in-32 when the clock reads showed up
    /// again in the million-UE steady-state profile.)
    #[inline]
    fn sample_service_time(&mut self, timed: bool) -> Option<std::time::Instant> {
        let tick = self.svc_tick;
        self.svc_tick = tick.wrapping_add(1);
        (timed && tick & 31 == 0).then(std::time::Instant::now)
    }

    /// Re-query `poll_at` for every dirty endpoint and update the timer
    /// index. An unchanged instant keeps its live wheel entry; a changed
    /// one cancels the old entry and inserts the new instant, both O(1).
    fn flush_dirty(&mut self, endpoints: &[&mut dyn Endpoint]) {
        while let Some(i) = self.dirty_list.pop() {
            self.dirty[i] = false;
            let want = endpoints[i].poll_at();
            if want != self.scheduled[i] {
                if let Some(id) = self.timer_ids[i].take() {
                    self.timers.cancel(id);
                }
                if let Some(t) = want {
                    self.timer_ids[i] = Some(self.timers.insert(t, i));
                }
                self.scheduled[i] = want;
            }
        }
    }

    /// The earliest pending timer. Every wheel entry is live — cancel is
    /// eager — so there is no stale-entry skip loop here or in
    /// [`pop_due_timer`](Self::pop_due_timer).
    fn peek_timer(&mut self) -> Option<SimTime> {
        self.timers.peek_time()
    }

    /// Pop the endpoint of the earliest timer due at or before `now`.
    fn pop_due_timer(&mut self, now: SimTime) -> Option<usize> {
        let (_, i) = self.timers.pop_due(now)?;
        self.scheduled[i] = None;
        self.timer_ids[i] = None;
        Some(i)
    }

    /// Drive `endpoints` over `world` until no event remains at or before
    /// `until`, starting from this engine's clock. Returns the time of
    /// the last processed event, and advances the clock to `until` so
    /// segmented runs chain exactly like repeated [`run_between`] calls.
    ///
    /// # Panics
    /// Panics if endpoints livelock (an endpoint keeps reporting a due
    /// `poll_at` without making progress) or two endpoints share a node.
    pub fn run_to(
        &mut self,
        world: &mut NetWorld,
        endpoints: &mut [&mut dyn Endpoint],
        until: SimTime,
    ) -> SimTime {
        self.sync_registry(endpoints);
        self.advance(world, endpoints, until, true)
    }

    /// (Re)build the registry and mark every endpoint dirty. Called
    /// implicitly by [`run_to`](Self::run_to); the sharded barrier loop
    /// calls it once per segment so the per-window
    /// [`run_window`](Self::run_window) can skip the O(N) re-mark.
    ///
    /// # Panics
    /// Panics if two endpoints share a node.
    pub fn sync(&mut self, endpoints: &[&mut dyn Endpoint]) {
        self.sync_registry(endpoints);
    }

    /// Advance through events *strictly before* `until` — one
    /// conservative-sync window `[clock, until)`. Unlike
    /// [`run_to`](Self::run_to) this neither re-syncs the registry (call
    /// [`sync`](Self::sync) when the endpoint set or its timers may have
    /// changed externally) nor processes events at exactly `until`,
    /// which belong to the next window — after the barrier has injected
    /// any cross-shard packets arriving then.
    ///
    /// # Panics
    /// Panics if endpoints livelock.
    pub fn run_window(
        &mut self,
        world: &mut NetWorld,
        endpoints: &mut [&mut dyn Endpoint],
        until: SimTime,
    ) -> SimTime {
        self.advance(world, endpoints, until, false)
    }

    /// The shared event loop behind [`run_to`] (inclusive horizon) and
    /// [`run_window`] (exclusive horizon).
    fn advance(
        &mut self,
        world: &mut NetWorld,
        endpoints: &mut [&mut dyn Endpoint],
        until: SimTime,
        inclusive: bool,
    ) -> SimTime {
        let mut last = self.clock;
        let mut same_instant_iters = 0u64;

        loop {
            self.flush_dirty(endpoints);
            let next_net = world.next_arrival_at();
            let next_poll = self.peek_timer();
            let next_fault = self.faults.next_at();
            let Some(candidate) = [next_net, next_poll, next_fault]
                .into_iter()
                .flatten()
                .min()
            else {
                break;
            };
            if candidate > until || (!inclusive && candidate >= until) {
                break;
            }
            // Endpoints may report "as soon as possible" with a past
            // instant (e.g. staged output); the clock never runs
            // backwards.
            let now = candidate.max(last);
            if now == last {
                same_instant_iters += 1;
                assert!(same_instant_iters < 1_000_000, "endpoint livelock at {now}");
            } else {
                same_instant_iters = 0;
                last = now;
            }

            if next_fault.is_some_and(|t| t <= now) {
                while let Some((_, action)) = self.faults.pop_due(now) {
                    self.apply_fault(now, world, endpoints, action);
                }
            }

            let timed = telemetry::is_enabled();
            // Skip whole phases that cannot have work: a wheel peek or
            // drain is not free (it may cascade), and in steady state
            // most iterations carry exactly one arrival or one poll.
            let had_arrivals = next_net.is_some_and(|t| t <= now);
            if had_arrivals {
                self.dispatch_arrivals(now, world, endpoints, timed);
            }
            if had_arrivals || next_poll.is_some_and(|t| t <= now) {
                // Index the timers re-armed by the packets just handled,
                // then wake everything due now, in endpoint-slice order.
                self.flush_dirty(endpoints);
                self.due.clear();
                while let Some(i) = self.pop_due_timer(now) {
                    self.due.push(i);
                }
                self.due.sort_unstable();
                for k in 0..self.due.len() {
                    let i = self.due[k];
                    self.metrics.ev_poll.inc();
                    let t0 = self.sample_service_time(timed);
                    endpoints[i].poll(now, &mut self.out);
                    if let Some(t0) = t0 {
                        self.metrics.svc_poll.record(t0.elapsed().as_nanos() as u64);
                    }
                    let from = endpoints[i].node();
                    for p in self.out.drain(..) {
                        world.send(now, from, p);
                    }
                    self.mark_dirty(i);
                }
            }
        }
        self.clock = self.clock.max(until);
        last
    }

    /// Drain and dispatch every arrival due at `now` (the arrival half of
    /// one [`advance`](Self::advance) iteration).
    fn dispatch_arrivals(
        &mut self,
        now: SimTime,
        world: &mut NetWorld,
        endpoints: &mut [&mut dyn Endpoint],
        timed: bool,
    ) {
        world.drain_arrivals_into(now, &mut self.arrivals);
        if timed {
            // Delta against this driver's last contribution: shard
            // workers share the gauge, so deltas sum where a `set`
            // would race (satellite: ready_events must aggregate).
            // Steady state keeps a constant depth, so the common
            // case writes nothing.
            let depth = self.arrivals.len() as i64;
            if depth != self.q_depth_last {
                self.metrics.q_depth.add(depth - self.q_depth_last);
                self.q_depth_last = depth;
            }
        }
        let mut arrivals = std::mem::take(&mut self.arrivals);
        for (_at, node, pkt) in arrivals.drain(..) {
            if let Some(i) = endpoint_index(&self.node_map, node) {
                self.metrics.ev_arrival.inc();
                let t0 = self.sample_service_time(timed);
                let svc = match &pkt.kind {
                    PacketKind::Tcp(_) => &self.metrics.svc_tcp,
                    PacketKind::Udp { .. } => &self.metrics.svc_udp,
                    PacketKind::Control(_) => &self.metrics.svc_control,
                };
                endpoints[i].handle_packet(now, pkt, &mut self.out);
                if let Some(t0) = t0 {
                    svc.record(t0.elapsed().as_nanos() as u64);
                }
                let from = endpoints[i].node();
                for p in self.out.drain(..) {
                    world.send(now, from, p);
                }
                self.mark_dirty(i);
            }
            // Packets delivered to nodes with no endpoint vanish (a
            // misconfigured topology shows up in link stats).
        }
        self.arrivals = arrivals;
    }

    /// Apply one due fault action: link faults go to the world, endpoint
    /// faults dispatch through the registry to
    /// [`Endpoint::inject_fault`]. A fault addressed to a node with no
    /// registered endpoint is ignored (same policy as stray arrivals).
    fn apply_fault(
        &mut self,
        now: SimTime,
        world: &mut NetWorld,
        endpoints: &mut [&mut dyn Endpoint],
        action: FaultAction,
    ) {
        let m = self
            .fault_metrics
            .get_or_insert_with(FaultMetrics::register);
        match action {
            FaultAction::LinkOutage { link, until } => {
                m.link_outage.inc();
                world.set_outage(link, until);
            }
            FaultAction::SetBurstLoss { link, model } => {
                if model.is_some() {
                    m.burst_window.inc();
                }
                world.set_burst_loss(link, model);
            }
            FaultAction::Endpoint { node, fault } => {
                if let Some(i) = endpoint_index(&self.node_map, node) {
                    match fault {
                        EndpointFault::CrashRestart { .. } => m.endpoint_crash.inc(),
                        EndpointFault::Unavailable { .. } => m.endpoint_unavailable.inc(),
                    }
                    endpoints[i].inject_fault(now, &fault);
                    self.mark_dirty(i);
                }
            }
        }
    }
}

/// Drive `endpoints` over `world` from time zero until no event remains
/// at or before `until`. Returns the time of the last processed event.
/// One-shot convenience over [`Driver`]; for segmented runs keep a
/// `Driver` and call [`Driver::run_to`] repeatedly.
pub fn run_until(
    world: &mut NetWorld,
    endpoints: &mut [&mut dyn Endpoint],
    until: SimTime,
) -> SimTime {
    Driver::new().run_to(world, endpoints, until)
}

/// Drive `endpoints` over `world` until no event remains at or before
/// `until`, with the clock starting at `from`. One-shot convenience over
/// [`Driver::starting_at`].
///
/// # Panics
/// Panics if endpoints livelock (an endpoint keeps reporting a due
/// `poll_at` without making progress).
pub fn run_between(
    world: &mut NetWorld,
    endpoints: &mut [&mut dyn Endpoint],
    from: SimTime,
    until: SimTime,
) -> SimTime {
    Driver::starting_at(from).run_to(world, endpoints, until)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::packet::Packet;
    use crate::topology::Topology;
    use bytes::Bytes;
    use cellbricks_sim::{SimDuration, SimRng};
    use std::net::Ipv4Addr;

    const IP_A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const IP_B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    /// Sends one packet to `dst` every `interval`; records receptions.
    struct Periodic {
        node: NodeId,
        dst: Ipv4Addr,
        next: SimTime,
        interval: SimDuration,
        sent: u32,
        limit: u32,
        received: Vec<SimTime>,
    }

    impl Endpoint for Periodic {
        fn node(&self) -> NodeId {
            self.node
        }
        fn handle_packet(&mut self, now: SimTime, _pkt: Packet, _out: &mut Vec<Packet>) {
            self.received.push(now);
        }
        fn poll_at(&self) -> Option<SimTime> {
            (self.sent < self.limit).then_some(self.next)
        }
        fn poll(&mut self, now: SimTime, out: &mut Vec<Packet>) {
            while self.sent < self.limit && self.next <= now {
                out.push(Packet::control(IP_A, self.dst, Bytes::from_static(b"p")));
                self.sent += 1;
                self.next += self.interval;
            }
        }
    }

    fn two_node_world() -> (NetWorld, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let l = t.add_symmetric_link(a, b, LinkConfig::delay_only(SimDuration::from_millis(1)));
        t.add_default_route(a, l);
        t.add_default_route(b, l);
        (NetWorld::new(t, SimRng::new(1)), a, b)
    }

    fn periodic(node: NodeId, dst: Ipv4Addr, limit: u32) -> Periodic {
        Periodic {
            node,
            dst,
            next: SimTime::from_millis(10),
            interval: SimDuration::from_millis(10),
            sent: 0,
            limit,
            received: Vec::new(),
        }
    }

    #[test]
    fn segmented_run_matches_single_run() {
        let run = |segments: &[u64]| -> Vec<SimTime> {
            let (mut world, a, b) = two_node_world();
            let mut pa = periodic(a, IP_B, 50);
            let mut pb = periodic(b, IP_A, 0);
            let mut driver = Driver::new();
            for &s in segments {
                driver.run_to(&mut world, &mut [&mut pa, &mut pb], SimTime::from_millis(s));
            }
            pb.received.clone()
        };
        let single = run(&[1_000]);
        let segmented = run(&[3, 17, 200, 201, 550, 1_000]);
        assert_eq!(single.len(), 50);
        assert_eq!(single, segmented);
    }

    #[test]
    fn rearmed_timer_invalidates_stale_entry() {
        let (mut world, a, b) = two_node_world();
        let mut pa = periodic(a, IP_B, 3);
        let mut pb = periodic(b, IP_A, 0);
        let mut driver = Driver::new();
        driver.run_to(
            &mut world,
            &mut [&mut pa, &mut pb],
            SimTime::from_millis(15),
        );
        // Re-arm pa's timer earlier than its indexed 20 ms entry; the
        // driver must honour the new instant, not the stale one.
        pa.next = SimTime::from_millis(16);
        driver.run_to(
            &mut world,
            &mut [&mut pa, &mut pb],
            SimTime::from_millis(18),
        );
        assert_eq!(pa.sent, 2);
        driver.run_to(&mut world, &mut [&mut pa, &mut pb], SimTime::from_secs(1));
        assert_eq!(pa.sent, 3);
        assert_eq!(
            pb.received,
            vec![
                SimTime::from_millis(11),
                SimTime::from_millis(17),
                SimTime::from_millis(27),
            ]
        );
    }

    #[test]
    fn registry_rebuilds_when_endpoint_set_changes() {
        let (mut world, a, b) = two_node_world();
        let mut driver = Driver::new();
        {
            let mut pa = periodic(a, IP_B, 1);
            let mut pb = periodic(b, IP_A, 0);
            driver.run_to(&mut world, &mut [&mut pa, &mut pb], SimTime::from_secs(1));
            assert_eq!(pb.received.len(), 1);
        }
        // A different endpoint set on the same driver: sender now at b.
        let mut pa = periodic(a, IP_B, 0);
        let mut pb = periodic(b, IP_A, 2);
        pb.next = SimTime::from_secs(2);
        driver.run_to(&mut world, &mut [&mut pb, &mut pa], SimTime::from_secs(3));
        assert_eq!(pa.received.len(), 2);
    }

    #[test]
    fn fault_plan_outage_drops_in_window() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let l = t.add_symmetric_link(a, b, LinkConfig::delay_only(SimDuration::from_millis(1)));
        t.add_default_route(a, l);
        t.add_default_route(b, l);
        let mut world = NetWorld::new(t, SimRng::new(1));
        // Sends at 10, 20, 30, 40, 50 ms; outage covers [15, 25) ms.
        let mut pa = periodic(a, IP_B, 5);
        let mut pb = periodic(b, IP_A, 0);
        let mut driver = Driver::new();
        let mut plan = FaultPlan::new();
        plan.link_outage(l, SimTime::from_millis(15), SimDuration::from_millis(10));
        driver.set_fault_plan(plan);
        assert_eq!(driver.pending_faults(), 1);
        driver.run_to(&mut world, &mut [&mut pa, &mut pb], SimTime::from_secs(1));
        assert_eq!(driver.pending_faults(), 0);
        assert_eq!(pb.received.len(), 4);
        assert_eq!(world.link_stats(l).ab_dropped, 1);
    }

    /// Probe recording delivered endpoint faults.
    struct FaultProbe {
        node: NodeId,
        hits: Vec<(SimTime, EndpointFault)>,
    }

    impl Endpoint for FaultProbe {
        fn node(&self) -> NodeId {
            self.node
        }
        fn handle_packet(&mut self, _now: SimTime, _pkt: Packet, _out: &mut Vec<Packet>) {}
        fn poll_at(&self) -> Option<SimTime> {
            None
        }
        fn poll(&mut self, _now: SimTime, _out: &mut Vec<Packet>) {}
        fn inject_fault(&mut self, now: SimTime, fault: &EndpointFault) {
            self.hits.push((now, *fault));
        }
    }

    #[test]
    fn endpoint_fault_dispatches_even_without_other_events() {
        let (mut world, a, b) = two_node_world();
        let mut pa = FaultProbe {
            node: a,
            hits: vec![],
        };
        let mut pb = periodic(b, IP_A, 0);
        let mut driver = Driver::new();
        let mut plan = FaultPlan::new();
        plan.crash_restart(a, SimTime::from_millis(700), SimDuration::from_millis(50));
        plan.unavailable(b, SimTime::from_millis(800), SimDuration::from_millis(10));
        driver.set_fault_plan(plan);
        driver.run_to(&mut world, &mut [&mut pa, &mut pb], SimTime::from_secs(1));
        assert_eq!(
            pa.hits,
            vec![(
                SimTime::from_millis(700),
                EndpointFault::CrashRestart {
                    restart_at: SimTime::from_millis(750)
                }
            )]
        );
        // The fault for b targets an endpoint that ignores it (default
        // impl on Periodic): delivery must not panic or stall the run.
        assert_eq!(driver.pending_faults(), 0);
    }

    #[test]
    fn wrappers_drive_to_completion() {
        let (mut world, a, b) = two_node_world();
        let mut pa = periodic(a, IP_B, 4);
        let mut pb = periodic(b, IP_A, 0);
        let last = run_until(&mut world, &mut [&mut pa, &mut pb], SimTime::from_secs(1));
        assert_eq!(pb.received.len(), 4);
        assert_eq!(last, SimTime::from_millis(41));
        let mut pc = periodic(a, IP_B, 5);
        pc.next = SimTime::from_secs(2);
        run_between(
            &mut world,
            &mut [&mut pc, &mut pb],
            SimTime::from_secs(1),
            SimTime::from_secs(3),
        );
        assert_eq!(pb.received.len(), 9);
    }
}
