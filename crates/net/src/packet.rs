//! Wire representations.
//!
//! Data-plane payloads are content-free (only byte counts are simulated,
//! as in most packet-level simulators), while control-plane payloads (NAS
//! messages, SAP, traffic reports) carry real encoded bytes because their
//! cryptographic content matters.

use bytes::Bytes;
use smallvec::SmallVec;
use std::net::Ipv4Addr;

/// RFC 2018 option-space limit: at most 3 SACK blocks fit in the TCP
/// option field alongside a timestamp option, and real stacks send the
/// blocks nearest the cumulative ACK first. Senders must respect this
/// cap; [`TcpSegment::header_len`] clamps to it defensively.
pub const MAX_SACK_BLOCKS: usize = 3;

/// SACK block list: `[start, end)` ranges, stored inline — carrying (and
/// cloning) a segment with up to [`MAX_SACK_BLOCKS`] blocks never touches
/// the heap.
pub type SackBlocks = SmallVec<[(u64, u64); MAX_SACK_BLOCKS]>;

/// A transport endpoint address (IP + port).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Endpoint {
    /// IPv4 address.
    pub ip: Ipv4Addr,
    /// Port number.
    pub port: u16,
}

impl Endpoint {
    /// Construct an endpoint.
    #[must_use]
    pub fn new(ip: Ipv4Addr, port: u16) -> Self {
        Self { ip, port }
    }
}

impl core::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// TCP header flags (only those the simulation uses).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TcpFlags {
    /// Synchronize (connection setup).
    pub syn: bool,
    /// Acknowledgement field is valid.
    pub ack: bool,
    /// Finish (orderly close).
    pub fin: bool,
    /// Reset.
    pub rst: bool,
}

impl TcpFlags {
    /// SYN only.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
    };
    /// SYN+ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
    };
    /// ACK only.
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
    };
    /// RST.
    pub const RST: TcpFlags = TcpFlags {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
    };
}

/// MPTCP signalling carried in TCP options (RFC 6824 semantics, abstracted).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MpSignal {
    /// `MP_CAPABLE`: the initial subflow of an MPTCP connection, carrying
    /// the connection token that later `MP_JOIN`s reference.
    Capable {
        /// Connection token.
        token: u64,
    },
    /// `MP_JOIN`: attach a new subflow to the connection with this token.
    Join {
        /// Connection token.
        token: u64,
    },
    /// `REMOVE_ADDR`: the peer should drop subflows using this address.
    RemoveAddr {
        /// The address being withdrawn.
        addr: Ipv4Addr,
    },
}

/// A simulated TCP segment.
///
/// Sequence numbers are 64-bit and data is content-free: only
/// `payload_len` is carried. `data_seq` is the MPTCP DSS mapping for the
/// payload (connection-level sequence of the first payload byte).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Subflow-level sequence number of the first payload byte.
    pub seq: u64,
    /// Cumulative acknowledgement (valid if `flags.ack`).
    pub ack: u64,
    /// Header flags.
    pub flags: TcpFlags,
    /// Payload length in bytes (content-free).
    pub payload_len: u32,
    /// Receive window in bytes.
    pub window: u32,
    /// MPTCP option, if any.
    pub mp: Option<MpSignal>,
    /// MPTCP DSS mapping: connection-level sequence of the payload.
    pub data_seq: Option<u64>,
    /// MPTCP connection-level cumulative data ACK.
    pub data_ack: Option<u64>,
    /// SACK blocks: out-of-order ranges the receiver holds
    /// (`[start, end)` pairs, nearest to the cumulative ACK first), at
    /// most [`MAX_SACK_BLOCKS`] of them.
    pub sack: SackBlocks,
}

impl TcpSegment {
    /// Header bytes on the wire (IP + TCP + options, approximate).
    #[must_use]
    pub fn header_len(&self) -> u32 {
        let mut len = 40; // IPv4 + TCP base headers.
        if self.mp.is_some() {
            len += 12;
        }
        if self.data_seq.is_some() || self.data_ack.is_some() {
            len += 20; // DSS option.
        }
        if !self.sack.is_empty() {
            // SACK option; the block count can never exceed what the
            // 40-byte option field fits.
            len += 2 + 8 * self.sack.len().min(MAX_SACK_BLOCKS) as u32;
        }
        len
    }
}

/// What a packet carries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PacketKind {
    /// A TCP segment (content-free payload).
    Tcp(TcpSegment),
    /// A UDP datagram with real payload bytes plus optional padding that
    /// counts toward the wire size but carries no content (e.g. RTP media).
    Udp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Real payload bytes (control traffic) — may be empty.
        payload: Bytes,
        /// Additional content-free payload bytes.
        padding: u32,
    },
    /// Link-layer / signalling control message with real bytes (NAS, S1AP,
    /// SAP transport between infrastructure nodes).
    Control(Bytes),
}

/// A packet in flight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Source IP address.
    pub src: Ipv4Addr,
    /// Destination IP address.
    pub dst: Ipv4Addr,
    /// Payload.
    pub kind: PacketKind,
}

impl Packet {
    /// A TCP packet.
    #[must_use]
    pub fn tcp(src: Ipv4Addr, dst: Ipv4Addr, seg: TcpSegment) -> Packet {
        Packet {
            src,
            dst,
            kind: PacketKind::Tcp(seg),
        }
    }

    /// A UDP packet with real payload bytes.
    #[must_use]
    pub fn udp(src: Endpoint, dst: Endpoint, payload: Bytes) -> Packet {
        Packet {
            src: src.ip,
            dst: dst.ip,
            kind: PacketKind::Udp {
                src_port: src.port,
                dst_port: dst.port,
                payload,
                padding: 0,
            },
        }
    }

    /// A UDP packet of content-free media bytes (e.g. an RTP frame).
    #[must_use]
    pub fn udp_media(src: Endpoint, dst: Endpoint, padding: u32) -> Packet {
        Packet {
            src: src.ip,
            dst: dst.ip,
            kind: PacketKind::Udp {
                src_port: src.port,
                dst_port: dst.port,
                payload: Bytes::new(),
                padding,
            },
        }
    }

    /// A control-plane packet.
    #[must_use]
    pub fn control(src: Ipv4Addr, dst: Ipv4Addr, payload: Bytes) -> Packet {
        Packet {
            src,
            dst,
            kind: PacketKind::Control(payload),
        }
    }

    /// Total bytes this packet occupies on the wire.
    #[must_use]
    pub fn wire_size(&self) -> u32 {
        match &self.kind {
            PacketKind::Tcp(seg) => seg.header_len() + seg.payload_len,
            PacketKind::Udp {
                payload, padding, ..
            } => 28 + payload.len() as u32 + padding,
            PacketKind::Control(payload) => 28 + payload.len() as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, last)
    }

    #[test]
    fn tcp_wire_size_includes_options() {
        let mut seg = TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            payload_len: 1000,
            window: 65535,
            mp: None,
            data_seq: None,
            data_ack: None,
            sack: SackBlocks::new(),
        };
        let base = Packet::tcp(ip(1), ip(2), seg.clone()).wire_size();
        assert_eq!(base, 1040);
        seg.mp = Some(MpSignal::Capable { token: 7 });
        let with_mp = Packet::tcp(ip(1), ip(2), seg.clone()).wire_size();
        assert_eq!(with_mp, 1052);
        seg.data_seq = Some(0);
        let with_dss = Packet::tcp(ip(1), ip(2), seg).wire_size();
        assert_eq!(with_dss, 1072);
    }

    #[test]
    fn sack_option_capped_at_three_blocks() {
        let mut seg = TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            payload_len: 0,
            window: 65535,
            mp: None,
            data_seq: None,
            data_ack: None,
            sack: SackBlocks::new(),
        };
        seg.sack.push((100, 200));
        assert_eq!(seg.header_len(), 40 + 2 + 8);
        seg.sack.push((300, 400));
        seg.sack.push((500, 600));
        assert_eq!(seg.header_len(), 40 + 2 + 24);
        assert!(!seg.sack.spilled(), "three blocks must stay inline");
        // A malformed producer pushing a fourth block cannot inflate the
        // header past the RFC 2018 option-space limit.
        seg.sack.push((700, 800));
        assert_eq!(seg.header_len(), 40 + 2 + 24);
    }

    #[test]
    fn udp_wire_size() {
        let p = Packet::udp(
            Endpoint::new(ip(1), 10),
            Endpoint::new(ip(2), 20),
            Bytes::from_static(b"hello"),
        );
        assert_eq!(p.wire_size(), 33);
        let m = Packet::udp_media(Endpoint::new(ip(1), 10), Endpoint::new(ip(2), 20), 160);
        assert_eq!(m.wire_size(), 188);
    }

    #[test]
    fn control_wire_size() {
        let p = Packet::control(ip(1), ip(2), Bytes::from_static(&[0u8; 100]));
        assert_eq!(p.wire_size(), 128);
    }

    #[test]
    fn endpoint_display() {
        let e = Endpoint::new(ip(9), 443);
        assert_eq!(e.to_string(), "10.0.0.9:443");
    }
}
