//! The network substrate.
//!
//! [`NetWorld`] is a pure packet mover over a [`Topology`]: endpoints hand
//! it packets, it applies link service (latency, shaping, loss, outages)
//! and delivers them to the far-end node at the right virtual time.
//! Protocol logic lives in [`Endpoint`] implementations — hosts, routers,
//! gateways — driven by the [`crate::engine::Driver`] engine.

use crate::fault::{BurstLoss, EndpointFault};
use crate::link::{DropCause, Offer};
use crate::packet::Packet;
use crate::topology::{LinkId, NodeId, Topology};
use cellbricks_sim::{EventQueue, SimRng, SimTime, TimerWheel};
use cellbricks_telemetry as telemetry;

/// A protocol participant attached to a topology node.
///
/// Endpoints are passive (smoltcp-style): the driver pushes received
/// packets in via [`handle_packet`](Endpoint::handle_packet), asks when
/// the endpoint next needs the clock via [`poll_at`](Endpoint::poll_at),
/// and ticks it via [`poll`](Endpoint::poll). Outgoing packets are pushed
/// into `out` and routed from the endpoint's node.
pub trait Endpoint {
    /// The topology node this endpoint is attached to.
    fn node(&self) -> NodeId;
    /// A packet arrived at this node.
    fn handle_packet(&mut self, now: SimTime, pkt: Packet, out: &mut Vec<Packet>);
    /// The earliest instant this endpoint needs to run (timers).
    fn poll_at(&self) -> Option<SimTime>;
    /// Run timers due at `now`.
    fn poll(&mut self, now: SimTime, out: &mut Vec<Packet>);
    /// A scripted fault hits this endpoint (see
    /// [`FaultPlan`](crate::fault::FaultPlan)). The default implementation
    /// ignores it — infrastructure endpoints opt in by overriding.
    fn inject_fault(&mut self, _now: SimTime, _fault: &EndpointFault) {}
}

struct Arrival {
    node: NodeId,
    pkt: Packet,
}

/// Per-link delivery/drop counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets delivered a→b.
    pub ab_delivered: u64,
    /// Packets dropped a→b.
    pub ab_dropped: u64,
    /// Packets delivered b→a.
    pub ba_delivered: u64,
    /// Packets dropped b→a.
    pub ba_dropped: u64,
    /// Packets the a→b token-bucket policer delayed.
    pub ab_policer_hits: u64,
    /// Packets the b→a token-bucket policer delayed.
    pub ba_policer_hits: u64,
}

/// Telemetry handles for the packet-moving hot path, registered once per
/// [`NetWorld`] so `send` pays one relaxed atomic load when disabled.
struct WorldMetrics {
    sent: telemetry::Counter,
    delivered: telemetry::Counter,
    delivered_bytes: telemetry::Counter,
    no_route: telemetry::Counter,
    drop_outage: telemetry::Counter,
    drop_loss: telemetry::Counter,
    drop_burst: telemetry::Counter,
    drop_queue_cap: telemetry::Counter,
    drop_policer: telemetry::Counter,
    policer_hits: telemetry::Counter,
    in_flight: telemetry::Gauge,
}

impl WorldMetrics {
    fn register() -> Self {
        Self {
            sent: telemetry::counter("net.world.packets_sent"),
            delivered: telemetry::counter("net.link.delivered"),
            delivered_bytes: telemetry::counter("net.link.delivered_bytes"),
            no_route: telemetry::counter("net.world.no_route_drops"),
            drop_outage: telemetry::counter("net.link.drops.outage"),
            drop_loss: telemetry::counter("net.link.drops.loss"),
            drop_burst: telemetry::counter("net.link.drops.burst"),
            drop_queue_cap: telemetry::counter("net.link.drops.queue_cap"),
            drop_policer: telemetry::counter("net.link.drops.policer"),
            policer_hits: telemetry::counter("net.link.policer_hits"),
            in_flight: telemetry::gauge("net.world.packets_in_flight"),
        }
    }
}

/// The network: topology plus in-flight packets.
pub struct NetWorld {
    topology: Topology,
    /// In-flight deliveries, indexed by arrival instant. A [`TimerWheel`]
    /// rather than an [`EventQueue`]: the slab freelist recycles queue
    /// entries, so the steady-state delivery path allocates nothing.
    arrivals: TimerWheel<Arrival>,
    rng: SimRng,
    /// Packets dropped because no route matched.
    pub no_route_drops: u64,
    metrics: WorldMetrics,
}

impl NetWorld {
    /// Wrap a topology; `rng` drives loss decisions.
    #[must_use]
    pub fn new(topology: Topology, rng: SimRng) -> Self {
        Self {
            topology,
            arrivals: TimerWheel::new(),
            rng,
            no_route_drops: 0,
            metrics: WorldMetrics::register(),
        }
    }

    /// The topology (routes may be inspected but links carry state).
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable topology access (e.g. to install routes mid-run).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// Send `pkt` from `from`: routes one hop and schedules the arrival.
    pub fn send(&mut self, now: SimTime, from: NodeId, pkt: Packet) {
        self.metrics.sent.inc();
        let Some(link) = self.topology.route(from, pkt.dst) else {
            self.no_route_drops += 1;
            self.metrics.no_route.inc();
            return;
        };
        let peer = self.topology.peer(link, from);
        let size = pkt.wire_size();
        let draw = self.rng.unit();
        let l = &mut self.topology.links[link.0];
        let dir = if l.a == from { &mut l.ab } else { &mut l.ba };
        // Links without a burst model consume exactly one sample per send,
        // so installing one elsewhere never perturbs this link's stream.
        let burst_draw = dir.burst_installed().then(|| self.rng.unit());
        let policer_before = dir.policer_hits;
        let offer = dir.offer(now, size, draw, burst_draw);
        if dir.policer_hits != policer_before {
            self.metrics.policer_hits.inc();
        }
        match offer {
            Offer::Deliver(at) => {
                self.metrics.delivered.inc();
                self.metrics.delivered_bytes.add(u64::from(size));
                self.arrivals.insert(at, Arrival { node: peer, pkt });
                self.metrics.in_flight.set(self.arrivals.len() as i64);
            }
            Offer::Drop(cause) => {
                match cause {
                    DropCause::Outage => self.metrics.drop_outage.inc(),
                    DropCause::Loss => self.metrics.drop_loss.inc(),
                    DropCause::Burst => self.metrics.drop_burst.inc(),
                    DropCause::QueueCap => self.metrics.drop_queue_cap.inc(),
                    DropCause::Policer => self.metrics.drop_policer.inc(),
                }
                telemetry::trace_instant("net.drop", "net", now.as_nanos());
            }
        }
    }

    /// The instant of the next pending arrival. `&mut` because peeking
    /// may advance the wheel's internal scan position.
    pub fn next_arrival_at(&mut self) -> Option<SimTime> {
        self.arrivals.peek_time()
    }

    /// Pop all arrivals due at or before `now`, appending them to `out` —
    /// a caller-owned reusable buffer, so the hot loop never allocates a
    /// fresh `Vec` per iteration.
    pub fn drain_arrivals_into(&mut self, now: SimTime, out: &mut Vec<(SimTime, NodeId, Packet)>) {
        let before = out.len();
        while let Some((at, arrival)) = self.arrivals.pop_due(now) {
            out.push((at, arrival.node, arrival.pkt));
        }
        if out.len() != before {
            self.metrics.in_flight.set(self.arrivals.len() as i64);
        }
    }

    /// Blackhole both directions of `link` until `until` (radio outage
    /// during a handover). Packets already in flight still arrive.
    pub fn set_outage(&mut self, link: LinkId, until: SimTime) {
        let l = &mut self.topology.links[link.0];
        l.ab.outage_until = until;
        l.ba.outage_until = until;
    }

    /// Install (`Some`) or remove (`None`) a Gilbert–Elliott burst-loss
    /// model on both directions of `link`; the chains restart good.
    pub fn set_burst_loss(&mut self, link: LinkId, model: Option<BurstLoss>) {
        let l = &mut self.topology.links[link.0];
        l.ab.set_burst_loss(model);
        l.ba.set_burst_loss(model);
    }

    /// Delivery/drop counters for `link`.
    #[must_use]
    pub fn link_stats(&self, link: LinkId) -> LinkStats {
        let l = &self.topology.links[link.0];
        LinkStats {
            ab_delivered: l.ab.delivered,
            ab_dropped: l.ab.dropped,
            ba_delivered: l.ba.delivered,
            ba_dropped: l.ba.dropped,
            ab_policer_hits: l.ab.policer_hits,
            ba_policer_hits: l.ba.policer_hits,
        }
    }
}

/// A store-and-forward router: re-emits every received packet (the
/// topology's route tables decide the next hop). An optional per-packet
/// processing delay models middlebox forwarding cost.
pub struct Router {
    node: NodeId,
    delay: cellbricks_sim::SimDuration,
    /// Packets waiting out their processing delay.
    pending: EventQueue<Packet>,
}

impl Router {
    /// A router at `node` with the given per-packet processing delay.
    #[must_use]
    pub fn new(node: NodeId, delay: cellbricks_sim::SimDuration) -> Self {
        Self {
            node,
            delay,
            pending: EventQueue::new(),
        }
    }
}

impl Endpoint for Router {
    fn node(&self) -> NodeId {
        self.node
    }

    fn handle_packet(&mut self, now: SimTime, pkt: Packet, out: &mut Vec<Packet>) {
        if self.delay == cellbricks_sim::SimDuration::ZERO {
            out.push(pkt);
        } else {
            self.pending.push(now + self.delay, pkt);
        }
    }

    fn poll_at(&self) -> Option<SimTime> {
        self.pending.peek_time()
    }

    fn poll(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        while let Some((_, pkt)) = self.pending.pop_due(now) {
            out.push(pkt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Driver;
    use crate::link::LinkConfig;
    use crate::packet::{Packet, PacketKind};
    use bytes::Bytes;
    use cellbricks_sim::SimDuration;
    use std::net::Ipv4Addr;

    const IP_A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const IP_C: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);

    /// Test endpoint: records receptions; can send one packet at start.
    struct Probe {
        node: NodeId,
        send_at: Option<(SimTime, Packet)>,
        received: Vec<(SimTime, Packet)>,
    }

    impl Endpoint for Probe {
        fn node(&self) -> NodeId {
            self.node
        }
        fn handle_packet(&mut self, now: SimTime, pkt: Packet, _out: &mut Vec<Packet>) {
            self.received.push((now, pkt));
        }
        fn poll_at(&self) -> Option<SimTime> {
            self.send_at.as_ref().map(|(t, _)| *t)
        }
        fn poll(&mut self, _now: SimTime, out: &mut Vec<Packet>) {
            if let Some((_, pkt)) = self.send_at.take() {
                out.push(pkt);
            }
        }
    }

    fn control(src: Ipv4Addr, dst: Ipv4Addr) -> Packet {
        Packet::control(src, dst, Bytes::from_static(b"x"))
    }

    #[test]
    fn two_hop_delivery_through_router() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let r = t.add_node("router");
        let c = t.add_node("c");
        let l_ar = t.add_symmetric_link(a, r, LinkConfig::delay_only(SimDuration::from_millis(5)));
        let l_rc = t.add_symmetric_link(r, c, LinkConfig::delay_only(SimDuration::from_millis(7)));
        t.add_default_route(a, l_ar);
        t.add_route(r, IP_C, 32, l_rc);
        t.add_default_route(c, l_rc);

        let mut world = NetWorld::new(t, SimRng::new(1));
        let mut pa = Probe {
            node: a,
            send_at: Some((SimTime::from_secs(1), control(IP_A, IP_C))),
            received: vec![],
        };
        let mut router = Router::new(r, SimDuration::ZERO);
        let mut pc = Probe {
            node: c,
            send_at: None,
            received: vec![],
        };
        Driver::new().run_to(
            &mut world,
            &mut [&mut pa, &mut router, &mut pc],
            SimTime::from_secs(10),
        );
        assert_eq!(pc.received.len(), 1);
        let (at, pkt) = &pc.received[0];
        assert_eq!(*at, SimTime::from_secs(1) + SimDuration::from_millis(12));
        assert!(matches!(pkt.kind, PacketKind::Control(_)));
    }

    #[test]
    fn router_processing_delay_adds_up() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let r = t.add_node("router");
        let c = t.add_node("c");
        let l_ar = t.add_symmetric_link(a, r, LinkConfig::delay_only(SimDuration::from_millis(1)));
        let l_rc = t.add_symmetric_link(r, c, LinkConfig::delay_only(SimDuration::from_millis(1)));
        t.add_default_route(a, l_ar);
        t.add_route(r, IP_C, 32, l_rc);
        t.add_default_route(c, l_rc);

        let mut world = NetWorld::new(t, SimRng::new(1));
        let mut pa = Probe {
            node: a,
            send_at: Some((SimTime::ZERO, control(IP_A, IP_C))),
            received: vec![],
        };
        let mut router = Router::new(r, SimDuration::from_millis(3));
        let mut pc = Probe {
            node: c,
            send_at: None,
            received: vec![],
        };
        Driver::new().run_to(
            &mut world,
            &mut [&mut pa, &mut router, &mut pc],
            SimTime::from_secs(1),
        );
        assert_eq!(pc.received[0].0, SimTime::from_nanos(5_000_000));
    }

    #[test]
    fn no_route_counts_drop() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.add_symmetric_link(a, b, LinkConfig::delay_only(SimDuration::from_millis(1)));
        // No routes installed at all.
        let mut world = NetWorld::new(t, SimRng::new(1));
        world.send(SimTime::ZERO, a, control(IP_A, IP_C));
        assert_eq!(world.no_route_drops, 1);
        assert!(world.next_arrival_at().is_none());
    }

    #[test]
    fn outage_blackholes_new_sends() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let l = t.add_symmetric_link(a, b, LinkConfig::delay_only(SimDuration::from_millis(1)));
        t.add_default_route(a, l);
        t.add_default_route(b, l);
        let mut world = NetWorld::new(t, SimRng::new(1));
        world.set_outage(l, SimTime::from_secs(5));
        world.send(SimTime::from_secs(1), a, control(IP_A, IP_C));
        assert!(world.next_arrival_at().is_none());
        world.send(SimTime::from_secs(6), a, control(IP_A, IP_C));
        assert!(world.next_arrival_at().is_some());
        let stats = world.link_stats(l);
        assert_eq!(stats.ab_dropped, 1);
        assert_eq!(stats.ab_delivered, 1);
    }

    #[test]
    fn lossy_link_drops_fraction() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let l = t.add_symmetric_link(
            a,
            b,
            LinkConfig::delay_only(SimDuration::from_millis(1)).with_loss(0.3),
        );
        t.add_default_route(a, l);
        let mut world = NetWorld::new(t, SimRng::new(42));
        for _ in 0..2000 {
            world.send(SimTime::ZERO, a, control(IP_A, IP_C));
        }
        let stats = world.link_stats(l);
        let loss = stats.ab_dropped as f64 / 2000.0;
        assert!((loss - 0.3).abs() < 0.05, "loss {loss}");
    }

    #[test]
    #[should_panic(expected = "share a node")]
    fn duplicate_endpoint_nodes_rejected() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let mut world = NetWorld::new(t, SimRng::new(1));
        let mut p1 = Probe {
            node: a,
            send_at: None,
            received: vec![],
        };
        let mut p2 = Probe {
            node: a,
            send_at: None,
            received: vec![],
        };
        Driver::new().run_to(&mut world, &mut [&mut p1, &mut p2], SimTime::from_secs(1));
    }
}
