//! The network substrate.
//!
//! [`NetWorld`] is a pure packet mover over a [`Topology`]: endpoints hand
//! it packets, it applies link service (latency, shaping, loss, outages)
//! and delivers them to the far-end node at the right virtual time.
//! Protocol logic lives in [`Endpoint`] implementations — hosts, routers,
//! gateways — driven by the [`crate::engine::Driver`] engine.

use crate::fault::{BurstLoss, EndpointFault};
use crate::link::{DropCause, Offer};
use crate::packet::Packet;
use crate::shard::{mix, ShardPlan};
use crate::topology::{LinkId, NodeId, Topology};
use cellbricks_sim::{EventQueue, SimRng, SimTime, TimerWheel};
use cellbricks_telemetry as telemetry;
use std::sync::Arc;

/// A protocol participant attached to a topology node.
///
/// Endpoints are passive (smoltcp-style): the driver pushes received
/// packets in via [`handle_packet`](Endpoint::handle_packet), asks when
/// the endpoint next needs the clock via [`poll_at`](Endpoint::poll_at),
/// and ticks it via [`poll`](Endpoint::poll). Outgoing packets are pushed
/// into `out` and routed from the endpoint's node.
pub trait Endpoint {
    /// The topology node this endpoint is attached to.
    fn node(&self) -> NodeId;
    /// A packet arrived at this node.
    fn handle_packet(&mut self, now: SimTime, pkt: Packet, out: &mut Vec<Packet>);
    /// The earliest instant this endpoint needs to run (timers).
    fn poll_at(&self) -> Option<SimTime>;
    /// Run timers due at `now`.
    fn poll(&mut self, now: SimTime, out: &mut Vec<Packet>);
    /// A scripted fault hits this endpoint (see
    /// [`FaultPlan`](crate::fault::FaultPlan)). The default implementation
    /// ignores it — infrastructure endpoints opt in by overriding.
    fn inject_fault(&mut self, _now: SimTime, _fault: &EndpointFault) {}
}

struct Arrival {
    node: NodeId,
    pkt: Packet,
    /// Canonical stream key `(link << 1) | direction` — the total order
    /// over same-instant arrivals in sharded mode. 0 in legacy mode
    /// (where wheel FIFO order is the contract).
    key: u32,
    /// Per-stream insertion sequence (sharded mode; 0 in legacy mode).
    seq: u64,
}

/// A packet bound for a node another shard owns, carried from the source
/// shard's [`NetWorld`] to the destination shard at the conservative
/// sync barrier (see [`crate::shard`]).
pub struct CrossPacket {
    dst_shard: u32,
    at: SimTime,
    node: NodeId,
    key: u32,
    seq: u64,
    pkt: Packet,
}

impl CrossPacket {
    /// The shard that owns the destination node.
    #[must_use]
    pub fn dst_shard(&self) -> usize {
        self.dst_shard as usize
    }

    /// The arrival instant at the destination node.
    #[must_use]
    pub fn arrives_at(&self) -> SimTime {
        self.at
    }
}

/// Sharded-mode state of a [`NetWorld`] slice (absent on the legacy
/// single-world path, which the figure-replay gate pins byte-for-byte).
///
/// Determinism across shard counts hinges on two ideas here:
/// * every link **direction** gets its own RNG stream, seeded from
///   `(stream_seed, link, dir)` — a direction is only ever exercised by
///   the shard owning its source node, so the sample sequence any
///   direction sees is the same no matter how nodes are partitioned;
/// * every delivered packet is tagged `(key, seq)` = (direction, per-
///   direction insertion ordinal), and arrivals dispatch in
///   `(time, key, seq)` order — a total order independent of which shard
///   produced the packet or when it crossed the barrier.
struct ShardState {
    /// This world's shard index.
    shard: u32,
    /// Owning shard per node, indexed by dense `NodeId`.
    node_shard: Arc<Vec<u32>>,
    /// One RNG per link direction, indexed `[link][dir]`.
    dir_rngs: Vec<[SimRng; 2]>,
    /// Per-direction delivery ordinals, indexed `[link][dir]`.
    dir_seq: Vec<[u64; 2]>,
    /// Deliveries bound for other shards, awaiting the barrier.
    outbox: Vec<CrossPacket>,
}

/// Per-link delivery/drop counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets delivered a→b.
    pub ab_delivered: u64,
    /// Packets dropped a→b.
    pub ab_dropped: u64,
    /// Packets delivered b→a.
    pub ba_delivered: u64,
    /// Packets dropped b→a.
    pub ba_dropped: u64,
    /// Packets the a→b token-bucket policer delayed.
    pub ab_policer_hits: u64,
    /// Packets the b→a token-bucket policer delayed.
    pub ba_policer_hits: u64,
}

/// Telemetry handles for the packet-moving hot path, registered once per
/// [`NetWorld`] so `send` pays one relaxed atomic load when disabled.
struct WorldMetrics {
    sent: telemetry::Counter,
    delivered: telemetry::Counter,
    delivered_bytes: telemetry::Counter,
    no_route: telemetry::Counter,
    drop_outage: telemetry::Counter,
    drop_loss: telemetry::Counter,
    drop_burst: telemetry::Counter,
    drop_queue_cap: telemetry::Counter,
    drop_policer: telemetry::Counter,
    policer_hits: telemetry::Counter,
    in_flight: telemetry::Gauge,
}

impl WorldMetrics {
    fn register() -> Self {
        Self {
            sent: telemetry::counter("net.world.packets_sent"),
            delivered: telemetry::counter("net.link.delivered"),
            delivered_bytes: telemetry::counter("net.link.delivered_bytes"),
            no_route: telemetry::counter("net.world.no_route_drops"),
            drop_outage: telemetry::counter("net.link.drops.outage"),
            drop_loss: telemetry::counter("net.link.drops.loss"),
            drop_burst: telemetry::counter("net.link.drops.burst"),
            drop_queue_cap: telemetry::counter("net.link.drops.queue_cap"),
            drop_policer: telemetry::counter("net.link.drops.policer"),
            policer_hits: telemetry::counter("net.link.policer_hits"),
            in_flight: telemetry::gauge("net.world.packets_in_flight"),
        }
    }
}

/// The network: topology plus in-flight packets.
pub struct NetWorld {
    topology: Topology,
    /// In-flight deliveries, indexed by arrival instant. A [`TimerWheel`]
    /// rather than an [`EventQueue`]: the slab freelist recycles queue
    /// entries, so the steady-state delivery path allocates nothing.
    arrivals: TimerWheel<Arrival>,
    rng: SimRng,
    /// Packets dropped because no route matched.
    pub no_route_drops: u64,
    metrics: WorldMetrics,
    /// Sharded-mode state; `None` on the legacy single-world path.
    shard: Option<Box<ShardState>>,
    /// Scratch for the canonical-order drain (sharded mode only).
    drain_scratch: Vec<(SimTime, u32, u64, NodeId, Packet)>,
}

impl NetWorld {
    /// Wrap a topology; `rng` drives loss decisions.
    #[must_use]
    pub fn new(topology: Topology, rng: SimRng) -> Self {
        Self {
            topology,
            arrivals: TimerWheel::new(),
            rng,
            no_route_drops: 0,
            metrics: WorldMetrics::register(),
            shard: None,
            drain_scratch: Vec::new(),
        }
    }

    /// Split this world into one slice per shard of `plan`.
    ///
    /// Each slice clones the topology (route tables only for owned
    /// nodes) and carries its own arrival wheel; loss/burst decisions
    /// switch from the world RNG to per-link-direction streams seeded
    /// from `stream_seed`, which is what makes results bit-identical for
    /// any shard count (including 1). Sharded results therefore differ
    /// from the legacy path's — the legacy RNG stream is pinned by the
    /// figure-replay gate and is not touched.
    ///
    /// # Panics
    /// Panics if packets are already in flight (split before traffic).
    #[must_use]
    pub fn into_shards(mut self, plan: &ShardPlan, stream_seed: u64) -> Vec<NetWorld> {
        assert!(
            self.arrivals.is_empty(),
            "into_shards with packets in flight"
        );
        let node_shard = plan.node_shard_arc();
        assert_eq!(
            node_shard.len(),
            self.topology.node_count(),
            "shard plan built for a different topology"
        );
        let links = self.topology.link_count();
        let topo = std::mem::take(&mut self.topology);
        (0..plan.shards())
            .map(|s| {
                let dir_rngs = (0..links)
                    .map(|l| {
                        let l = l as u64;
                        [
                            SimRng::new(mix(stream_seed, l << 1)),
                            SimRng::new(mix(stream_seed, (l << 1) | 1)),
                        ]
                    })
                    .collect();
                NetWorld {
                    topology: topo.clone_for_shard(|n| node_shard[n] == s as u32),
                    arrivals: TimerWheel::new(),
                    // Unused by sharded sends; kept so the API surface
                    // (e.g. future per-shard jitter) has a stream.
                    rng: SimRng::new(mix(stream_seed, 0x5eed_0000 | s as u64)),
                    no_route_drops: 0,
                    metrics: WorldMetrics::register(),
                    shard: Some(Box::new(ShardState {
                        shard: s as u32,
                        node_shard: node_shard.clone(),
                        dir_rngs,
                        dir_seq: vec![[0; 2]; links],
                        outbox: Vec::new(),
                    })),
                    drain_scratch: Vec::new(),
                }
            })
            .collect()
    }

    /// This world's shard index (`None` on the legacy path).
    #[must_use]
    pub fn shard_id(&self) -> Option<usize> {
        self.shard.as_ref().map(|s| s.shard as usize)
    }

    /// The topology (routes may be inspected but links carry state).
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable topology access (e.g. to install routes mid-run).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// Send `pkt` from `from`: routes one hop and schedules the arrival.
    pub fn send(&mut self, now: SimTime, from: NodeId, pkt: Packet) {
        self.metrics.sent.inc();
        let Some(link) = self.topology.route(from, pkt.dst) else {
            self.no_route_drops += 1;
            self.metrics.no_route.inc();
            return;
        };
        let peer = self.topology.peer(link, from);
        let size = pkt.wire_size();
        // Loss samples: legacy mode draws from the world RNG in the exact
        // order the figure-replay gate pins; sharded mode draws from the
        // per-direction stream so the sequence a direction sees does not
        // depend on the partition (see [`ShardState`]).
        let dir_is_ba = {
            let l = &self.topology.links[link.0];
            l.a != from
        };
        let (draw, burst_draw) = {
            let l = &self.topology.links[link.0];
            let dir = if dir_is_ba { &l.ba } else { &l.ab };
            let has_burst = dir.burst_installed();
            let r = match &mut self.shard {
                Some(sh) => &mut sh.dir_rngs[link.0][usize::from(dir_is_ba)],
                None => &mut self.rng,
            };
            let draw = r.unit();
            // Links without a burst model consume exactly one sample per
            // send, so installing one elsewhere never perturbs this
            // link's stream.
            (draw, has_burst.then(|| r.unit()))
        };
        let l = &mut self.topology.links[link.0];
        let dir = if dir_is_ba { &mut l.ba } else { &mut l.ab };
        let policer_before = dir.policer_hits;
        let offer = dir.offer(now, size, draw, burst_draw);
        if dir.policer_hits != policer_before {
            self.metrics.policer_hits.inc();
        }
        match offer {
            Offer::Deliver(at) => {
                self.metrics.delivered.inc();
                self.metrics.delivered_bytes.add(u64::from(size));
                let (key, seq, remote) = match &mut self.shard {
                    Some(sh) => {
                        let d = usize::from(dir_is_ba);
                        let seq = sh.dir_seq[link.0][d];
                        sh.dir_seq[link.0][d] += 1;
                        let key = (link.0 as u32) << 1 | d as u32;
                        let dst = sh.node_shard[peer.0];
                        (key, seq, (dst != sh.shard).then_some(dst))
                    }
                    None => (0, 0, None),
                };
                if let Some(dst_shard) = remote {
                    // Bound for another shard: park it in the outbox for
                    // the barrier exchange instead of the local wheel.
                    self.shard.as_mut().unwrap().outbox.push(CrossPacket {
                        dst_shard,
                        at,
                        node: peer,
                        key,
                        seq,
                        pkt,
                    });
                } else {
                    self.arrivals.insert(
                        at,
                        Arrival {
                            node: peer,
                            pkt,
                            key,
                            seq,
                        },
                    );
                    self.metrics.in_flight.add(1);
                }
            }
            Offer::Drop(cause) => {
                match cause {
                    DropCause::Outage => self.metrics.drop_outage.inc(),
                    DropCause::Loss => self.metrics.drop_loss.inc(),
                    DropCause::Burst => self.metrics.drop_burst.inc(),
                    DropCause::QueueCap => self.metrics.drop_queue_cap.inc(),
                    DropCause::Policer => self.metrics.drop_policer.inc(),
                }
                telemetry::trace_instant("net.drop", "net", now.as_nanos());
            }
        }
    }

    /// The instant of the next pending arrival. `&mut` because peeking
    /// may advance the wheel's internal scan position.
    pub fn next_arrival_at(&mut self) -> Option<SimTime> {
        self.arrivals.peek_time()
    }

    /// Pop all arrivals due at or before `now`, appending them to `out` —
    /// a caller-owned reusable buffer, so the hot loop never allocates a
    /// fresh `Vec` per iteration.
    ///
    /// Legacy mode preserves the wheel's (time, FIFO) pop order exactly.
    /// Sharded mode re-sorts the drained batch into the canonical
    /// `(time, direction key, per-direction seq)` order — a total order
    /// that does not depend on wheel insertion order, and therefore not
    /// on which barrier window a cross-shard packet was injected in.
    pub fn drain_arrivals_into(&mut self, now: SimTime, out: &mut Vec<(SimTime, NodeId, Packet)>) {
        let before = out.len();
        if self.shard.is_some() {
            debug_assert!(self.drain_scratch.is_empty());
            while let Some((at, arrival)) = self.arrivals.pop_due(now) {
                self.drain_scratch
                    .push((at, arrival.key, arrival.seq, arrival.node, arrival.pkt));
            }
            self.drain_scratch.sort_unstable_by_key(|a| (a.0, a.1, a.2));
            out.extend(
                self.drain_scratch
                    .drain(..)
                    .map(|(at, _, _, node, pkt)| (at, node, pkt)),
            );
        } else {
            while let Some((at, arrival)) = self.arrivals.pop_due(now) {
                out.push((at, arrival.node, arrival.pkt));
            }
        }
        let drained = out.len() - before;
        if drained > 0 {
            self.metrics.in_flight.add(-(drained as i64));
        }
    }

    /// Move this shard's pending cross-shard deliveries into `out`
    /// (called by the barrier loop after each window). No-op in legacy
    /// mode.
    pub fn drain_outbox_into(&mut self, out: &mut Vec<CrossPacket>) {
        if let Some(sh) = &mut self.shard {
            out.append(&mut sh.outbox);
        }
    }

    /// Accept cross-shard deliveries produced by other shards' worlds.
    /// Arrival instants are conservatively in the future (≥ the barrier
    /// horizon); the canonical drain order makes the wheel insertion
    /// order here irrelevant.
    ///
    /// # Panics
    /// Panics if called on a legacy (non-sharded) world or handed a
    /// packet owned by a different shard.
    pub fn inject_cross(&mut self, batch: impl IntoIterator<Item = CrossPacket>) {
        let sh = self.shard.as_ref().expect("inject_cross on legacy world");
        let shard = sh.shard;
        let mut n = 0i64;
        for m in batch {
            assert_eq!(m.dst_shard, shard, "cross packet routed to wrong shard");
            self.arrivals.insert(
                m.at,
                Arrival {
                    node: m.node,
                    pkt: m.pkt,
                    key: m.key,
                    seq: m.seq,
                },
            );
            n += 1;
        }
        if n > 0 {
            self.metrics.in_flight.add(n);
        }
    }

    /// Blackhole both directions of `link` until `until` (radio outage
    /// during a handover). Packets already in flight still arrive.
    pub fn set_outage(&mut self, link: LinkId, until: SimTime) {
        let l = &mut self.topology.links[link.0];
        l.ab.outage_until = until;
        l.ba.outage_until = until;
    }

    /// Install (`Some`) or remove (`None`) a Gilbert–Elliott burst-loss
    /// model on both directions of `link`; the chains restart good.
    pub fn set_burst_loss(&mut self, link: LinkId, model: Option<BurstLoss>) {
        let l = &mut self.topology.links[link.0];
        l.ab.set_burst_loss(model);
        l.ba.set_burst_loss(model);
    }

    /// Delivery/drop counters for `link`.
    #[must_use]
    pub fn link_stats(&self, link: LinkId) -> LinkStats {
        let l = &self.topology.links[link.0];
        LinkStats {
            ab_delivered: l.ab.delivered,
            ab_dropped: l.ab.dropped,
            ba_delivered: l.ba.delivered,
            ba_dropped: l.ba.dropped,
            ab_policer_hits: l.ab.policer_hits,
            ba_policer_hits: l.ba.policer_hits,
        }
    }
}

/// A store-and-forward router: re-emits every received packet (the
/// topology's route tables decide the next hop). An optional per-packet
/// processing delay models middlebox forwarding cost.
pub struct Router {
    node: NodeId,
    delay: cellbricks_sim::SimDuration,
    /// Packets waiting out their processing delay.
    pending: EventQueue<Packet>,
}

impl Router {
    /// A router at `node` with the given per-packet processing delay.
    #[must_use]
    pub fn new(node: NodeId, delay: cellbricks_sim::SimDuration) -> Self {
        Self {
            node,
            delay,
            pending: EventQueue::new(),
        }
    }
}

impl Endpoint for Router {
    fn node(&self) -> NodeId {
        self.node
    }

    fn handle_packet(&mut self, now: SimTime, pkt: Packet, out: &mut Vec<Packet>) {
        if self.delay == cellbricks_sim::SimDuration::ZERO {
            out.push(pkt);
        } else {
            self.pending.push(now + self.delay, pkt);
        }
    }

    fn poll_at(&self) -> Option<SimTime> {
        self.pending.peek_time()
    }

    fn poll(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        while let Some((_, pkt)) = self.pending.pop_due(now) {
            out.push(pkt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Driver;
    use crate::link::LinkConfig;
    use crate::packet::{Packet, PacketKind};
    use bytes::Bytes;
    use cellbricks_sim::SimDuration;
    use std::net::Ipv4Addr;

    const IP_A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const IP_C: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);

    /// Test endpoint: records receptions; can send one packet at start.
    struct Probe {
        node: NodeId,
        send_at: Option<(SimTime, Packet)>,
        received: Vec<(SimTime, Packet)>,
    }

    impl Endpoint for Probe {
        fn node(&self) -> NodeId {
            self.node
        }
        fn handle_packet(&mut self, now: SimTime, pkt: Packet, _out: &mut Vec<Packet>) {
            self.received.push((now, pkt));
        }
        fn poll_at(&self) -> Option<SimTime> {
            self.send_at.as_ref().map(|(t, _)| *t)
        }
        fn poll(&mut self, _now: SimTime, out: &mut Vec<Packet>) {
            if let Some((_, pkt)) = self.send_at.take() {
                out.push(pkt);
            }
        }
    }

    fn control(src: Ipv4Addr, dst: Ipv4Addr) -> Packet {
        Packet::control(src, dst, Bytes::from_static(b"x"))
    }

    #[test]
    fn two_hop_delivery_through_router() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let r = t.add_node("router");
        let c = t.add_node("c");
        let l_ar = t.add_symmetric_link(a, r, LinkConfig::delay_only(SimDuration::from_millis(5)));
        let l_rc = t.add_symmetric_link(r, c, LinkConfig::delay_only(SimDuration::from_millis(7)));
        t.add_default_route(a, l_ar);
        t.add_route(r, IP_C, 32, l_rc);
        t.add_default_route(c, l_rc);

        let mut world = NetWorld::new(t, SimRng::new(1));
        let mut pa = Probe {
            node: a,
            send_at: Some((SimTime::from_secs(1), control(IP_A, IP_C))),
            received: vec![],
        };
        let mut router = Router::new(r, SimDuration::ZERO);
        let mut pc = Probe {
            node: c,
            send_at: None,
            received: vec![],
        };
        Driver::new().run_to(
            &mut world,
            &mut [&mut pa, &mut router, &mut pc],
            SimTime::from_secs(10),
        );
        assert_eq!(pc.received.len(), 1);
        let (at, pkt) = &pc.received[0];
        assert_eq!(*at, SimTime::from_secs(1) + SimDuration::from_millis(12));
        assert!(matches!(pkt.kind, PacketKind::Control(_)));
    }

    #[test]
    fn router_processing_delay_adds_up() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let r = t.add_node("router");
        let c = t.add_node("c");
        let l_ar = t.add_symmetric_link(a, r, LinkConfig::delay_only(SimDuration::from_millis(1)));
        let l_rc = t.add_symmetric_link(r, c, LinkConfig::delay_only(SimDuration::from_millis(1)));
        t.add_default_route(a, l_ar);
        t.add_route(r, IP_C, 32, l_rc);
        t.add_default_route(c, l_rc);

        let mut world = NetWorld::new(t, SimRng::new(1));
        let mut pa = Probe {
            node: a,
            send_at: Some((SimTime::ZERO, control(IP_A, IP_C))),
            received: vec![],
        };
        let mut router = Router::new(r, SimDuration::from_millis(3));
        let mut pc = Probe {
            node: c,
            send_at: None,
            received: vec![],
        };
        Driver::new().run_to(
            &mut world,
            &mut [&mut pa, &mut router, &mut pc],
            SimTime::from_secs(1),
        );
        assert_eq!(pc.received[0].0, SimTime::from_nanos(5_000_000));
    }

    #[test]
    fn no_route_counts_drop() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.add_symmetric_link(a, b, LinkConfig::delay_only(SimDuration::from_millis(1)));
        // No routes installed at all.
        let mut world = NetWorld::new(t, SimRng::new(1));
        world.send(SimTime::ZERO, a, control(IP_A, IP_C));
        assert_eq!(world.no_route_drops, 1);
        assert!(world.next_arrival_at().is_none());
    }

    #[test]
    fn outage_blackholes_new_sends() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let l = t.add_symmetric_link(a, b, LinkConfig::delay_only(SimDuration::from_millis(1)));
        t.add_default_route(a, l);
        t.add_default_route(b, l);
        let mut world = NetWorld::new(t, SimRng::new(1));
        world.set_outage(l, SimTime::from_secs(5));
        world.send(SimTime::from_secs(1), a, control(IP_A, IP_C));
        assert!(world.next_arrival_at().is_none());
        world.send(SimTime::from_secs(6), a, control(IP_A, IP_C));
        assert!(world.next_arrival_at().is_some());
        let stats = world.link_stats(l);
        assert_eq!(stats.ab_dropped, 1);
        assert_eq!(stats.ab_delivered, 1);
    }

    #[test]
    fn lossy_link_drops_fraction() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let l = t.add_symmetric_link(
            a,
            b,
            LinkConfig::delay_only(SimDuration::from_millis(1)).with_loss(0.3),
        );
        t.add_default_route(a, l);
        let mut world = NetWorld::new(t, SimRng::new(42));
        for _ in 0..2000 {
            world.send(SimTime::ZERO, a, control(IP_A, IP_C));
        }
        let stats = world.link_stats(l);
        let loss = stats.ab_dropped as f64 / 2000.0;
        assert!((loss - 0.3).abs() < 0.05, "loss {loss}");
    }

    #[test]
    #[should_panic(expected = "share a node")]
    fn duplicate_endpoint_nodes_rejected() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let mut world = NetWorld::new(t, SimRng::new(1));
        let mut p1 = Probe {
            node: a,
            send_at: None,
            received: vec![],
        };
        let mut p2 = Probe {
            node: a,
            send_at: None,
            received: vec![],
        };
        Driver::new().run_to(&mut world, &mut [&mut p1, &mut p2], SimTime::from_secs(1));
    }
}
