//! Nodes, links and longest-prefix routing.

use crate::link::{Direction, LinkConfig};
use std::net::Ipv4Addr;

/// Identifies a node in the topology.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifies a link in the topology.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LinkId(pub usize);

/// A route entry: `dst/prefix_len → link`.
#[derive(Clone, Debug)]
struct Route {
    net: u32,
    prefix_len: u8,
    link: LinkId,
}

impl Route {
    fn matches(&self, ip: Ipv4Addr) -> bool {
        if self.prefix_len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - u32::from(self.prefix_len));
        (u32::from(ip) & mask) == (self.net & mask)
    }
}

pub(crate) struct Node {
    pub(crate) name: String,
    routes: Vec<Route>,
    /// Partition label (bTelco/region) used by the sharded engine; nodes
    /// default to region 0 and single-region topologies shard trivially.
    pub(crate) region: u32,
}

pub(crate) struct Link {
    pub(crate) a: NodeId,
    pub(crate) b: NodeId,
    /// Direction a→b.
    pub(crate) ab: Direction,
    /// Direction b→a.
    pub(crate) ba: Direction,
}

/// The static network topology: named nodes, configured links, and
/// per-node longest-prefix route tables.
#[derive(Default)]
pub struct Topology {
    pub(crate) nodes: Vec<Node>,
    pub(crate) links: Vec<Link>,
}

impl Topology {
    /// An empty topology.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node (in region 0).
    pub fn add_node(&mut self, name: &str) -> NodeId {
        self.add_node_in_region(name, 0)
    }

    /// Add a node tagged with a bTelco/region label. The sharded engine
    /// partitions the topology by this label (see `crate::shard`).
    pub fn add_node_in_region(&mut self, name: &str, region: u32) -> NodeId {
        self.nodes.push(Node {
            name: name.to_string(),
            routes: Vec::new(),
            region,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Re-tag `node` with a region label (for topologies built by code
    /// that predates regions).
    pub fn set_region(&mut self, node: NodeId, region: u32) {
        self.nodes[node.0].region = region;
    }

    /// The region label of `node`.
    #[must_use]
    pub fn region(&self, node: NodeId) -> u32 {
        self.nodes[node.0].region
    }

    /// Add a bidirectional link between `a` and `b` with per-direction
    /// configurations (`ab` applies to packets flowing a→b).
    pub fn add_link(&mut self, a: NodeId, b: NodeId, ab: LinkConfig, ba: LinkConfig) -> LinkId {
        assert!(a != b, "self-links are not supported");
        self.links.push(Link {
            a,
            b,
            ab: Direction::new(ab),
            ba: Direction::new(ba),
        });
        LinkId(self.links.len() - 1)
    }

    /// Symmetric convenience: the same config in both directions.
    pub fn add_symmetric_link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) -> LinkId {
        self.add_link(a, b, cfg.clone(), cfg)
    }

    /// Install a route at `node`: traffic to `net/prefix_len` leaves via
    /// `link` (which must be attached to `node`).
    ///
    /// # Panics
    /// Panics if the link is not attached to the node.
    pub fn add_route(&mut self, node: NodeId, net: Ipv4Addr, prefix_len: u8, link: LinkId) {
        let l = &self.links[link.0];
        assert!(
            l.a == node || l.b == node,
            "route link {link:?} not attached to node {node:?}"
        );
        self.nodes[node.0].routes.push(Route {
            net: u32::from(net),
            prefix_len,
            link,
        });
    }

    /// Default route (0.0.0.0/0).
    pub fn add_default_route(&mut self, node: NodeId, link: LinkId) {
        self.add_route(node, Ipv4Addr::UNSPECIFIED, 0, link);
    }

    /// Replace any existing default route at `node` with one via `link`
    /// (how the UE's host retargets its radio link after a handover).
    pub fn replace_default_route(&mut self, node: NodeId, link: LinkId) {
        self.nodes[node.0].routes.retain(|r| r.prefix_len != 0);
        self.add_default_route(node, link);
    }

    /// Longest-prefix route lookup for traffic from `node` to `dst`.
    #[must_use]
    pub fn route(&self, node: NodeId, dst: Ipv4Addr) -> Option<LinkId> {
        self.nodes[node.0]
            .routes
            .iter()
            .filter(|r| r.matches(dst))
            .max_by_key(|r| r.prefix_len)
            .map(|r| r.link)
    }

    /// The node at the far end of `link` from `node`.
    ///
    /// # Panics
    /// Panics if the link is not attached to the node.
    #[must_use]
    pub fn peer(&self, link: LinkId, node: NodeId) -> NodeId {
        let l = &self.links[link.0];
        if l.a == node {
            l.b
        } else if l.b == node {
            l.a
        } else {
            panic!("node {node:?} not on link {link:?}")
        }
    }

    /// Node name (for diagnostics).
    #[must_use]
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.0].name
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The two endpoints of `link` (the `a` side first — packets on the
    /// `ab` direction flow a→b).
    #[must_use]
    pub fn link_ends(&self, link: LinkId) -> (NodeId, NodeId) {
        let l = &self.links[link.0];
        (l.a, l.b)
    }

    /// The propagation-delay floor of `link`: the smaller of its two
    /// directions' configured latencies. The sharded engine's lookahead
    /// is the minimum of this over all inter-shard links.
    #[must_use]
    pub fn link_latency_floor(&self, link: LinkId) -> cellbricks_sim::SimDuration {
        let l = &self.links[link.0];
        l.ab.config.latency.min(l.ba.config.latency)
    }

    /// One-way propagation latency of the cheapest path `from → to`,
    /// summing each hop's directional latency floor (no queueing, no
    /// jitter). Dijkstra over the static link set — deterministic, and
    /// independent of route tables, so harnesses can derive the RTT
    /// estimates a UE's SIM carries for broker-replica selection without
    /// simulating probes.
    #[must_use]
    pub fn path_latency(&self, from: NodeId, to: NodeId) -> Option<cellbricks_sim::SimDuration> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut best: Vec<Option<cellbricks_sim::SimDuration>> = vec![None; self.nodes.len()];
        let mut heap = BinaryHeap::new();
        best[from.0] = Some(cellbricks_sim::SimDuration::ZERO);
        heap.push(Reverse((cellbricks_sim::SimDuration::ZERO, from.0)));
        while let Some(Reverse((dist, n))) = heap.pop() {
            if best[n].is_some_and(|b| dist > b) {
                continue;
            }
            if n == to.0 {
                return Some(dist);
            }
            for l in &self.links {
                let (next, hop) = if l.a.0 == n {
                    (l.b.0, l.ab.config.latency)
                } else if l.b.0 == n {
                    (l.a.0, l.ba.config.latency)
                } else {
                    continue;
                };
                let cand = dist + hop;
                if best[next].is_none_or(|b| cand < b) {
                    best[next] = Some(cand);
                    heap.push(Reverse((cand, next)));
                }
            }
        }
        best[to.0]
    }

    /// Clone the topology for one shard: every node and link is present
    /// (so `LinkId`/`NodeId` stay globally valid), but route tables are
    /// kept only for nodes the shard owns — packets are only ever routed
    /// from owned nodes, and dropping the rest keeps per-shard clones
    /// lean at N=1M.
    pub(crate) fn clone_for_shard(&self, owns: impl Fn(usize) -> bool) -> Topology {
        Topology {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| Node {
                    name: n.name.clone(),
                    routes: if owns(i) {
                        n.routes.clone()
                    } else {
                        Vec::new()
                    },
                    region: n.region,
                })
                .collect(),
            links: self
                .links
                .iter()
                .map(|l| Link {
                    a: l.a,
                    b: l.b,
                    ab: l.ab.clone(),
                    ba: l.ba.clone(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellbricks_sim::SimDuration;

    fn cfg() -> LinkConfig {
        LinkConfig::delay_only(SimDuration::from_millis(1))
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        let l_ab = t.add_symmetric_link(a, b, cfg());
        let l_ac = t.add_symmetric_link(a, c, cfg());
        t.add_default_route(a, l_ab);
        t.add_route(a, Ipv4Addr::new(10, 1, 0, 0), 16, l_ac);
        assert_eq!(t.route(a, Ipv4Addr::new(10, 1, 2, 3)), Some(l_ac));
        assert_eq!(t.route(a, Ipv4Addr::new(8, 8, 8, 8)), Some(l_ab));
    }

    #[test]
    fn no_route_is_none() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.add_symmetric_link(a, b, cfg());
        assert_eq!(t.route(a, Ipv4Addr::new(1, 2, 3, 4)), None);
    }

    #[test]
    fn peer_resolution() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let l = t.add_symmetric_link(a, b, cfg());
        assert_eq!(t.peer(l, a), b);
        assert_eq!(t.peer(l, b), a);
    }

    #[test]
    #[should_panic(expected = "not attached")]
    fn route_must_use_attached_link() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        let l_bc = t.add_symmetric_link(b, c, cfg());
        t.add_default_route(a, l_bc);
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_rejected() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        t.add_symmetric_link(a, a, cfg());
    }

    #[test]
    fn replace_default_route_switches_link() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        let l_ab = t.add_symmetric_link(a, b, cfg());
        let l_ac = t.add_symmetric_link(a, c, cfg());
        t.add_default_route(a, l_ab);
        assert_eq!(t.route(a, Ipv4Addr::new(8, 8, 8, 8)), Some(l_ab));
        t.replace_default_route(a, l_ac);
        assert_eq!(t.route(a, Ipv4Addr::new(8, 8, 8, 8)), Some(l_ac));
    }

    #[test]
    fn exact_host_route() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let l = t.add_symmetric_link(a, b, cfg());
        t.add_route(a, Ipv4Addr::new(192, 168, 1, 7), 32, l);
        assert_eq!(t.route(a, Ipv4Addr::new(192, 168, 1, 7)), Some(l));
        assert_eq!(t.route(a, Ipv4Addr::new(192, 168, 1, 8)), None);
    }
}
