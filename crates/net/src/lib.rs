//! Simulated packet network substrate.
//!
//! This crate stands in for the physical networks of the CellBricks
//! evaluation: the srsLTE radio link, the operator backhaul, the wide-area
//! path to EC2, and — crucially — the T-Mobile access network whose
//! day/night token-bucket rate policing shapes every result in the paper's
//! §6.2 (see Appendix A). It is deliberately smoltcp-like: a passive,
//! poll-based packet mover on the virtual clock with no threads and no
//! wall-clock time.
//!
//! * [`packet`] — wire representations ([`Packet`], [`TcpSegment`], …),
//! * [`link`] — point-to-point links with latency, loss, drop-tail queueing
//!   and token-bucket shaping,
//! * [`policy`] — carrier rate-policy traces (day vs. night, Appendix A),
//! * [`topology`] — nodes, links and longest-prefix routes,
//! * [`world`] — the packet mover: [`NetWorld`] and the [`Endpoint`]
//!   trait,
//! * [`engine`] — the indexed simulation engine: the [`Driver`] that
//!   wakes endpoints through a timer index instead of a per-event scan,
//! * [`fault`] — deterministic fault injection: the [`FaultPlan`]
//!   scripting link outages, burst-loss windows and endpoint
//!   crash/unavailability on the virtual clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod fault;
pub mod link;
pub mod packet;
pub mod policy;
pub mod shard;
pub mod topology;
pub mod wire;
pub mod world;

pub use engine::{run_between, run_until, Driver};
pub use fault::{BurstLoss, EndpointFault, FaultAction, FaultPlan};
pub use link::{LinkConfig, RateSchedule, Shaper};
pub use packet::{
    Endpoint as EndpointAddr, MpSignal, Packet, PacketKind, SackBlocks, TcpFlags, TcpSegment,
    MAX_SACK_BLOCKS,
};
pub use policy::{CarrierPolicy, TimeOfDay};
pub use shard::{make_cells, merged_link_stats, run_sharded, ShardCell, ShardPlan};
pub use topology::{LinkId, NodeId, Topology};
pub use world::{CrossPacket, Endpoint, LinkStats, NetWorld, Router};
