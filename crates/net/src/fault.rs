//! Deterministic fault injection: the [`FaultPlan`].
//!
//! CellBricks assumes bTelcos are small, flaky and untrusted — attach,
//! handover and billing must all survive lost signalling, crashed
//! gateways and unreachable brokers (paper §4.2, §4.3). A [`FaultPlan`]
//! scripts those failures on the virtual clock:
//!
//! * **link faults** — outage windows / flap trains on any link, and
//!   Gilbert–Elliott burst-loss windows ([`BurstLoss`]) that replace the
//!   uniform loss model while active;
//! * **endpoint faults** — delivered to the afflicted endpoint through
//!   [`Endpoint::inject_fault`](crate::world::Endpoint::inject_fault):
//!   crash+restart (state is wiped — in-flight SAP sessions and metering
//!   state are lost) and unavailability windows (state survives, but the
//!   process neither receives nor sends).
//!
//! Determinism: a plan is fully materialized when it is built — the
//! seed-driven helpers ([`FaultPlan::random_flaps`]) draw from a
//! [`SimRng`] at *build* time, so two runs with the same seed execute the
//! byte-identical fault schedule. Events at equal instants apply in
//! insertion order ([`EventQueue`] FIFO tie-break). The
//! [`Driver`](crate::engine::Driver) owns the installed plan and applies
//! due faults before dispatching the events of each instant.

use crate::topology::{LinkId, NodeId};
use cellbricks_sim::{EventQueue, SimDuration, SimRng, SimTime};

/// A Gilbert–Elliott burst-loss model: a two-state Markov chain stepped
/// once per offered packet. In the *good* state packets drop with
/// `loss_good`; in the *bad* state with `loss_bad`. While installed it
/// replaces the link's uniform `loss` probability.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstLoss {
    /// Per-packet probability of entering the bad state from good.
    pub p_enter: f64,
    /// Per-packet probability of leaving the bad state back to good.
    pub p_exit: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
}

impl BurstLoss {
    /// A typical flaky-small-cell profile: rare, sticky bad states that
    /// drop most packets, near-clean good states.
    #[must_use]
    pub fn flaky_cell() -> Self {
        Self {
            p_enter: 0.02,
            p_exit: 0.25,
            loss_good: 0.001,
            loss_bad: 0.6,
        }
    }
}

/// A fault delivered to one endpoint (keyed by its topology node).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EndpointFault {
    /// The process crashes now and restarts at `restart_at`: volatile
    /// state (sessions, bearers, meters, queued output) is lost, and
    /// everything arriving before `restart_at` is dropped.
    CrashRestart {
        /// When the process is back up.
        restart_at: SimTime,
    },
    /// The process is unreachable until `until`: state survives, but
    /// nothing is received and nothing is emitted during the window.
    Unavailable {
        /// When the process is reachable again.
        until: SimTime,
    },
}

/// One scheduled fault action.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultAction {
    /// Blackhole both directions of `link` until `until`.
    LinkOutage {
        /// The afflicted link.
        link: LinkId,
        /// End of the outage window.
        until: SimTime,
    },
    /// Install (`Some`) or remove (`None`) a burst-loss model on `link`.
    SetBurstLoss {
        /// The afflicted link.
        link: LinkId,
        /// The model, or `None` to restore uniform loss.
        model: Option<BurstLoss>,
    },
    /// Deliver `fault` to the endpoint registered at `node`.
    Endpoint {
        /// The afflicted endpoint's node.
        node: NodeId,
        /// The fault to deliver.
        fault: EndpointFault,
    },
}

/// A scripted, deterministic schedule of faults, installed into a
/// [`Driver`](crate::engine::Driver) with
/// [`set_fault_plan`](crate::engine::Driver::set_fault_plan).
#[derive(Default)]
pub struct FaultPlan {
    events: EventQueue<FaultAction>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `action` at `at`.
    pub fn at(&mut self, at: SimTime, action: FaultAction) -> &mut Self {
        self.events.push(at, action);
        self
    }

    /// One link outage: `link` is dark over `[at, at + down)`.
    pub fn link_outage(&mut self, link: LinkId, at: SimTime, down: SimDuration) -> &mut Self {
        self.at(
            at,
            FaultAction::LinkOutage {
                link,
                until: at + down,
            },
        )
    }

    /// A train of `count` evenly spaced outages: dark for `down`, then up
    /// for `up`, starting at `from`.
    pub fn link_flaps(
        &mut self,
        link: LinkId,
        from: SimTime,
        count: u32,
        down: SimDuration,
        up: SimDuration,
    ) -> &mut Self {
        let mut t = from;
        for _ in 0..count {
            self.link_outage(link, t, down);
            t = t + down + up;
        }
        self
    }

    /// Seed-driven flap train: outages with exponential inter-arrival
    /// (`mean_up`) and exponential duration (`mean_down`) over
    /// `[from, until)`. Fully materialized here, so the schedule is a
    /// pure function of the rng state.
    pub fn random_flaps(
        &mut self,
        rng: &mut SimRng,
        link: LinkId,
        from: SimTime,
        until: SimTime,
        mean_up: SimDuration,
        mean_down: SimDuration,
    ) -> &mut Self {
        let mut t = from + SimDuration::from_secs_f64(rng.exponential(mean_up.as_secs_f64()));
        while t < until {
            let down =
                SimDuration::from_secs_f64(rng.exponential(mean_down.as_secs_f64()).max(1e-6));
            self.link_outage(link, t, down);
            t = t + down + SimDuration::from_secs_f64(rng.exponential(mean_up.as_secs_f64()));
        }
        self
    }

    /// A burst-loss window: `model` governs `link` over `[from, until)`,
    /// after which the uniform loss model is restored.
    pub fn burst_loss_window(
        &mut self,
        link: LinkId,
        from: SimTime,
        until: SimTime,
        model: BurstLoss,
    ) -> &mut Self {
        self.at(
            from,
            FaultAction::SetBurstLoss {
                link,
                model: Some(model),
            },
        );
        self.at(until, FaultAction::SetBurstLoss { link, model: None })
    }

    /// Crash the endpoint at `node` at `at`; it restarts `down` later
    /// with all volatile state lost.
    pub fn crash_restart(&mut self, node: NodeId, at: SimTime, down: SimDuration) -> &mut Self {
        self.at(
            at,
            FaultAction::Endpoint {
                node,
                fault: EndpointFault::CrashRestart {
                    restart_at: at + down,
                },
            },
        )
    }

    /// Make the endpoint at `node` unreachable over `[at, at + down)`,
    /// state intact.
    pub fn unavailable(&mut self, node: NodeId, at: SimTime, down: SimDuration) -> &mut Self {
        self.at(
            at,
            FaultAction::Endpoint {
                node,
                fault: EndpointFault::Unavailable { until: at + down },
            },
        )
    }

    /// The instant of the next scheduled fault.
    #[must_use]
    pub fn next_at(&self) -> Option<SimTime> {
        self.events.peek_time()
    }

    /// Pop the next fault due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, FaultAction)> {
        self.events.pop_due(now)
    }

    /// Number of scheduled (not yet applied) fault actions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flap_train_schedules_count_outages() {
        let mut plan = FaultPlan::new();
        plan.link_flaps(
            LinkId(3),
            SimTime::from_secs(1),
            4,
            SimDuration::from_millis(200),
            SimDuration::from_millis(800),
        );
        assert_eq!(plan.len(), 4);
        let (t0, a0) = plan.pop_due(SimTime::from_secs(100)).unwrap();
        assert_eq!(t0, SimTime::from_secs(1));
        assert_eq!(
            a0,
            FaultAction::LinkOutage {
                link: LinkId(3),
                until: SimTime::from_secs(1) + SimDuration::from_millis(200),
            }
        );
        let (t1, _) = plan.pop_due(SimTime::from_secs(100)).unwrap();
        assert_eq!(t1, SimTime::from_secs(2));
    }

    #[test]
    fn random_flaps_deterministic_per_seed() {
        let build = || {
            let mut rng = SimRng::new(99);
            let mut plan = FaultPlan::new();
            plan.random_flaps(
                &mut rng,
                LinkId(0),
                SimTime::ZERO,
                SimTime::from_secs(60),
                SimDuration::from_secs(5),
                SimDuration::from_millis(500),
            );
            let mut out = Vec::new();
            while let Some(e) = plan.pop_due(SimTime::from_secs(1_000)) {
                out.push(e);
            }
            out
        };
        let a = build();
        let b = build();
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn burst_window_installs_and_removes() {
        let mut plan = FaultPlan::new();
        plan.burst_loss_window(
            LinkId(1),
            SimTime::from_secs(2),
            SimTime::from_secs(5),
            BurstLoss::flaky_cell(),
        );
        assert_eq!(plan.next_at(), Some(SimTime::from_secs(2)));
        let (_, on) = plan.pop_due(SimTime::from_secs(10)).unwrap();
        assert!(matches!(
            on,
            FaultAction::SetBurstLoss { model: Some(_), .. }
        ));
        let (t, off) = plan.pop_due(SimTime::from_secs(10)).unwrap();
        assert_eq!(t, SimTime::from_secs(5));
        assert!(matches!(off, FaultAction::SetBurstLoss { model: None, .. }));
    }
}
