//! Point-to-point links: latency, loss, drop-tail queueing and
//! token-bucket rate shaping.
//!
//! The shaper is the heart of the Table 1 / Fig. 8–10 reproduction: the
//! carrier's rate limiter is modelled as a token bucket whose fill rate
//! follows a (possibly time-varying) [`RateSchedule`]. The bucket's burst
//! capacity is what lets a freshly started MPTCP subflow briefly exceed
//! the steady-state rate right after a handover — the "spike" the paper
//! observes in Fig. 8 and the >100% relative performance in Fig. 9.

use crate::fault::BurstLoss;
use cellbricks_sim::{SimDuration, SimTime};

/// The service rate of a shaper as a function of time.
#[derive(Clone, Debug)]
pub enum RateSchedule {
    /// A constant rate in bits/s.
    Constant(f64),
    /// A piecewise-constant trace: `samples[i]` holds for
    /// `[i*step, (i+1)*step)`; the last sample extends forever.
    Trace {
        /// Bin width.
        step: SimDuration,
        /// Rate samples in bits/s (must be non-empty).
        samples: Vec<f64>,
    },
}

impl RateSchedule {
    /// The instantaneous rate at `t`, bits/s.
    #[must_use]
    pub fn rate_bps(&self, t: SimTime) -> f64 {
        match self {
            RateSchedule::Constant(r) => *r,
            RateSchedule::Trace { step, samples } => {
                let idx = (t.as_nanos() / step.as_nanos()) as usize;
                samples[idx.min(samples.len() - 1)]
            }
        }
    }

    /// Bytes of tokens accrued over `[t0, t1]`.
    #[must_use]
    pub fn integral_bytes(&self, t0: SimTime, t1: SimTime) -> f64 {
        debug_assert!(t1 >= t0);
        match self {
            RateSchedule::Constant(r) => r / 8.0 * t1.since(t0).as_secs_f64(),
            RateSchedule::Trace { step, samples } => {
                let mut total = 0.0;
                let mut cur = t0;
                while cur < t1 {
                    let idx = (cur.as_nanos() / step.as_nanos()) as usize;
                    let bin_end = SimTime::from_nanos(
                        (cur.as_nanos() / step.as_nanos() + 1) * step.as_nanos(),
                    );
                    let seg_end = bin_end.min(t1);
                    let rate = samples[idx.min(samples.len() - 1)];
                    total += rate / 8.0 * seg_end.since(cur).as_secs_f64();
                    cur = seg_end;
                }
                total
            }
        }
    }

    /// Earliest time `T ≥ t0` such that `integral_bytes(t0, T) ≥ need`.
    #[must_use]
    pub fn time_to_accrue(&self, t0: SimTime, need: f64) -> SimTime {
        if need <= 0.0 {
            return t0;
        }
        match self {
            RateSchedule::Constant(r) => {
                if *r <= 0.0 {
                    return SimTime::FAR_FUTURE;
                }
                t0 + SimDuration::from_secs_f64(need * 8.0 / r)
            }
            RateSchedule::Trace { step, samples } => {
                let mut remaining = need;
                let mut cur = t0;
                // Walk bins; the final bin's rate extends forever.
                loop {
                    let idx = (cur.as_nanos() / step.as_nanos()) as usize;
                    let rate = samples[idx.min(samples.len() - 1)];
                    let last_bin = idx >= samples.len() - 1;
                    let bin_end = SimTime::from_nanos(
                        (cur.as_nanos() / step.as_nanos() + 1) * step.as_nanos(),
                    );
                    if rate > 0.0 {
                        let bytes_in_bin = if last_bin {
                            f64::INFINITY
                        } else {
                            rate / 8.0 * bin_end.since(cur).as_secs_f64()
                        };
                        if bytes_in_bin >= remaining {
                            return cur + SimDuration::from_secs_f64(remaining * 8.0 / rate);
                        }
                        remaining -= bytes_in_bin;
                    } else if last_bin {
                        return SimTime::FAR_FUTURE;
                    }
                    cur = bin_end;
                }
            }
        }
    }
}

/// Rate-limiting behaviour of a link direction.
#[derive(Clone, Debug)]
pub enum Shaper {
    /// No rate limit: packets only incur latency.
    None,
    /// Fixed serialization rate (bits/s) with FIFO queueing.
    FixedRate(f64),
    /// Token bucket: tokens accrue per `schedule` up to `burst_bytes`;
    /// packets are delayed until tokens are available (FIFO).
    TokenBucket {
        /// Fill-rate schedule.
        schedule: RateSchedule,
        /// Bucket depth in bytes.
        burst_bytes: f64,
    },
}

/// Configuration of one link direction.
#[derive(Clone, Debug)]
pub struct LinkConfig {
    /// Propagation delay.
    pub latency: SimDuration,
    /// Random packet loss probability in `[0, 1]`.
    pub loss: f64,
    /// Rate limiting.
    pub shaper: Shaper,
    /// Drop packets that would wait longer than this in the queue
    /// (drop-tail expressed as a sojourn cap).
    pub queue_cap: SimDuration,
    /// Optional Gilbert–Elliott burst-loss model; while installed it
    /// replaces the uniform `loss` probability. Fault plans install and
    /// remove it at runtime via
    /// [`NetWorld::set_burst_loss`](crate::world::NetWorld::set_burst_loss).
    pub burst: Option<BurstLoss>,
}

impl LinkConfig {
    /// A latency-only link (no loss, no rate limit).
    #[must_use]
    pub fn delay_only(latency: SimDuration) -> Self {
        Self {
            latency,
            loss: 0.0,
            shaper: Shaper::None,
            queue_cap: SimDuration::from_secs(10),
            burst: None,
        }
    }

    /// A fixed-rate link.
    #[must_use]
    pub fn fixed_rate(latency: SimDuration, rate_bps: f64, queue_cap: SimDuration) -> Self {
        Self {
            latency,
            loss: 0.0,
            shaper: Shaper::FixedRate(rate_bps),
            queue_cap,
            burst: None,
        }
    }

    /// Set the loss probability.
    #[must_use]
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Install a burst-loss model from the start.
    #[must_use]
    pub fn with_burst(mut self, model: BurstLoss) -> Self {
        self.burst = Some(model);
        self
    }
}

/// Mutable state of one link direction.
#[derive(Clone, Debug)]
pub(crate) struct Direction {
    pub(crate) config: LinkConfig,
    /// When the previous packet finishes service (FIFO ordering point).
    busy_until: SimTime,
    /// Token-bucket level at `bucket_at` (bytes).
    bucket_level: f64,
    bucket_at: SimTime,
    /// Packets enqueued before this instant are dropped (radio outage).
    pub(crate) outage_until: SimTime,
    /// Gilbert–Elliott chain state: currently in the bad state.
    burst_bad: bool,
    /// Counters.
    pub(crate) delivered: u64,
    pub(crate) dropped: u64,
    /// Packets the token-bucket shaper held back (served later than
    /// offered): the carrier policer biting.
    pub(crate) policer_hits: u64,
}

/// Why a link direction refused a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum DropCause {
    /// The link was in a radio outage window.
    Outage,
    /// Random loss.
    Loss,
    /// Loss while the Gilbert–Elliott chain was in its bad state.
    Burst,
    /// Sojourn would exceed the drop-tail queue cap.
    QueueCap,
    /// The shaper can never serve the packet (zero rate).
    Policer,
}

/// Result of offering a packet to a link direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Offer {
    /// The packet will arrive at the far end at this instant.
    Deliver(SimTime),
    /// The packet was dropped.
    Drop(DropCause),
}

impl Direction {
    pub(crate) fn new(config: LinkConfig) -> Self {
        let initial_level = match &config.shaper {
            Shaper::TokenBucket { burst_bytes, .. } => *burst_bytes,
            _ => 0.0,
        };
        Self {
            config,
            busy_until: SimTime::ZERO,
            bucket_level: initial_level,
            bucket_at: SimTime::ZERO,
            outage_until: SimTime::ZERO,
            burst_bad: false,
            delivered: 0,
            dropped: 0,
            policer_hits: 0,
        }
    }

    /// True if a burst-loss model is currently installed (the caller must
    /// then supply a `burst_draw` to [`offer`](Direction::offer)).
    pub(crate) fn burst_installed(&self) -> bool {
        self.config.burst.is_some()
    }

    /// Install or remove the burst-loss model; the chain restarts in the
    /// good state.
    pub(crate) fn set_burst_loss(&mut self, model: Option<BurstLoss>) {
        self.config.burst = model;
        self.burst_bad = false;
    }

    /// Offer a packet of `size` bytes at `now`; `loss_draw` is a uniform
    /// [0,1) sample used for the loss decision, and `burst_draw` a second
    /// sample stepping the Gilbert–Elliott chain (required iff a burst
    /// model is installed — drawn separately so links without one consume
    /// exactly one sample per offer, keeping no-fault runs byte-identical).
    pub(crate) fn offer(
        &mut self,
        now: SimTime,
        size: u32,
        loss_draw: f64,
        burst_draw: Option<f64>,
    ) -> Offer {
        if now < self.outage_until {
            self.dropped += 1;
            return Offer::Drop(DropCause::Outage);
        }
        let loss_p = match (&self.config.burst, burst_draw) {
            (Some(m), Some(step)) => {
                self.burst_bad = if self.burst_bad {
                    step >= m.p_exit
                } else {
                    step < m.p_enter
                };
                if self.burst_bad {
                    m.loss_bad
                } else {
                    m.loss_good
                }
            }
            _ => self.config.loss,
        };
        if loss_draw < loss_p {
            self.dropped += 1;
            return Offer::Drop(if self.config.burst.is_some() && self.burst_bad {
                DropCause::Burst
            } else {
                DropCause::Loss
            });
        }
        let start = self.busy_until.max(now);
        // Compute the service-completion time without committing any
        // state, so a queue-cap drop leaves the shaper untouched.
        let (done, bucket_commit) = match &self.config.shaper {
            Shaper::None => (start, None),
            Shaper::FixedRate(rate) => {
                if *rate <= 0.0 {
                    self.dropped += 1;
                    return Offer::Drop(DropCause::Policer);
                }
                (
                    start + SimDuration::from_secs_f64(f64::from(size) * 8.0 / rate),
                    None,
                )
            }
            Shaper::TokenBucket {
                schedule,
                burst_bytes,
            } => {
                // Refill from bucket_at to start, capped at the burst depth.
                let accrued = schedule.integral_bytes(self.bucket_at, start);
                let level = (self.bucket_level + accrued).min(*burst_bytes);
                let need = f64::from(size);
                let (eligible, new_level) = if level >= need {
                    (start, level - need)
                } else {
                    (schedule.time_to_accrue(start, need - level), 0.0)
                };
                if eligible == SimTime::FAR_FUTURE {
                    self.dropped += 1;
                    return Offer::Drop(DropCause::Policer);
                }
                if eligible > start {
                    self.policer_hits += 1;
                }
                (eligible, Some((new_level, eligible)))
            }
        };
        if done.saturating_since(now) > self.config.queue_cap {
            self.dropped += 1;
            return Offer::Drop(DropCause::QueueCap);
        }
        if let Some((level, at)) = bucket_commit {
            self.bucket_level = level;
            self.bucket_at = at;
        }
        self.busy_until = done;
        self.delivered += 1;
        Offer::Deliver(done + self.config.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn schedule_constant_integral() {
        let s = RateSchedule::Constant(8_000_000.0); // 1 MB/s
        let bytes = s.integral_bytes(SimTime::ZERO, SimTime::from_secs(2));
        assert!((bytes - 2_000_000.0).abs() < 1.0);
    }

    #[test]
    fn schedule_trace_integral_piecewise() {
        let s = RateSchedule::Trace {
            step: SimDuration::from_secs(1),
            samples: vec![8.0e6, 16.0e6],
        };
        // 0.5s at 1 MB/s + 1s at 2MB/s (trace extends past end).
        let bytes = s.integral_bytes(SimTime::from_secs_f64(0.5), SimTime::from_secs_f64(2.5));
        assert!(
            (bytes - (500_000.0 + 2_000_000.0 + 1_000_000.0)).abs() < 1.0,
            "{bytes}"
        );
    }

    #[test]
    fn schedule_time_to_accrue_constant() {
        let s = RateSchedule::Constant(8_000.0); // 1 kB/s
        let t = s.time_to_accrue(SimTime::ZERO, 500.0);
        assert_eq!(t, SimTime::from_secs_f64(0.5));
    }

    #[test]
    fn schedule_time_to_accrue_across_bins() {
        let s = RateSchedule::Trace {
            step: SimDuration::from_secs(1),
            samples: vec![8_000.0, 80_000.0], // 1 kB/s then 10 kB/s
        };
        // Need 2 kB from t=0: 1 kB in first second, 1 kB = 0.1s in second bin.
        let t = s.time_to_accrue(SimTime::ZERO, 2_000.0);
        assert_eq!(t, SimTime::from_secs_f64(1.1));
    }

    #[test]
    fn schedule_zero_rate_never_accrues() {
        let s = RateSchedule::Constant(0.0);
        assert_eq!(s.time_to_accrue(SimTime::ZERO, 1.0), SimTime::FAR_FUTURE);
    }

    #[test]
    fn delay_only_link_adds_latency() {
        let mut d = Direction::new(LinkConfig::delay_only(ms(10)));
        match d.offer(SimTime::from_secs(1), 1500, 0.9, None) {
            Offer::Deliver(t) => assert_eq!(t, SimTime::from_secs(1) + ms(10)),
            Offer::Drop(_) => panic!("dropped"),
        }
    }

    #[test]
    fn fixed_rate_serializes_fifo() {
        // 8 kbit/s -> 1000-byte packet takes 1 s.
        let mut d = Direction::new(LinkConfig::fixed_rate(
            ms(0),
            8_000.0,
            SimDuration::from_secs(100),
        ));
        let t0 = SimTime::ZERO;
        let a = d.offer(t0, 1000, 0.9, None);
        let b = d.offer(t0, 1000, 0.9, None);
        assert_eq!(a, Offer::Deliver(SimTime::from_secs(1)));
        assert_eq!(b, Offer::Deliver(SimTime::from_secs(2)));
    }

    #[test]
    fn queue_cap_drops() {
        let mut d = Direction::new(LinkConfig::fixed_rate(
            ms(0),
            8_000.0,
            SimDuration::from_secs(1),
        ));
        assert!(matches!(
            d.offer(SimTime::ZERO, 1000, 0.9, None),
            Offer::Deliver(_)
        ));
        // Second packet would wait 1s then serialize 1s -> sojourn 2s > cap.
        assert_eq!(
            d.offer(SimTime::ZERO, 1000, 0.9, None),
            Offer::Drop(DropCause::QueueCap)
        );
        assert_eq!(d.dropped, 1);
    }

    #[test]
    fn loss_draw_applies() {
        let mut d = Direction::new(LinkConfig::delay_only(ms(1)).with_loss(0.5));
        assert_eq!(
            d.offer(SimTime::ZERO, 100, 0.4, None),
            Offer::Drop(DropCause::Loss)
        );
        assert!(matches!(
            d.offer(SimTime::ZERO, 100, 0.6, None),
            Offer::Deliver(_)
        ));
    }

    #[test]
    fn outage_drops_until() {
        let mut d = Direction::new(LinkConfig::delay_only(ms(1)));
        d.outage_until = SimTime::from_secs(5);
        assert_eq!(
            d.offer(SimTime::from_secs(4), 100, 0.9, None),
            Offer::Drop(DropCause::Outage)
        );
        assert!(matches!(
            d.offer(SimTime::from_secs(5), 100, 0.9, None),
            Offer::Deliver(_)
        ));
    }

    #[test]
    fn burst_model_replaces_uniform_loss() {
        let model = BurstLoss {
            p_enter: 0.5,
            p_exit: 0.5,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        let mut d = Direction::new(LinkConfig::delay_only(ms(1)).with_burst(model));
        // step 0.9 >= p_enter: stay good, loss_good = 0 -> deliver.
        assert!(matches!(
            d.offer(SimTime::ZERO, 100, 0.0, Some(0.9)),
            Offer::Deliver(_)
        ));
        // step 0.1 < p_enter: enter bad, loss_bad = 1 -> burst drop.
        assert_eq!(
            d.offer(SimTime::ZERO, 100, 0.0, Some(0.1)),
            Offer::Drop(DropCause::Burst)
        );
        // step 0.9 >= p_exit: stay bad -> still dropping.
        assert_eq!(
            d.offer(SimTime::ZERO, 100, 0.0, Some(0.9)),
            Offer::Drop(DropCause::Burst)
        );
        // step 0.1 < p_exit: leave bad -> deliver again.
        assert!(matches!(
            d.offer(SimTime::ZERO, 100, 0.0, Some(0.1)),
            Offer::Deliver(_)
        ));
        // Removing the model resets the chain and restores uniform loss.
        d.set_burst_loss(None);
        assert!(!d.burst_installed());
        assert!(!d.burst_bad);
        assert!(matches!(
            d.offer(SimTime::ZERO, 100, 0.0, None),
            Offer::Deliver(_)
        ));
    }

    #[test]
    fn token_bucket_burst_then_rate() {
        // 1 kB/s fill, 2 kB burst: first 2 kB pass immediately, then paced.
        let cfg = LinkConfig {
            latency: SimDuration::ZERO,
            loss: 0.0,
            shaper: Shaper::TokenBucket {
                schedule: RateSchedule::Constant(8_000.0),
                burst_bytes: 2_000.0,
            },
            queue_cap: SimDuration::from_secs(100),
            burst: None,
        };
        let mut d = Direction::new(cfg);
        let t0 = SimTime::ZERO;
        assert_eq!(d.offer(t0, 1000, 0.9, None), Offer::Deliver(t0));
        assert_eq!(d.offer(t0, 1000, 0.9, None), Offer::Deliver(t0));
        // Bucket empty: third packet waits a full second of refill.
        assert_eq!(
            d.offer(t0, 1000, 0.9, None),
            Offer::Deliver(SimTime::from_secs(1))
        );
        // Fourth waits behind the third.
        assert_eq!(
            d.offer(t0, 1000, 0.9, None),
            Offer::Deliver(SimTime::from_secs(2))
        );
    }

    #[test]
    fn token_bucket_refills_during_idle() {
        let cfg = LinkConfig {
            latency: SimDuration::ZERO,
            loss: 0.0,
            shaper: Shaper::TokenBucket {
                schedule: RateSchedule::Constant(8_000.0),
                burst_bytes: 1_500.0,
            },
            queue_cap: SimDuration::from_secs(100),
            burst: None,
        };
        let mut d = Direction::new(cfg);
        assert_eq!(
            d.offer(SimTime::ZERO, 1500, 0.9, None),
            Offer::Deliver(SimTime::ZERO)
        );
        // After 1.5s idle the bucket is full again (capped at burst).
        let t = SimTime::from_secs_f64(2.0);
        assert_eq!(d.offer(t, 1500, 0.9, None), Offer::Deliver(t));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Conservation: a token-bucket shaper never schedules more bytes
        /// into any interval than the schedule's integral plus the burst.
        #[test]
        fn prop_token_bucket_conserves(
            rate_kbps in 100u64..20_000,
            burst_kb in 1u64..200,
            offers in proptest::collection::vec((0u64..2_000u64, 100u32..1500), 1..60),
        ) {
            let rate = rate_kbps as f64 * 1000.0;
            let burst = burst_kb as f64 * 1000.0;
            let cfg = LinkConfig {
                latency: SimDuration::ZERO,
                loss: 0.0,
                shaper: Shaper::TokenBucket {
                    schedule: RateSchedule::Constant(rate),
                    burst_bytes: burst,
                },
                queue_cap: SimDuration::from_secs(1000),
                burst: None,
            };
            let mut d = Direction::new(cfg);
            // Offers must be time-ordered.
            let mut offers = offers;
            offers.sort_by_key(|&(t, _)| t);
            let mut delivered_bytes = 0f64;
            let mut last_delivery = SimTime::ZERO;
            for (t_ms, size) in offers {
                let now = SimTime::from_nanos(t_ms * 1_000_000);
                if let Offer::Deliver(at) = d.offer(now, size, 0.9, None) {
                    delivered_bytes += f64::from(size);
                    prop_assert!(at >= now, "no time travel");
                    prop_assert!(at >= last_delivery, "FIFO order");
                    last_delivery = at;
                    // Everything scheduled up to `at` fits in the
                    // schedule's integral plus one burst.
                    let cap = rate / 8.0 * at.as_secs_f64() + burst;
                    prop_assert!(
                        delivered_bytes <= cap + 1.0,
                        "delivered {delivered_bytes} > cap {cap} at {at}"
                    );
                }
            }
        }

        /// A fixed-rate link serializes back-to-back packets at exactly
        /// the line rate.
        #[test]
        fn prop_fixed_rate_serialization(
            rate_kbps in 100u64..50_000,
            sizes in proptest::collection::vec(40u32..1500, 1..40),
        ) {
            let rate = rate_kbps as f64 * 1000.0;
            let mut d = Direction::new(LinkConfig::fixed_rate(
                SimDuration::ZERO,
                rate,
                SimDuration::from_secs(1000),
            ));
            let mut expected = 0.0f64;
            for size in sizes {
                expected += f64::from(size) * 8.0 / rate;
                match d.offer(SimTime::ZERO, size, 0.9, None) {
                    Offer::Deliver(at) => {
                        let err = (at.as_secs_f64() - expected).abs();
                        prop_assert!(err < 1e-6, "at {at}, expected {expected}");
                    }
                    Offer::Drop(_) => prop_assert!(false, "no drops expected"),
                }
            }
        }
    }
}
