//! Carrier rate-policy traces (paper Appendix A).
//!
//! The paper's drive tests found T-Mobile enforcing starkly different rate
//! limits by time of day: roughly 1 Mbps average during the day and
//! ~15 Mbps (with much higher variance) after ~12:30 am. This module
//! generates deterministic, AR(1)-smoothed rate traces matching the
//! measured moments, which feed the access link's token-bucket shaper:
//!
//! | regime | mean | std dev | peak |
//! |--------|------|---------|------|
//! | day    | ≈1.16 Mbps (Table 1: 1.03–1.16) | 0.32 | 1.75 |
//! | night  | ≈15.46 Mbps (Fig. 10: 14.95)    | 8.94 | 52.5 |

use crate::link::RateSchedule;
use cellbricks_sim::{SimDuration, SimRng, SimTime};

/// Which rate-limiting regime the carrier applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TimeOfDay {
    /// Daytime: aggressive rate limiting, low variance.
    Day,
    /// Night (after ~12:30 am): relaxed limiting, high variance.
    Night,
}

/// Parameters of one regime's rate distribution.
#[derive(Clone, Copy, Debug)]
pub struct RegimeParams {
    /// Mean of the per-bin rate, bits/s.
    pub mean_bps: f64,
    /// Standard deviation of the per-bin rate, bits/s.
    pub std_bps: f64,
    /// Hard floor, bits/s.
    pub floor_bps: f64,
    /// Hard ceiling, bits/s.
    pub ceil_bps: f64,
    /// AR(1) smoothing coefficient in `[0, 1)`; higher = smoother.
    pub smoothing: f64,
}

/// A carrier rate policy: the regimes plus bucket/trace parameters.
#[derive(Clone, Debug)]
pub struct CarrierPolicy {
    /// Day regime parameters.
    pub day: RegimeParams,
    /// Night regime parameters.
    pub night: RegimeParams,
    /// Trace bin width.
    pub step: SimDuration,
    /// Token-bucket depth as seconds of mean-rate traffic: the burst the
    /// policer tolerates after idle periods.
    pub burst_secs: f64,
}

impl Default for CarrierPolicy {
    fn default() -> Self {
        Self {
            day: RegimeParams {
                mean_bps: 1.16e6,
                std_bps: 0.32e6,
                floor_bps: 0.30e6,
                ceil_bps: 1.75e6,
                smoothing: 0.6,
            },
            night: RegimeParams {
                mean_bps: 15.46e6,
                std_bps: 8.94e6,
                floor_bps: 1.0e6,
                ceil_bps: 52.5e6,
                smoothing: 0.85,
            },
            step: SimDuration::from_secs(1),
            burst_secs: 0.5,
        }
    }
}

impl CarrierPolicy {
    fn params(&self, tod: TimeOfDay) -> &RegimeParams {
        match tod {
            TimeOfDay::Day => &self.day,
            TimeOfDay::Night => &self.night,
        }
    }

    /// Generate a rate trace for `duration` under the given regime.
    ///
    /// The trace is an AR(1) process around the regime mean, clamped to
    /// `[floor, ceil]`, sampled once per [`CarrierPolicy::step`].
    #[must_use]
    pub fn trace(&self, tod: TimeOfDay, duration: SimDuration, rng: &mut SimRng) -> RateSchedule {
        let p = self.params(tod);
        let bins = (duration.as_nanos() / self.step.as_nanos()).max(1) as usize + 1;
        // AR(1): x_{t+1} = ρ·x_t + (1-ρ)·mean + innovation.
        // Innovation variance chosen so the stationary std matches std_bps.
        let rho = p.smoothing;
        let innov_std = p.std_bps * (1.0 - rho * rho).sqrt();
        let mut samples = Vec::with_capacity(bins);
        let mut x = p.mean_bps;
        for _ in 0..bins {
            x = rho * x + (1.0 - rho) * p.mean_bps + rng.normal(0.0, innov_std);
            samples.push(x.clamp(p.floor_bps, p.ceil_bps));
        }
        RateSchedule::Trace {
            step: self.step,
            samples,
        }
    }

    /// Generate a trace that switches from day to night at `switch_at`
    /// (the "12:30 am" effect of Appendix A / Fig. 10).
    #[must_use]
    pub fn transition_trace(
        &self,
        switch_at: SimTime,
        duration: SimDuration,
        rng: &mut SimRng,
    ) -> RateSchedule {
        let bins = (duration.as_nanos() / self.step.as_nanos()).max(1) as usize + 1;
        let switch_bin = (switch_at.as_nanos() / self.step.as_nanos()) as usize;
        let mut samples = Vec::with_capacity(bins);
        let mut x = self.day.mean_bps;
        for i in 0..bins {
            let p = if i < switch_bin {
                &self.day
            } else {
                &self.night
            };
            let rho = p.smoothing;
            let innov_std = p.std_bps * (1.0 - rho * rho).sqrt();
            x = rho * x + (1.0 - rho) * p.mean_bps + rng.normal(0.0, innov_std);
            samples.push(x.clamp(p.floor_bps, p.ceil_bps));
        }
        RateSchedule::Trace {
            step: self.step,
            samples,
        }
    }

    /// The token-bucket depth (bytes) to pair with a trace of this regime.
    #[must_use]
    pub fn burst_bytes(&self, tod: TimeOfDay) -> f64 {
        self.params(tod).mean_bps / 8.0 * self.burst_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moments(schedule: &RateSchedule) -> (f64, f64, f64) {
        let RateSchedule::Trace { samples, .. } = schedule else {
            panic!("expected trace");
        };
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let max = samples.iter().cloned().fold(0.0, f64::max);
        (mean, var.sqrt(), max)
    }

    #[test]
    fn day_trace_matches_paper_moments() {
        let mut rng = SimRng::new(1);
        let policy = CarrierPolicy::default();
        let trace = policy.trace(TimeOfDay::Day, SimDuration::from_secs(5000), &mut rng);
        let (mean, std, max) = moments(&trace);
        assert!((mean - 1.16e6).abs() < 0.15e6, "day mean {mean}");
        assert!(std < 0.5e6, "day std {std}");
        assert!(max <= 1.75e6 + 1.0, "day peak {max}");
    }

    #[test]
    fn night_trace_matches_paper_moments() {
        let mut rng = SimRng::new(2);
        let policy = CarrierPolicy::default();
        let trace = policy.trace(TimeOfDay::Night, SimDuration::from_secs(5000), &mut rng);
        let (mean, std, max) = moments(&trace);
        assert!((mean - 15.46e6).abs() < 2.0e6, "night mean {mean}");
        assert!(std > 4.0e6 && std < 12.0e6, "night std {std}");
        assert!(max <= 52.5e6 + 1.0 && max > 25.0e6, "night peak {max}");
    }

    #[test]
    fn night_much_faster_than_day() {
        let mut rng = SimRng::new(3);
        let policy = CarrierPolicy::default();
        let (day_mean, ..) =
            moments(&policy.trace(TimeOfDay::Day, SimDuration::from_secs(2000), &mut rng));
        let (night_mean, ..) =
            moments(&policy.trace(TimeOfDay::Night, SimDuration::from_secs(2000), &mut rng));
        // Appendix A: ~14.5x difference.
        let ratio = night_mean / day_mean;
        assert!(ratio > 8.0 && ratio < 25.0, "ratio {ratio}");
    }

    #[test]
    fn transition_switches_regime() {
        let mut rng = SimRng::new(4);
        let policy = CarrierPolicy::default();
        let trace = policy.transition_trace(
            SimTime::from_secs(100),
            SimDuration::from_secs(200),
            &mut rng,
        );
        let RateSchedule::Trace { samples, .. } = &trace else {
            panic!()
        };
        let before: f64 = samples[..90].iter().sum::<f64>() / 90.0;
        let after: f64 = samples[110..200].iter().sum::<f64>() / 90.0;
        assert!(after / before > 5.0, "before {before} after {after}");
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let policy = CarrierPolicy::default();
        let t1 = policy.trace(
            TimeOfDay::Day,
            SimDuration::from_secs(100),
            &mut SimRng::new(9),
        );
        let t2 = policy.trace(
            TimeOfDay::Day,
            SimDuration::from_secs(100),
            &mut SimRng::new(9),
        );
        let (RateSchedule::Trace { samples: a, .. }, RateSchedule::Trace { samples: b, .. }) =
            (&t1, &t2)
        else {
            panic!()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn burst_scales_with_regime() {
        let policy = CarrierPolicy::default();
        assert!(policy.burst_bytes(TimeOfDay::Night) > policy.burst_bytes(TimeOfDay::Day));
        // 0.5 seconds of day-mean traffic ≈ 72.5 kB.
        assert!((policy.burst_bytes(TimeOfDay::Day) - 72_500.0).abs() < 5_000.0);
    }
}
