//! Sharded parallel stepping with conservative lookahead sync.
//!
//! The topology is partitioned by bTelco/region into shards; each shard
//! owns its own [`NetWorld`] slice (arrival wheel + link state + route
//! tables for its nodes) and its own [`Driver`] (timer wheel, registry,
//! dirty set), stepped on a `std::thread` worker. Workers advance in
//! lockstep windows of `lookahead` = the minimum propagation latency of
//! any inter-shard link: a packet sent across a shard boundary inside a
//! window `[t, t + L)` cannot arrive before `t + L`, so shards never
//! need to see each other's events mid-window — exactly SimBricks'
//! modular synchronization argument. Cross-shard deliveries are parked
//! in a per-world outbox and exchanged at a barrier between windows.
//!
//! # Determinism (bit-identical for any shard count)
//!
//! * Loss/burst decisions draw from **per-link-direction RNG streams**
//!   seeded from `(stream_seed, link, dir)`. A direction is only ever
//!   exercised by the shard owning its source node, so each direction
//!   consumes the same sample sequence under any partition.
//! * Every delivery is tagged `(direction key, per-direction seq)` and
//!   arrivals dispatch in `(time, key, seq)` order — a total order
//!   independent of wheel insertion order, and therefore of which
//!   barrier window a cross-shard packet happened to be injected in.
//! * Within a shard the [`Driver`] is the sequential engine unchanged;
//!   mailbox push order between workers is racy, but injection feeds a
//!   wheel whose drain is canonically re-sorted, so the race is erased.
//!
//! The single-shard **legacy** path (a `NetWorld` never split) is
//! untouched: it draws from the world RNG in the pinned order, and the
//! figure-replay gate keeps it byte-for-byte. Sharded runs (including
//! `shards = 1`) form their own determinism class.

use crate::engine::Driver;
use crate::fault::FaultPlan;
use crate::topology::{LinkId, NodeId, Topology};
use crate::world::{CrossPacket, Endpoint, LinkStats, NetWorld};
use cellbricks_sim::{SimDuration, SimTime};
use std::sync::{Arc, Barrier, Mutex};

/// splitmix64 finalizer: decorrelates per-direction stream seeds derived
/// from one experiment seed.
pub(crate) fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A partition of a [`Topology`]'s nodes into shards.
#[derive(Clone)]
pub struct ShardPlan {
    node_shard: Arc<Vec<u32>>,
    shards: usize,
}

impl ShardPlan {
    /// Partition by region label: node → `region % shards`. Folding by
    /// modulo keeps a fixed region→shard rule for any shard count, so
    /// the same topology can run at 1, 2 or 4 shards and (with the
    /// per-direction RNG streams) produce identical results.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn by_region(topology: &Topology, shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard");
        let node_shard = (0..topology.node_count())
            .map(|i| topology.region(NodeId(i)) % shards as u32)
            .collect();
        Self {
            node_shard: Arc::new(node_shard),
            shards,
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `node`.
    #[must_use]
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.node_shard[node.0] as usize
    }

    /// Shared owner table (dense `NodeId` index), for [`NetWorld`]s.
    #[must_use]
    pub(crate) fn node_shard_arc(&self) -> Arc<Vec<u32>> {
        self.node_shard.clone()
    }

    /// The conservative lookahead: the minimum propagation-latency floor
    /// over all links whose endpoints live in different shards. `None`
    /// when no link crosses a shard boundary (shards are independent and
    /// can run decoupled to the horizon).
    #[must_use]
    pub fn lookahead(&self, topology: &Topology) -> Option<SimDuration> {
        (0..topology.link_count())
            .filter_map(|i| {
                let (a, b) = topology.link_ends(LinkId(i));
                (self.node_shard[a.0] != self.node_shard[b.0])
                    .then(|| topology.link_latency_floor(LinkId(i)))
            })
            .min()
    }

    /// Split a fault plan into one plan per shard. Endpoint faults go to
    /// the shard owning the node; link faults go to the shard(s) owning
    /// either end — for a cross-shard link both copies of the link state
    /// must flip, so such an action lands in two plans (and the shared
    /// `fault.*` counters count it twice; scenario-level outcomes, not
    /// fault counters, are the shard-invariant quantities).
    ///
    /// # Panics
    /// Panics if an action names a node or link outside the topology.
    #[must_use]
    pub fn partition_faults(&self, mut plan: FaultPlan, topology: &Topology) -> Vec<FaultPlan> {
        use crate::fault::FaultAction;
        let mut out: Vec<FaultPlan> = (0..self.shards).map(|_| FaultPlan::new()).collect();
        while let Some((at, action)) = plan.pop_due(SimTime::FAR_FUTURE) {
            match &action {
                FaultAction::LinkOutage { link, .. } | FaultAction::SetBurstLoss { link, .. } => {
                    let (a, b) = topology.link_ends(*link);
                    let sa = self.shard_of(a);
                    let sb = self.shard_of(b);
                    out[sa].at(at, action.clone());
                    if sb != sa {
                        out[sb].at(at, action);
                    }
                }
                FaultAction::Endpoint { node, .. } => {
                    out[self.shard_of(*node)].at(at, action);
                }
            }
        }
        out
    }
}

/// One shard's engine state: its world slice and its driver.
pub struct ShardCell {
    /// The shard's [`NetWorld`] slice (from [`NetWorld::into_shards`]).
    pub world: NetWorld,
    /// The shard's sequential engine.
    pub driver: Driver,
}

impl ShardCell {
    /// Wrap a shard world with a fresh driver starting at time zero.
    #[must_use]
    pub fn new(world: NetWorld) -> Self {
        Self {
            world,
            driver: Driver::new(),
        }
    }
}

/// Build shard cells from a world and a plan: split the world and pair
/// each slice with a fresh driver.
#[must_use]
pub fn make_cells(world: NetWorld, plan: &ShardPlan, stream_seed: u64) -> Vec<ShardCell> {
    world
        .into_shards(plan, stream_seed)
        .into_iter()
        .map(ShardCell::new)
        .collect()
}

/// Sum a link's delivery/drop counters across shard world copies. Every
/// shard carries a copy of every link's state, but a direction only
/// advances in the shard owning its source node (the rest stay zero), so
/// the sum is the true per-link tally.
#[must_use]
pub fn merged_link_stats(cells: &[ShardCell], link: LinkId) -> LinkStats {
    let mut total = LinkStats::default();
    for c in cells {
        let s = c.world.link_stats(link);
        total.ab_delivered += s.ab_delivered;
        total.ab_dropped += s.ab_dropped;
        total.ba_delivered += s.ba_delivered;
        total.ba_dropped += s.ba_dropped;
        total.ab_policer_hits += s.ab_policer_hits;
        total.ba_policer_hits += s.ba_policer_hits;
    }
    total
}

/// Step all shards to `until` under the conservative barrier.
///
/// `endpoints[s]` holds shard `s`'s endpoints (each must live on a node
/// the plan assigns to shard `s`). Each worker repeatedly runs its
/// driver over the exclusive window `[t, t + lookahead)`, deposits its
/// outbox into per-destination mailboxes, and meets the others at a
/// barrier where it collects the packets addressed to it — which, by the
/// lookahead argument, can only arrive in later windows. A final
/// inclusive `run_to(until)` processes events at exactly the horizon, so
/// segmented sharded runs chain like segmented [`Driver::run_to`] calls.
///
/// Pass the minimum inter-shard latency from [`ShardPlan::lookahead`];
/// a smaller value is correct but slower (more barriers), a larger one
/// is unsound and will panic in debug builds via the injection check.
///
/// # Panics
/// Panics if the slice lengths differ, `lookahead` is zero, or any
/// worker panics (endpoint livelock, node/shard mismatch).
pub fn run_sharded(
    cells: &mut [ShardCell],
    endpoints: &mut [Vec<&mut (dyn Endpoint + Send)>],
    until: SimTime,
    lookahead: SimDuration,
) {
    assert_eq!(
        cells.len(),
        endpoints.len(),
        "one endpoint set per shard cell"
    );
    assert!(
        lookahead > SimDuration::ZERO,
        "conservative sync needs a positive lookahead"
    );
    let shards = cells.len();
    let barrier = Barrier::new(shards);
    let mailboxes: Vec<Mutex<Vec<CrossPacket>>> =
        (0..shards).map(|_| Mutex::new(Vec::new())).collect();
    std::thread::scope(|scope| {
        for (s, (cell, eps)) in cells.iter_mut().zip(endpoints.iter_mut()).enumerate() {
            let barrier = &barrier;
            let mailboxes = &mailboxes;
            scope.spawn(move || {
                // Reborrow to the unsized trait object the driver takes.
                let mut eps: Vec<&mut dyn Endpoint> = eps
                    .iter_mut()
                    .map(|e| &mut **e as &mut dyn Endpoint)
                    .collect();
                cell.driver.sync(&eps);
                let mut outbuf: Vec<CrossPacket> = Vec::new();
                let mut t = cell.driver.clock();
                while t < until {
                    let t_end = (t + lookahead).min(until);
                    cell.driver.run_window(&mut cell.world, &mut eps, t_end);
                    cell.world.drain_outbox_into(&mut outbuf);
                    for m in outbuf.drain(..) {
                        debug_assert!(
                            m.arrives_at() >= t_end,
                            "lookahead violated: cross packet arrives inside the window"
                        );
                        mailboxes[m.dst_shard()].lock().unwrap().push(m);
                    }
                    // Everyone has deposited …
                    barrier.wait();
                    {
                        let mut inbox = mailboxes[s].lock().unwrap();
                        cell.world.inject_cross(inbox.drain(..));
                    }
                    // … and everyone has collected before the next window.
                    barrier.wait();
                    t = t_end;
                }
                // Events at exactly the horizon: any cross-shard sends
                // they make arrive strictly after `until` and stay in the
                // outbox for the next segment's first exchange.
                cell.driver.run_to(&mut cell.world, &mut eps, until);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::packet::Packet;
    use crate::world::NetWorld;
    use bytes::Bytes;
    use cellbricks_sim::SimRng;
    use std::net::Ipv4Addr;

    const IP_A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const IP_B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    /// Sends one packet to `dst` every `interval`; records receptions.
    struct Chatter {
        node: NodeId,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        next: SimTime,
        interval: SimDuration,
        sent: u32,
        limit: u32,
        received: Vec<SimTime>,
    }

    impl Endpoint for Chatter {
        fn node(&self) -> NodeId {
            self.node
        }
        fn handle_packet(&mut self, now: SimTime, _pkt: Packet, _out: &mut Vec<Packet>) {
            self.received.push(now);
        }
        fn poll_at(&self) -> Option<SimTime> {
            (self.sent < self.limit).then_some(self.next)
        }
        fn poll(&mut self, now: SimTime, out: &mut Vec<Packet>) {
            while self.sent < self.limit && self.next <= now {
                out.push(Packet::control(
                    self.src,
                    self.dst,
                    Bytes::from_static(b"c"),
                ));
                self.sent += 1;
                self.next += self.interval;
            }
        }
    }

    fn chatter(node: NodeId, src: Ipv4Addr, dst: Ipv4Addr, limit: u32) -> Chatter {
        Chatter {
            node,
            src,
            dst,
            next: SimTime::from_millis(10),
            interval: SimDuration::from_millis(10),
            sent: 0,
            limit,
            received: Vec::new(),
        }
    }

    /// Two nodes in different regions, chatting both ways over a lossy
    /// 5 ms link: the canonical cross-shard scenario.
    fn two_region_world(loss: f64) -> (NetWorld, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node_in_region("a", 0);
        let b = t.add_node_in_region("b", 1);
        let l = t.add_symmetric_link(
            a,
            b,
            LinkConfig::delay_only(SimDuration::from_millis(5)).with_loss(loss),
        );
        t.add_default_route(a, l);
        t.add_default_route(b, l);
        (NetWorld::new(t, SimRng::new(7)), a, b)
    }

    fn run_with_shards(shards: usize, loss: f64) -> (Vec<SimTime>, Vec<SimTime>) {
        let (world, a, b) = two_region_world(loss);
        let plan = ShardPlan::by_region(world.topology(), shards);
        let lookahead = plan.lookahead(world.topology());
        if shards > 1 {
            assert_eq!(lookahead, Some(SimDuration::from_millis(5)));
        }
        let mut cells = make_cells(world, &plan, 99);
        let mut ca = chatter(a, IP_A, IP_B, 40);
        let mut cb = chatter(b, IP_B, IP_A, 40);
        let mut sets: Vec<Vec<&mut (dyn Endpoint + Send)>> =
            (0..shards).map(|_| Vec::new()).collect();
        sets[plan.shard_of(a)].push(&mut ca);
        sets[plan.shard_of(b)].push(&mut cb);
        run_sharded(
            &mut cells,
            &mut sets,
            SimTime::from_secs(2),
            lookahead.unwrap_or(SimDuration::from_millis(5)),
        );
        (ca.received.clone(), cb.received.clone())
    }

    #[test]
    fn cross_shard_delivery_matches_single_shard() {
        let lossless = run_with_shards(1, 0.0);
        assert_eq!(lossless.0.len(), 40);
        assert_eq!(lossless.1.len(), 40);
        assert_eq!(lossless.0[0], SimTime::from_millis(15));
        assert_eq!(run_with_shards(2, 0.0), lossless);
    }

    #[test]
    fn lossy_streams_invariant_across_shard_counts() {
        // Loss draws come from per-direction streams: the same packets
        // must drop whether or not a barrier sits between the nodes.
        let one = run_with_shards(1, 0.35);
        let two = run_with_shards(2, 0.35);
        assert!(one.0.len() < 40, "loss must actually bite");
        assert_eq!(one, two);
    }

    #[test]
    fn segmented_sharded_run_matches_one_shot() {
        let run = |segments: &[u64]| {
            let (world, a, b) = two_region_world(0.2);
            let plan = ShardPlan::by_region(world.topology(), 2);
            let lookahead = plan.lookahead(world.topology()).unwrap();
            let mut cells = make_cells(world, &plan, 5);
            let mut ca = chatter(a, IP_A, IP_B, 40);
            let mut cb = chatter(b, IP_B, IP_A, 40);
            for &ms in segments {
                let mut sets: Vec<Vec<&mut (dyn Endpoint + Send)>> = vec![vec![], vec![]];
                sets[plan.shard_of(a)].push(&mut ca);
                sets[plan.shard_of(b)].push(&mut cb);
                run_sharded(&mut cells, &mut sets, SimTime::from_millis(ms), lookahead);
            }
            (ca.received.clone(), cb.received.clone())
        };
        // Segment boundaries landing on event instants (multiples of
        // 10 ms) and off them; the chained result must be identical.
        assert_eq!(run(&[2_000]), run(&[10, 15, 100, 400, 401, 2_000]));
    }

    #[test]
    fn fault_partitioning_touches_both_sides_of_cross_links() {
        let (world, a, b) = two_region_world(0.0);
        let plan = ShardPlan::by_region(world.topology(), 2);
        let l = LinkId(0);
        let mut fp = FaultPlan::new();
        fp.link_outage(l, SimTime::from_millis(100), SimDuration::from_millis(50));
        fp.crash_restart(b, SimTime::from_millis(200), SimDuration::from_millis(10));
        let parts = plan.partition_faults(fp, world.topology());
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].len(), 1, "link outage for a's shard");
        assert_eq!(parts[1].len(), 2, "link outage + crash for b's shard");
        let _ = a;
    }

    #[test]
    fn outage_fault_is_shard_invariant() {
        let run = |shards: usize| {
            let (world, a, b) = two_region_world(0.0);
            let plan = ShardPlan::by_region(world.topology(), shards);
            let mut fp = FaultPlan::new();
            // Dark over [95, 125) ms: drops the 10 ms-cadence sends at
            // 100, 110, 120 ms in both directions.
            fp.link_outage(
                LinkId(0),
                SimTime::from_millis(95),
                SimDuration::from_millis(30),
            );
            let parts = plan.partition_faults(fp, world.topology());
            let mut cells = make_cells(world, &plan, 11);
            for (cell, part) in cells.iter_mut().zip(parts) {
                cell.driver.set_fault_plan(part);
            }
            let mut ca = chatter(a, IP_A, IP_B, 30);
            let mut cb = chatter(b, IP_B, IP_A, 30);
            let mut sets: Vec<Vec<&mut (dyn Endpoint + Send)>> =
                (0..shards).map(|_| Vec::new()).collect();
            sets[plan.shard_of(a)].push(&mut ca);
            sets[plan.shard_of(b)].push(&mut cb);
            run_sharded(
                &mut cells,
                &mut sets,
                SimTime::from_secs(1),
                SimDuration::from_millis(5),
            );
            let stats = merged_link_stats(&cells, LinkId(0));
            (ca.received.clone(), cb.received.clone(), stats)
        };
        let one = run(1);
        assert_eq!(one.0.len(), 27);
        assert_eq!(one.2.ab_dropped, 3);
        assert_eq!(one.2.ba_dropped, 3);
        assert_eq!(run(2), one);
    }

    #[test]
    fn disconnected_regions_need_no_lookahead() {
        let mut t = Topology::new();
        let a0 = t.add_node_in_region("a0", 0);
        let a1 = t.add_node_in_region("a1", 0);
        let b0 = t.add_node_in_region("b0", 1);
        let b1 = t.add_node_in_region("b1", 1);
        t.add_symmetric_link(a0, a1, LinkConfig::delay_only(SimDuration::from_millis(1)));
        t.add_symmetric_link(b0, b1, LinkConfig::delay_only(SimDuration::from_millis(1)));
        let plan = ShardPlan::by_region(&t, 2);
        assert_eq!(plan.lookahead(&t), None);
    }
}
