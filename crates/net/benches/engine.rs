//! Engine microbenchmark: one busy flow amid N idle endpoints.
//!
//! The shape that broke the old per-event scan: a single 100 µs ticker
//! generates all the events while N − 1 endpoints sit idle on far-out
//! timers. With a scan, every tick costs O(N); with the indexed
//! [`Driver`], waking the one due endpoint costs O(log N), so the
//! per-tick time should stay nearly flat from N = 10 to N = 10 000.
//!
//! Run with `cargo bench -p cellbricks-net --bench engine`.

use bytes::Bytes;
use cellbricks_net::{Driver, Endpoint, LinkConfig, NetWorld, NodeId, Packet, Topology};
use cellbricks_sim::{SimDuration, SimRng, SimTime};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::net::Ipv4Addr;

const SRC_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 9, 1);
const DST_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 9, 2);

/// Sends one control packet to [`DST_IP`] every `interval`, forever.
struct Ticker {
    node: NodeId,
    next: SimTime,
    interval: SimDuration,
}

impl Endpoint for Ticker {
    fn node(&self) -> NodeId {
        self.node
    }
    fn handle_packet(&mut self, _now: SimTime, _pkt: Packet, _out: &mut Vec<Packet>) {}
    fn poll_at(&self) -> Option<SimTime> {
        Some(self.next)
    }
    fn poll(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        while self.next <= now {
            out.push(Packet::control(SRC_IP, DST_IP, Bytes::from_static(b"t")));
            self.next += self.interval;
        }
    }
}

/// Counts receptions; never wakes itself.
struct Sink {
    node: NodeId,
    received: u64,
}

impl Endpoint for Sink {
    fn node(&self) -> NodeId {
        self.node
    }
    fn handle_packet(&mut self, _now: SimTime, _pkt: Packet, _out: &mut Vec<Packet>) {
        self.received += 1;
    }
    fn poll_at(&self) -> Option<SimTime> {
        None
    }
    fn poll(&mut self, _now: SimTime, _out: &mut Vec<Packet>) {}
}

/// Idle bystander: armed on a timer that never comes due in-bench.
struct Idle {
    node: NodeId,
    wake: SimTime,
}

impl Endpoint for Idle {
    fn node(&self) -> NodeId {
        self.node
    }
    fn handle_packet(&mut self, _now: SimTime, _pkt: Packet, _out: &mut Vec<Packet>) {}
    fn poll_at(&self) -> Option<SimTime> {
        Some(self.wake)
    }
    fn poll(&mut self, now: SimTime, _out: &mut Vec<Packet>) {
        self.wake = now + SimDuration::from_secs(3_600);
    }
}

struct BenchWorld {
    world: NetWorld,
    ticker: Ticker,
    sink: Sink,
    idles: Vec<Idle>,
    driver: Driver,
    cursor: SimTime,
}

fn build(n_idle: usize) -> BenchWorld {
    let mut t = Topology::new();
    let src = t.add_node("src");
    let dst = t.add_node("dst");
    let link = t.add_symmetric_link(
        src,
        dst,
        LinkConfig::delay_only(SimDuration::from_micros(10)),
    );
    t.add_default_route(src, link);
    t.add_default_route(dst, link);
    let idles = (0..n_idle)
        .map(|i| Idle {
            node: t.add_node(&format!("idle-{i}")),
            wake: SimTime::from_secs(3_600),
        })
        .collect();
    BenchWorld {
        world: NetWorld::new(t, SimRng::new(42)),
        ticker: Ticker {
            node: src,
            next: SimTime::ZERO,
            interval: SimDuration::from_micros(100),
        },
        sink: Sink {
            node: dst,
            received: 0,
        },
        idles,
        driver: Driver::new(),
        cursor: SimTime::ZERO,
    }
}

impl BenchWorld {
    /// Advance the same world by one more window; no rebuild, so the
    /// measured cost is pure engine work.
    fn advance(&mut self, by: SimDuration) -> u64 {
        self.cursor += by;
        let mut eps: Vec<&mut dyn Endpoint> = Vec::with_capacity(self.idles.len() + 2);
        eps.push(&mut self.ticker);
        eps.push(&mut self.sink);
        for idle in &mut self.idles {
            eps.push(idle);
        }
        self.driver.run_to(&mut self.world, &mut eps, self.cursor);
        self.sink.received
    }
}

fn bench_engine(c: &mut Criterion) {
    for n in [10usize, 1_000, 10_000] {
        // 10 ms of virtual time = 100 ticks + 100 arrivals per iteration.
        let mut w = build(n);
        c.bench_function(&format!("driver_busy_flow_idle_{n}"), |b| {
            b.iter(|| black_box(w.advance(SimDuration::from_millis(10))))
        });
    }
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
