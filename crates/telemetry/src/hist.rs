//! A fixed-precision log-linear histogram (HdrHistogram-style).
//!
//! Values in `[0, 2^SUB_BITS)` are counted exactly; above that, each
//! power-of-two decade is split into `2^SUB_BITS` linear sub-buckets,
//! bounding the relative quantization error of any recorded value to
//! `2^-SUB_BITS` (< 0.8%) of its magnitude. Storage grows lazily to the
//! highest bucket touched, so an idle histogram costs a few hundred
//! bytes and a nanosecond-latency histogram spanning nine orders of
//! magnitude stays under 32 KiB.

/// Sub-bucket resolution: 2^7 = 128 linear buckets per decade.
const SUB_BITS: u32 = 7;
const SUB_COUNT: u64 = 1 << SUB_BITS;

/// A log-linear histogram of `u64` samples.
#[derive(Clone, Debug, Default)]
pub struct LogLinearHist {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Bucket index for `v`. Exact below `SUB_COUNT`; log-linear above.
fn index_of(v: u64) -> usize {
    if v < SUB_COUNT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64; // >= SUB_BITS
    let decade = msb - u64::from(SUB_BITS); // >= 0
    let sub = (v >> decade) - SUB_COUNT; // in [0, SUB_COUNT)
    (SUB_COUNT + decade * SUB_COUNT + sub) as usize
}

/// Inclusive lower bound of bucket `idx` (inverse of [`index_of`]).
fn lower_bound_of(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB_COUNT {
        return idx;
    }
    let decade = (idx - SUB_COUNT) / SUB_COUNT;
    let sub = (idx - SUB_COUNT) % SUB_COUNT;
    (SUB_COUNT + sub) << decade
}

/// Width of bucket `idx` (1 in the exact region).
fn width_of(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB_COUNT {
        1
    } else {
        1 << ((idx - SUB_COUNT) / SUB_COUNT)
    }
}

impl LogLinearHist {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let idx = index_of(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 if empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 if empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the exact recorded values (0.0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the midpoint of the bucket
    /// containing the `ceil(q * count)`-th sample, clamped to the exact
    /// observed min/max. Accurate to within one bucket width.
    #[must_use]
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                let mid = lower_bound_of(idx) + width_of(idx) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Forget all samples.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Non-empty buckets as `(lower_bound, width, count)`, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(idx, &c)| (lower_bound_of(idx), width_of(idx), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip_brackets_value() {
        for v in [0u64, 1, 5, 127, 128, 129, 1000, 65_535, 1 << 20, u64::MAX] {
            let idx = index_of(v);
            let lo = lower_bound_of(idx);
            let w = width_of(idx);
            assert!(lo <= v, "lower bound {lo} > value {v}");
            assert!(
                v - lo < w,
                "value {v} outside bucket [{lo}, {lo}+{w}) at idx {idx}"
            );
        }
    }

    #[test]
    fn indices_are_monotone() {
        let mut prev = 0;
        for v in (0..4096u64).chain((12..40).map(|e| (1u64 << e) + 17)) {
            let idx = index_of(v);
            assert!(idx >= prev, "index not monotone at {v}");
            prev = idx;
        }
    }

    #[test]
    fn exact_region_is_exact() {
        let mut h = LogLinearHist::new();
        for v in 0..SUB_COUNT {
            h.record(v);
        }
        for (i, q) in [(0u64, 0.001), (63, 0.5), (127, 1.0)] {
            assert_eq!(h.value_at_quantile(q), i, "q={q}");
        }
    }

    #[test]
    fn relative_error_bounded() {
        // Any single recorded value is reported within one bucket width:
        // relative error < 2^-SUB_BITS.
        for v in [200u64, 999, 10_001, 123_456_789, 1 << 40] {
            let mut h = LogLinearHist::new();
            h.record(v);
            let got = h.value_at_quantile(0.5);
            let err = got.abs_diff(v) as f64 / v as f64;
            assert!(err <= 1.0 / SUB_COUNT as f64, "v={v} got={got} err={err}");
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = LogLinearHist::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 5_000u64), (0.95, 9_500), (0.99, 9_900)] {
            let got = h.value_at_quantile(q);
            let err = got.abs_diff(expect) as f64 / expect as f64;
            assert!(err < 0.01, "q={q} got={got} want~{expect}");
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10_000);
        assert!((h.mean() - 5_000.5).abs() < 1e-6);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = LogLinearHist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.value_at_quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn clear_resets() {
        let mut h = LogLinearHist::new();
        h.record(42);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.buckets().count(), 0);
    }

    #[test]
    fn quantile_clamped_to_observed_range() {
        let mut h = LogLinearHist::new();
        h.record(1_000_003);
        assert_eq!(h.value_at_quantile(0.0), 1_000_003);
        assert!(h.value_at_quantile(1.0) <= h.max());
        assert!(h.value_at_quantile(0.5) >= h.min());
    }
}
