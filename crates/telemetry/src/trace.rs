//! A bounded event-trace ring buffer with chrome://tracing JSON export.
//!
//! Events are stamped with **virtual** time (`SimTime` nanoseconds fed
//! in by the instrumented layers), so a trace of a deterministic run is
//! itself deterministic. When the buffer wraps, the oldest events are
//! overwritten and a drop counter records how many were lost — tracing
//! never allocates without bound and never aborts a run.

use crate::json::JsonWriter;
use parking_lot::Mutex;
use std::borrow::Cow;

/// Event flavour, mapping onto chrome://tracing phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TracePhase {
    /// A span with a duration (`ph: "X"`).
    Complete,
    /// A point event (`ph: "i"`).
    Instant,
}

/// One trace record.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Virtual timestamp, nanoseconds since the experiment epoch.
    pub ts_ns: u64,
    /// Span duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Event name (the chrome://tracing row label).
    pub name: Cow<'static, str>,
    /// Category tag, e.g. `"sap"` or `"tcp"` (filterable in the UI).
    pub cat: &'static str,
    /// Span or instant.
    pub phase: TracePhase,
    /// Logical track id (rendered as a thread lane).
    pub track: u32,
}

struct Ring {
    buf: Vec<TraceEvent>,
    /// Index of the logical start once the buffer has wrapped.
    head: usize,
    wrapped: bool,
    dropped: u64,
}

/// A fixed-capacity, wrapping trace buffer.
pub struct TraceBuffer {
    ring: Mutex<Ring>,
    capacity: usize,
}

impl TraceBuffer {
    /// A buffer holding at most `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: Mutex::new(Ring {
                buf: Vec::new(),
                head: 0,
                wrapped: false,
                dropped: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Append an event, overwriting the oldest if full.
    pub fn push(&self, ev: TraceEvent) {
        let mut r = self.ring.lock();
        if r.buf.len() < self.capacity {
            r.buf.push(ev);
        } else {
            let head = r.head;
            r.buf[head] = ev;
            r.head = (head + 1) % self.capacity;
            r.wrapped = true;
            r.dropped += 1;
        }
    }

    /// Number of events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.lock().buf.len()
    }

    /// True if no events are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events overwritten because the buffer wrapped.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.ring.lock().dropped
    }

    /// The held events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        let r = self.ring.lock();
        let mut out = Vec::with_capacity(r.buf.len());
        if r.wrapped {
            out.extend_from_slice(&r.buf[r.head..]);
            out.extend_from_slice(&r.buf[..r.head]);
        } else {
            out.extend_from_slice(&r.buf);
        }
        out
    }

    /// Forget everything, including the drop counter.
    pub fn clear(&self) {
        let mut r = self.ring.lock();
        r.buf.clear();
        r.head = 0;
        r.wrapped = false;
        r.dropped = 0;
    }

    /// Serialize as a chrome://tracing "Trace Event Format" document.
    ///
    /// Open `chrome://tracing` (or <https://ui.perfetto.dev>) and load
    /// the file. Timestamps are virtual microseconds; each `track`
    /// renders as its own lane under pid 0.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let events = self.events();
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("displayTimeUnit").str_value("ms");
        w.key("traceEvents").begin_array();
        for ev in &events {
            w.begin_object();
            w.key("name").str_value(&ev.name);
            w.key("cat").str_value(ev.cat);
            w.key("ph").str_value(if ev.phase == TracePhase::Complete {
                "X"
            } else {
                "i"
            });
            // chrome://tracing expects microseconds; keep sub-µs detail.
            w.key("ts").f64_value(ev.ts_ns as f64 / 1_000.0);
            if ev.phase == TracePhase::Complete {
                w.key("dur").f64_value(ev.dur_ns as f64 / 1_000.0);
            } else {
                w.key("s").str_value("t");
            }
            w.key("pid").u64_value(0);
            w.key("tid").u64_value(u64::from(ev.track));
            w.end_object();
        }
        w.end_array();
        w.key("droppedEvents").u64_value(self.dropped());
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, name: &'static str) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            dur_ns: 10,
            name: Cow::Borrowed(name),
            cat: "test",
            phase: TracePhase::Complete,
            track: 0,
        }
    }

    #[test]
    fn keeps_insertion_order() {
        let t = TraceBuffer::new(8);
        for i in 0..5 {
            t.push(ev(i, "e"));
        }
        let names: Vec<u64> = t.events().iter().map(|e| e.ts_ns).collect();
        assert_eq!(names, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn wraparound_keeps_newest_and_counts_drops() {
        let t = TraceBuffer::new(4);
        for i in 0..10 {
            t.push(ev(i, "e"));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        let ts: Vec<u64> = t.events().iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![6, 7, 8, 9], "oldest-first after wrap");
    }

    #[test]
    fn wraparound_exactly_at_capacity_boundary() {
        let t = TraceBuffer::new(3);
        for i in 0..6 {
            t.push(ev(i, "e"));
        }
        // Wrapped exactly twice around: head back at 0.
        let ts: Vec<u64> = t.events().iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![3, 4, 5]);
    }

    #[test]
    fn chrome_export_shape() {
        let t = TraceBuffer::new(4);
        t.push(ev(1_500, "attach"));
        t.push(TraceEvent {
            ts_ns: 2_000,
            dur_ns: 0,
            name: Cow::Borrowed("drop"),
            cat: "net",
            phase: TracePhase::Instant,
            track: 3,
        });
        let json = t.to_chrome_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#""name":"attach""#));
        assert!(json.contains(r#""ph":"X""#));
        assert!(json.contains(r#""ph":"i""#));
        assert!(json.contains(r#""ts":1.5"#));
        assert!(json.contains(r#""tid":3"#));
        assert!(json.contains(r#""droppedEvents":0"#));
    }

    #[test]
    fn clear_resets_everything() {
        let t = TraceBuffer::new(2);
        for i in 0..5 {
            t.push(ev(i, "e"));
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }
}
