//! A tiny hand-rolled JSON writer (no serde in this workspace).
//!
//! Only what the exporters need: objects with string keys, arrays,
//! strings, integers, and finite floats. Keys are emitted in the order
//! callers provide them; the exporters feed sorted maps so output is
//! byte-stable across runs.

/// Append a JSON string literal (with escaping) to `out`.
pub fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite float. Non-finite values become `null` (JSON has no
/// NaN/Inf); integral values print without a trailing `.0` ambiguity by
/// using the shortest roundtrip representation Rust gives us.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// A minimal streaming writer for one JSON document.
///
/// Tracks whether a separator comma is needed at each nesting level;
/// misuse (e.g. closing more scopes than were opened) panics in debug
/// via underflow rather than emitting bad JSON silently.
#[derive(Default)]
pub struct JsonWriter {
    out: String,
    need_comma: Vec<bool>,
}

impl JsonWriter {
    /// A fresh writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn pre_value(&mut self) {
        if let Some(top) = self.need_comma.last_mut() {
            if *top {
                self.out.push(',');
            }
            *top = true;
        }
    }

    /// Begin an object as the next value.
    pub fn begin_object(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('{');
        self.need_comma.push(false);
        self
    }

    /// End the innermost object.
    pub fn end_object(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.out.push('}');
        self
    }

    /// Begin an array as the next value.
    pub fn begin_array(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('[');
        self.need_comma.push(false);
        self
    }

    /// End the innermost array.
    pub fn end_array(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.out.push(']');
        self
    }

    /// Emit `"key":` (must be inside an object; value must follow).
    pub fn key(&mut self, key: &str) -> &mut Self {
        self.pre_value();
        push_str_lit(&mut self.out, key);
        self.out.push(':');
        // The upcoming value must not emit another comma.
        if let Some(top) = self.need_comma.last_mut() {
            *top = false;
        }
        self
    }

    /// Emit a string value.
    pub fn str_value(&mut self, v: &str) -> &mut Self {
        self.pre_value();
        push_str_lit(&mut self.out, v);
        self
    }

    /// Emit an unsigned integer value.
    pub fn u64_value(&mut self, v: u64) -> &mut Self {
        self.pre_value();
        self.out.push_str(&v.to_string());
        self
    }

    /// Emit a signed integer value.
    pub fn i64_value(&mut self, v: i64) -> &mut Self {
        self.pre_value();
        self.out.push_str(&v.to_string());
        self
    }

    /// Emit a float value (`null` if non-finite).
    pub fn f64_value(&mut self, v: f64) -> &mut Self {
        self.pre_value();
        push_f64(&mut self.out, v);
        self
    }

    /// Finish, returning the document.
    #[must_use]
    pub fn finish(self) -> String {
        debug_assert!(self.need_comma.is_empty(), "unclosed JSON scope");
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_with_mixed_values() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a").u64_value(1);
        w.key("b").str_value("x\"y");
        w.key("c").begin_array();
        w.u64_value(1).u64_value(2);
        w.end_array();
        w.key("d").f64_value(1.5);
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":1,"b":"x\"y","c":[1,2],"d":1.5}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.f64_value(f64::NAN)
            .f64_value(f64::INFINITY)
            .f64_value(2.0);
        w.end_array();
        assert_eq!(w.finish(), "[null,null,2]");
    }

    #[test]
    fn escaping_control_chars() {
        let mut s = String::new();
        push_str_lit(&mut s, "a\nb\t\u{1}");
        assert_eq!(s, "\"a\\nb\\t\\u0001\"");
    }

    #[test]
    fn nested_objects_comma_placement() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("o1").begin_object().end_object();
        w.key("o2").begin_object();
        w.key("x").i64_value(-3);
        w.end_object();
        w.end_object();
        assert_eq!(w.finish(), r#"{"o1":{},"o2":{"x":-3}}"#);
    }
}
