//! Observability substrate for the CellBricks reproduction.
//!
//! The paper's evaluation is built from latency and throughput
//! measurements taken *inside* the system; this crate is the one place
//! those measurements live. It provides:
//!
//! * [`Counter`] / [`Gauge`] — monotone and instantaneous scalars,
//! * [`Histogram`] — fixed-precision log-linear latency histograms
//!   ([`hist::LogLinearHist`], HdrHistogram-style, < 0.8% relative
//!   quantization error),
//! * [`trace::TraceBuffer`] — a bounded event-trace ring stamped with
//!   virtual (`SimTime`) nanoseconds, exportable as chrome://tracing
//!   JSON,
//! * a [`Registry`] keyed by metric name, exportable as a flat,
//!   byte-stable `metrics.json`.
//!
//! # Naming convention
//!
//! `<layer>.<component>.<metric>[_<unit>]`, e.g.
//! `transport.tcp.retransmits`, `core.sap.attach_total_ns`,
//! `net.link.policer_drops`. Histogram samples are raw `u64`s; the
//! `_ns`, `_bytes`, `_ms` suffix names the unit. Dynamic label values
//! (placement, variant) are dot-appended: `bench.fig7.us-west-1.CB.total_ns`.
//!
//! # Cost model
//!
//! Recording through a handle is one relaxed atomic load (the enabled
//! flag) plus, when enabled, an atomic add or an uncontended mutex'd
//! histogram insert. When disabled — the default — every record path
//! returns after the flag check, so instrumented code measures within
//! noise of uninstrumented code. Handles are cheap `Arc` clones meant
//! to be captured once at construction time, not looked up per event.
//!
//! # Determinism
//!
//! Nothing here reads the wall clock or ambient randomness. Exports
//! iterate name-sorted maps, so two identically-seeded runs produce
//! byte-identical `metrics.json` and trace JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod json;
pub mod trace;

use hist::LogLinearHist;
use json::JsonWriter;
use parking_lot::Mutex;
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use trace::{TraceBuffer, TraceEvent, TracePhase};

/// Metric names: usually `&'static str`, owned only for label-suffixed
/// names built at setup time.
pub type MetricName = Cow<'static, str>;

struct CounterCell {
    enabled: Arc<AtomicBool>,
    value: AtomicU64,
}

/// A monotone counter. Saturates at `u64::MAX` instead of wrapping.
#[derive(Clone)]
pub struct Counter(Arc<CounterCell>);

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` (saturating).
    #[inline]
    pub fn add(&self, n: u64) {
        if !self.0.enabled.load(Ordering::Relaxed) {
            return;
        }
        let _ = self
            .0
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(n))
            });
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

struct GaugeCell {
    enabled: Arc<AtomicBool>,
    value: AtomicI64,
    max: AtomicI64,
}

/// An instantaneous value (e.g. queue depth) with a high-water mark.
#[derive(Clone)]
pub struct Gauge(Arc<GaugeCell>);

impl Gauge {
    /// Set the current value (updates the high-water mark).
    #[inline]
    pub fn set(&self, v: i64) {
        if !self.0.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.0.value.store(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Adjust the current value by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        if !self.0.enabled.load(Ordering::Relaxed) {
            return;
        }
        let v = self.0.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// Highest value ever set.
    #[must_use]
    pub fn max(&self) -> i64 {
        self.0.max.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

struct HistogramCell {
    enabled: Arc<AtomicBool>,
    inner: Mutex<LogLinearHist>,
}

/// A log-linear histogram handle (samples are raw `u64`s; see the
/// crate-level naming convention for units).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCell>);

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if !self.0.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.0.inner.lock().record(v);
    }

    /// A point-in-time copy of the underlying histogram.
    #[must_use]
    pub fn snapshot(&self) -> LogLinearHist {
        self.0.inner.lock().clone()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let h = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &h.count())
            .finish_non_exhaustive()
    }
}

/// Summary of one histogram, as exported into `metrics.json`.
#[derive(Clone, Debug, PartialEq)]
pub struct HistSummary {
    /// Sample count.
    pub count: u64,
    /// Exact minimum.
    pub min: u64,
    /// Exact maximum.
    pub max: u64,
    /// Exact mean.
    pub mean: f64,
    /// 50th percentile (within one bucket width).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl HistSummary {
    /// Summarize a histogram.
    #[must_use]
    pub fn of(h: &LogLinearHist) -> Self {
        Self {
            count: h.count(),
            min: h.min(),
            max: h.max(),
            mean: h.mean(),
            p50: h.value_at_quantile(0.50),
            p90: h.value_at_quantile(0.90),
            p95: h.value_at_quantile(0.95),
            p99: h.value_at_quantile(0.99),
            p999: h.value_at_quantile(0.999),
        }
    }
}

/// A point-in-time, name-sorted copy of every metric in a registry.
#[derive(Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge `(value, max)` by name.
    pub gauges: BTreeMap<String, (i64, i64)>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistSummary>,
}

impl MetricsSnapshot {
    /// Serialize as the flat `metrics.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("counters").begin_object();
        for (name, v) in &self.counters {
            w.key(name).u64_value(*v);
        }
        w.end_object();
        w.key("gauges").begin_object();
        for (name, (v, max)) in &self.gauges {
            w.key(name).begin_object();
            w.key("value").i64_value(*v);
            w.key("max").i64_value(*max);
            w.end_object();
        }
        w.end_object();
        w.key("histograms").begin_object();
        for (name, h) in &self.histograms {
            w.key(name).begin_object();
            w.key("count").u64_value(h.count);
            w.key("min").u64_value(h.min);
            w.key("max").u64_value(h.max);
            w.key("mean").f64_value(h.mean);
            w.key("p50").u64_value(h.p50);
            w.key("p90").u64_value(h.p90);
            w.key("p95").u64_value(h.p95);
            w.key("p99").u64_value(h.p99);
            w.key("p999").u64_value(h.p999);
            w.end_object();
        }
        w.end_object();
        w.end_object();
        w.finish()
    }
}

/// A metric registry: the unit of export and of enable/disable.
///
/// There is one process-global registry (see [`global`]) used by the
/// instrumented crates; tests construct private registries so parallel
/// test threads never observe each other's metrics.
pub struct Registry {
    enabled: Arc<AtomicBool>,
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    trace: TraceBuffer,
}

/// Default trace ring capacity (events).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A registry with recording **enabled** and the default trace
    /// capacity. (The process-global registry instead starts disabled;
    /// see [`enable`].)
    #[must_use]
    pub fn new() -> Self {
        Self::with_state(true, DEFAULT_TRACE_CAPACITY)
    }

    /// A registry with explicit initial state.
    #[must_use]
    pub fn with_state(enabled: bool, trace_capacity: usize) -> Self {
        Self {
            enabled: Arc::new(AtomicBool::new(enabled)),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            trace: TraceBuffer::new(trace_capacity),
        }
    }

    /// Turn recording on or off. Handles already handed out observe the
    /// change immediately (they share the flag).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// True if recording is on.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The counter named `name` (registering it on first use).
    pub fn counter(&self, name: impl Into<MetricName>) -> Counter {
        let name = name.into();
        let mut map = self.counters.lock();
        if let Some(c) = map.get(name.as_ref()) {
            return c.clone();
        }
        let c = Counter(Arc::new(CounterCell {
            enabled: Arc::clone(&self.enabled),
            value: AtomicU64::new(0),
        }));
        map.insert(name.into_owned(), c.clone());
        c
    }

    /// The gauge named `name` (registering it on first use).
    pub fn gauge(&self, name: impl Into<MetricName>) -> Gauge {
        let name = name.into();
        let mut map = self.gauges.lock();
        if let Some(g) = map.get(name.as_ref()) {
            return g.clone();
        }
        let g = Gauge(Arc::new(GaugeCell {
            enabled: Arc::clone(&self.enabled),
            value: AtomicI64::new(0),
            max: AtomicI64::new(i64::MIN),
        }));
        map.insert(name.into_owned(), g.clone());
        g
    }

    /// The histogram named `name` (registering it on first use).
    pub fn histogram(&self, name: impl Into<MetricName>) -> Histogram {
        let name = name.into();
        let mut map = self.histograms.lock();
        if let Some(h) = map.get(name.as_ref()) {
            return h.clone();
        }
        let h = Histogram(Arc::new(HistogramCell {
            enabled: Arc::clone(&self.enabled),
            inner: Mutex::new(LogLinearHist::new()),
        }));
        map.insert(name.into_owned(), h.clone());
        h
    }

    /// The event-trace ring buffer.
    #[must_use]
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Record a completed span on the trace (no-op when disabled).
    pub fn trace_span(
        &self,
        name: impl Into<MetricName>,
        cat: &'static str,
        start_ns: u64,
        end_ns: u64,
        track: u32,
    ) {
        if !self.enabled() {
            return;
        }
        self.trace.push(TraceEvent {
            ts_ns: start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
            name: name.into(),
            cat,
            phase: TracePhase::Complete,
            track,
        });
    }

    /// Record an instantaneous trace event (no-op when disabled).
    pub fn trace_instant(&self, name: impl Into<MetricName>, cat: &'static str, ts_ns: u64) {
        if !self.enabled() {
            return;
        }
        self.trace.push(TraceEvent {
            ts_ns,
            dur_ns: 0,
            name: name.into(),
            cat,
            phase: TracePhase::Instant,
            track: 0,
        });
    }

    /// Snapshot every metric, name-sorted.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for (name, c) in self.counters.lock().iter() {
            snap.counters.insert(name.clone(), c.get());
        }
        for (name, g) in self.gauges.lock().iter() {
            let max = g.max();
            let max = if max == i64::MIN { g.get() } else { max };
            snap.gauges.insert(name.clone(), (g.get(), max));
        }
        for (name, h) in self.histograms.lock().iter() {
            snap.histograms
                .insert(name.clone(), HistSummary::of(&h.snapshot()));
        }
        snap
    }

    /// Reset every metric to zero and clear the trace. Registered
    /// handles stay valid (they keep recording into the same cells).
    pub fn reset(&self) {
        for c in self.counters.lock().values() {
            c.0.value.store(0, Ordering::Relaxed);
        }
        for g in self.gauges.lock().values() {
            g.0.value.store(0, Ordering::Relaxed);
            g.0.max.store(i64::MIN, Ordering::Relaxed);
        }
        for h in self.histograms.lock().values() {
            h.0.inner.lock().clear();
        }
        self.trace.clear();
    }

    /// Write `metrics.json` to `path` (creating parent directories).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_metrics_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.snapshot().to_json())
    }

    /// Write the chrome://tracing export to `path`.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_chrome_trace(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.trace.to_chrome_json())
    }
}

/// The process-global registry the instrumented crates record into.
///
/// Starts **disabled**: library code can register handles eagerly and
/// pay only an atomic load per event until a binary opts in via
/// [`enable`] (the bench harness does this at startup unless
/// `CELLBRICKS_TELEMETRY=off`).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(|| Registry::with_state(false, DEFAULT_TRACE_CAPACITY))
}

/// Enable recording on the global registry.
pub fn enable() {
    global().set_enabled(true);
}

/// Disable recording on the global registry.
pub fn disable() {
    global().set_enabled(false);
}

/// True if the global registry is recording.
#[must_use]
pub fn is_enabled() -> bool {
    global().enabled()
}

/// Global-registry counter (see [`Registry::counter`]).
pub fn counter(name: impl Into<MetricName>) -> Counter {
    global().counter(name)
}

/// Global-registry gauge (see [`Registry::gauge`]).
pub fn gauge(name: impl Into<MetricName>) -> Gauge {
    global().gauge(name)
}

/// Global-registry histogram (see [`Registry::histogram`]).
pub fn histogram(name: impl Into<MetricName>) -> Histogram {
    global().histogram(name)
}

/// Record a span on the global trace (see [`Registry::trace_span`]).
pub fn trace_span(
    name: impl Into<MetricName>,
    cat: &'static str,
    start_ns: u64,
    end_ns: u64,
    track: u32,
) {
    global().trace_span(name, cat, start_ns, end_ns, track);
}

/// Record an instant on the global trace (see
/// [`Registry::trace_instant`]).
pub fn trace_instant(name: impl Into<MetricName>, cat: &'static str, ts_ns: u64) {
    global().trace_instant(name, cat, ts_ns);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_saturates() {
        let r = Registry::new();
        let c = r.counter("t.count");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Overflow behaviour: saturation, not wraparound.
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::with_state(false, 16);
        let c = r.counter("t.count");
        let g = r.gauge("t.depth");
        let h = r.histogram("t.lat_ns");
        c.inc();
        g.set(9);
        h.record(100);
        r.trace_span("span", "test", 0, 10, 0);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.snapshot().count(), 0);
        assert!(r.trace().is_empty());
        // Flipping the shared flag revives existing handles.
        r.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn same_name_same_cell() {
        let r = Registry::new();
        let a = r.counter("dup");
        let b = r.counter("dup");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(r.snapshot().counters["dup"], 2);
    }

    #[test]
    fn gauge_tracks_high_water_mark() {
        let r = Registry::new();
        let g = r.gauge("t.depth");
        g.set(3);
        g.set(10);
        g.set(2);
        g.add(1);
        assert_eq!(g.get(), 3);
        assert_eq!(g.max(), 10);
    }

    #[test]
    fn owned_names_for_labelled_metrics() {
        let r = Registry::new();
        for placement in ["local", "us-west-1"] {
            r.counter(format!("bench.fig7.{placement}.trials")).add(7);
        }
        let snap = r.snapshot();
        assert_eq!(snap.counters["bench.fig7.local.trials"], 7);
        assert_eq!(snap.counters["bench.fig7.us-west-1.trials"], 7);
    }

    #[test]
    fn snapshot_json_is_deterministic_across_seeded_runs() {
        // Two identical "runs" (same seed => same recorded values) must
        // serialize byte-identically, regardless of insertion order.
        let run = |names_reversed: bool| {
            let r = Registry::new();
            let mut names = vec!["b.lat_ns", "a.lat_ns", "c.lat_ns"];
            if names_reversed {
                names.reverse();
            }
            for n in names {
                let h = r.histogram(n);
                for v in [10u64, 20, 30, 1000] {
                    h.record(v);
                }
            }
            r.counter("z.count").add(3);
            r.counter("a.count").add(1);
            r.gauge("m.depth").set(5);
            r.trace_span("attach", "sap", 100, 900, 1);
            (r.snapshot().to_json(), r.trace().to_chrome_json())
        };
        let (m1, t1) = run(false);
        let (m2, t2) = run(true);
        assert_eq!(m1, m2, "metrics.json must be byte-stable");
        assert_eq!(t1, t2, "trace export must be byte-stable");
        assert!(m1.contains(r#""a.count":1"#));
        assert!(m1.contains(r#""p99":"#));
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let r = Registry::new();
        let c = r.counter("x");
        let h = r.histogram("y");
        c.inc();
        h.record(5);
        r.trace_instant("i", "t", 1);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count(), 0);
        assert!(r.trace().is_empty());
        c.inc();
        assert_eq!(r.snapshot().counters["x"], 1);
    }

    #[test]
    fn histogram_percentiles_in_export() {
        let r = Registry::new();
        let h = r.histogram("lat_ns");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = r.snapshot();
        let s = &snap.histograms["lat_ns"];
        assert_eq!(s.count, 1000);
        let within = |got: u64, want: u64| got.abs_diff(want) as f64 / (want as f64) < 0.01;
        assert!(within(s.p50, 500), "p50 {}", s.p50);
        assert!(within(s.p99, 990), "p99 {}", s.p99);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
    }
}
