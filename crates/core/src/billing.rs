//! Verifiable billing: tamper-evident traffic reports (paper §4.3).
//!
//! The UE (in its baseband, assumed tamper-resilient) and the bTelco (at
//! its PGW) independently measure each session's traffic and periodically
//! send signed, sealed reports to the broker. The broker aligns the two
//! report streams and flags discrepancies beyond the Fig. 5 threshold
//! `max(lossᵈˡ·dlᵀ, ε·dlᵀ)` as mismatches feeding the reputation system.

use bytes::Bytes;
use cellbricks_crypto::ed25519::{Signature, SigningKey, VerifyingKey};
use cellbricks_crypto::sealed::{open, seal, SealedBox};
use cellbricks_crypto::x25519::{X25519PublicKey, X25519SecretKey};
use cellbricks_epc::wire::{Reader, Writer};
use cellbricks_sim::{SimDuration, SimRng, SimTime};

/// One usage report for one reporting cycle of a session (paper §4.3:
/// session id, relative timestamp, usage, duration, QoS metrics).
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficReport {
    /// Billing session (assigned by the broker at authorization).
    pub session_id: u64,
    /// Reporting cycle number within the session (the "relative
    /// timestamp" used by the broker to align U and T reports).
    pub seq: u32,
    /// Uplink bytes this cycle.
    pub ul_bytes: u64,
    /// Downlink bytes this cycle.
    pub dl_bytes: u64,
    /// Connection/call duration this cycle, milliseconds.
    pub duration_ms: u64,
    /// Observed downlink loss ratio in parts-per-million.
    pub dl_loss_ppm: u32,
    /// Observed uplink loss ratio in parts-per-million.
    pub ul_loss_ppm: u32,
    /// Average downlink rate, kbit/s (QoS metric).
    pub avg_dl_kbps: u32,
    /// Average uplink rate, kbit/s (QoS metric).
    pub avg_ul_kbps: u32,
    /// Average packet delay, milliseconds (QoS metric).
    pub delay_ms: u32,
}

impl TrafficReport {
    /// Encode to wire bytes.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        w.put_u64(self.session_id)
            .put_u32(self.seq)
            .put_u64(self.ul_bytes)
            .put_u64(self.dl_bytes)
            .put_u64(self.duration_ms)
            .put_u32(self.dl_loss_ppm)
            .put_u32(self.ul_loss_ppm)
            .put_u32(self.avg_dl_kbps)
            .put_u32(self.avg_ul_kbps)
            .put_u32(self.delay_ms);
        w.finish()
    }

    /// Decode from wire bytes.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<TrafficReport> {
        let mut r = Reader::new(bytes);
        let report = TrafficReport {
            session_id: r.get_u64()?,
            seq: r.get_u32()?,
            ul_bytes: r.get_u64()?,
            dl_bytes: r.get_u64()?,
            duration_ms: r.get_u64()?,
            dl_loss_ppm: r.get_u32()?,
            ul_loss_ppm: r.get_u32()?,
            avg_dl_kbps: r.get_u32()?,
            avg_ul_kbps: r.get_u32()?,
            delay_ms: r.get_u32()?,
        };
        if !r.is_empty() {
            return None;
        }
        Some(report)
    }

    /// Sign and seal for transmission to the broker: the signature makes
    /// the report tamper-evident, the sealing hides usage data in transit.
    #[must_use]
    pub fn sign_and_seal(
        &self,
        signer: &SigningKey,
        broker_pk: &X25519PublicKey,
        rng: &mut SimRng,
    ) -> Bytes {
        let body = self.encode();
        let sig = signer.sign(&body);
        let mut w = Writer::new();
        w.put_bytes(&body).put_fixed(&sig.0);
        let sealed = seal(rng, broker_pk, &w.finish());
        Bytes::from(sealed.to_bytes())
    }

    /// Broker side: open and verify a sealed report against the expected
    /// reporter key. `None` on any tampering or key mismatch.
    ///
    /// Goes through the verifier-key cache: the broker checks every
    /// report from a subscriber or bTelco against the same long-lived
    /// key, so the point decompression and odd-multiple table amortize
    /// across the session.
    #[must_use]
    pub fn open_and_verify(
        bytes: &[u8],
        broker_sk: &X25519SecretKey,
        reporter_pk: &VerifyingKey,
    ) -> Option<TrafficReport> {
        let (report, body, sig) = TrafficReport::open_deferring_verify(bytes, broker_sk)?;
        if !reporter_pk.verify_cached(&body, &sig) {
            return None;
        }
        Some(report)
    }

    /// Broker side, bulk ingest: open and decode a sealed report but
    /// leave the signature unchecked, returning the signed body bytes and
    /// signature so the caller can fold them into one Ed25519 batch
    /// (`cellbricks_crypto::verify_batch`) spanning many reports.
    #[must_use]
    pub fn open_deferring_verify(
        bytes: &[u8],
        broker_sk: &X25519SecretKey,
    ) -> Option<(TrafficReport, Vec<u8>, Signature)> {
        let sealed = SealedBox::from_bytes(bytes)?;
        let plain = open(broker_sk, &sealed).ok()?;
        let mut r = Reader::new(&plain);
        let body = r.get_bytes()?;
        let sig = Signature(r.get_fixed::<64>()?);
        if !r.is_empty() {
            return None;
        }
        let report = TrafficReport::decode(&body)?;
        Some((report, body, sig))
    }
}

/// The UE-side sealed measurement function (paper §4.3: "embed the
/// measurement function in the UE's baseband, which ... is assumed to be
/// tamper-resilient"). Counters are private; application code can only
/// feed observations in and extract signed, sealed reports.
pub struct BasebandMeter {
    session_id: u64,
    seq: u32,
    signer: SigningKey,
    broker_pk: X25519PublicKey,
    cycle_started: SimTime,
    ul_bytes: u64,
    dl_bytes: u64,
    dl_expected: u64,
    dl_lost: u64,
    delay_sum_ms: f64,
    delay_samples: u64,
}

impl BasebandMeter {
    /// Start metering a session. The signing key is the UE key the broker
    /// issued (it reviews the baseband firmware carrying it, §4.3).
    #[must_use]
    pub fn new(
        session_id: u64,
        signer: SigningKey,
        broker_pk: X25519PublicKey,
        now: SimTime,
    ) -> Self {
        Self {
            session_id,
            seq: 0,
            signer,
            broker_pk,
            cycle_started: now,
            ul_bytes: 0,
            dl_bytes: 0,
            dl_expected: 0,
            dl_lost: 0,
            delay_sum_ms: 0.0,
            delay_samples: 0,
        }
    }

    /// The session being metered.
    #[must_use]
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Record received downlink bytes (PDCP counters in a real baseband).
    pub fn account_dl(&mut self, bytes: u64) {
        self.dl_bytes += bytes;
        self.dl_expected += bytes;
    }

    /// Record transmitted uplink bytes.
    pub fn account_ul(&mut self, bytes: u64) {
        self.ul_bytes += bytes;
    }

    /// Record downlink loss observed at the RLC layer.
    pub fn account_dl_loss(&mut self, bytes: u64) {
        self.dl_lost += bytes;
        self.dl_expected += bytes;
    }

    /// Record a packet-delay sample, milliseconds.
    pub fn account_delay(&mut self, delay_ms: f64) {
        self.delay_sum_ms += delay_ms;
        self.delay_samples += 1;
    }

    /// Close the reporting cycle: emit the signed, sealed report and
    /// reset the counters.
    pub fn emit_report(&mut self, now: SimTime, rng: &mut SimRng) -> Bytes {
        let elapsed = now.saturating_since(self.cycle_started);
        let report = self.build_report(elapsed);
        self.seq += 1;
        self.cycle_started = now;
        self.ul_bytes = 0;
        self.dl_bytes = 0;
        self.dl_expected = 0;
        self.dl_lost = 0;
        self.delay_sum_ms = 0.0;
        self.delay_samples = 0;
        report.sign_and_seal(&self.signer, &self.broker_pk, rng)
    }

    fn build_report(&self, elapsed: SimDuration) -> TrafficReport {
        let secs = elapsed.as_secs_f64().max(1e-9);
        let loss_ppm = if self.dl_expected == 0 {
            0
        } else {
            ((self.dl_lost as f64 / self.dl_expected as f64) * 1e6) as u32
        };
        TrafficReport {
            session_id: self.session_id,
            seq: self.seq,
            ul_bytes: self.ul_bytes,
            dl_bytes: self.dl_bytes,
            duration_ms: (secs * 1e3) as u64,
            dl_loss_ppm: loss_ppm,
            ul_loss_ppm: 0,
            avg_dl_kbps: (self.dl_bytes as f64 * 8.0 / secs / 1e3) as u32,
            avg_ul_kbps: (self.ul_bytes as f64 * 8.0 / secs / 1e3) as u32,
            delay_ms: if self.delay_samples == 0 {
                0
            } else {
                (self.delay_sum_ms / self.delay_samples as f64) as u32
            },
        }
    }
}

/// Outcome of the broker's Fig. 5 discrepancy check for one cycle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CycleVerdict {
    /// Reports agree within the threshold.
    Consistent,
    /// Mismatch; the weight is `|dlᵀ − dlᵁ| / dlᵁ` — the degree of the
    /// discrepancy relative to the trusted (UE) figure, so a 2× inflation
    /// weighs 1.0 regardless of how big the claim is.
    Mismatch {
        /// Relative degree of the discrepancy.
        weight: f64,
    },
}

/// The Fig. 5 check: compare the bTelco's and UE's downlink usage for one
/// aligned cycle, tolerating the UE-observed loss plus a fixed ratio ε.
///
/// Everything is scaled by the *trusted* UE figure `dl_u` — never by the
/// telco's own claim, which would let an inflating telco widen its own
/// tolerance. The loss allowance is the estimated bytes lost in flight:
/// the UE received `dl_u` after fraction `loss` was dropped, so the telco
/// legitimately sent up to `dl_u / (1 − loss)`, i.e. `loss·dl_u/(1−loss)`
/// more. Under-reporting — including a zero claim from a telco that
/// crashed and lost its metering state — is symmetric and flagged the
/// same way as inflation.
#[must_use]
pub fn verify_cycle(ue: &TrafficReport, telco: &TrafficReport, epsilon: f64) -> CycleVerdict {
    let dl_t = telco.dl_bytes as f64;
    let dl_u = ue.dl_bytes as f64;
    let loss = f64::from(ue.dl_loss_ppm) / 1e6;
    let lost_est = if loss < 1.0 {
        loss * dl_u / (1.0 - loss)
    } else {
        f64::INFINITY
    };
    let threshold = lost_est.max(epsilon * dl_u);
    let diff = (dl_t - dl_u).abs();
    if diff > threshold {
        CycleVerdict::Mismatch {
            weight: if dl_u > 0.0 { diff / dl_u } else { 1.0 },
        }
    } else {
        CycleVerdict::Consistent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellbricks_crypto::x25519::X25519SecretKey;

    fn keys() -> (SigningKey, X25519SecretKey) {
        (SigningKey::from_seed([1; 32]), X25519SecretKey([2; 32]))
    }

    fn sample_report() -> TrafficReport {
        TrafficReport {
            session_id: 99,
            seq: 3,
            ul_bytes: 10_000,
            dl_bytes: 1_000_000,
            duration_ms: 30_000,
            dl_loss_ppm: 5_000,
            ul_loss_ppm: 100,
            avg_dl_kbps: 266,
            avg_ul_kbps: 2,
            delay_ms: 46,
        }
    }

    #[test]
    fn wire_roundtrip() {
        let r = sample_report();
        assert_eq!(TrafficReport::decode(&r.encode()), Some(r));
    }

    #[test]
    fn sign_seal_open_verify() {
        let (sk, broker_sk) = keys();
        let mut rng = SimRng::new(1);
        let r = sample_report();
        let sealed = r.sign_and_seal(&sk, &broker_sk.public_key(), &mut rng);
        let opened =
            TrafficReport::open_and_verify(&sealed, &broker_sk, &sk.verifying_key()).unwrap();
        assert_eq!(opened, r);
    }

    #[test]
    fn tampered_sealed_report_rejected() {
        let (sk, broker_sk) = keys();
        let mut rng = SimRng::new(1);
        let mut sealed = sample_report()
            .sign_and_seal(&sk, &broker_sk.public_key(), &mut rng)
            .to_vec();
        let last = sealed.len() - 1;
        sealed[last] ^= 1;
        assert!(TrafficReport::open_and_verify(&sealed, &broker_sk, &sk.verifying_key()).is_none());
    }

    #[test]
    fn report_signed_by_wrong_key_rejected() {
        let (_, broker_sk) = keys();
        let forger = SigningKey::from_seed([9; 32]);
        let genuine = SigningKey::from_seed([1; 32]);
        let mut rng = SimRng::new(1);
        let sealed = sample_report().sign_and_seal(&forger, &broker_sk.public_key(), &mut rng);
        // The broker checks against the key it issued to this user.
        assert!(
            TrafficReport::open_and_verify(&sealed, &broker_sk, &genuine.verifying_key()).is_none()
        );
    }

    #[test]
    fn meter_counts_and_resets() {
        let (sk, broker_sk) = keys();
        let mut rng = SimRng::new(2);
        let mut meter = BasebandMeter::new(5, sk.clone(), broker_sk.public_key(), SimTime::ZERO);
        meter.account_dl(500_000);
        meter.account_ul(1_000);
        meter.account_dl_loss(5_000);
        meter.account_delay(40.0);
        meter.account_delay(52.0);
        let sealed = meter.emit_report(SimTime::from_secs(30), &mut rng);
        let r = TrafficReport::open_and_verify(&sealed, &broker_sk, &sk.verifying_key()).unwrap();
        assert_eq!(r.seq, 0);
        assert_eq!(r.dl_bytes, 500_000);
        assert_eq!(r.ul_bytes, 1_000);
        assert_eq!(r.duration_ms, 30_000);
        assert_eq!(r.delay_ms, 46);
        // loss = 5k / 505k ≈ 9900 ppm.
        assert!((i64::from(r.dl_loss_ppm) - 9900).abs() < 100);
        // Second cycle starts clean with the next seq.
        let sealed2 = meter.emit_report(SimTime::from_secs(60), &mut rng);
        let r2 = TrafficReport::open_and_verify(&sealed2, &broker_sk, &sk.verifying_key()).unwrap();
        assert_eq!(r2.seq, 1);
        assert_eq!(r2.dl_bytes, 0);
    }

    #[test]
    fn fig5_consistent_within_epsilon() {
        let mut ue = sample_report();
        let mut telco = sample_report();
        ue.dl_bytes = 1_000_000;
        ue.dl_loss_ppm = 0;
        telco.dl_bytes = 1_004_000; // 0.4% over.
        assert_eq!(verify_cycle(&ue, &telco, 0.005), CycleVerdict::Consistent);
    }

    #[test]
    fn fig5_loss_raises_tolerance() {
        let mut ue = sample_report();
        let mut telco = sample_report();
        ue.dl_bytes = 950_000;
        ue.dl_loss_ppm = 60_000; // UE saw 6% loss.
        telco.dl_bytes = 1_000_000; // 5% over what the UE got.
                                    // Within the loss-derived threshold: consistent.
        assert_eq!(verify_cycle(&ue, &telco, 0.005), CycleVerdict::Consistent);
    }

    #[test]
    fn fig5_inflation_detected() {
        let mut ue = sample_report();
        let mut telco = sample_report();
        ue.dl_bytes = 1_000_000;
        ue.dl_loss_ppm = 0;
        telco.dl_bytes = 1_300_000; // 30% inflation.
        match verify_cycle(&ue, &telco, 0.005) {
            CycleVerdict::Mismatch { weight } => {
                assert!((weight - 0.30).abs() < 0.01, "weight {weight}");
            }
            CycleVerdict::Consistent => panic!("should flag inflation"),
        }
    }

    #[test]
    fn fig5_deflating_ue_detected() {
        let mut ue = sample_report();
        let mut telco = sample_report();
        ue.dl_bytes = 500_000; // UE under-reports.
        ue.dl_loss_ppm = 0;
        telco.dl_bytes = 1_000_000;
        assert!(matches!(
            verify_cycle(&ue, &telco, 0.005),
            CycleVerdict::Mismatch { .. }
        ));
    }

    #[test]
    fn fig5_under_reporting_telco_detected() {
        let mut ue = sample_report();
        let mut telco = sample_report();
        ue.dl_bytes = 1_000_000;
        ue.dl_loss_ppm = 0;
        telco.dl_bytes = 600_000; // Telco claims 40% less than delivered.
        match verify_cycle(&ue, &telco, 0.005) {
            CycleVerdict::Mismatch { weight } => {
                assert!((weight - 0.40).abs() < 0.01, "weight {weight}");
            }
            CycleVerdict::Consistent => panic!("should flag under-reporting"),
        }
    }

    #[test]
    fn fig5_zero_report_after_metering_loss_detected() {
        // A telco that crashed and lost its meters reports zero downlink
        // while the UE observed a megabyte: must mismatch, not slip
        // through a dl_t-scaled guard.
        let mut ue = sample_report();
        let mut telco = sample_report();
        ue.dl_bytes = 1_000_000;
        ue.dl_loss_ppm = 0;
        telco.dl_bytes = 0;
        assert!(matches!(
            verify_cycle(&ue, &telco, 0.005),
            CycleVerdict::Mismatch { .. }
        ));
    }

    #[test]
    fn fig5_both_zero_is_consistent() {
        let mut ue = sample_report();
        let mut telco = sample_report();
        ue.dl_bytes = 0;
        ue.dl_loss_ppm = 0;
        telco.dl_bytes = 0;
        assert_eq!(verify_cycle(&ue, &telco, 0.005), CycleVerdict::Consistent);
    }

    #[test]
    fn identity_type_is_usable_in_maps() {
        use crate::principal::Identity;
        use std::collections::HashMap;
        let mut m: HashMap<Identity, u32> = HashMap::new();
        m.insert(Identity([1; 16]), 7);
        assert_eq!(m[&Identity([1; 16])], 7);
    }
}
