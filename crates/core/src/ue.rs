//! The CellBricks UE: SAP client, host transport stack, sealed baseband
//! meter, and the host-driven mobility manager (paper Fig. 4).
//!
//! The device owns a [`cellbricks_transport::Host`], so the detach/attach
//! cycle drives MPTCP's address events exactly as the paper describes:
//! detaching invalidates the interface address (subflows stall, the
//! address worker arms); a successful SAP attach assigns the new address
//! (a fresh subflow joins and traffic resumes).

use crate::billing::BasebandMeter;
use crate::brokerd::BrokerWire;
use crate::principal::{Identity, UeKeys};
use crate::sap::{self, SignedSealed};
use bytes::Bytes;
use cellbricks_crypto::ed25519::VerifyingKey;
use cellbricks_crypto::x25519::X25519PublicKey;
use cellbricks_epc::nas::NasMessage;
use cellbricks_net::{Endpoint, NodeId, Packet, PacketKind};
use cellbricks_sim::{EventQueue, SimDuration, SimRng, SimTime, Summary};
use cellbricks_telemetry as telemetry;
use cellbricks_transport::Host;
use std::net::Ipv4Addr;

/// One reachable replica of the UE's home broker shard, provisioned on
/// the SIM alongside the pinned broker keys (the whole plane signs as
/// one operator, so the pinned keys verify against any replica).
#[derive(Clone, Debug)]
pub struct BrokerReplica {
    /// Directory name the bTelco resolves to a broker contact.
    pub name: String,
    /// Where this replica ingests UE traffic reports.
    pub ctrl_ip: Ipv4Addr,
    /// Static latency estimate to this replica, derived from topology —
    /// the paper's broker selection is latency-aware without GeoIP.
    pub rtt: SimDuration,
}

/// The UE's view of a distributed broker plane: the replicas of its
/// home shard (consistent hashing over the UE identity pins the shard;
/// only the UE knows its identity, so only the UE can compute it).
#[derive(Clone, Debug)]
pub struct UePlaneConfig {
    /// Home-shard replicas; selection is lowest-RTT first.
    pub replicas: Vec<BrokerReplica>,
    /// How long a replica that timed out an attach attempt is avoided —
    /// the deterministic failover window onto the next-lowest-RTT
    /// replica.
    pub penalty: SimDuration,
}

/// UE device configuration.
#[derive(Clone)]
pub struct UeDeviceConfig {
    /// Permanent signalling address.
    pub ue_sig: Ipv4Addr,
    /// Broker-issued key bundle (on the SIM).
    pub keys: UeKeys,
    /// The broker's name (SIM-pinned).
    pub broker_name: String,
    /// The broker's signing key (SIM-pinned).
    pub broker_sign_pk: VerifyingKey,
    /// The broker's encryption key (SIM-pinned).
    pub broker_encrypt_pk: X25519PublicKey,
    /// Where UE traffic reports go.
    pub broker_ctrl_ip: Ipv4Addr,
    /// Cost of building `authReqU` (sealing + signing).
    pub proc_delay: SimDuration,
    /// Cost of verifying `authRespU`.
    pub verify_delay: SimDuration,
    /// Billing report interval.
    pub report_interval: SimDuration,
    /// Re-send the SAP request if no answer arrives within this window
    /// (signalling can be lost to radio conditions).
    pub attach_retry_after: SimDuration,
    /// Attempts before giving up on a target bTelco.
    pub attach_max_tries: u32,
    /// Recovery behaviour under faults (backoff shape, watchdog).
    pub recovery: RecoveryConfig,
    /// Distributed broker plane, if the operator runs one. `None` keeps
    /// the single-broker path bit-for-bit identical: requests carry
    /// `broker_name` and reports go to `broker_ctrl_ip`.
    pub plane: Option<UePlaneConfig>,
}

/// How the UE recovers from lost signalling and dead gateways.
///
/// The defaults reproduce the pre-fault-injection behaviour exactly:
/// the first retry still fires `attach_retry_after` after the request
/// (factor^0 = 1), jitter 0 draws nothing from the rng, and the
/// inactivity watchdog is disabled.
#[derive(Clone, Debug)]
pub struct RecoveryConfig {
    /// Multiplier applied to the retry window per attempt
    /// (capped exponential backoff — a fixed window is a retry storm
    /// under a long outage).
    pub backoff_factor: f64,
    /// Upper bound on the retry window.
    pub backoff_cap: SimDuration,
    /// Randomize each window by ±this fraction (desynchronizes UEs
    /// hammering a recovering gateway). `0.0` draws nothing from the rng.
    pub jitter: f64,
    /// Re-attach to the last target if no downlink arrives for this long
    /// while attached — the UE-side detector for a bTelco that crashed
    /// and lost the session. `None` disables the watchdog.
    pub reattach_after: Option<SimDuration>,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            backoff_factor: 2.0,
            backoff_cap: SimDuration::from_secs(30),
            jitter: 0.0,
            reattach_after: None,
        }
    }
}

struct PendingAttach {
    nonce: [u8; 16],
    id_t: Identity,
    agw_sig: Ipv4Addr,
    started: SimTime,
    retries_left: u32,
    /// Requests already issued for this attach (backoff exponent).
    attempt: u32,
    /// Which plane replica the outstanding request targets (0 when no
    /// plane is configured) — a timeout penalizes exactly this one.
    replica: usize,
}

struct Serving {
    /// The serving bTelco's signalling address.
    pub agw_sig: Ipv4Addr,
    /// The serving bTelco.
    pub id_t: Identity,
    /// Billing session.
    pub session_id: u64,
}

enum Deferred {
    /// A verified-pending SapAttachAccept.
    Accept { ue_ip: Ipv4Addr, payload: Bytes },
}

/// The CellBricks UE device endpoint.
///
/// Memory layout: the fields touched on every `poll`/`poll_at` come
/// first, and the cold, construction-time configuration (keys, broker
/// names, delay knobs — several hundred bytes) lives behind one `Box`,
/// so a fleet of devices keeps its per-poll working set dense.
pub struct UeDevice {
    // --- Hot: read on every poll_at/poll ---
    node: NodeId,
    /// When the last downlink data packet arrived (watchdog reference).
    last_dl_at: SimTime,
    attach_deadline: Option<SimTime>,
    next_report_at: Option<SimTime>,
    /// Scheduled fresh attach cycle after retry exhaustion.
    reattach_at: Option<SimTime>,
    /// Hot mirror of `cfg.recovery.reattach_after`: `poll_at` computes
    /// the watchdog deadline on every call and must not chase the boxed
    /// config to do it. Kept in sync by [`Self::set_recovery`].
    watchdog_after: Option<SimDuration>,
    pending: EventQueue<Packet>,
    deferred: EventQueue<Deferred>,
    /// The device's transport stack (TCP/MPTCP/UDP sockets live here).
    pub host: Host,
    // --- Warm: attach/billing session state ---
    rng: SimRng,
    attach: Option<PendingAttach>,
    serving: Option<Serving>,
    meter: Option<BasebandMeter>,
    /// Per-replica quarantine deadlines (parallel to `plane.replicas`;
    /// empty when no plane is configured).
    replica_penalty: Vec<SimTime>,
    /// The last attach target, for watchdog-driven re-attach.
    last_target: Option<(String, Ipv4Addr)>,
    /// When the watchdog declared the serving telco dead (recovery-latency
    /// measurement anchor); cleared on the next successful attach.
    recovering_since: Option<SimTime>,
    // --- Accounting ---
    /// Attach latency samples, milliseconds.
    pub attach_latency_ms: Summary,
    /// Latency of the most recent successful attach.
    pub last_attach_latency: Option<SimDuration>,
    /// Attach failures.
    pub failures: u64,
    /// Successful attaches.
    pub attaches: u64,
    /// Accumulated SAP processing time (Fig. 7 accounting).
    pub proc_time: SimDuration,
    /// Attach requests re-sent after signalling loss.
    pub attach_retries: u64,
    /// Times the inactivity watchdog forced a re-attach.
    pub watchdog_reattaches: u64,
    /// Accepts that failed verification against the current attempt —
    /// stale replies (e.g. flushed out of a broker outage after the UE
    /// already retried with a fresh nonce) or forgeries. Ignored, never
    /// fatal: the retry deadline provides liveness.
    pub stale_accepts: u64,
    // --- Cold: construction-time configuration, boxed off the hot path ---
    cfg: Box<UeDeviceConfig>,
}

impl UeDevice {
    /// Create the device on `node`.
    #[must_use]
    pub fn new(node: NodeId, cfg: UeDeviceConfig, rng: SimRng) -> Self {
        Self {
            host: Host::new(node, None),
            node,
            watchdog_after: cfg.recovery.reattach_after,
            cfg: Box::new(cfg),
            rng,
            attach: None,
            serving: None,
            meter: None,
            replica_penalty: Vec::new(),
            pending: EventQueue::new(),
            deferred: EventQueue::new(),
            next_report_at: None,
            attach_deadline: None,
            attach_latency_ms: Summary::new(),
            last_attach_latency: None,
            failures: 0,
            attaches: 0,
            proc_time: SimDuration::ZERO,
            attach_retries: 0,
            last_dl_at: SimTime::ZERO,
            last_target: None,
            recovering_since: None,
            reattach_at: None,
            watchdog_reattaches: 0,
            stale_accepts: 0,
        }
    }

    /// The plane replica the UE currently prefers: lowest RTT among the
    /// replicas not under a timeout penalty at `now`, ties broken by
    /// index. If every replica is penalized the outright lowest-RTT one
    /// is used — retrying a suspect replica costs one window; idling
    /// costs the attach. `None` without a plane.
    fn select_replica(&self, now: SimTime) -> Option<usize> {
        let plane = self.cfg.plane.as_ref()?;
        let penalized = |i: usize| {
            self.replica_penalty
                .get(i)
                .is_some_and(|&until| now < until)
        };
        (0..plane.replicas.len())
            .filter(|&i| !penalized(i))
            .min_by_key(|&i| (plane.replicas[i].rtt, i))
            .or_else(|| (0..plane.replicas.len()).min_by_key(|&i| (plane.replicas[i].rtt, i)))
    }

    /// Quarantine the replica targeted by the outstanding attach request
    /// (its answer never came): the next issue re-selects, which is the
    /// whole failover state machine on the UE side.
    fn penalize_pending_replica(&mut self, now: SimTime) {
        let Some(plane) = self.cfg.plane.as_ref() else {
            return;
        };
        let Some(idx) = self.attach.as_ref().map(|p| p.replica) else {
            return;
        };
        if self.replica_penalty.len() < plane.replicas.len() {
            self.replica_penalty
                .resize(plane.replicas.len(), SimTime::ZERO);
        }
        self.replica_penalty[idx] = now + plane.penalty;
        telemetry::counter("core.ue.replica_penalized").inc();
    }

    /// The current serving bTelco, if attached.
    #[must_use]
    pub fn serving_telco(&self) -> Option<Identity> {
        self.serving.as_ref().map(|s| s.id_t)
    }

    /// The current billing session, if attached.
    #[must_use]
    pub fn session_id(&self) -> Option<u64> {
        self.serving.as_ref().map(|s| s.session_id)
    }

    /// True once attached (address assigned).
    #[must_use]
    pub fn is_attached(&self) -> bool {
        self.serving.is_some() && self.host.addr().is_some()
    }

    /// Reset Fig. 7 accounting.
    pub fn reset_accounting(&mut self) {
        self.proc_time = SimDuration::ZERO;
    }

    /// Replace the recovery configuration (harnesses that opt a built
    /// device into chaos-hardened behaviour).
    pub fn set_recovery(&mut self, recovery: RecoveryConfig) {
        self.watchdog_after = recovery.reattach_after;
        self.cfg.recovery = recovery;
    }

    /// Begin a SAP attach to the bTelco named `telco_name`, reachable at
    /// `agw_sig`. Latency is measured from this call to verified accept.
    /// Lost signalling is retried with a *fresh* request (fresh nonce —
    /// the broker rejects replays) up to `attach_max_tries` times.
    pub fn start_attach(&mut self, now: SimTime, telco_name: &str, agw_sig: Ipv4Addr) {
        self.last_target = Some((telco_name.to_string(), agw_sig));
        self.reattach_at = None;
        self.attach = Some(PendingAttach {
            nonce: [0; 16], // Filled by issue_attach_request.
            id_t: Identity::of_name(telco_name),
            agw_sig,
            started: now,
            retries_left: self.cfg.attach_max_tries.saturating_sub(1),
            attempt: 0,
            replica: 0, // Filled by issue_attach_request.
        });
        self.issue_attach_request(now);
    }

    /// The retry window for the given attempt index: capped exponential
    /// backoff with optional ± jitter. Jitter `0.0` draws nothing, so
    /// configurations without it keep the rng stream untouched.
    fn retry_delay(&mut self, attempt: u32) -> SimDuration {
        let r = &self.cfg.recovery;
        let cap = r.backoff_cap.as_secs_f64();
        // Exponent clamped: past ~64 doublings the cap has long won.
        let mut d = self.cfg.attach_retry_after.as_secs_f64()
            * r.backoff_factor
                .powi(i32::try_from(attempt.min(64)).expect("small"));
        d = d.min(cap);
        if r.jitter > 0.0 {
            d *= 1.0 + r.jitter * (2.0 * self.rng.unit() - 1.0);
        }
        SimDuration::from_secs_f64(d)
    }

    fn issue_attach_request(&mut self, now: SimTime) {
        let Some(attempt) = self.attach.as_ref().map(|p| p.attempt) else {
            return;
        };
        let window = self.retry_delay(attempt);
        // With a plane, the request is addressed to the preferred
        // home-shard replica by directory name; the SAP payload still
        // names the SIM-pinned operator, which every replica signs as.
        let (broker_id, replica) = match self.cfg.plane.as_ref() {
            Some(plane) => {
                let i = self.select_replica(now).expect("plane has replicas");
                (plane.replicas[i].name.clone(), i)
            }
            None => (self.cfg.broker_name.clone(), 0),
        };
        let pending = self.attach.as_mut().expect("checked above");
        pending.attempt += 1;
        pending.replica = replica;
        let (req, nonce) = sap::ue_build_request(
            &self.cfg.keys,
            &self.cfg.broker_name,
            &self.cfg.broker_encrypt_pk,
            pending.id_t,
            &mut self.rng,
        );
        pending.nonce = nonce;
        let agw_sig = pending.agw_sig;
        let msg = NasMessage::SapAttachRequest {
            ue_sig: self.cfg.ue_sig,
            broker_id,
            payload: Bytes::from(req.encode().to_vec()),
        };
        self.proc_time = self.proc_time + self.cfg.proc_delay;
        self.attach_deadline = Some(now + window);
        self.pending.push(
            now + self.cfg.proc_delay,
            Packet::control(self.cfg.ue_sig, agw_sig, msg.encode()),
        );
    }

    /// Detach from the serving bTelco: emit the final billing report,
    /// notify the bTelco, and invalidate the interface address (which
    /// arms MPTCP's address worker — Fig. 4's detachment procedure).
    pub fn detach(&mut self, now: SimTime) {
        self.emit_report(now);
        if let Some(serving) = self.serving.take() {
            self.pending.push(
                now,
                Packet::control(
                    self.cfg.ue_sig,
                    serving.agw_sig,
                    NasMessage::DetachRequest { imsi: 0 }.encode(),
                ),
            );
        }
        // Abandon any in-flight attach too: leaving the retry timer armed
        // kept the UE re-issuing SAP requests (fresh nonces) to a telco it
        // deliberately left. `handover` still works — `start_attach`
        // re-arms everything for the new target.
        self.attach = None;
        self.attach_deadline = None;
        self.reattach_at = None;
        self.meter = None;
        self.next_report_at = None;
        self.host.invalidate_addr(now);
    }

    /// Host-driven handover: detach then immediately start attaching to
    /// the target bTelco (break-before-make, §4.2).
    pub fn handover(&mut self, now: SimTime, telco_name: &str, agw_sig: Ipv4Addr) {
        self.detach(now);
        self.start_attach(now, telco_name, agw_sig);
    }

    fn emit_report(&mut self, now: SimTime) {
        // Reports follow the same replica preference as attach requests;
        // either replica of the home shard resolves the session.
        let ctrl_ip = match (self.cfg.plane.as_ref(), self.select_replica(now)) {
            (Some(plane), Some(i)) => plane.replicas[i].ctrl_ip,
            _ => self.cfg.broker_ctrl_ip,
        };
        let Some(meter) = &mut self.meter else { return };
        let session_id = meter.session_id();
        let sealed = meter.emit_report(now, &mut self.rng);
        let msg = BrokerWire::Report {
            session_id,
            from_ue: true,
            sealed,
        };
        self.pending
            .push(now, Packet::control(self.cfg.ue_sig, ctrl_ip, msg.encode()));
    }

    fn on_accept_verified(&mut self, now: SimTime, ue_ip: Ipv4Addr, payload: &[u8]) {
        let Some(pending) = self.attach.as_ref() else {
            return;
        };
        // An accept that fails to decode or verify against the *current*
        // attempt is stale — typically the reply to a superseded request
        // flushed out of a broker outage after the UE already retried
        // with a fresh nonce — or forged. Either way it must not destroy
        // the in-flight attach: ignore it and let the retry machinery
        // (which the genuine reply can still beat) provide liveness.
        let Some(resp) = SignedSealed::decode(payload) else {
            self.stale_accepts += 1;
            telemetry::counter("core.ue.stale_accepts").inc();
            return;
        };
        match sap::ue_verify_response(
            &self.cfg.keys,
            &self.cfg.broker_sign_pk,
            &pending.nonce,
            pending.id_t,
            &resp,
        ) {
            Ok(body) => {
                let pending = self.attach.take().expect("checked above");
                self.attach_deadline = None;
                self.reattach_at = None;
                self.last_dl_at = now;
                if let Some(since) = self.recovering_since.take() {
                    telemetry::histogram("fault.recovery.reattach_ns")
                        .record(now.since(since).as_nanos());
                }
                let latency = now.since(pending.started);
                self.last_attach_latency = Some(latency);
                self.attach_latency_ms.record(latency.as_millis_f64());
                telemetry::histogram("core.sap.attach_latency_ns").record(latency.as_nanos());
                telemetry::trace_span(
                    "sap.attach",
                    "sap",
                    pending.started.as_nanos(),
                    now.as_nanos(),
                    1,
                );
                self.attaches += 1;
                self.serving = Some(Serving {
                    agw_sig: pending.agw_sig,
                    id_t: pending.id_t,
                    session_id: body.session_id,
                });
                // The meter signs with the broker-issued UE key and seals
                // to the broker (paper §4.3).
                self.meter = Some(BasebandMeter::new(
                    body.session_id,
                    self.cfg.keys.sign.clone(),
                    self.cfg.broker_encrypt_pk,
                    now,
                ));
                self.next_report_at = Some(now + self.cfg.report_interval);
                // Fig. 4: the interface regains an address; MPTCP reacts.
                self.host.assign_addr(now, ue_ip);
            }
            Err(_) => {
                self.stale_accepts += 1;
                telemetry::counter("core.ue.stale_accepts").inc();
            }
        }
    }
}

impl Endpoint for UeDevice {
    fn node(&self) -> NodeId {
        self.node
    }

    fn handle_packet(&mut self, now: SimTime, pkt: Packet, out: &mut Vec<Packet>) {
        match &pkt.kind {
            PacketKind::Control(bytes) => {
                if pkt.dst != self.cfg.ue_sig {
                    return;
                }
                match NasMessage::decode(bytes) {
                    Some(NasMessage::SapAttachAccept { ue_ip, payload, .. }) => {
                        // Verification costs crypto time; defer.
                        self.proc_time = self.proc_time + self.cfg.verify_delay;
                        self.deferred.push(
                            now + self.cfg.verify_delay,
                            Deferred::Accept { ue_ip, payload },
                        );
                    }
                    Some(NasMessage::SapAttachReject { .. }) => {
                        self.failures += 1;
                        self.attach = None;
                        self.attach_deadline = None;
                    }
                    _ => {}
                }
            }
            _ => {
                // Data plane: baseband accounting, then the host stack.
                self.last_dl_at = now;
                if let Some(meter) = &mut self.meter {
                    meter.account_dl(u64::from(pkt.wire_size()));
                }
                self.host.handle_packet(now, pkt);
                let mut staged = Vec::new();
                self.host.drain_out(&mut staged);
                if let Some(meter) = &mut self.meter {
                    for p in &staged {
                        meter.account_ul(u64::from(p.wire_size()));
                    }
                }
                out.append(&mut staged);
            }
        }
    }

    fn poll_at(&self) -> Option<SimTime> {
        let watchdog = match (self.watchdog_after, &self.serving) {
            (Some(after), Some(_)) => Some(self.last_dl_at + after),
            _ => None,
        };
        [
            self.pending.peek_time(),
            self.deferred.peek_time(),
            self.next_report_at,
            self.attach_deadline,
            watchdog,
            self.reattach_at,
            self.host.poll_at(),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    fn poll(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        // Inactivity watchdog: attached but no downlink for the
        // configured window — the serving telco likely crashed and lost
        // the session (it will never page us again). Detach locally and
        // run a fresh SAP attach against the same target.
        if let (Some(after), Some(_)) = (self.watchdog_after, self.serving.as_ref()) {
            if now >= self.last_dl_at + after {
                self.watchdog_reattaches += 1;
                telemetry::counter("core.ue.watchdog_reattach").inc();
                if self.recovering_since.is_none() {
                    self.recovering_since = Some(now);
                }
                let (name, agw_sig) = self.last_target.clone().expect("serving implies a target");
                self.detach(now);
                self.start_attach(now, &name, agw_sig);
            }
        }
        // Scheduled fresh attach cycle (armed after retry exhaustion).
        if let Some(at) = self.reattach_at {
            if now >= at && self.attach.is_none() && self.serving.is_none() {
                self.reattach_at = None;
                if let Some((name, agw_sig)) = self.last_target.clone() {
                    self.start_attach(now, &name, agw_sig);
                }
            }
        }
        // Attach retry: the request or its answer was lost.
        if let Some(deadline) = self.attach_deadline {
            if now >= deadline {
                // The outstanding request's replica never answered:
                // quarantine it so the re-issue (or the later fresh
                // cycle) fails over to the next-lowest-RTT replica.
                self.penalize_pending_replica(now);
                match self.attach.as_mut() {
                    Some(p) if p.retries_left > 0 => {
                        p.retries_left -= 1;
                        self.attach_retries += 1;
                        self.issue_attach_request(now);
                    }
                    _ => {
                        self.attach = None;
                        self.attach_deadline = None;
                        self.failures += 1;
                        // While in fault recovery, keep trying: arm a
                        // fresh attach cycle one capped window out rather
                        // than stranding the UE forever.
                        if self.cfg.recovery.reattach_after.is_some() && self.last_target.is_some()
                        {
                            self.reattach_at = Some(now + self.cfg.recovery.backoff_cap);
                        }
                    }
                }
            }
        }
        while let Some((_, d)) = self.deferred.pop_due(now) {
            match d {
                Deferred::Accept { ue_ip, payload } => {
                    self.on_accept_verified(now, ue_ip, &payload);
                }
            }
        }
        if let Some(at) = self.next_report_at {
            if now >= at {
                self.emit_report(now);
                self.next_report_at = Some(now + self.cfg.report_interval);
            }
        }
        self.host.poll(now);
        let mut staged = Vec::new();
        self.host.drain_out(&mut staged);
        if let Some(meter) = &mut self.meter {
            for p in &staged {
                meter.account_ul(u64::from(p.wire_size()));
            }
        }
        out.append(&mut staged);
        while let Some((_, pkt)) = self.pending.pop_due(now) {
            out.push(pkt);
        }
    }
}
