//! The CellBricks UE: SAP client, host transport stack, sealed baseband
//! meter, and the host-driven mobility manager (paper Fig. 4).
//!
//! The device owns a [`cellbricks_transport::Host`], so the detach/attach
//! cycle drives MPTCP's address events exactly as the paper describes:
//! detaching invalidates the interface address (subflows stall, the
//! address worker arms); a successful SAP attach assigns the new address
//! (a fresh subflow joins and traffic resumes).

use crate::billing::BasebandMeter;
use crate::brokerd::BrokerWire;
use crate::principal::{Identity, UeKeys};
use crate::sap::{self, SignedSealed};
use bytes::Bytes;
use cellbricks_crypto::ed25519::VerifyingKey;
use cellbricks_crypto::x25519::X25519PublicKey;
use cellbricks_epc::nas::NasMessage;
use cellbricks_net::{Endpoint, NodeId, Packet, PacketKind};
use cellbricks_sim::{EventQueue, SimDuration, SimRng, SimTime, Summary};
use cellbricks_telemetry as telemetry;
use cellbricks_transport::Host;
use std::net::Ipv4Addr;

/// UE device configuration.
#[derive(Clone)]
pub struct UeDeviceConfig {
    /// Permanent signalling address.
    pub ue_sig: Ipv4Addr,
    /// Broker-issued key bundle (on the SIM).
    pub keys: UeKeys,
    /// The broker's name (SIM-pinned).
    pub broker_name: String,
    /// The broker's signing key (SIM-pinned).
    pub broker_sign_pk: VerifyingKey,
    /// The broker's encryption key (SIM-pinned).
    pub broker_encrypt_pk: X25519PublicKey,
    /// Where UE traffic reports go.
    pub broker_ctrl_ip: Ipv4Addr,
    /// Cost of building `authReqU` (sealing + signing).
    pub proc_delay: SimDuration,
    /// Cost of verifying `authRespU`.
    pub verify_delay: SimDuration,
    /// Billing report interval.
    pub report_interval: SimDuration,
    /// Re-send the SAP request if no answer arrives within this window
    /// (signalling can be lost to radio conditions).
    pub attach_retry_after: SimDuration,
    /// Attempts before giving up on a target bTelco.
    pub attach_max_tries: u32,
}

struct PendingAttach {
    nonce: [u8; 16],
    id_t: Identity,
    agw_sig: Ipv4Addr,
    started: SimTime,
    retries_left: u32,
}

struct Serving {
    /// The serving bTelco's signalling address.
    pub agw_sig: Ipv4Addr,
    /// The serving bTelco.
    pub id_t: Identity,
    /// Billing session.
    pub session_id: u64,
}

enum Deferred {
    /// A verified-pending SapAttachAccept.
    Accept { ue_ip: Ipv4Addr, payload: Bytes },
}

/// The CellBricks UE device endpoint.
pub struct UeDevice {
    node: NodeId,
    cfg: UeDeviceConfig,
    /// The device's transport stack (TCP/MPTCP/UDP sockets live here).
    pub host: Host,
    rng: SimRng,
    attach: Option<PendingAttach>,
    serving: Option<Serving>,
    meter: Option<BasebandMeter>,
    pending: EventQueue<Packet>,
    deferred: EventQueue<Deferred>,
    next_report_at: Option<SimTime>,
    attach_deadline: Option<SimTime>,
    /// Attach latency samples, milliseconds.
    pub attach_latency_ms: Summary,
    /// Latency of the most recent successful attach.
    pub last_attach_latency: Option<SimDuration>,
    /// Attach failures.
    pub failures: u64,
    /// Successful attaches.
    pub attaches: u64,
    /// Accumulated SAP processing time (Fig. 7 accounting).
    pub proc_time: SimDuration,
    /// Attach requests re-sent after signalling loss.
    pub attach_retries: u64,
}

impl UeDevice {
    /// Create the device on `node`.
    #[must_use]
    pub fn new(node: NodeId, cfg: UeDeviceConfig, rng: SimRng) -> Self {
        Self {
            host: Host::new(node, None),
            node,
            cfg,
            rng,
            attach: None,
            serving: None,
            meter: None,
            pending: EventQueue::new(),
            deferred: EventQueue::new(),
            next_report_at: None,
            attach_deadline: None,
            attach_latency_ms: Summary::new(),
            last_attach_latency: None,
            failures: 0,
            attaches: 0,
            proc_time: SimDuration::ZERO,
            attach_retries: 0,
        }
    }

    /// The current serving bTelco, if attached.
    #[must_use]
    pub fn serving_telco(&self) -> Option<Identity> {
        self.serving.as_ref().map(|s| s.id_t)
    }

    /// The current billing session, if attached.
    #[must_use]
    pub fn session_id(&self) -> Option<u64> {
        self.serving.as_ref().map(|s| s.session_id)
    }

    /// True once attached (address assigned).
    #[must_use]
    pub fn is_attached(&self) -> bool {
        self.serving.is_some() && self.host.addr().is_some()
    }

    /// Reset Fig. 7 accounting.
    pub fn reset_accounting(&mut self) {
        self.proc_time = SimDuration::ZERO;
    }

    /// Begin a SAP attach to the bTelco named `telco_name`, reachable at
    /// `agw_sig`. Latency is measured from this call to verified accept.
    /// Lost signalling is retried with a *fresh* request (fresh nonce —
    /// the broker rejects replays) up to `attach_max_tries` times.
    pub fn start_attach(&mut self, now: SimTime, telco_name: &str, agw_sig: Ipv4Addr) {
        self.attach = Some(PendingAttach {
            nonce: [0; 16], // Filled by issue_attach_request.
            id_t: Identity::of_name(telco_name),
            agw_sig,
            started: now,
            retries_left: self.cfg.attach_max_tries.saturating_sub(1),
        });
        self.issue_attach_request(now);
    }

    fn issue_attach_request(&mut self, now: SimTime) {
        let Some(pending) = self.attach.as_mut() else {
            return;
        };
        let (req, nonce) = sap::ue_build_request(
            &self.cfg.keys,
            &self.cfg.broker_name,
            &self.cfg.broker_encrypt_pk,
            pending.id_t,
            &mut self.rng,
        );
        pending.nonce = nonce;
        let agw_sig = pending.agw_sig;
        let msg = NasMessage::SapAttachRequest {
            ue_sig: self.cfg.ue_sig,
            broker_id: self.cfg.broker_name.clone(),
            payload: Bytes::from(req.encode().to_vec()),
        };
        self.proc_time = self.proc_time + self.cfg.proc_delay;
        self.attach_deadline = Some(now + self.cfg.attach_retry_after);
        self.pending.push(
            now + self.cfg.proc_delay,
            Packet::control(self.cfg.ue_sig, agw_sig, msg.encode()),
        );
    }

    /// Detach from the serving bTelco: emit the final billing report,
    /// notify the bTelco, and invalidate the interface address (which
    /// arms MPTCP's address worker — Fig. 4's detachment procedure).
    pub fn detach(&mut self, now: SimTime) {
        self.emit_report(now);
        if let Some(serving) = self.serving.take() {
            self.pending.push(
                now,
                Packet::control(
                    self.cfg.ue_sig,
                    serving.agw_sig,
                    NasMessage::DetachRequest { imsi: 0 }.encode(),
                ),
            );
        }
        self.meter = None;
        self.next_report_at = None;
        self.host.invalidate_addr(now);
    }

    /// Host-driven handover: detach then immediately start attaching to
    /// the target bTelco (break-before-make, §4.2).
    pub fn handover(&mut self, now: SimTime, telco_name: &str, agw_sig: Ipv4Addr) {
        self.detach(now);
        self.start_attach(now, telco_name, agw_sig);
    }

    fn emit_report(&mut self, now: SimTime) {
        let Some(meter) = &mut self.meter else { return };
        let session_id = meter.session_id();
        let sealed = meter.emit_report(now, &mut self.rng);
        let msg = BrokerWire::Report {
            session_id,
            from_ue: true,
            sealed,
        };
        self.pending.push(
            now,
            Packet::control(self.cfg.ue_sig, self.cfg.broker_ctrl_ip, msg.encode()),
        );
    }

    fn on_accept_verified(&mut self, now: SimTime, ue_ip: Ipv4Addr, payload: &[u8]) {
        let Some(pending) = self.attach.take() else {
            return;
        };
        let Some(resp) = SignedSealed::decode(payload) else {
            self.failures += 1;
            return;
        };
        match sap::ue_verify_response(
            &self.cfg.keys,
            &self.cfg.broker_sign_pk,
            &pending.nonce,
            pending.id_t,
            &resp,
        ) {
            Ok(body) => {
                self.attach_deadline = None;
                let latency = now.since(pending.started);
                self.last_attach_latency = Some(latency);
                self.attach_latency_ms.record(latency.as_millis_f64());
                telemetry::histogram("core.sap.attach_latency_ns").record(latency.as_nanos());
                telemetry::trace_span(
                    "sap.attach",
                    "sap",
                    pending.started.as_nanos(),
                    now.as_nanos(),
                    1,
                );
                self.attaches += 1;
                self.serving = Some(Serving {
                    agw_sig: pending.agw_sig,
                    id_t: pending.id_t,
                    session_id: body.session_id,
                });
                // The meter signs with the broker-issued UE key and seals
                // to the broker (paper §4.3).
                self.meter = Some(BasebandMeter::new(
                    body.session_id,
                    self.cfg.keys.sign.clone(),
                    self.cfg.broker_encrypt_pk,
                    now,
                ));
                self.next_report_at = Some(now + self.cfg.report_interval);
                // Fig. 4: the interface regains an address; MPTCP reacts.
                self.host.assign_addr(now, ue_ip);
            }
            Err(_) => {
                self.failures += 1;
            }
        }
    }
}

impl Endpoint for UeDevice {
    fn node(&self) -> NodeId {
        self.node
    }

    fn handle_packet(&mut self, now: SimTime, pkt: Packet, out: &mut Vec<Packet>) {
        match &pkt.kind {
            PacketKind::Control(bytes) => {
                if pkt.dst != self.cfg.ue_sig {
                    return;
                }
                match NasMessage::decode(bytes) {
                    Some(NasMessage::SapAttachAccept { ue_ip, payload, .. }) => {
                        // Verification costs crypto time; defer.
                        self.proc_time = self.proc_time + self.cfg.verify_delay;
                        self.deferred.push(
                            now + self.cfg.verify_delay,
                            Deferred::Accept { ue_ip, payload },
                        );
                    }
                    Some(NasMessage::SapAttachReject { .. }) => {
                        self.failures += 1;
                        self.attach = None;
                        self.attach_deadline = None;
                    }
                    _ => {}
                }
            }
            _ => {
                // Data plane: baseband accounting, then the host stack.
                if let Some(meter) = &mut self.meter {
                    meter.account_dl(u64::from(pkt.wire_size()));
                }
                self.host.handle_packet(now, pkt);
                let mut staged = Vec::new();
                self.host.drain_out(&mut staged);
                if let Some(meter) = &mut self.meter {
                    for p in &staged {
                        meter.account_ul(u64::from(p.wire_size()));
                    }
                }
                out.append(&mut staged);
            }
        }
    }

    fn poll_at(&self) -> Option<SimTime> {
        [
            self.pending.peek_time(),
            self.deferred.peek_time(),
            self.next_report_at,
            self.attach_deadline,
            self.host.poll_at(),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    fn poll(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        // Attach retry: the request or its answer was lost.
        if let Some(deadline) = self.attach_deadline {
            if now >= deadline {
                match self.attach.as_mut() {
                    Some(p) if p.retries_left > 0 => {
                        p.retries_left -= 1;
                        self.attach_retries += 1;
                        self.issue_attach_request(now);
                    }
                    _ => {
                        self.attach = None;
                        self.attach_deadline = None;
                        self.failures += 1;
                    }
                }
            }
        }
        while let Some((_, d)) = self.deferred.pop_due(now) {
            match d {
                Deferred::Accept { ue_ip, payload } => {
                    self.on_accept_verified(now, ue_ip, &payload);
                }
            }
        }
        if let Some(at) = self.next_report_at {
            if now >= at {
                self.emit_report(now);
                self.next_report_at = Some(now + self.cfg.report_interval);
            }
        }
        self.host.poll(now);
        let mut staged = Vec::new();
        self.host.drain_out(&mut staged);
        if let Some(meter) = &mut self.meter {
            for p in &staged {
                meter.account_ul(u64::from(p.wire_size()));
            }
        }
        out.append(&mut staged);
        while let Some((_, pkt)) = self.pending.pop_due(now) {
            out.push(pkt);
        }
    }
}
