//! The broker's reputation system (paper §4.3, Fig. 5).
//!
//! The broker keeps (i) a per-bTelco aggregate reputation score derived
//! from billing-report mismatches, weighted by degree, and (ii) a list of
//! its own users suspected of tampering. Both feed the attachment
//! authorization decision. The paper leaves the exact weighting "open to
//! innovation"; we implement the simple heuristic its Fig. 5 sketches,
//! with an exponential decay so bTelcos can redeem themselves.

use crate::billing::CycleVerdict;
use crate::principal::Identity;
use std::collections::{HashMap, HashSet};

/// Prior "clean history" mass: a new bTelco is treated as if it already
/// had this many consistent cycles, so a single mismatch cannot ban it
/// (the paper tolerates occasional small discrepancies) while persistent
/// cheating still drags the score down.
const PRIOR_MASS: f64 = 5.0;

/// Per-bTelco record.
#[derive(Clone, Debug)]
struct TelcoRecord {
    /// Cycles verified.
    cycles: u64,
    /// Mismatches observed.
    mismatches: u64,
    /// Decayed, degree-weighted mismatch mass.
    weight: f64,
    /// Decayed cycle mass (denominator for the score).
    mass: f64,
}

impl Default for TelcoRecord {
    fn default() -> Self {
        Self {
            cycles: 0,
            mismatches: 0,
            weight: 0.0,
            mass: PRIOR_MASS,
        }
    }
}

/// Reputation state kept by a broker.
pub struct ReputationSystem {
    telcos: HashMap<Identity, TelcoRecord>,
    suspects: HashSet<Identity>,
    /// Per-cycle decay applied to history (1.0 = never forget).
    pub decay: f64,
    /// Minimum score required to authorize an attachment.
    pub admit_threshold: f64,
}

impl Default for ReputationSystem {
    fn default() -> Self {
        Self::new()
    }
}

impl ReputationSystem {
    /// A fresh reputation system with default policy.
    #[must_use]
    pub fn new() -> Self {
        Self {
            telcos: HashMap::new(),
            suspects: HashSet::new(),
            decay: 0.99,
            admit_threshold: 0.7,
        }
    }

    /// Record one verified billing cycle for `telco`.
    pub fn record_cycle(&mut self, telco: Identity, verdict: CycleVerdict) {
        let rec = self.telcos.entry(telco).or_default();
        rec.cycles += 1;
        rec.weight *= self.decay;
        rec.mass = rec.mass * self.decay + 1.0;
        if let CycleVerdict::Mismatch { weight } = verdict {
            rec.mismatches += 1;
            // The paper flags "a large or persistent discrepancy": every
            // mismatch carries a base penalty (persistence) plus a
            // degree-proportional term (magnitude — a 2x inflation hurts
            // far more than 1%).
            rec.weight += (0.25 + 0.75 * weight).min(1.0);
        }
    }

    /// The aggregate score for `telco` in `[0, 1]`; unknown bTelcos get
    /// the benefit of the doubt (1.0) — the barrier to entry stays low.
    #[must_use]
    pub fn score(&self, telco: Identity) -> f64 {
        match self.telcos.get(&telco) {
            None => 1.0,
            Some(rec) if rec.mass == 0.0 => 1.0,
            Some(rec) => (1.0 - rec.weight / rec.mass).clamp(0.0, 1.0),
        }
    }

    /// The authorization decision used during SAP processing.
    #[must_use]
    pub fn admit(&self, telco: Identity) -> bool {
        self.score(telco) >= self.admit_threshold
    }

    /// Mark one of our users as suspected of tampering with reports.
    pub fn mark_suspect(&mut self, user: Identity) {
        self.suspects.insert(user);
    }

    /// Is this user on the suspect list?
    #[must_use]
    pub fn is_suspect(&self, user: Identity) -> bool {
        self.suspects.contains(&user)
    }

    /// Mismatch count observed for a bTelco (diagnostics).
    #[must_use]
    pub fn mismatches(&self, telco: Identity) -> u64 {
        self.telcos.get(&telco).map_or(0, |r| r.mismatches)
    }

    /// Cycles verified for a bTelco (diagnostics).
    #[must_use]
    pub fn cycles(&self, telco: Identity) -> u64 {
        self.telcos.get(&telco).map_or(0, |r| r.cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u8) -> Identity {
        Identity([n; 16])
    }

    #[test]
    fn unknown_telco_trusted() {
        let rep = ReputationSystem::new();
        assert_eq!(rep.score(id(1)), 1.0);
        assert!(rep.admit(id(1)));
    }

    #[test]
    fn honest_telco_keeps_perfect_score() {
        let mut rep = ReputationSystem::new();
        for _ in 0..100 {
            rep.record_cycle(id(1), CycleVerdict::Consistent);
        }
        assert_eq!(rep.score(id(1)), 1.0);
        assert_eq!(rep.cycles(id(1)), 100);
        assert_eq!(rep.mismatches(id(1)), 0);
    }

    #[test]
    fn persistent_cheater_loses_admission() {
        let mut rep = ReputationSystem::new();
        for _ in 0..50 {
            rep.record_cycle(id(2), CycleVerdict::Mismatch { weight: 0.8 });
        }
        assert!(rep.score(id(2)) < 0.5, "score {}", rep.score(id(2)));
        assert!(!rep.admit(id(2)));
    }

    #[test]
    fn small_discrepancies_tolerated() {
        let mut rep = ReputationSystem::new();
        // 5% of cycles have a tiny mismatch: expected and tolerated.
        for i in 0..200 {
            let verdict = if i % 20 == 0 {
                CycleVerdict::Mismatch { weight: 0.02 }
            } else {
                CycleVerdict::Consistent
            };
            rep.record_cycle(id(3), verdict);
        }
        assert!(rep.admit(id(3)), "score {}", rep.score(id(3)));
    }

    #[test]
    fn degree_weighting_matters() {
        let mut small = ReputationSystem::new();
        let mut large = ReputationSystem::new();
        for _ in 0..20 {
            small.record_cycle(id(1), CycleVerdict::Mismatch { weight: 0.05 });
            large.record_cycle(id(1), CycleVerdict::Mismatch { weight: 0.9 });
        }
        assert!(small.score(id(1)) > large.score(id(1)));
    }

    #[test]
    fn cheater_can_redeem_through_decay() {
        let mut rep = ReputationSystem::new();
        rep.decay = 0.9;
        for _ in 0..30 {
            rep.record_cycle(id(4), CycleVerdict::Mismatch { weight: 1.0 });
        }
        assert!(!rep.admit(id(4)));
        for _ in 0..200 {
            rep.record_cycle(id(4), CycleVerdict::Consistent);
        }
        assert!(rep.admit(id(4)), "redeemed score {}", rep.score(id(4)));
    }

    #[test]
    fn suspects_tracked_separately() {
        let mut rep = ReputationSystem::new();
        assert!(!rep.is_suspect(id(5)));
        rep.mark_suspect(id(5));
        assert!(rep.is_suspect(id(5)));
        // Suspecting a user doesn't touch telco scores.
        assert_eq!(rep.score(id(5)), 1.0);
    }

    #[test]
    fn scores_are_independent_across_telcos() {
        let mut rep = ReputationSystem::new();
        for _ in 0..50 {
            rep.record_cycle(id(6), CycleVerdict::Mismatch { weight: 1.0 });
            rep.record_cycle(id(7), CycleVerdict::Consistent);
        }
        assert!(!rep.admit(id(6)));
        assert!(rep.admit(id(7)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::billing::CycleVerdict;
    use proptest::prelude::*;

    fn arb_verdict() -> impl Strategy<Value = CycleVerdict> {
        prop_oneof![
            Just(CycleVerdict::Consistent),
            (0.0f64..2.0).prop_map(|weight| CycleVerdict::Mismatch { weight }),
        ]
    }

    proptest! {
        /// Scores stay in [0, 1] under arbitrary verdict sequences, and a
        /// fully consistent history keeps a perfect score.
        #[test]
        fn prop_score_bounded(
            verdicts in proptest::collection::vec(arb_verdict(), 0..300),
        ) {
            let mut rep = ReputationSystem::new();
            let telco = Identity([1; 16]);
            let mut all_consistent = true;
            for v in verdicts {
                if matches!(v, CycleVerdict::Mismatch { .. }) {
                    all_consistent = false;
                }
                rep.record_cycle(telco, v);
                let s = rep.score(telco);
                prop_assert!((0.0..=1.0).contains(&s), "score {s}");
            }
            if all_consistent {
                prop_assert_eq!(rep.score(telco), 1.0);
            }
        }

        /// Comparative monotonicity: for any shared history, ending with
        /// a mismatch can never score better than ending with a
        /// consistent cycle, and a consistent ending never lowers the
        /// score. (Strict per-verdict monotonicity does not hold: with
        /// decayed averaging, a *mild* mismatch can raise the average of
        /// a terrible history — which is the intended redemption path.)
        #[test]
        fn prop_mismatch_never_beats_consistent(
            prefix in proptest::collection::vec(arb_verdict(), 0..80),
            weight in 0.0f64..1.5,
        ) {
            let telco = Identity([2; 16]);
            let mut rep = ReputationSystem::new();
            for v in &prefix {
                rep.record_cycle(telco, *v);
            }
            let before = rep.score(telco);
            let mut worse = ReputationSystem::new();
            let mut better = ReputationSystem::new();
            for v in &prefix {
                worse.record_cycle(telco, *v);
                better.record_cycle(telco, *v);
            }
            worse.record_cycle(telco, CycleVerdict::Mismatch { weight });
            better.record_cycle(telco, CycleVerdict::Consistent);
            prop_assert!(worse.score(telco) <= better.score(telco) + 1e-9);
            prop_assert!(better.score(telco) >= before - 1e-9);
        }
    }
}
