//! `brokerd` as a real wire service: the reusable server core behind the
//! `brokerd` daemon binary.
//!
//! The paper's central deployment claim (§3, §5) is that the broker
//! "needs no cellular infrastructure" — it is an ordinary online service
//! behind a socket, deployed like Magma's Orc8r in the cloud, and it
//! scales like one: across cores first, then across machines. This
//! module is that service in miniature, structured as a **staged
//! pipeline** so the crypto bill spreads over a pool of worker threads
//! while the protocol semantics stay strictly sequential:
//!
//! * **I/O stage** ([`serve`] over UDP, [`serve_tcp`] over TCP): drain
//!   the transport, frame + wire decode, and flush replies. Batch
//!   boundaries come from an adaptive batch-window controller
//!   ([`ServeConfig`]): a batch closes when it reaches `batch_target`
//!   requests or when its age exceeds a window that is continuously
//!   re-derived from the measured per-batch service time against a
//!   reply-latency SLO — continuous-batching style, so the window widens
//!   when the server is fast (buying bigger batches) and collapses when
//!   service time already eats the SLO.
//! * **Crypto workers** (a pool of W `std::thread`s inside
//!   [`BrokerServer`], bounded channels, no tokio): the expensive,
//!   *pure* phases — pooled [`open_batch`], cross-connection
//!   [`verify_batch`], error attribution, and `broker_grant_batch`
//!   sealing — run on contiguous sub-batches, scattered chunk-per-worker
//!   and gathered back in arrival order.
//! * **Decision stage** (sequential, on the caller's thread): anti-replay
//!   nonce admission, session-id allocation, and all RNG draws happen in
//!   arrival order between the two worker phases, so a replayed nonce
//!   observes every earlier request of its own batch and replies are
//!   byte-identical at any worker count (see below).
//!
//! **Determinism.** Grant replies consume randomness only through
//! [`sap::grant_draws`], which the decision stage runs sequentially in
//! grant order; workers get pre-drawn material and do only pure curve
//! math ([`sap::broker_grant_batch_prepared`]). Batch field inversions
//! compute the same (value-unique) inverses under any sub-batching, and
//! Ed25519 signing is deterministic — so W=1, W=4 and the inline path
//! produce byte-identical replies, and every replay gate keeps passing.
//!
//! What is and is not shared with the sim-side [`crate::brokerd::Brokerd`]
//! is deliberate: the wire format ([`BrokerWire`]), the protocol core
//! (`sap::broker_precheck`/`broker_grant`/`broker_authenticate_sequential`),
//! the subscriber record shape and the bounded anti-replay window are the
//! same code; the event-loop integration, billing/reputation state and
//! fault injection remain sim-only. Traffic reports arriving on the wire
//! are counted and dropped — billing ingest stays simulated (DESIGN §13).

use crate::brokerd::{BrokerWire, SubscriberRecord, NONCE_WINDOW_CAP};
use crate::principal::{BrokerKeys, Identity, TelcoKeys, UeKeys};
use crate::sap::{self, AuthReqT, QosCap, SubscriberEntry};
use bytes::Bytes;
use cellbricks_crypto::cert::CertificateAuthority;
use cellbricks_crypto::ed25519::{verify_batch, BatchItem, VerifyingKey};
use cellbricks_crypto::sealed::open_batch;
use cellbricks_crypto::x25519::X25519PublicKey;
use cellbricks_net::wire::{frame, read_frame, unframe, write_frame};
use cellbricks_sim::SimRng;
use cellbricks_telemetry as telemetry;
use polling::Poller;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// The canonical broker name every helper in this module provisions
/// under — the same name `exp_broker` uses, so the deterministic seed
/// path produces interoperable key material.
pub const BROKER_NAME: &str = "broker.example";

/// The bTelco identity the load generator forwards requests as.
pub const TELCO_NAME: &str = "tower-1.example";

/// Wire-server configuration.
pub struct BrokerServerConfig {
    /// Broker keys + certificate.
    pub keys: BrokerKeys,
    /// The CA all certificates chain to.
    pub ca: VerifyingKey,
}

/// Plain mirrors of the server-loop telemetry, cheap to read in tests
/// and printed by the daemon on shutdown. The telemetry registry carries
/// the same values under `brokerd.*` / `core.brokerd.bad_frames`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireCounters {
    /// Authorizations granted and answered with `AuthOk`.
    pub served_auths: u64,
    /// Requests answered with `AuthErr` (bad signature, policy, replay…).
    pub auth_errs: u64,
    /// Datagrams that failed framing or `BrokerWire` decoding.
    pub bad_frames: u64,
    /// Well-formed `Report` frames (counted, then dropped — billing
    /// ingest stays sim-side).
    pub wire_reports: u64,
    /// Well-formed frames that are not requests (`AuthOk`/`AuthErr`
    /// arriving at the server).
    pub unexpected_frames: u64,
    /// Readiness batches processed (including request-free ones).
    pub batches: u64,
}

/// Pick the worker count: `CELLBRICKS_BROKERD_WORKERS` if set, else
/// `available_parallelism - 1` (one core reserved for the I/O stage),
/// clamped to 1..=8. On a single-core box this is 1 — the byte-identical
/// baseline — so deterministic results never depend on the machine.
#[must_use]
pub fn default_workers() -> usize {
    if let Some(w) = std::env::var("CELLBRICKS_BROKERD_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return w;
    }
    std::thread::available_parallelism()
        .map(|p| p.get().saturating_sub(1).clamp(1, 8))
        .unwrap_or(1)
}

/// The transport-agnostic `brokerd` request processor: subscriber DB,
/// bounded anti-replay window, session-id allocator, and the scatter /
/// gather front of the crypto worker pool.
pub struct BrokerServer {
    cfg: Arc<BrokerServerConfig>,
    subscribers: Arc<HashMap<Identity, SubscriberRecord>>,
    seen_nonces: HashSet<[u8; 16]>,
    nonce_order: VecDeque<[u8; 16]>,
    next_session: u64,
    next_alias: u64,
    rng: SimRng,
    pool: Option<CryptoPool>,
    /// Server-loop counters (also exported as telemetry).
    pub counters: WireCounters,
    /// Scratch reused across batches: decoded requests awaiting verify.
    pending: Vec<PendingAuth>,
}

/// One decoded `AuthReq` of the current batch, between decode and verify.
struct PendingAuth {
    slot: usize,
    req_id: u64,
    req: AuthReqT,
}

/// Verdict of the parallel check stage for one request: everything the
/// sequential decision stage needs, minus the anti-replay call it must
/// make itself in arrival order.
enum Checked {
    /// Signatures verified and policy passed; awaiting nonce admission.
    Authorized(sap::AuthVec, SubscriberEntry),
    /// Refused, with the exact [`sap::SapError`] code already attributed.
    Refused(u8),
}

/// One authorized request between the decision stage and its grant.
struct GrantItem {
    idx: usize,
    vec: sap::AuthVec,
    entry: SubscriberEntry,
    session_id: u64,
}

/// Owned grant work shipped to a crypto worker (the borrow-based
/// [`sap::GrantJob`] is rebuilt worker-side).
struct GrantWork {
    req: AuthReqT,
    vec: sap::AuthVec,
    entry: SubscriberEntry,
    session_id: u64,
}

/// Never split a batch below this many requests per chunk: tiny chunks
/// pay scatter overhead without amortizing anything. With W=1 the chunk
/// length is always ≥ the whole batch, so a single-worker pipeline runs
/// the exact same pooled calls as the inline path.
const MIN_CHUNK: usize = 4;

/// Per-worker job-queue bound. A scatter sends at most one chunk per
/// worker, so a small bound suffices; it exists to make any future
/// misuse (flooding the pool without gathering) fail loudly by blocking.
const POOL_QUEUE_BOUND: usize = 8;

/// One granted request's output: the reply to seal onto the wire, the
/// QoS the broker recorded, and the session secret.
type GrantOut = (sap::BrokerReply, sap::QosInfo, [u8; 32]);

enum PoolJob {
    Check {
        cfg: Arc<BrokerServerConfig>,
        subs: Arc<HashMap<Identity, SubscriberRecord>>,
        reqs: Vec<AuthReqT>,
        chunk: usize,
        tx: mpsc::Sender<(usize, Vec<Checked>)>,
    },
    Grant {
        cfg: Arc<BrokerServerConfig>,
        work: Vec<GrantWork>,
        draws: Vec<sap::GrantDraws>,
        chunk: usize,
        tx: mpsc::Sender<(usize, Vec<GrantOut>)>,
    },
}

/// The crypto worker pool: W persistent threads, one bounded job channel
/// each. Chunk i of a scatter goes to worker i, results are gathered by
/// chunk index — arrival order is preserved by construction.
struct CryptoPool {
    txs: Vec<mpsc::SyncSender<PoolJob>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    busy_ns: Vec<Arc<AtomicU64>>,
    util_gauges: Vec<telemetry::Gauge>,
    queued: Arc<AtomicUsize>,
    started: Instant,
}

impl CryptoPool {
    fn new(workers: usize) -> Self {
        let queued = Arc::new(AtomicUsize::new(0));
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        let mut busy_ns = Vec::with_capacity(workers);
        let mut util_gauges = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = mpsc::sync_channel::<PoolJob>(POOL_QUEUE_BOUND);
            let busy = Arc::new(AtomicU64::new(0));
            let busy2 = Arc::clone(&busy);
            let queued2 = Arc::clone(&queued);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("brokerd-crypto-{i}"))
                    .spawn(move || crypto_worker(&rx, &busy2, &queued2))
                    .expect("spawn crypto worker"),
            );
            txs.push(tx);
            busy_ns.push(busy);
            util_gauges.push(telemetry::gauge(format!("brokerd.worker{i}.util_permille")));
        }
        Self {
            txs,
            handles,
            busy_ns,
            util_gauges,
            queued,
            started: Instant::now(),
        }
    }

    fn workers(&self) -> usize {
        self.txs.len()
    }

    /// Busy-time share of each worker since pool start, in permille.
    fn utilization_permille(&self) -> Vec<u64> {
        let wall = (self.started.elapsed().as_nanos() as u64).max(1);
        self.busy_ns
            .iter()
            .map(|b| b.load(Ordering::Relaxed) * 1000 / wall)
            .collect()
    }

    fn publish_util(&self) {
        for (util, gauge) in self.utilization_permille().iter().zip(&self.util_gauges) {
            gauge.set(*util as i64);
        }
    }
}

impl Drop for CryptoPool {
    fn drop(&mut self) {
        // Closing the job channels ends each worker's recv loop.
        self.txs.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn crypto_worker(rx: &mpsc::Receiver<PoolJob>, busy: &AtomicU64, queued: &AtomicUsize) {
    while let Ok(job) = rx.recv() {
        let t0 = Instant::now();
        match job {
            PoolJob::Check {
                cfg,
                subs,
                reqs,
                chunk,
                tx,
            } => {
                let out = check_chunk(&cfg, &subs, &reqs);
                let _ = tx.send((chunk, out));
            }
            PoolJob::Grant {
                cfg,
                work,
                draws,
                chunk,
                tx,
            } => {
                let jobs: Vec<sap::GrantJob<'_>> = work
                    .iter()
                    .map(|g| sap::GrantJob {
                        req: &g.req,
                        vec: &g.vec,
                        entry: &g.entry,
                        session_id: g.session_id,
                    })
                    .collect();
                let out = sap::broker_grant_batch_prepared(&cfg.keys, &jobs, &draws);
                let _ = tx.send((chunk, out));
            }
        }
        busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        queued.fetch_sub(1, Ordering::Relaxed);
    }
}

fn lookup_in(subs: &HashMap<Identity, SubscriberRecord>, id: Identity) -> Option<SubscriberEntry> {
    subs.get(&id).map(|rec| SubscriberEntry {
        sign_pk: rec.sign_pk,
        encrypt_pk: rec.encrypt_pk,
        plan_mbr_bps: rec.plan_mbr_bps,
        suspect: false,
        alias: rec.alias,
        lawful_intercept: false,
    })
}

/// Exact error attribution via the seed-order sequential checks — the
/// same path the simulated broker falls back to. Pure with respect to
/// server state, so it runs inside worker chunks.
fn attribute_failure(
    cfg: &BrokerServerConfig,
    subs: &HashMap<Identity, SubscriberRecord>,
    req: &AuthReqT,
) -> u8 {
    match sap::broker_authenticate_sequential(
        &cfg.keys,
        &cfg.ca,
        req,
        &|id| lookup_in(subs, id),
        &|_| true,
    ) {
        // Unreachable in practice (precheck/verify failed), but if the
        // sequential path accepts, refusing would be wrong — report the
        // one error that cannot mint a session here.
        Ok(_) => sap::SapError::PolicyRefused as u8,
        Err(e) => e as u8,
    }
}

/// The pure check stage over one chunk of decoded requests: structural /
/// policy prechecks with the expensive unseals pooled into one
/// [`open_batch`], then one pooled [`verify_batch`] spanning the chunk,
/// with per-request fallback and exact attribution on failure. No server
/// state is read or written — chunks from the same batch can run on any
/// threads in any order and gather to the same verdicts.
fn check_chunk<T: std::borrow::Borrow<AuthReqT>>(
    cfg: &BrokerServerConfig,
    subs: &HashMap<Identity, SubscriberRecord>,
    reqs: &[T],
) -> Vec<Checked> {
    let pre: Vec<Option<Identity>> = reqs
        .iter()
        .map(|r| sap::broker_precheck_pre_open(&cfg.keys, r.borrow()))
        .collect();
    let boxes: Vec<&cellbricks_crypto::SealedBox> = reqs
        .iter()
        .zip(&pre)
        .filter(|(_, id_t)| id_t.is_some())
        .map(|(r, _)| &r.borrow().req_u.sealed_vec)
        .collect();
    let mut opened = open_batch(&cfg.keys.encrypt, &boxes).into_iter();
    let self_id = cfg.keys.identity();
    let prechecked: Vec<Option<(sap::AuthVec, SubscriberEntry, sap::AuthBatchMaterial)>> = reqs
        .iter()
        .zip(&pre)
        .map(|(r, pre_id)| {
            let id_t = (*pre_id)?;
            let vec_bytes = opened.next().expect("one open per precheck").ok()?;
            sap::broker_precheck_post_open(
                self_id,
                &cfg.ca,
                r.borrow(),
                id_t,
                &vec_bytes,
                &|id| lookup_in(subs, id),
                &|_| true,
            )
        })
        .collect();

    // One pooled verify across the whole chunk; a failed pool degrades
    // per-request (batch-of-3, then sequential attribution), preserving
    // exact error codes.
    let pooled_ok = {
        let items: Vec<BatchItem<'_>> = prechecked
            .iter()
            .flatten()
            .flat_map(|(_, _, material)| material.items())
            .collect();
        verify_batch(&items)
    };
    reqs.iter()
        .zip(prechecked)
        .map(|(r, checked)| match checked {
            Some((vec, entry, material)) => {
                if pooled_ok || verify_batch(&material.items()) {
                    Checked::Authorized(vec, entry)
                } else {
                    Checked::Refused(attribute_failure(cfg, subs, r.borrow()))
                }
            }
            None => Checked::Refused(attribute_failure(cfg, subs, r.borrow())),
        })
        .collect()
}

impl BrokerServer {
    /// A fresh server with an empty subscriber DB and no worker pool:
    /// every phase runs inline on the calling thread (the PR 9 shape,
    /// still the simplest thing to unit-test against).
    #[must_use]
    pub fn new(cfg: BrokerServerConfig, rng: SimRng) -> Self {
        Self::with_workers(cfg, rng, 0)
    }

    /// A fresh server backed by a pool of `workers` crypto threads
    /// (0 = inline). Replies are byte-identical at any worker count —
    /// parallelism changes only where the pure phases execute.
    #[must_use]
    pub fn with_workers(cfg: BrokerServerConfig, rng: SimRng, workers: usize) -> Self {
        Self {
            cfg: Arc::new(cfg),
            subscribers: Arc::new(HashMap::new()),
            seen_nonces: HashSet::new(),
            nonce_order: VecDeque::new(),
            next_session: 1,
            next_alias: 1,
            rng,
            pool: (workers > 0).then(|| CryptoPool::new(workers)),
            counters: WireCounters::default(),
            pending: Vec::new(),
        }
    }

    /// Number of crypto workers (0 = inline processing).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.pool.as_ref().map_or(0, CryptoPool::workers)
    }

    /// Busy-share of each crypto worker since startup, in permille of
    /// wall time. Empty for an inline server.
    #[must_use]
    pub fn worker_utilization_permille(&self) -> Vec<u64> {
        self.pool
            .as_ref()
            .map_or_else(Vec::new, CryptoPool::utilization_permille)
    }

    /// Provision a subscriber (same contract as the simulated broker).
    pub fn provision(
        &mut self,
        id: Identity,
        sign_pk: VerifyingKey,
        encrypt_pk: X25519PublicKey,
        plan_mbr_bps: u64,
    ) {
        let alias = self.next_alias;
        self.next_alias += 1;
        Arc::make_mut(&mut self.subscribers).insert(
            id,
            SubscriberRecord {
                sign_pk,
                encrypt_pk,
                plan_mbr_bps,
                alias,
            },
        );
    }

    /// Number of provisioned subscribers.
    #[must_use]
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// Record a nonce; `false` means replay. FIFO-bounded exactly like
    /// the simulated broker's window ([`NONCE_WINDOW_CAP`]).
    fn insert_nonce(&mut self, nonce: [u8; 16]) -> bool {
        if !self.seen_nonces.insert(nonce) {
            return false;
        }
        self.nonce_order.push_back(nonce);
        if self.nonce_order.len() > NONCE_WINDOW_CAP {
            if let Some(oldest) = self.nonce_order.pop_front() {
                self.seen_nonces.remove(&oldest);
            }
        }
        true
    }

    fn bad_frame(&mut self) {
        self.counters.bad_frames += 1;
        telemetry::counter("core.brokerd.bad_frames").inc();
    }

    /// The check stage: inline for a pool-less server, otherwise
    /// scattered in contiguous chunks (chunk i → worker i) and gathered
    /// back by chunk index, i.e. in arrival order.
    fn run_checks(&self, pending: &[PendingAuth]) -> Vec<Checked> {
        if pending.is_empty() {
            return Vec::new();
        }
        let Some(pool) = &self.pool else {
            let reqs: Vec<&AuthReqT> = pending.iter().map(|p| &p.req).collect();
            return check_chunk(&self.cfg, &self.subscribers, &reqs);
        };
        let w = pool.workers();
        let chunk_len = pending.len().div_ceil(w).max(MIN_CHUNK);
        let (tx, rx) = mpsc::channel();
        let mut sent = 0usize;
        for (ci, slice) in pending.chunks(chunk_len).enumerate() {
            pool.queued.fetch_add(1, Ordering::Relaxed);
            pool.txs[ci % w]
                .send(PoolJob::Check {
                    cfg: Arc::clone(&self.cfg),
                    subs: Arc::clone(&self.subscribers),
                    reqs: slice.iter().map(|p| p.req.clone()).collect(),
                    chunk: ci,
                    tx: tx.clone(),
                })
                .expect("crypto worker alive");
            sent += 1;
        }
        drop(tx);
        telemetry::histogram("brokerd.queue_depth")
            .record(pool.queued.load(Ordering::Relaxed) as u64);
        let mut parts: Vec<Vec<Checked>> = (0..sent).map(|_| Vec::new()).collect();
        for _ in 0..sent {
            let (ci, out) = rx.recv().expect("crypto worker reply");
            parts[ci] = out;
        }
        pool.publish_util();
        parts.into_iter().flatten().collect()
    }

    /// The grant stage against pre-drawn RNG material: inline without a
    /// pool, scattered/gathered with one. Each chunk pools its own seal
    /// and signature inversions; the result is byte-identical to one big
    /// [`sap::broker_grant_batch`] under the same rng.
    fn run_grants(
        &self,
        pending: &[PendingAuth],
        granted: Vec<GrantItem>,
        draws: Vec<sap::GrantDraws>,
    ) -> Vec<GrantOut> {
        if granted.is_empty() {
            return Vec::new();
        }
        let Some(pool) = &self.pool else {
            let jobs: Vec<sap::GrantJob<'_>> = granted
                .iter()
                .map(|g| sap::GrantJob {
                    req: &pending[g.idx].req,
                    vec: &g.vec,
                    entry: &g.entry,
                    session_id: g.session_id,
                })
                .collect();
            return sap::broker_grant_batch_prepared(&self.cfg.keys, &jobs, &draws);
        };
        let w = pool.workers();
        let chunk_len = granted.len().div_ceil(w).max(MIN_CHUNK);
        let (tx, rx) = mpsc::channel();
        let mut items = granted.into_iter().zip(draws);
        let mut sent = 0usize;
        loop {
            let pairs: Vec<_> = items.by_ref().take(chunk_len).collect();
            if pairs.is_empty() {
                break;
            }
            let mut work = Vec::with_capacity(pairs.len());
            let mut chunk_draws = Vec::with_capacity(pairs.len());
            for (g, d) in pairs {
                work.push(GrantWork {
                    req: pending[g.idx].req.clone(),
                    vec: g.vec,
                    entry: g.entry,
                    session_id: g.session_id,
                });
                chunk_draws.push(d);
            }
            pool.queued.fetch_add(1, Ordering::Relaxed);
            pool.txs[sent % w]
                .send(PoolJob::Grant {
                    cfg: Arc::clone(&self.cfg),
                    work,
                    draws: chunk_draws,
                    chunk: sent,
                    tx: tx.clone(),
                })
                .expect("crypto worker alive");
            sent += 1;
        }
        drop(tx);
        telemetry::histogram("brokerd.queue_depth")
            .record(pool.queued.load(Ordering::Relaxed) as u64);
        let mut parts: Vec<Vec<_>> = (0..sent).map(|_| Vec::new()).collect();
        for _ in 0..sent {
            let (ci, out) = rx.recv().expect("crypto worker reply");
            parts[ci] = out;
        }
        parts.into_iter().flatten().collect()
    }

    /// Process one readiness batch of raw datagrams. Each entry is
    /// `(client slot, datagram bytes)`; replies are appended to `out` as
    /// `(client slot, framed reply bytes)` for the caller's flush pass.
    ///
    /// Pipeline phases: decode (sequential) → check (workers: pooled
    /// open + cross-connection verify + attribution) → decide
    /// (sequential: anti-replay in arrival order, session ids, RNG
    /// draws) → grant (workers: pooled seal + sign) → emit (sequential,
    /// arrival order). The call is synchronous — when it returns, every
    /// reply for the batch is in `out`, which is what makes shutdown
    /// drain-safe by construction.
    pub fn process_batch(&mut self, datagrams: &[(usize, &[u8])], out: &mut Vec<(usize, Vec<u8>)>) {
        // Touch the error counter so it registers (at 0) in clean runs.
        let _ = telemetry::counter("core.brokerd.bad_frames");
        self.counters.batches += 1;
        let mut pending = std::mem::take(&mut self.pending);
        pending.clear();

        // Phase 1: frame + wire decode.
        for &(slot, dgram) in datagrams {
            let Ok(payload) = unframe(dgram) else {
                self.bad_frame();
                continue;
            };
            match BrokerWire::decode(payload) {
                Some(BrokerWire::AuthReq { req_id, req_t }) => match AuthReqT::decode(&req_t) {
                    Some(req) => pending.push(PendingAuth { slot, req_id, req }),
                    None => {
                        // Same code the simulated broker returns for an
                        // undecodable authReqT.
                        self.push_err(out, slot, req_id, sap::SapError::Malformed as u8);
                    }
                },
                Some(BrokerWire::Report { .. }) => {
                    self.counters.wire_reports += 1;
                    telemetry::counter("brokerd.wire_reports").inc();
                }
                Some(_) => {
                    self.counters.unexpected_frames += 1;
                    telemetry::counter("brokerd.unexpected_frames").inc();
                }
                None => self.bad_frame(),
            }
        }
        telemetry::histogram("brokerd.batch_size").record(pending.len() as u64);

        // Phase 2: the parallel check stage (prechecks, pooled open,
        // cross-connection verify, attribution) — pure, so it scatters.
        let checked = self.run_checks(&pending);

        // Phase 3: decide each request in arrival order — nonce replay
        // checks must observe earlier requests of the same batch — and
        // stage the authorized grants.
        enum Outcome {
            Grant,
            Refuse(u8),
        }
        let mut outcomes: Vec<(usize, u64, Outcome)> = Vec::with_capacity(pending.len());
        let mut granted: Vec<GrantItem> = Vec::new();
        for (i, (p, chk)) in pending.iter().zip(checked).enumerate() {
            match chk {
                Checked::Authorized(vec, entry) => {
                    if self.insert_nonce(vec.nonce) {
                        let session_id = self.next_session;
                        self.next_session += 1;
                        granted.push(GrantItem {
                            idx: i,
                            vec,
                            entry,
                            session_id,
                        });
                        outcomes.push((p.slot, p.req_id, Outcome::Grant));
                    } else {
                        let code = sap::SapError::NonceMismatch as u8;
                        outcomes.push((p.slot, p.req_id, Outcome::Refuse(code)));
                    }
                }
                Checked::Refused(code) => {
                    outcomes.push((p.slot, p.req_id, Outcome::Refuse(code)));
                }
            }
        }

        // Phase 4: all RNG material is drawn here, sequentially, in
        // grant order — workers then do only pure curve math, which is
        // what keeps replies byte-identical at any worker count.
        let draws = sap::grant_draws(&mut self.rng, granted.len());
        let replies = self.run_grants(&pending, granted, draws);

        // Phase 5: emit replies and refusals in arrival order.
        let mut replies = replies.into_iter();
        for (slot, req_id, outcome) in outcomes {
            match outcome {
                Outcome::Grant => {
                    let (reply, _qos, _ss) = replies.next().expect("one reply per grant");
                    self.push_ok(out, slot, req_id, reply.encode());
                }
                Outcome::Refuse(code) => self.push_err(out, slot, req_id, code),
            }
        }
        self.pending = pending;
    }

    fn push_ok(&mut self, out: &mut Vec<(usize, Vec<u8>)>, slot: usize, req_id: u64, reply: Bytes) {
        self.counters.served_auths += 1;
        telemetry::counter("brokerd.served_auths").inc();
        out.push((slot, frame(&BrokerWire::AuthOk { req_id, reply }.encode())));
    }

    fn push_err(&mut self, out: &mut Vec<(usize, Vec<u8>)>, slot: usize, req_id: u64, code: u8) {
        self.counters.auth_errs += 1;
        telemetry::counter("brokerd.auth_rejected").inc();
        out.push((slot, frame(&BrokerWire::AuthErr { req_id, code }.encode())));
    }
}

/// Tuning for the serve loops ([`serve`], [`serve_tcp`]): the adaptive
/// batch-window controller.
///
/// A batch closes when it reaches `batch_target` requests or when its
/// age exceeds the current window. The window is re-derived after every
/// batch as `clamp(slo − service_ewma, window_min, window_max)` — the
/// slack the SLO leaves after the (smoothed) measured service time. When
/// the server is fast the window widens, buying bigger batches per
/// wakeup (better verify amortization); when batches already take the
/// whole SLO to serve, the window collapses to `window_min` and the loop
/// degenerates to drain-and-go.
pub struct ServeConfig {
    /// Readiness-wait slice between checks of the stop flag.
    pub wait_timeout: Duration,
    /// Hard cap on datagrams per batch (bounds the receive arena).
    pub max_batch: usize,
    /// Close the batch early once it holds this many messages.
    pub batch_target: usize,
    /// Reply-latency budget the window controller works against.
    pub slo: Duration,
    /// Window floor: never adapt below this.
    pub window_min: Duration,
    /// Window ceiling: never hold a batch open longer than this.
    pub window_max: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            wait_timeout: Duration::from_millis(20),
            max_batch: 1024,
            batch_target: 64,
            slo: Duration::from_micros(600),
            window_min: Duration::from_micros(20),
            window_max: Duration::from_micros(250),
        }
    }
}

/// EWMA smoothing for the measured per-batch service time.
const SERVICE_EWMA_ALPHA: f64 = 0.25;

/// Shortest kernel wait the gather loop will request: sub-microsecond
/// read timeouts risk truncating to a zero timeval (= block forever).
const MIN_POLL: Duration = Duration::from_micros(10);

/// Consecutive dry gather passes (each separated by a `yield_now`) after
/// which the UDP loop closes the batch before the window expires. A dry
/// socket that stays dry across several yields means nothing is in
/// flight — holding the batch open buys no amortization, only latency
/// (continuous batching dispatches when the queue empties). The yields
/// matter on a single core: they are what hand peers the CPU to enqueue
/// the next datagram before the verdict is final.
const DRY_SPINS: u32 = 4;

/// The adaptive batch-window state shared by both serve loops.
struct BatchWindow {
    service_ewma_ns: f64,
    window: Duration,
}

impl BatchWindow {
    fn new(cfg: &ServeConfig) -> Self {
        Self {
            service_ewma_ns: 0.0,
            window: cfg.window_max,
        }
    }

    /// Fold one measured batch service time into the EWMA and re-derive
    /// the window from the SLO slack.
    fn observe(&mut self, service: Duration, cfg: &ServeConfig) {
        let s = service.as_nanos() as f64;
        self.service_ewma_ns = if self.service_ewma_ns == 0.0 {
            s
        } else {
            SERVICE_EWMA_ALPHA * s + (1.0 - SERVICE_EWMA_ALPHA) * self.service_ewma_ns
        };
        let slack = (cfg.slo.as_nanos() as f64 - self.service_ewma_ns).max(0.0);
        self.window = Duration::from_nanos(slack as u64).clamp(cfg.window_min, cfg.window_max);
        telemetry::gauge("brokerd.batch_window_ns").set(self.window.as_nanos() as i64);
    }
}

/// Per-datagram receive-buffer size. Any legitimate control-plane frame
/// fits with a wide margin; a larger datagram is truncated by the kernel
/// and then rejected by [`unframe`] as a bad frame. (The TCP transport
/// has no such cap — frames up to `MAX_FRAME_LEN` stream through
/// [`read_frame`].)
const RECV_BUF_LEN: usize = 8 * 1024;

/// The UDP I/O stage: wait for readability, gather a batch under the
/// adaptive window (drain until dry, then yield-spin for the window
/// remainder, closing early after [`DRY_SPINS`] consecutive empty
/// passes), process the whole batch through
/// [`BrokerServer::process_batch`], then write every reply in a single
/// flush pass. Runs until `stop` is set; a gathered batch is always
/// fully processed and flushed before the flag is honored.
///
/// The in-window wait is a spin rather than a timed kernel read:
/// `SO_RCVTIMEO` rounds sub-millisecond timeouts up to a scheduler tick
/// (≈4 ms at HZ=250) — an order of magnitude longer than the whole
/// window, which would serialize ping-pong clients at tick granularity.
///
/// # Errors
/// Any socket error other than the would-block/timed-out family.
pub fn serve(
    server: &mut BrokerServer,
    sock: &UdpSocket,
    stop: &AtomicBool,
    cfg: &ServeConfig,
) -> io::Result<()> {
    sock.set_nonblocking(true)?;
    let poller = Poller::new()?;
    let mut peers: Vec<SocketAddr> = Vec::new();
    let mut peer_index: HashMap<SocketAddr, usize> = HashMap::new();
    let mut arena: Vec<Vec<u8>> = Vec::new();
    let mut meta: Vec<(usize, usize)> = Vec::new(); // (slot, len) per datagram
    let mut replies: Vec<(usize, Vec<u8>)> = Vec::new();
    let mut win = BatchWindow::new(cfg);
    let wait_hist = telemetry::histogram("brokerd.batch_wait_ns");

    while !stop.load(Ordering::Relaxed) {
        if !poller.wait_readable(sock, Some(cfg.wait_timeout))? {
            continue;
        }
        let opened = Instant::now();
        meta.clear();
        let mut dry_spins = 0u32;
        loop {
            let before = meta.len();
            // Drain until dry or full.
            while meta.len() < cfg.max_batch {
                if arena.len() == meta.len() {
                    arena.push(vec![0u8; RECV_BUF_LEN]);
                }
                let buf = &mut arena[meta.len()];
                match sock.recv_from(buf) {
                    Ok((len, addr)) => {
                        let next_slot = peers.len();
                        let slot = *peer_index.entry(addr).or_insert(next_slot);
                        if slot == next_slot {
                            peers.push(addr);
                        }
                        meta.push((slot, len));
                    }
                    Err(e) if polling::is_not_ready(&e) => break,
                    Err(e) => return Err(e),
                }
            }
            if meta.len() >= cfg.batch_target || meta.len() >= cfg.max_batch {
                break;
            }
            let age = opened.elapsed();
            if age >= win.window {
                break;
            }
            if meta.len() > before {
                dry_spins = 0; // still arriving — keep gathering
                continue;
            }
            dry_spins += 1;
            if dry_spins >= DRY_SPINS {
                break; // nothing in flight: dispatch what we have
            }
            std::thread::yield_now();
        }
        if meta.is_empty() {
            continue; // spurious wakeup
        }
        wait_hist.record(opened.elapsed().as_nanos() as u64);
        let t0 = Instant::now();
        let datagrams: Vec<(usize, &[u8])> = meta
            .iter()
            .enumerate()
            .map(|(i, &(slot, len))| (slot, &arena[i][..len]))
            .collect();
        replies.clear();
        server.process_batch(&datagrams, &mut replies);
        // Single flush pass.
        for (slot, bytes) in &replies {
            send_all(sock, bytes, peers[*slot])?;
        }
        win.observe(t0.elapsed(), cfg);
    }
    Ok(())
}

/// `send_to` with a retry on transient tx-queue pressure (rare on
/// loopback; UDP never blocks on the receiver).
fn send_all(sock: &UdpSocket, bytes: &[u8], to: SocketAddr) -> io::Result<()> {
    loop {
        match sock.send_to(bytes, to) {
            Ok(_) => return Ok(()),
            Err(e) if polling::is_not_ready(&e) => std::thread::yield_now(),
            Err(e) => return Err(e),
        }
    }
}

// ----- TCP stream transport -----

/// What a TCP connection's reader thread reports to the serve loop.
enum TcpEvent {
    /// One complete frame, re-framed to the same bytes a datagram would
    /// carry, so [`BrokerServer::process_batch`] runs one decode path.
    Frame(usize, Vec<u8>),
    /// The peer sent an oversized length prefix — protocol error; the
    /// connection is dropped and the frame counted against `bad_frames`.
    Bad(usize),
    /// EOF or a transport error; the connection is gone.
    Closed(usize),
}

/// Bound on buffered frames between the reader threads and the serve
/// loop — backpressure: readers stop pulling from their sockets when the
/// serve loop falls this far behind.
const TCP_EVENT_BOUND: usize = 4096;

/// The TCP I/O stage behind the same [`BrokerServer`] state machine:
/// one blocking reader thread per accepted connection turns the byte
/// stream into frames via [`read_frame`] (so requests bigger than any
/// UDP datagram work end-to-end — the stream transport's whole point),
/// the serve loop gathers frames across connections under the same
/// adaptive batch window as [`serve`], and replies flush back on the
/// accepting thread in arrival order.
///
/// An oversized length prefix surfaces as `InvalidData` in the reader,
/// counts one bad frame, and drops the connection — the stream cannot be
/// resynchronized after a framing violation.
///
/// # Errors
/// Listener errors other than the would-block family.
pub fn serve_tcp(
    server: &mut BrokerServer,
    listener: &TcpListener,
    stop: &AtomicBool,
    cfg: &ServeConfig,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let (tx, rx) = mpsc::sync_channel::<TcpEvent>(TCP_EVENT_BOUND);
    let mut conns: Vec<Option<TcpStream>> = Vec::new();
    let mut readers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut batch: Vec<(usize, Vec<u8>)> = Vec::new();
    let mut replies: Vec<(usize, Vec<u8>)> = Vec::new();
    let mut win = BatchWindow::new(cfg);
    let wait_hist = telemetry::histogram("brokerd.batch_wait_ns");

    while !stop.load(Ordering::Relaxed) {
        accept_pending(listener, &tx, &mut conns, &mut readers)?;
        // Wait for the first frame of the next batch.
        let first = match rx.recv_timeout(cfg.wait_timeout) {
            Ok(ev) => ev,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break, // unreachable: tx held
        };
        let opened = Instant::now();
        batch.clear();
        handle_tcp_event(first, server, &mut conns, &mut batch);
        loop {
            // Drain whatever the readers already queued.
            while batch.len() < cfg.max_batch {
                match rx.try_recv() {
                    Ok(ev) => handle_tcp_event(ev, server, &mut conns, &mut batch),
                    Err(_) => break,
                }
            }
            if batch.len() >= cfg.batch_target || batch.len() >= cfg.max_batch {
                break;
            }
            let age = opened.elapsed();
            if age >= win.window {
                break;
            }
            match rx.recv_timeout((win.window - age).max(MIN_POLL)) {
                Ok(ev) => handle_tcp_event(ev, server, &mut conns, &mut batch),
                Err(mpsc::RecvTimeoutError::Timeout) => break,
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        if batch.is_empty() {
            continue; // only control events (bad frame / close) arrived
        }
        wait_hist.record(opened.elapsed().as_nanos() as u64);
        let t0 = Instant::now();
        let datagrams: Vec<(usize, &[u8])> = batch
            .iter()
            .map(|(slot, b)| (*slot, b.as_slice()))
            .collect();
        replies.clear();
        server.process_batch(&datagrams, &mut replies);
        for (slot, bytes) in &replies {
            // Reply bytes are already length-prefixed frames (the exact
            // bytes `write_frame` would emit — one framing for datagram
            // and stream transports).
            let ok = conns[*slot]
                .as_mut()
                .is_some_and(|stream| stream.write_all(bytes).is_ok());
            if !ok {
                conns[*slot] = None;
            }
        }
        win.observe(t0.elapsed(), cfg);
    }
    // Unblock the reader threads (they sit in blocking reads), then reap.
    for conn in conns.iter().flatten() {
        let _ = conn.shutdown(Shutdown::Both);
    }
    drop(rx);
    for h in readers {
        let _ = h.join();
    }
    Ok(())
}

/// Accept every connection currently queued on the (nonblocking)
/// listener, spawning a blocking reader thread per connection.
fn accept_pending(
    listener: &TcpListener,
    tx: &mpsc::SyncSender<TcpEvent>,
    conns: &mut Vec<Option<TcpStream>>,
    readers: &mut Vec<std::thread::JoinHandle<()>>,
) -> io::Result<()> {
    loop {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let id = conns.len();
                stream.set_nodelay(true).ok();
                let mut read_half = stream.try_clone()?;
                let tx = tx.clone();
                readers.push(
                    std::thread::Builder::new()
                        .name(format!("brokerd-tcp-{id}"))
                        .spawn(move || loop {
                            match read_frame(&mut read_half) {
                                Ok(payload) => {
                                    if tx.send(TcpEvent::Frame(id, frame(&payload))).is_err() {
                                        break;
                                    }
                                }
                                Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                                    let _ = tx.send(TcpEvent::Bad(id));
                                    break;
                                }
                                Err(_) => {
                                    let _ = tx.send(TcpEvent::Closed(id));
                                    break;
                                }
                            }
                        })
                        .expect("spawn tcp reader"),
                );
                conns.push(Some(stream));
            }
            Err(e) if polling::is_not_ready(&e) => return Ok(()),
            Err(e) => return Err(e),
        }
    }
}

fn handle_tcp_event(
    ev: TcpEvent,
    server: &mut BrokerServer,
    conns: &mut [Option<TcpStream>],
    batch: &mut Vec<(usize, Vec<u8>)>,
) {
    match ev {
        TcpEvent::Frame(id, bytes) => batch.push((id, bytes)),
        TcpEvent::Bad(id) => {
            server.bad_frame();
            if let Some(conn) = conns[id].take() {
                let _ = conn.shutdown(Shutdown::Both);
            }
        }
        TcpEvent::Closed(id) => conns[id] = None,
    }
}

// ----- Deterministic population + load generator -----

/// The deterministic key population shared by the server and every load
/// generator: the same seed path as `exp_broker` (CA from `[0xCA; 32]`,
/// broker keys, telco keys, then one `UeKeys` per subscriber off one
/// `SimRng`), so a server and a client started with the same `--seed`
/// and `--n` agree on every identity without exchanging state.
pub struct Population {
    /// The certificate authority.
    pub ca: CertificateAuthority,
    /// Broker keys (name [`BROKER_NAME`]).
    pub broker: BrokerKeys,
    /// The forwarding bTelco's keys (name [`TELCO_NAME`]).
    pub telco: TelcoKeys,
    /// Subscriber UE keys, in provisioning order.
    pub ues: Vec<UeKeys>,
}

/// Build the deterministic population for `seed` with `n_ues` subscribers.
#[must_use]
pub fn population(seed: u64, n_ues: usize) -> Population {
    let mut rng = SimRng::new(seed);
    let ca = CertificateAuthority::from_seed([0xCA; 32]);
    let broker = BrokerKeys::generate(BROKER_NAME, &ca, &mut rng);
    let telco = TelcoKeys::generate(TELCO_NAME, &ca, &mut rng);
    let ues = (0..n_ues).map(|_| UeKeys::generate(&mut rng)).collect();
    Population {
        ca,
        broker,
        telco,
        ues,
    }
}

impl Population {
    /// An inline (pool-less) server over this population, with every UE
    /// provisioned.
    #[must_use]
    pub fn server(&self, rng: SimRng) -> BrokerServer {
        self.server_with_workers(rng, 0)
    }

    /// A server over this population backed by `workers` crypto threads
    /// (0 = inline), with every UE provisioned.
    #[must_use]
    pub fn server_with_workers(&self, rng: SimRng, workers: usize) -> BrokerServer {
        let mut server = BrokerServer::with_workers(
            BrokerServerConfig {
                keys: self.broker.clone(),
                ca: self.ca.public_key(),
            },
            rng,
            workers,
        );
        for ue in &self.ues {
            let (sign_pk, encrypt_pk) = ue.public();
            server.provision(ue.identity(), sign_pk, encrypt_pk, 50_000_000);
        }
        server
    }
}

/// Pre-build `burst` framed `AuthReq` datagrams round-robining over the
/// given UEs (each request carries a fresh nonce, so every one is
/// accepted exactly once). Building costs real crypto (a UE seal+sign
/// and a bTelco sign per request), which is why the load generator
/// builds *before* the timed window opens.
#[must_use]
pub fn build_requests(
    pop: &Population,
    ues: &[usize],
    burst: usize,
    rng: &mut SimRng,
) -> Vec<Vec<u8>> {
    let broker_epk = pop.broker.encrypt.public_key();
    (0..burst)
        .map(|i| {
            let ue = &pop.ues[ues[i % ues.len()]];
            let (req_u, _nonce) =
                sap::ue_build_request(ue, BROKER_NAME, &broker_epk, pop.telco.identity(), rng);
            let req_t = sap::telco_wrap_request(
                &pop.telco,
                req_u,
                QosCap {
                    max_mbr_bps: 100_000_000,
                    qci_supported: vec![9],
                    li_capable: true,
                },
            );
            frame(
                &BrokerWire::AuthReq {
                    req_id: i as u64,
                    req_t: req_t.encode(),
                }
                .encode(),
            )
        })
        .collect()
}

/// Load-generator client configuration.
pub struct ClientConfig {
    /// Server address.
    pub server: SocketAddr,
    /// Maximum requests in flight. `1` is strict ping-pong — the
    /// single-request-per-batch baseline the batching win is measured
    /// against.
    pub window: usize,
    /// Re-send a request with no reply after this long (UDP only; the
    /// stream transport is reliable and never retransmits).
    pub retransmit_after: Duration,
    /// Give up entirely after this long.
    pub deadline: Duration,
    /// Telemetry histogram receiving per-request latency, microseconds.
    pub rtt_hist: String,
}

/// What one load-generator client observed.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientOutcome {
    /// Requests answered `AuthOk`.
    pub ok: u64,
    /// Requests answered `AuthErr` (e.g. a retransmit racing its own
    /// original reply gets refused as a replay — the auth was served).
    pub refused: u64,
    /// Datagrams re-sent after the retransmit timeout.
    pub retransmits: u64,
    /// Requests still unanswered at the deadline.
    pub lost: u64,
}

/// Drive one client: pump `requests` through a bounded window over its
/// own UDP socket, retransmitting on timeout, until every request is
/// answered or the deadline passes.
///
/// # Errors
/// Socket setup or I/O errors other than the would-block family.
pub fn run_client(cfg: &ClientConfig, requests: &[Vec<u8>]) -> io::Result<ClientOutcome> {
    let sock = UdpSocket::bind(("127.0.0.1", 0))?;
    sock.connect(cfg.server)?;
    // Blocking socket with a short read timeout: the timeout bounds how
    // stale the retransmit scan can get.
    sock.set_read_timeout(Some(cfg.retransmit_after.min(Duration::from_millis(5))))?;
    let hist = telemetry::histogram(cfg.rtt_hist.clone());

    let mut outcome = ClientOutcome::default();
    let mut outstanding: HashMap<u64, (usize, Instant)> = HashMap::new();
    let mut next = 0usize;
    let mut done = 0usize;
    let mut buf = vec![0u8; RECV_BUF_LEN];
    let start = Instant::now();
    while done < requests.len() {
        if start.elapsed() > cfg.deadline {
            outcome.lost = (requests.len() - done) as u64;
            break;
        }
        // Top up the window.
        while outstanding.len() < cfg.window && next < requests.len() {
            sock.send(&requests[next])?;
            outstanding.insert(next as u64, (next, Instant::now()));
            next += 1;
        }
        match sock.recv(&mut buf) {
            Ok(n) => {
                let Ok(payload) = unframe(&buf[..n]) else {
                    continue;
                };
                let (req_id, ok) = match BrokerWire::decode(payload) {
                    Some(BrokerWire::AuthOk { req_id, .. }) => (req_id, true),
                    Some(BrokerWire::AuthErr { req_id, .. }) => (req_id, false),
                    _ => continue,
                };
                if let Some((_, sent)) = outstanding.remove(&req_id) {
                    hist.record(sent.elapsed().as_micros() as u64);
                    if ok {
                        outcome.ok += 1;
                    } else {
                        outcome.refused += 1;
                    }
                    done += 1;
                }
            }
            Err(e) if polling::is_not_ready(&e) => {}
            Err(e) => return Err(e),
        }
        // Retransmit anything stale.
        let now = Instant::now();
        for (&req_id, (idx, sent)) in &mut outstanding {
            if now.duration_since(*sent) >= cfg.retransmit_after {
                sock.send(&requests[*idx])?;
                *sent = now;
                outcome.retransmits += 1;
                let _ = req_id;
            }
        }
    }
    Ok(outcome)
}

/// Drive one client over a TCP stream: pump `requests` through a bounded
/// window, reading replies with [`read_frame`]. The transport is
/// reliable, so there is no retransmit path — an unanswered request past
/// the deadline counts as lost.
///
/// # Errors
/// Connection setup or I/O errors other than the timeout family.
pub fn run_client_tcp(cfg: &ClientConfig, requests: &[Vec<u8>]) -> io::Result<ClientOutcome> {
    let mut stream = TcpStream::connect(cfg.server)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(cfg.deadline.max(Duration::from_millis(1))))?;
    let hist = telemetry::histogram(cfg.rtt_hist.clone());

    let mut outcome = ClientOutcome::default();
    let mut outstanding: HashMap<u64, Instant> = HashMap::new();
    let mut next = 0usize;
    let mut done = 0usize;
    let start = Instant::now();
    while done < requests.len() {
        if start.elapsed() > cfg.deadline {
            outcome.lost = (requests.len() - done) as u64;
            break;
        }
        // Top up the window. The pre-built request buffers are already
        // length-prefixed frames — the same bytes `write_frame` emits.
        while outstanding.len() < cfg.window && next < requests.len() {
            stream.write_all(&requests[next])?;
            outstanding.insert(next as u64, Instant::now());
            next += 1;
        }
        match read_frame(&mut stream) {
            Ok(payload) => {
                let (req_id, ok) = match BrokerWire::decode(&payload) {
                    Some(BrokerWire::AuthOk { req_id, .. }) => (req_id, true),
                    Some(BrokerWire::AuthErr { req_id, .. }) => (req_id, false),
                    _ => continue,
                };
                if let Some(sent) = outstanding.remove(&req_id) {
                    hist.record(sent.elapsed().as_micros() as u64);
                    if ok {
                        outcome.ok += 1;
                    } else {
                        outcome.refused += 1;
                    }
                    done += 1;
                }
            }
            Err(e) if polling::is_not_ready(&e) => {
                outcome.lost = (requests.len() - done) as u64;
                break;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(outcome)
}

/// Send one `Report` frame over an existing framed byte stream — used by
/// the TCP smoke test to prove frames far larger than any UDP datagram
/// survive the stream transport end-to-end.
///
/// # Errors
/// Underlying stream write errors.
pub fn send_report_tcp(stream: &mut TcpStream, session_id: u64, sealed: &[u8]) -> io::Result<()> {
    let payload = BrokerWire::Report {
        session_id,
        from_ue: true,
        sealed: Bytes::copy_from_slice(sealed),
    }
    .encode();
    write_frame(stream, &payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn served_world(n_ues: usize) -> (Population, BrokerServer) {
        let pop = population(7, n_ues);
        let server = pop.server(SimRng::new(99));
        (pop, server)
    }

    #[test]
    fn single_request_roundtrips_through_process_batch() {
        let (pop, mut server) = served_world(1);
        let mut rng = SimRng::new(11);
        let reqs = build_requests(&pop, &[0], 1, &mut rng);
        let mut out = Vec::new();
        server.process_batch(&[(0, &reqs[0])], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(server.counters.served_auths, 1);
        let payload = unframe(&out[0].1).expect("framed reply");
        let Some(BrokerWire::AuthOk { req_id: 0, reply }) = BrokerWire::decode(payload) else {
            panic!("expected AuthOk");
        };
        let reply = sap::BrokerReply::decode(&reply).expect("reply decodes");
        let t_body = sap::telco_verify_reply(&pop.telco, &pop.ca.public_key(), &reply)
            .expect("telco verifies");
        assert_eq!(t_body.session_id, 1);
    }

    #[test]
    fn cross_connection_batch_serves_every_client() {
        let (pop, mut server) = served_world(8);
        let mut rng = SimRng::new(12);
        // 4 "connections", 2 requests each, pooled into one batch.
        let per_client: Vec<Vec<Vec<u8>>> = (0..4)
            .map(|c| build_requests(&pop, &[2 * c, 2 * c + 1], 2, &mut rng))
            .collect();
        let mut datagrams = Vec::new();
        for (c, reqs) in per_client.iter().enumerate() {
            for r in reqs {
                datagrams.push((c, r.as_slice()));
            }
        }
        let mut out = Vec::new();
        server.process_batch(&datagrams, &mut out);
        assert_eq!(server.counters.served_auths, 8);
        assert_eq!(server.counters.auth_errs, 0);
        assert_eq!(out.len(), 8);
        // Replies are routed back to the right client slots.
        let mut per_slot = [0u32; 4];
        for (slot, _) in &out {
            per_slot[*slot] += 1;
        }
        assert_eq!(per_slot, [2, 2, 2, 2]);
    }

    #[test]
    fn replayed_datagram_refused_with_nonce_mismatch() {
        let (pop, mut server) = served_world(1);
        let mut rng = SimRng::new(13);
        let reqs = build_requests(&pop, &[0], 1, &mut rng);
        let mut out = Vec::new();
        server.process_batch(&[(0, &reqs[0]), (0, &reqs[0])], &mut out);
        assert_eq!(server.counters.served_auths, 1);
        assert_eq!(server.counters.auth_errs, 1);
        let payload = unframe(&out[1].1).unwrap();
        let Some(BrokerWire::AuthErr { code, .. }) = BrokerWire::decode(payload) else {
            panic!("replay must be refused");
        };
        assert_eq!(code, sap::SapError::NonceMismatch as u8);
    }

    #[test]
    fn one_bad_signature_does_not_poison_the_pooled_batch() {
        let (pop, mut server) = served_world(3);
        let mut rng = SimRng::new(14);
        let good = build_requests(&pop, &[0, 1], 2, &mut rng);
        // Corrupt the UE signature inside a third request: flip a byte
        // in the framed bytes past the headers. Decode still succeeds,
        // signature verification must not.
        let mut evil = build_requests(&pop, &[2], 1, &mut rng).remove(0);
        let idx = evil.len() - 100;
        evil[idx] ^= 0x40;
        let mut out = Vec::new();
        server.process_batch(&[(0, &good[0]), (1, &evil), (2, &good[1])], &mut out);
        // The two good requests are served despite the pooled batch
        // failing; the bad one gets an attributed error.
        assert_eq!(server.counters.served_auths, 2);
        assert_eq!(server.counters.auth_errs, 1);
    }

    #[test]
    fn unknown_subscriber_attributed_exactly() {
        let (pop, server) = served_world(2);
        // Provision only UE 0 on a fresh server: requests from UE 1 are
        // structurally fine but unknown.
        let mut server2 = {
            let mut s = BrokerServer::new(
                BrokerServerConfig {
                    keys: pop.broker.clone(),
                    ca: pop.ca.public_key(),
                },
                SimRng::new(98),
            );
            let (spk, epk) = pop.ues[0].public();
            s.provision(pop.ues[0].identity(), spk, epk, 50_000_000);
            s
        };
        let mut rng = SimRng::new(15);
        let reqs = build_requests(&pop, &[1], 1, &mut rng);
        let mut out = Vec::new();
        server2.process_batch(&[(0, &reqs[0])], &mut out);
        let payload = unframe(&out[0].1).unwrap();
        let Some(BrokerWire::AuthErr { code, .. }) = BrokerWire::decode(payload) else {
            panic!("unknown subscriber must be refused");
        };
        assert_eq!(code, sap::SapError::UnknownUser as u8);
        drop(server);
    }

    #[test]
    fn garbage_and_reports_counted_not_served() {
        let (pop, mut server) = served_world(1);
        let report = frame(
            &BrokerWire::Report {
                session_id: 1,
                from_ue: true,
                sealed: Bytes::from_static(b"sealed"),
            }
            .encode(),
        );
        let mut out = Vec::new();
        server.process_batch(&[(0, b"not a frame".as_slice()), (0, &report)], &mut out);
        assert!(out.is_empty());
        assert_eq!(server.counters.bad_frames, 1);
        assert_eq!(server.counters.wire_reports, 1);
        drop(pop);
    }

    /// End-to-end over a real loopback UDP socket: serve loop thread +
    /// one pipelined client.
    #[test]
    fn serve_loop_end_to_end_over_loopback() {
        let pop = population(21, 4);
        let mut server = pop.server(SimRng::new(97));
        let sock = UdpSocket::bind("127.0.0.1:0").expect("bind");
        let addr = sock.local_addr().unwrap();
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let stop2 = std::sync::Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            serve(&mut server, &sock, &stop2, &ServeConfig::default()).expect("serve");
            server
        });

        let mut rng = SimRng::new(22);
        let requests = build_requests(&pop, &[0, 1, 2, 3], 24, &mut rng);
        let outcome = run_client(
            &ClientConfig {
                server: addr,
                window: 8,
                retransmit_after: Duration::from_millis(250),
                deadline: Duration::from_secs(30),
                rtt_hist: "test.brokerd.rtt_us".to_string(),
            },
            &requests,
        )
        .expect("client");
        stop.store(true, Ordering::Relaxed);
        let server = handle.join().expect("server thread");
        assert_eq!(outcome.lost, 0, "no request may go unanswered");
        assert_eq!(outcome.ok + outcome.refused, 24);
        assert!(outcome.ok >= 1);
        assert_eq!(server.counters.bad_frames, 0);
        assert_eq!(
            server.counters.served_auths, 24,
            "every distinct nonce authorizes exactly once"
        );
    }

    /// End-to-end over a real loopback TCP stream with a pooled server:
    /// windowed client, plus a Report frame far larger than the UDP
    /// receive buffer to prove the stream transport's point.
    #[test]
    fn serve_tcp_end_to_end_over_loopback() {
        let pop = population(23, 4);
        let mut server = pop.server_with_workers(SimRng::new(96), 2);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            serve_tcp(&mut server, &listener, &stop2, &ServeConfig::default()).expect("serve_tcp");
            server
        });

        // A huge Report first: 3x the UDP receive buffer, impossible to
        // carry in one datagram of the UDP transport.
        let mut reporter = TcpStream::connect(addr).expect("connect");
        let big = vec![0x5a_u8; 3 * RECV_BUF_LEN];
        send_report_tcp(&mut reporter, 1, &big).expect("report");

        let mut rng = SimRng::new(24);
        let requests = build_requests(&pop, &[0, 1, 2, 3], 24, &mut rng);
        let outcome = run_client_tcp(
            &ClientConfig {
                server: addr,
                window: 8,
                retransmit_after: Duration::from_millis(250),
                deadline: Duration::from_secs(30),
                rtt_hist: "test.brokerd.tcp_rtt_us".to_string(),
            },
            &requests,
        )
        .expect("tcp client");
        // The report has no reply; give its frame time to land before
        // stopping (it shares the server with the auth traffic).
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            std::thread::sleep(Duration::from_millis(5));
            if Instant::now() > deadline {
                break;
            }
            if telemetry::counter("brokerd.wire_reports").get() > 0 {
                break;
            }
        }
        stop.store(true, Ordering::Relaxed);
        let server = handle.join().expect("server thread");
        assert_eq!(outcome.lost, 0, "no request may go unanswered");
        assert_eq!(outcome.ok, 24, "fresh nonces all authorize over TCP");
        assert_eq!(server.counters.bad_frames, 0);
        assert_eq!(server.counters.served_auths, 24);
        assert_eq!(
            server.counters.wire_reports, 1,
            "the oversized-for-UDP report frame must arrive intact"
        );
    }

    /// An oversized length prefix on a TCP stream counts one bad frame
    /// and drops only that connection; the server keeps serving.
    #[test]
    fn tcp_oversized_prefix_drops_connection_not_server() {
        let pop = population(25, 1);
        let mut server = pop.server(SimRng::new(95));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            serve_tcp(&mut server, &listener, &stop2, &ServeConfig::default()).expect("serve_tcp");
            server
        });

        let mut evil = TcpStream::connect(addr).expect("connect");
        evil.write_all(&u32::MAX.to_be_bytes())
            .expect("evil prefix");
        // A well-behaved client on its own connection is unaffected.
        let mut rng = SimRng::new(26);
        let requests = build_requests(&pop, &[0], 4, &mut rng);
        let outcome = run_client_tcp(
            &ClientConfig {
                server: addr,
                window: 2,
                retransmit_after: Duration::from_millis(250),
                deadline: Duration::from_secs(30),
                rtt_hist: "test.brokerd.tcp_evil_rtt_us".to_string(),
            },
            &requests,
        )
        .expect("tcp client");
        stop.store(true, Ordering::Relaxed);
        let server = handle.join().expect("server thread");
        assert_eq!(outcome.ok, 4);
        assert_eq!(outcome.lost, 0);
        assert_eq!(server.counters.bad_frames, 1, "hostile prefix counted");
        drop(evil);
    }
}
