//! `brokerd` as a real wire service: the reusable server core behind the
//! `brokerd` daemon binary.
//!
//! The paper's central deployment claim (§3, §5) is that the broker
//! "needs no cellular infrastructure" — it is an ordinary online service
//! behind a socket, deployed like Magma's Orc8r in the cloud. This module
//! is that service in miniature, and the SimBricks-style host/sim
//! boundary for the repo: the same SAP protocol code the simulator runs
//! ([`crate::sap`], [`crate::brokerd::BrokerWire`]) served over loopback
//! UDP against the wall clock.
//!
//! Three layers, all allocation-conscious and `std`-only (no tokio — the
//! registry is offline; readiness comes from the `polling` shim):
//!
//! * [`BrokerServer`] — the transport-agnostic request processor. Its
//!   perf core is **cross-connection batch verification**: a whole
//!   readiness batch of datagrams is decoded first, every request's
//!   structural/policy prechecks run ([`sap::broker_precheck`]), and then
//!   *all* pending signatures — three per request, across every client —
//!   go through one [`verify_batch`] call. The Ed25519 batch equation
//!   amortizes its doubling chain over the whole batch, so per-request
//!   verify cost falls as offered load rises; the FIFO verifier-key
//!   caches in `cellbricks-crypto` are process-global, hence shared
//!   server-wide across connections by construction. Failures fall back
//!   per-request (batch-of-3, then sequential) so error attribution is
//!   bit-identical to the simulated broker's.
//! * [`serve`] — the nonblocking readiness loop over a [`UdpSocket`]:
//!   wait for readability, drain datagrams until `WouldBlock` into
//!   reusable buffers (so batch size grows with offered load), process
//!   the batch, then write every reply in a single flush pass.
//! * [`run_client`] — the load-generator client: pre-built requests
//!   ([`build_requests`]), a bounded pipeline window, timeout-driven
//!   retransmit, and per-request latency recorded into a telemetry
//!   histogram.
//!
//! What is and is not shared with the sim-side [`crate::brokerd::Brokerd`]
//! is deliberate: the wire format ([`BrokerWire`]), the protocol core
//! (`sap::broker_precheck`/`broker_grant`/`broker_authenticate_sequential`),
//! the subscriber record shape and the bounded anti-replay window are the
//! same code; the event-loop integration, billing/reputation state and
//! fault injection remain sim-only. Traffic reports arriving on the wire
//! are counted and dropped — billing ingest stays simulated (DESIGN §13).

use crate::brokerd::{BrokerWire, SubscriberRecord, NONCE_WINDOW_CAP};
use crate::principal::{BrokerKeys, Identity, TelcoKeys, UeKeys};
use crate::sap::{self, AuthReqT, QosCap, SubscriberEntry};
use bytes::Bytes;
use cellbricks_crypto::cert::CertificateAuthority;
use cellbricks_crypto::ed25519::{verify_batch, BatchItem, VerifyingKey};
use cellbricks_crypto::sealed::open_batch;
use cellbricks_crypto::x25519::X25519PublicKey;
use cellbricks_net::wire::{frame, unframe};
use cellbricks_sim::SimRng;
use cellbricks_telemetry as telemetry;
use polling::Poller;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// The canonical broker name every helper in this module provisions
/// under — the same name `exp_broker` uses, so the deterministic seed
/// path produces interoperable key material.
pub const BROKER_NAME: &str = "broker.example";

/// The bTelco identity the load generator forwards requests as.
pub const TELCO_NAME: &str = "tower-1.example";

/// Wire-server configuration.
pub struct BrokerServerConfig {
    /// Broker keys + certificate.
    pub keys: BrokerKeys,
    /// The CA all certificates chain to.
    pub ca: VerifyingKey,
}

/// Plain mirrors of the server-loop telemetry, cheap to read in tests
/// and printed by the daemon on shutdown. The telemetry registry carries
/// the same values under `brokerd.*` / `core.brokerd.bad_frames`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireCounters {
    /// Authorizations granted and answered with `AuthOk`.
    pub served_auths: u64,
    /// Requests answered with `AuthErr` (bad signature, policy, replay…).
    pub auth_errs: u64,
    /// Datagrams that failed framing or `BrokerWire` decoding.
    pub bad_frames: u64,
    /// Well-formed `Report` frames (counted, then dropped — billing
    /// ingest stays sim-side).
    pub wire_reports: u64,
    /// Well-formed frames that are not requests (`AuthOk`/`AuthErr`
    /// arriving at the server).
    pub unexpected_frames: u64,
    /// Readiness batches processed (including request-free ones).
    pub batches: u64,
}

/// The transport-agnostic `brokerd` request processor: subscriber DB,
/// bounded anti-replay window, session-id allocator, and the
/// cross-connection batched verify path.
pub struct BrokerServer {
    cfg: BrokerServerConfig,
    subscribers: HashMap<Identity, SubscriberRecord>,
    seen_nonces: HashSet<[u8; 16]>,
    nonce_order: VecDeque<[u8; 16]>,
    next_session: u64,
    next_alias: u64,
    rng: SimRng,
    /// Server-loop counters (also exported as telemetry).
    pub counters: WireCounters,
    /// Scratch reused across batches: decoded requests awaiting verify.
    pending: Vec<PendingAuth>,
}

/// One decoded `AuthReq` of the current batch, between decode and verify.
struct PendingAuth {
    slot: usize,
    req_id: u64,
    req: AuthReqT,
}

impl BrokerServer {
    /// A fresh server with an empty subscriber DB.
    #[must_use]
    pub fn new(cfg: BrokerServerConfig, rng: SimRng) -> Self {
        Self {
            cfg,
            subscribers: HashMap::new(),
            seen_nonces: HashSet::new(),
            nonce_order: VecDeque::new(),
            next_session: 1,
            next_alias: 1,
            rng,
            counters: WireCounters::default(),
            pending: Vec::new(),
        }
    }

    /// Provision a subscriber (same contract as the simulated broker).
    pub fn provision(
        &mut self,
        id: Identity,
        sign_pk: VerifyingKey,
        encrypt_pk: X25519PublicKey,
        plan_mbr_bps: u64,
    ) {
        let alias = self.next_alias;
        self.next_alias += 1;
        self.subscribers.insert(
            id,
            SubscriberRecord {
                sign_pk,
                encrypt_pk,
                plan_mbr_bps,
                alias,
            },
        );
    }

    /// Number of provisioned subscribers.
    #[must_use]
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// Record a nonce; `false` means replay. FIFO-bounded exactly like
    /// the simulated broker's window ([`NONCE_WINDOW_CAP`]).
    fn insert_nonce(&mut self, nonce: [u8; 16]) -> bool {
        if !self.seen_nonces.insert(nonce) {
            return false;
        }
        self.nonce_order.push_back(nonce);
        if self.nonce_order.len() > NONCE_WINDOW_CAP {
            if let Some(oldest) = self.nonce_order.pop_front() {
                self.seen_nonces.remove(&oldest);
            }
        }
        true
    }

    fn bad_frame(&mut self) {
        self.counters.bad_frames += 1;
        telemetry::counter("core.brokerd.bad_frames").inc();
    }

    /// Process one readiness batch of raw datagrams. Each entry is
    /// `(client slot, datagram bytes)`; replies are appended to `out` as
    /// `(client slot, framed reply bytes)` for the caller's flush pass.
    ///
    /// The batch is processed in three phases — decode everything, run
    /// every precheck, then verify **all** pending signatures in one
    /// Ed25519 batch spanning every client — so signature cost amortizes
    /// across connections. A failed pooled batch degrades per-request
    /// (batch-of-3, then sequential) preserving exact error attribution.
    pub fn process_batch(&mut self, datagrams: &[(usize, &[u8])], out: &mut Vec<(usize, Vec<u8>)>) {
        // Touch the error counter so it registers (at 0) in clean runs.
        let _ = telemetry::counter("core.brokerd.bad_frames");
        self.counters.batches += 1;
        let mut pending = std::mem::take(&mut self.pending);
        pending.clear();

        // Phase 1: frame + wire decode.
        for &(slot, dgram) in datagrams {
            let Ok(payload) = unframe(dgram) else {
                self.bad_frame();
                continue;
            };
            match BrokerWire::decode(payload) {
                Some(BrokerWire::AuthReq { req_id, req_t }) => match AuthReqT::decode(&req_t) {
                    Some(req) => pending.push(PendingAuth { slot, req_id, req }),
                    None => {
                        // Same code the simulated broker returns for an
                        // undecodable authReqT.
                        self.push_err(out, slot, req_id, sap::SapError::Malformed as u8);
                    }
                },
                Some(BrokerWire::Report { .. }) => {
                    self.counters.wire_reports += 1;
                    telemetry::counter("brokerd.wire_reports").inc();
                }
                Some(_) => {
                    self.counters.unexpected_frames += 1;
                    telemetry::counter("brokerd.unexpected_frames").inc();
                }
                None => self.bad_frame(),
            }
        }
        telemetry::histogram("brokerd.batch_size").record(pending.len() as u64);

        // Phase 2: structural/policy prechecks, collecting batch
        // material. The expensive unseal of every request's authVec is
        // pooled into one `open_batch` so the per-open field inversions
        // collapse into a single shared inversion across the batch.
        let pre: Vec<Option<Identity>> = pending
            .iter()
            .map(|p| sap::broker_precheck_pre_open(&self.cfg.keys, &p.req))
            .collect();
        let boxes: Vec<&cellbricks_crypto::SealedBox> = pending
            .iter()
            .zip(&pre)
            .filter(|(_, id_t)| id_t.is_some())
            .map(|(p, _)| &p.req.req_u.sealed_vec)
            .collect();
        let mut opened = open_batch(&self.cfg.keys.encrypt, &boxes).into_iter();
        let self_id = self.cfg.keys.identity();
        let prechecked: Vec<Option<(sap::AuthVec, SubscriberEntry, sap::AuthBatchMaterial)>> =
            pending
                .iter()
                .zip(&pre)
                .map(|(p, pre_id)| {
                    let id_t = (*pre_id)?;
                    let vec_bytes = opened.next().expect("one open per precheck").ok()?;
                    sap::broker_precheck_post_open(
                        self_id,
                        &self.cfg.ca,
                        &p.req,
                        id_t,
                        &vec_bytes,
                        &|id| self.lookup(id),
                        &|_| true,
                    )
                })
                .collect();

        // Phase 3: one pooled verify across every connection's requests.
        let pooled_ok = {
            let items: Vec<BatchItem<'_>> = prechecked
                .iter()
                .flatten()
                .flat_map(|(_, _, material)| material.items())
                .collect();
            verify_batch(&items)
        };

        // Phase 4a: decide each request in arrival order — nonce replay
        // checks must observe earlier requests of the same batch — and
        // stage the authorized grants.
        enum Outcome {
            Grant,
            Refuse(u8),
        }
        let mut outcomes: Vec<(usize, u64, Outcome)> = Vec::with_capacity(pending.len());
        let mut granted: Vec<(usize, sap::AuthVec, SubscriberEntry, u64)> = Vec::new();
        for (i, (p, checked)) in pending.iter().zip(prechecked).enumerate() {
            match checked {
                Some((vec, entry, material)) => {
                    let verified = pooled_ok || verify_batch(&material.items());
                    if verified {
                        if self.insert_nonce(vec.nonce) {
                            let session_id = self.next_session;
                            self.next_session += 1;
                            granted.push((i, vec, entry, session_id));
                            outcomes.push((p.slot, p.req_id, Outcome::Grant));
                        } else {
                            let code = sap::SapError::NonceMismatch as u8;
                            outcomes.push((p.slot, p.req_id, Outcome::Refuse(code)));
                        }
                    } else {
                        // Some signature in this request is bad; the
                        // sequential path names which one.
                        let code = self.attribute_failure(&p.req);
                        outcomes.push((p.slot, p.req_id, Outcome::Refuse(code)));
                    }
                }
                None => {
                    let code = self.attribute_failure(&p.req);
                    outcomes.push((p.slot, p.req_id, Outcome::Refuse(code)));
                }
            }
        }

        // Phase 4b: grant every authorized request at once, pooling the
        // seal and signature field inversions across the batch. Replies
        // are byte-identical to per-request `broker_grant` (same rng
        // draws, same order).
        let jobs: Vec<sap::GrantJob<'_>> = granted
            .iter()
            .map(|(i, vec, entry, session_id)| sap::GrantJob {
                req: &pending[*i].req,
                vec,
                entry,
                session_id: *session_id,
            })
            .collect();
        let replies = sap::broker_grant_batch(&self.cfg.keys, &jobs, &mut self.rng);
        drop(jobs);

        // Phase 4c: emit replies and refusals in arrival order.
        let mut replies = replies.into_iter();
        for (slot, req_id, outcome) in outcomes {
            match outcome {
                Outcome::Grant => {
                    let (reply, _qos, _ss) = replies.next().expect("one reply per grant");
                    self.push_ok(out, slot, req_id, reply.encode());
                }
                Outcome::Refuse(code) => self.push_err(out, slot, req_id, code),
            }
        }
        self.pending = pending;
    }

    fn lookup(&self, id: Identity) -> Option<SubscriberEntry> {
        self.subscribers.get(&id).map(|rec| SubscriberEntry {
            sign_pk: rec.sign_pk,
            encrypt_pk: rec.encrypt_pk,
            plan_mbr_bps: rec.plan_mbr_bps,
            suspect: false,
            alias: rec.alias,
            lawful_intercept: false,
        })
    }

    /// Exact error attribution via the seed-order sequential checks —
    /// the same path the simulated broker falls back to.
    fn attribute_failure(&mut self, req: &AuthReqT) -> u8 {
        match sap::broker_authenticate_sequential(
            &self.cfg.keys,
            &self.cfg.ca,
            req,
            &|id| self.lookup(id),
            &|_| true,
        ) {
            // Unreachable in practice (precheck/verify failed), but if
            // the sequential path accepts, refusing would be wrong —
            // report the one error that cannot mint a session here.
            Ok(_) => sap::SapError::PolicyRefused as u8,
            Err(e) => e as u8,
        }
    }

    fn push_ok(&mut self, out: &mut Vec<(usize, Vec<u8>)>, slot: usize, req_id: u64, reply: Bytes) {
        self.counters.served_auths += 1;
        telemetry::counter("brokerd.served_auths").inc();
        out.push((slot, frame(&BrokerWire::AuthOk { req_id, reply }.encode())));
    }

    fn push_err(&mut self, out: &mut Vec<(usize, Vec<u8>)>, slot: usize, req_id: u64, code: u8) {
        self.counters.auth_errs += 1;
        telemetry::counter("brokerd.auth_rejected").inc();
        out.push((slot, frame(&BrokerWire::AuthErr { req_id, code }.encode())));
    }
}

/// Tuning for the [`serve`] readiness loop.
pub struct ServeConfig {
    /// Readiness-wait slice between checks of the stop flag.
    pub wait_timeout: Duration,
    /// Maximum datagrams drained per wakeup (bounds reply latency and
    /// the receive arena).
    pub max_batch: usize,
    /// Consecutive dry drain passes (each preceded by a scheduler yield)
    /// tolerated before the gathered batch is processed. The readiness
    /// wakeup fires on the *first* datagram, typically before the peers
    /// that became runnable during the previous batch have sent theirs —
    /// on a single core the batch would otherwise collapse to size 1.
    /// Yielding hands them the core; clients that have nothing to send
    /// are blocked on their own sockets, so a dry pass costs well under
    /// a microsecond.
    pub gather_yields: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            wait_timeout: Duration::from_millis(20),
            max_batch: 1024,
            gather_yields: 3,
        }
    }
}

/// Per-datagram receive-buffer size. Any legitimate control-plane frame
/// fits with a wide margin; a larger datagram is truncated by the kernel
/// and then rejected by [`unframe`] as a bad frame.
const RECV_BUF_LEN: usize = 8 * 1024;

/// The nonblocking readiness loop: wait for readability, drain the
/// socket until `WouldBlock` into reusable buffers (one arena slot per
/// datagram, grown once and reused forever), process the whole batch
/// through [`BrokerServer::process_batch`], then write every reply in a
/// single flush pass. Runs until `stop` is set.
///
/// # Errors
/// Any socket error other than the would-block/timed-out family.
pub fn serve(
    server: &mut BrokerServer,
    sock: &UdpSocket,
    stop: &AtomicBool,
    cfg: &ServeConfig,
) -> io::Result<()> {
    sock.set_nonblocking(true)?;
    let poller = Poller::new()?;
    let mut peers: Vec<SocketAddr> = Vec::new();
    let mut peer_index: HashMap<SocketAddr, usize> = HashMap::new();
    let mut arena: Vec<Vec<u8>> = Vec::new();
    let mut meta: Vec<(usize, usize)> = Vec::new(); // (slot, len) per datagram
    let mut replies: Vec<(usize, Vec<u8>)> = Vec::new();

    while !stop.load(Ordering::Relaxed) {
        if !poller.wait_readable(sock, Some(cfg.wait_timeout))? {
            continue;
        }
        // Gather a batch: drain until WouldBlock, then yield the core a
        // few times and drain again so peers that were about to send get
        // to enqueue theirs. Batch size grows with offered load, which
        // is exactly what amortizes the signature and syscall costs
        // downstream.
        meta.clear();
        let mut dry_passes = 0u32;
        'gather: while meta.len() < cfg.max_batch {
            let before = meta.len();
            while meta.len() < cfg.max_batch {
                if arena.len() == meta.len() {
                    arena.push(vec![0u8; RECV_BUF_LEN]);
                }
                let buf = &mut arena[meta.len()];
                match sock.recv_from(buf) {
                    Ok((len, addr)) => {
                        let next_slot = peers.len();
                        let slot = *peer_index.entry(addr).or_insert(next_slot);
                        if slot == next_slot {
                            peers.push(addr);
                        }
                        meta.push((slot, len));
                    }
                    Err(e) if polling::is_not_ready(&e) => break,
                    Err(e) => return Err(e),
                }
            }
            if meta.len() > before {
                dry_passes = 0;
            } else {
                // Spurious wakeup (no datagram at all): back to waiting.
                if meta.is_empty() {
                    break 'gather;
                }
                dry_passes += 1;
                if dry_passes > cfg.gather_yields {
                    break 'gather;
                }
            }
            std::thread::yield_now();
        }
        if meta.is_empty() {
            continue;
        }
        let datagrams: Vec<(usize, &[u8])> = meta
            .iter()
            .enumerate()
            .map(|(i, &(slot, len))| (slot, &arena[i][..len]))
            .collect();
        replies.clear();
        server.process_batch(&datagrams, &mut replies);
        // Single flush pass.
        for (slot, bytes) in &replies {
            send_all(sock, bytes, peers[*slot])?;
        }
    }
    Ok(())
}

/// `send_to` with a retry on transient tx-queue pressure (rare on
/// loopback; UDP never blocks on the receiver).
fn send_all(sock: &UdpSocket, bytes: &[u8], to: SocketAddr) -> io::Result<()> {
    loop {
        match sock.send_to(bytes, to) {
            Ok(_) => return Ok(()),
            Err(e) if polling::is_not_ready(&e) => std::thread::yield_now(),
            Err(e) => return Err(e),
        }
    }
}

// ----- Deterministic population + load generator -----

/// The deterministic key population shared by the server and every load
/// generator: the same seed path as `exp_broker` (CA from `[0xCA; 32]`,
/// broker keys, telco keys, then one `UeKeys` per subscriber off one
/// `SimRng`), so a server and a client started with the same `--seed`
/// and `--n` agree on every identity without exchanging state.
pub struct Population {
    /// The certificate authority.
    pub ca: CertificateAuthority,
    /// Broker keys (name [`BROKER_NAME`]).
    pub broker: BrokerKeys,
    /// The forwarding bTelco's keys (name [`TELCO_NAME`]).
    pub telco: TelcoKeys,
    /// Subscriber UE keys, in provisioning order.
    pub ues: Vec<UeKeys>,
}

/// Build the deterministic population for `seed` with `n_ues` subscribers.
#[must_use]
pub fn population(seed: u64, n_ues: usize) -> Population {
    let mut rng = SimRng::new(seed);
    let ca = CertificateAuthority::from_seed([0xCA; 32]);
    let broker = BrokerKeys::generate(BROKER_NAME, &ca, &mut rng);
    let telco = TelcoKeys::generate(TELCO_NAME, &ca, &mut rng);
    let ues = (0..n_ues).map(|_| UeKeys::generate(&mut rng)).collect();
    Population {
        ca,
        broker,
        telco,
        ues,
    }
}

impl Population {
    /// A server over this population, with every UE provisioned.
    #[must_use]
    pub fn server(&self, rng: SimRng) -> BrokerServer {
        let mut server = BrokerServer::new(
            BrokerServerConfig {
                keys: self.broker.clone(),
                ca: self.ca.public_key(),
            },
            rng,
        );
        for ue in &self.ues {
            let (sign_pk, encrypt_pk) = ue.public();
            server.provision(ue.identity(), sign_pk, encrypt_pk, 50_000_000);
        }
        server
    }
}

/// Pre-build `burst` framed `AuthReq` datagrams round-robining over the
/// given UEs (each request carries a fresh nonce, so every one is
/// accepted exactly once). Building costs real crypto (a UE seal+sign
/// and a bTelco sign per request), which is why the load generator
/// builds *before* the timed window opens.
#[must_use]
pub fn build_requests(
    pop: &Population,
    ues: &[usize],
    burst: usize,
    rng: &mut SimRng,
) -> Vec<Vec<u8>> {
    let broker_epk = pop.broker.encrypt.public_key();
    (0..burst)
        .map(|i| {
            let ue = &pop.ues[ues[i % ues.len()]];
            let (req_u, _nonce) =
                sap::ue_build_request(ue, BROKER_NAME, &broker_epk, pop.telco.identity(), rng);
            let req_t = sap::telco_wrap_request(
                &pop.telco,
                req_u,
                QosCap {
                    max_mbr_bps: 100_000_000,
                    qci_supported: vec![9],
                    li_capable: true,
                },
            );
            frame(
                &BrokerWire::AuthReq {
                    req_id: i as u64,
                    req_t: req_t.encode(),
                }
                .encode(),
            )
        })
        .collect()
}

/// Load-generator client configuration.
pub struct ClientConfig {
    /// Server address.
    pub server: SocketAddr,
    /// Maximum requests in flight. `1` is strict ping-pong — the
    /// single-request-per-batch baseline the batching win is measured
    /// against.
    pub window: usize,
    /// Re-send a request with no reply after this long.
    pub retransmit_after: Duration,
    /// Give up entirely after this long.
    pub deadline: Duration,
    /// Telemetry histogram receiving per-request latency, microseconds.
    pub rtt_hist: String,
}

/// What one load-generator client observed.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientOutcome {
    /// Requests answered `AuthOk`.
    pub ok: u64,
    /// Requests answered `AuthErr` (e.g. a retransmit racing its own
    /// original reply gets refused as a replay — the auth was served).
    pub refused: u64,
    /// Datagrams re-sent after the retransmit timeout.
    pub retransmits: u64,
    /// Requests still unanswered at the deadline.
    pub lost: u64,
}

/// Drive one client: pump `requests` through a bounded window over its
/// own UDP socket, retransmitting on timeout, until every request is
/// answered or the deadline passes.
///
/// # Errors
/// Socket setup or I/O errors other than the would-block family.
pub fn run_client(cfg: &ClientConfig, requests: &[Vec<u8>]) -> io::Result<ClientOutcome> {
    let sock = UdpSocket::bind(("127.0.0.1", 0))?;
    sock.connect(cfg.server)?;
    // Blocking socket with a short read timeout: the timeout bounds how
    // stale the retransmit scan can get.
    sock.set_read_timeout(Some(cfg.retransmit_after.min(Duration::from_millis(5))))?;
    let hist = telemetry::histogram(cfg.rtt_hist.clone());

    let mut outcome = ClientOutcome::default();
    let mut outstanding: HashMap<u64, (usize, Instant)> = HashMap::new();
    let mut next = 0usize;
    let mut done = 0usize;
    let mut buf = vec![0u8; RECV_BUF_LEN];
    let start = Instant::now();
    while done < requests.len() {
        if start.elapsed() > cfg.deadline {
            outcome.lost = (requests.len() - done) as u64;
            break;
        }
        // Top up the window.
        while outstanding.len() < cfg.window && next < requests.len() {
            sock.send(&requests[next])?;
            outstanding.insert(next as u64, (next, Instant::now()));
            next += 1;
        }
        match sock.recv(&mut buf) {
            Ok(n) => {
                let Ok(payload) = unframe(&buf[..n]) else {
                    continue;
                };
                let (req_id, ok) = match BrokerWire::decode(payload) {
                    Some(BrokerWire::AuthOk { req_id, .. }) => (req_id, true),
                    Some(BrokerWire::AuthErr { req_id, .. }) => (req_id, false),
                    _ => continue,
                };
                if let Some((_, sent)) = outstanding.remove(&req_id) {
                    hist.record(sent.elapsed().as_micros() as u64);
                    if ok {
                        outcome.ok += 1;
                    } else {
                        outcome.refused += 1;
                    }
                    done += 1;
                }
            }
            Err(e) if polling::is_not_ready(&e) => {}
            Err(e) => return Err(e),
        }
        // Retransmit anything stale.
        let now = Instant::now();
        for (&req_id, (idx, sent)) in &mut outstanding {
            if now.duration_since(*sent) >= cfg.retransmit_after {
                sock.send(&requests[*idx])?;
                *sent = now;
                outcome.retransmits += 1;
                let _ = req_id;
            }
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn served_world(n_ues: usize) -> (Population, BrokerServer) {
        let pop = population(7, n_ues);
        let server = pop.server(SimRng::new(99));
        (pop, server)
    }

    #[test]
    fn single_request_roundtrips_through_process_batch() {
        let (pop, mut server) = served_world(1);
        let mut rng = SimRng::new(11);
        let reqs = build_requests(&pop, &[0], 1, &mut rng);
        let mut out = Vec::new();
        server.process_batch(&[(0, &reqs[0])], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(server.counters.served_auths, 1);
        let payload = unframe(&out[0].1).expect("framed reply");
        let Some(BrokerWire::AuthOk { req_id: 0, reply }) = BrokerWire::decode(payload) else {
            panic!("expected AuthOk");
        };
        let reply = sap::BrokerReply::decode(&reply).expect("reply decodes");
        let t_body = sap::telco_verify_reply(&pop.telco, &pop.ca.public_key(), &reply)
            .expect("telco verifies");
        assert_eq!(t_body.session_id, 1);
    }

    #[test]
    fn cross_connection_batch_serves_every_client() {
        let (pop, mut server) = served_world(8);
        let mut rng = SimRng::new(12);
        // 4 "connections", 2 requests each, pooled into one batch.
        let per_client: Vec<Vec<Vec<u8>>> = (0..4)
            .map(|c| build_requests(&pop, &[2 * c, 2 * c + 1], 2, &mut rng))
            .collect();
        let mut datagrams = Vec::new();
        for (c, reqs) in per_client.iter().enumerate() {
            for r in reqs {
                datagrams.push((c, r.as_slice()));
            }
        }
        let mut out = Vec::new();
        server.process_batch(&datagrams, &mut out);
        assert_eq!(server.counters.served_auths, 8);
        assert_eq!(server.counters.auth_errs, 0);
        assert_eq!(out.len(), 8);
        // Replies are routed back to the right client slots.
        let mut per_slot = [0u32; 4];
        for (slot, _) in &out {
            per_slot[*slot] += 1;
        }
        assert_eq!(per_slot, [2, 2, 2, 2]);
    }

    #[test]
    fn replayed_datagram_refused_with_nonce_mismatch() {
        let (pop, mut server) = served_world(1);
        let mut rng = SimRng::new(13);
        let reqs = build_requests(&pop, &[0], 1, &mut rng);
        let mut out = Vec::new();
        server.process_batch(&[(0, &reqs[0]), (0, &reqs[0])], &mut out);
        assert_eq!(server.counters.served_auths, 1);
        assert_eq!(server.counters.auth_errs, 1);
        let payload = unframe(&out[1].1).unwrap();
        let Some(BrokerWire::AuthErr { code, .. }) = BrokerWire::decode(payload) else {
            panic!("replay must be refused");
        };
        assert_eq!(code, sap::SapError::NonceMismatch as u8);
    }

    #[test]
    fn one_bad_signature_does_not_poison_the_pooled_batch() {
        let (pop, mut server) = served_world(3);
        let mut rng = SimRng::new(14);
        let good = build_requests(&pop, &[0, 1], 2, &mut rng);
        // Corrupt the UE signature inside a third request: flip a byte
        // in the framed bytes past the headers. Decode still succeeds,
        // signature verification must not.
        let mut evil = build_requests(&pop, &[2], 1, &mut rng).remove(0);
        let idx = evil.len() - 100;
        evil[idx] ^= 0x40;
        let mut out = Vec::new();
        server.process_batch(&[(0, &good[0]), (1, &evil), (2, &good[1])], &mut out);
        // The two good requests are served despite the pooled batch
        // failing; the bad one gets an attributed error.
        assert_eq!(server.counters.served_auths, 2);
        assert_eq!(server.counters.auth_errs, 1);
    }

    #[test]
    fn unknown_subscriber_attributed_exactly() {
        let (pop, server) = served_world(2);
        // Provision only UE 0 on a fresh server: requests from UE 1 are
        // structurally fine but unknown.
        let mut server2 = {
            let mut s = BrokerServer::new(
                BrokerServerConfig {
                    keys: pop.broker.clone(),
                    ca: pop.ca.public_key(),
                },
                SimRng::new(98),
            );
            let (spk, epk) = pop.ues[0].public();
            s.provision(pop.ues[0].identity(), spk, epk, 50_000_000);
            s
        };
        let mut rng = SimRng::new(15);
        let reqs = build_requests(&pop, &[1], 1, &mut rng);
        let mut out = Vec::new();
        server2.process_batch(&[(0, &reqs[0])], &mut out);
        let payload = unframe(&out[0].1).unwrap();
        let Some(BrokerWire::AuthErr { code, .. }) = BrokerWire::decode(payload) else {
            panic!("unknown subscriber must be refused");
        };
        assert_eq!(code, sap::SapError::UnknownUser as u8);
        drop(server);
    }

    #[test]
    fn garbage_and_reports_counted_not_served() {
        let (pop, mut server) = served_world(1);
        let report = frame(
            &BrokerWire::Report {
                session_id: 1,
                from_ue: true,
                sealed: Bytes::from_static(b"sealed"),
            }
            .encode(),
        );
        let mut out = Vec::new();
        server.process_batch(&[(0, b"not a frame".as_slice()), (0, &report)], &mut out);
        assert!(out.is_empty());
        assert_eq!(server.counters.bad_frames, 1);
        assert_eq!(server.counters.wire_reports, 1);
        drop(pop);
    }

    /// End-to-end over a real loopback UDP socket: serve loop thread +
    /// one pipelined client.
    #[test]
    fn serve_loop_end_to_end_over_loopback() {
        let pop = population(21, 4);
        let mut server = pop.server(SimRng::new(97));
        let sock = UdpSocket::bind("127.0.0.1:0").expect("bind");
        let addr = sock.local_addr().unwrap();
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let stop2 = std::sync::Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            serve(&mut server, &sock, &stop2, &ServeConfig::default()).expect("serve");
            server
        });

        let mut rng = SimRng::new(22);
        let requests = build_requests(&pop, &[0, 1, 2, 3], 24, &mut rng);
        let outcome = run_client(
            &ClientConfig {
                server: addr,
                window: 8,
                retransmit_after: Duration::from_millis(250),
                deadline: Duration::from_secs(30),
                rtt_hist: "test.brokerd.rtt_us".to_string(),
            },
            &requests,
        )
        .expect("client");
        stop.store(true, Ordering::Relaxed);
        let server = handle.join().expect("server thread");
        assert_eq!(outcome.lost, 0, "no request may go unanswered");
        assert_eq!(outcome.ok + outcome.refused, 24);
        assert!(outcome.ok >= 1);
        assert_eq!(server.counters.bad_frames, 0);
        assert_eq!(
            server.counters.served_auths, 24,
            "every distinct nonce authorizes exactly once"
        );
    }
}
