//! Key bundles and identities for the three CellBricks principals.
//!
//! Every principal holds an Ed25519 signing pair and an X25519 encryption
//! pair. Broker and bTelco keys carry CA certificates; UE key pairs are
//! issued by the user's broker and live only in the broker's subscriber
//! database (paper §4.1: "no certificates are needed for U's public
//! keys").

use cellbricks_crypto::cert::{Certificate, CertificateAuthority, Role};
use cellbricks_crypto::ed25519::{SigningKey, VerifyingKey};
use cellbricks_crypto::sha2::sha256;
use cellbricks_crypto::x25519::{X25519PublicKey, X25519SecretKey};
use cellbricks_sim::SimRng;

/// A 16-byte principal identifier — the digest of the owner's public key
/// (or, for brokers/bTelcos, of their subject name).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Identity(pub [u8; 16]);

impl Identity {
    /// Identity from a public key (used for UEs).
    #[must_use]
    pub fn of_key(key: &VerifyingKey) -> Identity {
        let d = sha256(&key.0);
        let mut id = [0u8; 16];
        id.copy_from_slice(&d[..16]);
        Identity(id)
    }

    /// Identity from a subject name (used for brokers and bTelcos, whose
    /// names are bound to keys via certificates).
    #[must_use]
    pub fn of_name(name: &str) -> Identity {
        let d = sha256(name.as_bytes());
        let mut id = [0u8; 16];
        id.copy_from_slice(&d[..16]);
        Identity(id)
    }
}

/// A UE's key bundle (issued by its broker; provisioned on the SIM).
#[derive(Clone)]
pub struct UeKeys {
    /// Signing key.
    pub sign: SigningKey,
    /// Encryption key.
    pub encrypt: X25519SecretKey,
}

impl UeKeys {
    /// Generate a bundle.
    #[must_use]
    pub fn generate(rng: &mut SimRng) -> UeKeys {
        UeKeys {
            sign: SigningKey::from_seed(rng.seed32()),
            encrypt: X25519SecretKey(rng.seed32()),
        }
    }

    /// The UE's identity (digest of its signing key).
    #[must_use]
    pub fn identity(&self) -> Identity {
        Identity::of_key(&self.sign.verifying_key())
    }

    /// Public halves, as stored in the broker's subscriber DB.
    #[must_use]
    pub fn public(&self) -> (VerifyingKey, X25519PublicKey) {
        (self.sign.verifying_key(), self.encrypt.public_key())
    }
}

/// A broker's key bundle plus its CA certificate.
#[derive(Clone)]
pub struct BrokerKeys {
    /// Subject name (e.g. "broker.example").
    pub name: String,
    /// Signing key.
    pub sign: SigningKey,
    /// Encryption key.
    pub encrypt: X25519SecretKey,
    /// CA certificate over the signing key.
    pub cert: Certificate,
}

impl BrokerKeys {
    /// Generate and certify a broker key bundle.
    #[must_use]
    pub fn generate(name: &str, ca: &CertificateAuthority, rng: &mut SimRng) -> BrokerKeys {
        let sign = SigningKey::from_seed(rng.seed32());
        let cert = ca.issue(name, Role::Broker, sign.verifying_key(), u64::MAX);
        BrokerKeys {
            name: name.to_string(),
            sign,
            encrypt: X25519SecretKey(rng.seed32()),
            cert,
        }
    }

    /// The broker's identity.
    #[must_use]
    pub fn identity(&self) -> Identity {
        Identity::of_name(&self.name)
    }
}

/// A bTelco's key bundle plus its CA certificate.
#[derive(Clone)]
pub struct TelcoKeys {
    /// Subject name (e.g. "tower-17.btelco.example").
    pub name: String,
    /// Signing key.
    pub sign: SigningKey,
    /// Encryption key.
    pub encrypt: X25519SecretKey,
    /// CA certificate over the signing key.
    pub cert: Certificate,
}

impl TelcoKeys {
    /// Generate and certify a bTelco key bundle.
    #[must_use]
    pub fn generate(name: &str, ca: &CertificateAuthority, rng: &mut SimRng) -> TelcoKeys {
        let sign = SigningKey::from_seed(rng.seed32());
        let cert = ca.issue(name, Role::BTelco, sign.verifying_key(), u64::MAX);
        TelcoKeys {
            name: name.to_string(),
            sign,
            encrypt: X25519SecretKey(rng.seed32()),
            cert,
        }
    }

    /// The bTelco's identity.
    #[must_use]
    pub fn identity(&self) -> Identity {
        Identity::of_name(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellbricks_crypto::cert::CertificateError;

    #[test]
    fn identities_are_stable_and_distinct() {
        let mut rng = SimRng::new(1);
        let a = UeKeys::generate(&mut rng);
        let b = UeKeys::generate(&mut rng);
        assert_eq!(a.identity(), a.identity());
        assert_ne!(a.identity(), b.identity());
        assert_ne!(Identity::of_name("x"), Identity::of_name("y"));
    }

    #[test]
    fn telco_cert_verifies_with_role() {
        let ca = CertificateAuthority::from_seed([1; 32]);
        let mut rng = SimRng::new(2);
        let t = TelcoKeys::generate("tower-1.example", &ca, &mut rng);
        assert!(t.cert.verify(&ca.public_key(), Role::BTelco, 0).is_ok());
        assert_eq!(
            t.cert.verify(&ca.public_key(), Role::Broker, 0),
            Err(CertificateError::WrongRole)
        );
    }

    #[test]
    fn broker_cert_verifies() {
        let ca = CertificateAuthority::from_seed([1; 32]);
        let mut rng = SimRng::new(3);
        let b = BrokerKeys::generate("broker.example", &ca, &mut rng);
        assert!(b.cert.verify(&ca.public_key(), Role::Broker, 0).is_ok());
        assert_eq!(b.identity(), Identity::of_name("broker.example"));
    }
}
