//! SAP — the Secure Attachment Protocol (paper §4.1, Figs. 2–4).
//!
//! One round trip establishes mutual trust among three parties that share
//! no prior relationship with each other (only U↔B do):
//!
//! 1. **U → T** `authReqU`: the UE seals its authentication vector
//!    `(idU, idB, idT, nonce)` to the broker's public key and signs the
//!    sealed bytes. The bTelco never sees a cleartext UE identifier —
//!    it "cannot act as an IMSI catcher".
//! 2. **T → B** `authReqT`: the bTelco forwards `authReqU` augmented with
//!    its QoS capabilities and certificate, signed under its key.
//! 3. **B → T** `brokerReply`: the broker authenticates both U (signature
//!    against the subscriber DB) and T (certificate + signature), decides
//!    authorization, and returns two sealed sub-responses — `authRespT`
//!    (the shared secret `ss` and `qosInfo`, the bTelco's *irrefutable
//!    proof of authorization*) and `authRespU` (`ss` plus the UE's nonce,
//!    proving freshness to the UE).
//! 4. **T → U** the bTelco relays `authRespU`.
//!
//! `ss` then plays the role of KASME in the unmodified EPS key hierarchy
//! (`cellbricks_epc::aka::derive_*`).
//!
//! This module is pure protocol: message construction, verification and
//! wire codecs. The endpoints live in [`crate::ue`], [`crate::btelco`]
//! and [`crate::brokerd`].

use crate::principal::{BrokerKeys, Identity, TelcoKeys, UeKeys};
use bytes::Bytes;
use cellbricks_crypto::cert::{Certificate, Role};
use cellbricks_crypto::ed25519::{sign_batch, verify_batch, BatchItem, Signature, VerifyingKey};
use cellbricks_crypto::sealed::{open, seal, seal_begin_with, seal_finish_batch, SealedBox};
use cellbricks_crypto::x25519::{X25519PublicKey, X25519SecretKey};
use cellbricks_epc::wire::{Reader, Writer};
use cellbricks_sim::SimRng;

/// QoS options a bTelco can enforce (`qosCap` in Fig. 3). Expressed with
/// 3GPP vocabulary: maximum bit rate and supported QCI classes, plus the
/// service parameters the paper folds into the same negotiation —
/// "B and T1 might also negotiate additional features such as the need
/// for lawful intercept" (§3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QosCap {
    /// Highest maximum-bit-rate the bTelco can enforce, bits/s.
    pub max_mbr_bps: u64,
    /// QCI classes the bTelco supports.
    pub qci_supported: Vec<u8>,
    /// Whether this deployment can provision lawful-intercept taps
    /// (TS 33.107-style).
    pub li_capable: bool,
}

/// QoS parameters the broker selects for this attachment (`qosInfo`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QosInfo {
    /// Granted maximum bit rate, bits/s.
    pub mbr_bps: u64,
    /// Granted QCI class.
    pub qci: u8,
    /// The bTelco must provision a lawful-intercept tap for this session
    /// (the broker relays the obligation without learning its basis).
    pub lawful_intercept: bool,
}

/// The UE's authentication vector (Fig. 2: `(idU, idB, idT, n)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AuthVec {
    /// UE identity.
    pub id_u: Identity,
    /// Broker identity.
    pub id_b: Identity,
    /// Target bTelco identity.
    pub id_t: Identity,
    /// Anti-replay nonce, generated at the UE.
    pub nonce: [u8; 16],
}

impl AuthVec {
    fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        w.put_fixed(&self.id_u.0)
            .put_fixed(&self.id_b.0)
            .put_fixed(&self.id_t.0)
            .put_fixed(&self.nonce);
        w.finish()
    }

    fn decode(bytes: &[u8]) -> Option<AuthVec> {
        let mut r = Reader::new(bytes);
        let v = AuthVec {
            id_u: Identity(r.get_fixed()?),
            id_b: Identity(r.get_fixed()?),
            id_t: Identity(r.get_fixed()?),
            nonce: r.get_fixed()?,
        };
        if !r.is_empty() {
            return None;
        }
        Some(v)
    }
}

/// `authReqU`: the sealed, signed request the UE hands the bTelco.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuthReqU {
    /// `authVec` sealed to the broker's encryption key.
    pub sealed_vec: SealedBox,
    /// UE signature over the sealed bytes.
    pub sig: Signature,
    /// Cleartext broker name so the bTelco can route the request.
    pub broker_name: String,
}

impl AuthReqU {
    /// Encode to wire bytes.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        w.put_bytes(&self.sealed_vec.to_bytes())
            .put_fixed(&self.sig.0)
            .put_str(&self.broker_name);
        w.finish()
    }

    /// Decode from wire bytes.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<AuthReqU> {
        let mut r = Reader::new(bytes);
        let sealed = SealedBox::from_bytes(&r.get_bytes()?)?;
        let sig = Signature(r.get_fixed::<64>()?);
        let broker_name = r.get_str()?;
        if !r.is_empty() {
            return None;
        }
        Some(AuthReqU {
            sealed_vec: sealed,
            sig,
            broker_name,
        })
    }
}

fn encode_cert(w: &mut Writer, cert: &Certificate) {
    w.put_str(&cert.subject);
    w.put_u8(match cert.role {
        Role::Broker => 1,
        Role::BTelco => 2,
    });
    w.put_fixed(&cert.key.0);
    w.put_u64(cert.not_after);
    w.put_fixed(&cert.signature.0);
}

fn decode_cert(r: &mut Reader<'_>) -> Option<Certificate> {
    let subject = r.get_str()?;
    let role = match r.get_u8()? {
        1 => Role::Broker,
        2 => Role::BTelco,
        _ => return None,
    };
    let key = VerifyingKey(r.get_fixed()?);
    let not_after = r.get_u64()?;
    let signature = Signature(r.get_fixed::<64>()?);
    Some(Certificate {
        subject,
        role,
        key,
        not_after,
        signature,
    })
}

/// `authReqT`: the bTelco's augmented, signed forward of `authReqU`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuthReqT {
    /// The UE's request, verbatim.
    pub req_u: AuthReqU,
    /// QoS options the bTelco offers.
    pub qos_cap: QosCap,
    /// The bTelco's certificate.
    pub t_cert: Certificate,
    /// The bTelco's encryption public key (for sealing `authRespT`).
    pub t_encrypt_pk: [u8; 32],
    /// bTelco signature over everything above.
    pub sig: Signature,
}

impl AuthReqT {
    fn signed_bytes(
        req_u: &AuthReqU,
        qos_cap: &QosCap,
        t_cert: &Certificate,
        t_encrypt_pk: &[u8; 32],
    ) -> Bytes {
        let mut w = Writer::new();
        w.put_bytes(&req_u.encode());
        w.put_u64(qos_cap.max_mbr_bps);
        w.put_bytes(&qos_cap.qci_supported);
        w.put_u8(u8::from(qos_cap.li_capable));
        encode_cert(&mut w, t_cert);
        w.put_fixed(t_encrypt_pk);
        w.finish()
    }

    /// Encode to wire bytes.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        w.put_bytes(&Self::signed_bytes(
            &self.req_u,
            &self.qos_cap,
            &self.t_cert,
            &self.t_encrypt_pk,
        ))
        .put_fixed(&self.sig.0);
        w.finish()
    }

    /// Decode from wire bytes.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<AuthReqT> {
        let mut outer = Reader::new(bytes);
        let signed = outer.get_bytes()?;
        let sig = Signature(outer.get_fixed::<64>()?);
        if !outer.is_empty() {
            return None;
        }
        let mut r = Reader::new(&signed);
        let req_u = AuthReqU::decode(&r.get_bytes()?)?;
        let max_mbr_bps = r.get_u64()?;
        let qci_supported = r.get_bytes()?;
        let li_capable = r.get_u8()? != 0;
        let t_cert = decode_cert(&mut r)?;
        let t_encrypt_pk = r.get_fixed()?;
        if !r.is_empty() {
            return None;
        }
        Some(AuthReqT {
            req_u,
            qos_cap: QosCap {
                max_mbr_bps,
                qci_supported,
                li_capable,
            },
            t_cert,
            t_encrypt_pk,
            sig,
        })
    }
}

/// The plaintext inside `authRespT`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RespTBody {
    /// A broker-scoped alias for the UE (the bTelco's billing handle —
    /// never the UE's real identity).
    pub ue_alias: u64,
    /// The bTelco this authorization is for.
    pub id_t: Identity,
    /// The shared secret (KASME-equivalent).
    pub ss: [u8; 32],
    /// Granted QoS.
    pub qos: QosInfo,
    /// Billing session identifier.
    pub session_id: u64,
}

/// The plaintext inside `authRespU`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RespUBody {
    /// The UE this response addresses.
    pub id_u: Identity,
    /// The bTelco the UE is now authorized on.
    pub id_t: Identity,
    /// The shared secret (KASME-equivalent).
    pub ss: [u8; 32],
    /// The UE's nonce, echoed (freshness proof).
    pub nonce: [u8; 16],
    /// Billing session identifier.
    pub session_id: u64,
}

/// A sealed-and-signed sub-response (`authRespT` / `authRespU`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedSealed {
    /// Body sealed to the recipient.
    pub sealed: SealedBox,
    /// Broker signature over the sealed bytes.
    pub sig: Signature,
}

impl SignedSealed {
    /// Encode to wire bytes.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        w.put_bytes(&self.sealed.to_bytes()).put_fixed(&self.sig.0);
        w.finish()
    }

    /// Decode from wire bytes.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<SignedSealed> {
        let mut r = Reader::new(bytes);
        let sealed = SealedBox::from_bytes(&r.get_bytes()?)?;
        let sig = Signature(r.get_fixed::<64>()?);
        if !r.is_empty() {
            return None;
        }
        Some(SignedSealed { sealed, sig })
    }
}

/// The broker's reply to the bTelco: both sub-responses plus the
/// broker's certificate (so a bTelco with no prior relationship can
/// verify the broker's signatures against the CA).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BrokerReply {
    /// `authRespT`, sealed to the bTelco.
    pub resp_t: SignedSealed,
    /// `authRespU`, sealed to the UE (opaque to the bTelco).
    pub resp_u: SignedSealed,
    /// The broker's certificate.
    pub b_cert: Certificate,
}

impl BrokerReply {
    /// Encode to wire bytes.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        w.put_bytes(&self.resp_t.encode());
        w.put_bytes(&self.resp_u.encode());
        encode_cert(&mut w, &self.b_cert);
        w.finish()
    }

    /// Decode from wire bytes.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<BrokerReply> {
        let mut r = Reader::new(bytes);
        let resp_t = SignedSealed::decode(&r.get_bytes()?)?;
        let resp_u = SignedSealed::decode(&r.get_bytes()?)?;
        let b_cert = decode_cert(&mut r)?;
        if !r.is_empty() {
            return None;
        }
        Some(BrokerReply {
            resp_t,
            resp_u,
            b_cert,
        })
    }
}

// ----- Protocol steps -----

/// Step 1 (UE): build `authReqU` for bTelco `id_t` (Fig. 2).
/// Returns the request and the nonce to check in the response.
pub fn ue_build_request(
    keys: &UeKeys,
    broker_name: &str,
    broker_encrypt_pk: &X25519PublicKey,
    id_t: Identity,
    rng: &mut SimRng,
) -> (AuthReqU, [u8; 16]) {
    let mut nonce = [0u8; 16];
    rng.fill_bytes(&mut nonce);
    let vec = AuthVec {
        id_u: keys.identity(),
        id_b: Identity::of_name(broker_name),
        id_t,
        nonce,
    };
    let sealed = seal(rng, broker_encrypt_pk, &vec.encode());
    let sig = keys.sign.sign(&sealed.to_bytes());
    (
        AuthReqU {
            sealed_vec: sealed,
            sig,
            broker_name: broker_name.to_string(),
        },
        nonce,
    )
}

/// Step 2 (bTelco): augment and sign the UE's request (Fig. 3, top).
#[must_use]
pub fn telco_wrap_request(keys: &TelcoKeys, req_u: AuthReqU, qos_cap: QosCap) -> AuthReqT {
    let t_encrypt_pk = keys.encrypt.public_key().0;
    let signed = AuthReqT::signed_bytes(&req_u, &qos_cap, &keys.cert, &t_encrypt_pk);
    let sig = keys.sign.sign(&signed);
    AuthReqT {
        req_u,
        qos_cap,
        t_cert: keys.cert.clone(),
        t_encrypt_pk,
        sig,
    }
}

/// Why the broker refused an attachment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SapError {
    /// Malformed message.
    Malformed,
    /// The bTelco's certificate failed verification.
    BadTelcoCert,
    /// The bTelco's signature failed.
    BadTelcoSig,
    /// The request was not addressed to this broker.
    WrongBroker,
    /// The sealed authVec could not be opened.
    SealedVec,
    /// Unknown subscriber.
    UnknownUser,
    /// The UE's signature failed.
    BadUeSig,
    /// The authVec's target doesn't match the forwarding bTelco.
    TelcoMismatch,
    /// Policy refused the attachment (suspect user / bad reputation).
    PolicyRefused,
    /// Response verification failed at the UE or bTelco.
    BadResponse,
    /// The echoed nonce did not match (replay).
    NonceMismatch,
}

/// What the broker needs to know about a subscriber.
#[derive(Clone)]
pub struct SubscriberEntry {
    /// UE signing public key (to verify `authReqU`).
    pub sign_pk: VerifyingKey,
    /// UE encryption public key (to seal `authRespU`).
    pub encrypt_pk: X25519PublicKey,
    /// Subscription cap on MBR, bits/s.
    pub plan_mbr_bps: u64,
    /// On the tamper-suspect list (paper §4.3)?
    pub suspect: bool,
    /// Billing alias handed to bTelcos (never the real identity).
    pub alias: u64,
    /// A lawful-intercept order applies to this subscriber: the serving
    /// bTelco must be able (and told) to provision the tap.
    pub lawful_intercept: bool,
}

/// Step 3 (broker): authenticate U and T, authorize, and build the reply
/// (Fig. 3, bottom). `lookup` resolves a UE identity from the subscriber
/// database; `telco_ok` is the reputation-system admission decision.
///
/// The three Ed25519 checks — the CA's signature on the bTelco
/// certificate, the bTelco's signature on `authReqT`, and the UE's
/// signature on the sealed `authVec` — are folded into a single batch
/// verification ([`verify_batch`]) on the optimistic path. If anything
/// at all fails (a bad signature, but also any structural or policy
/// check), the request is re-run through the sequential seed-order
/// checks so the returned [`SapError`] is exactly the one the
/// unbatched implementation produced. Neither path consumes simulation
/// RNG before the accept decision, so event streams are unchanged.
#[allow(clippy::too_many_arguments)]
pub fn broker_process(
    keys: &BrokerKeys,
    ca: &VerifyingKey,
    req: &AuthReqT,
    lookup: impl Fn(Identity) -> Option<SubscriberEntry>,
    telco_ok: impl Fn(Identity) -> bool,
    session_id: u64,
    rng: &mut SimRng,
) -> Result<(BrokerReply, AuthVec, QosInfo, [u8; 32]), SapError> {
    let (vec, entry) = match broker_authenticate_batched(keys, ca, req, &lookup, &telco_ok) {
        Some(ok) => ok,
        None => broker_authenticate_sequential(keys, ca, req, &lookup, &telco_ok)?,
    };
    let (reply, qos, ss) = broker_grant(keys, req, &vec, &entry, session_id, rng);
    Ok((reply, vec, qos, ss))
}

/// Step 3, second half: the request is authenticated and authorized —
/// pick QoS, mint the shared secret, seal and sign both sub-responses.
/// This is the only part of broker processing that consumes RNG, and it
/// consumes it in exactly the order the combined [`broker_process`]
/// always did, so splitting it out cannot perturb seeded event streams.
///
/// Exposed separately so the `brokerd` wire server can verify a whole
/// readiness batch of requests first (one cross-connection Ed25519
/// batch) and only then grant each one.
#[must_use]
pub fn broker_grant(
    keys: &BrokerKeys,
    req: &AuthReqT,
    vec: &AuthVec,
    entry: &SubscriberEntry,
    session_id: u64,
    rng: &mut SimRng,
) -> (BrokerReply, QosInfo, [u8; 32]) {
    // Grant QoS: the broker picks within the bTelco's capability and the
    // user's plan.
    let qos = QosInfo {
        mbr_bps: entry.plan_mbr_bps.min(req.qos_cap.max_mbr_bps),
        qci: req.qos_cap.qci_supported.first().copied().unwrap_or(9),
        lawful_intercept: entry.lawful_intercept,
    };

    // Fresh shared secret = the session's KASME.
    let ss = rng.seed32();

    let t_body = {
        let mut w = Writer::new();
        w.put_u64(entry.alias)
            .put_fixed(&vec.id_t.0)
            .put_fixed(&ss)
            .put_u64(qos.mbr_bps)
            .put_u8(qos.qci)
            .put_u8(u8::from(qos.lawful_intercept))
            .put_u64(session_id);
        w.finish()
    };
    let sealed_t = seal(rng, &X25519PublicKey(req.t_encrypt_pk), &t_body);
    let resp_t = SignedSealed {
        sig: keys.sign.sign(&sealed_t.to_bytes()),
        sealed: sealed_t,
    };

    let u_body = {
        let mut w = Writer::new();
        w.put_fixed(&vec.id_u.0)
            .put_fixed(&vec.id_t.0)
            .put_fixed(&ss)
            .put_fixed(&vec.nonce)
            .put_u64(session_id);
        w.finish()
    };
    let sealed_u = seal(rng, &entry.encrypt_pk, &u_body);
    let resp_u = SignedSealed {
        sig: keys.sign.sign(&sealed_u.to_bytes()),
        sealed: sealed_u,
    };

    (
        BrokerReply {
            resp_t,
            resp_u,
            b_cert: keys.cert.clone(),
        },
        qos,
        ss,
    )
}

/// One authenticated request awaiting its grant, for
/// [`broker_grant_batch`].
pub struct GrantJob<'a> {
    /// The verified request.
    pub req: &'a AuthReqT,
    /// Its decoded authentication vector.
    pub vec: &'a AuthVec,
    /// The subscriber entry authorizing it.
    pub entry: &'a SubscriberEntry,
    /// Session id to bind into both sub-responses.
    pub session_id: u64,
}

/// The random material one [`broker_grant`] consumes, pre-drawn so the
/// grant's curve work can run on any thread (or several) while the
/// draws themselves stay a single sequential stream on the coordinator.
/// Draw order per job is exactly [`broker_grant`]'s: shared secret,
/// ephemeral-T, ephemeral-U.
pub struct GrantDraws {
    ss: [u8; 32],
    eph_t: X25519SecretKey,
    eph_u: X25519SecretKey,
}

/// Pre-draw the RNG material for `n` grants, in exactly the order
/// [`broker_grant_batch`] (and per-request [`broker_grant`]) consumes
/// it — so `grant_draws` + [`broker_grant_batch_prepared`] is
/// stream-identical and byte-identical to the eager forms.
#[must_use]
pub fn grant_draws(rng: &mut SimRng, n: usize) -> Vec<GrantDraws> {
    (0..n)
        .map(|_| GrantDraws {
            ss: rng.seed32(),
            eph_t: X25519SecretKey::generate(rng),
            eph_u: X25519SecretKey::generate(rng),
        })
        .collect()
}

/// [`broker_grant`] over a whole readiness batch, pooling the expensive
/// field inversions: the four per-request seal inversions collapse into
/// one shared inversion for the batch (`seal_finish_batch`), and the two
/// per-request signature compressions into another (`sign_batch`).
///
/// Per request, RNG is consumed in exactly the order [`broker_grant`]
/// consumes it (ss, ephemeral-T, ephemeral-U) and jobs are staged in
/// slice order, so with the same rng this returns byte-identical replies
/// to granting each job sequentially — the wire server's batched path
/// and the simulator's sequential path cannot diverge.
#[must_use]
pub fn broker_grant_batch(
    keys: &BrokerKeys,
    jobs: &[GrantJob<'_>],
    rng: &mut SimRng,
) -> Vec<(BrokerReply, QosInfo, [u8; 32])> {
    let draws = grant_draws(rng, jobs.len());
    broker_grant_batch_prepared(keys, jobs, &draws)
}

/// The pure (rng-free) half of [`broker_grant_batch`]: all the curve
/// math against pre-drawn [`GrantDraws`]. Splitting a batch into
/// sub-batches and running each through this on a different worker
/// yields byte-identical replies to one big batch — the shared batch
/// inversion computes the same (unique) field inverses either way, and
/// Ed25519 signing is deterministic per item.
///
/// # Panics
/// Panics if `draws` is shorter than `jobs`.
#[must_use]
pub fn broker_grant_batch_prepared(
    keys: &BrokerKeys,
    jobs: &[GrantJob<'_>],
    draws: &[GrantDraws],
) -> Vec<(BrokerReply, QosInfo, [u8; 32])> {
    assert!(draws.len() >= jobs.len(), "one draw per job");
    // Stage A: per-request cheap work — QoS choice, response bodies,
    // seal_begin pairs off the pre-drawn ephemerals.
    let mut staged = Vec::with_capacity(jobs.len());
    let mut bodies = Vec::with_capacity(jobs.len() * 2);
    let mut pendings = Vec::with_capacity(jobs.len() * 2);
    for (job, draw) in jobs.iter().zip(draws) {
        let qos = QosInfo {
            mbr_bps: job.entry.plan_mbr_bps.min(job.req.qos_cap.max_mbr_bps),
            qci: job.req.qos_cap.qci_supported.first().copied().unwrap_or(9),
            lawful_intercept: job.entry.lawful_intercept,
        };
        let ss = draw.ss;
        let t_body = {
            let mut w = Writer::new();
            w.put_u64(job.entry.alias)
                .put_fixed(&job.vec.id_t.0)
                .put_fixed(&ss)
                .put_u64(qos.mbr_bps)
                .put_u8(qos.qci)
                .put_u8(u8::from(qos.lawful_intercept))
                .put_u64(job.session_id);
            w.finish()
        };
        pendings.push(seal_begin_with(
            draw.eph_t.clone(),
            &X25519PublicKey(job.req.t_encrypt_pk),
        ));
        bodies.push(t_body);
        let u_body = {
            let mut w = Writer::new();
            w.put_fixed(&job.vec.id_u.0)
                .put_fixed(&job.vec.id_t.0)
                .put_fixed(&ss)
                .put_fixed(&job.vec.nonce)
                .put_u64(job.session_id);
            w.finish()
        };
        pendings.push(seal_begin_with(draw.eph_u.clone(), &job.entry.encrypt_pk));
        bodies.push(u_body);
        staged.push((qos, ss));
    }

    // Stage B: finish all 2n seals under one shared inversion, then all
    // 2n response signatures under another.
    let body_refs: Vec<&[u8]> = bodies.iter().map(|b| &b[..]).collect();
    let sealed = seal_finish_batch(&pendings, &body_refs);
    let sealed_bytes: Vec<Vec<u8>> = sealed.iter().map(SealedBox::to_bytes).collect();
    let sign_items: Vec<(&cellbricks_crypto::SigningKey, &[u8])> =
        sealed_bytes.iter().map(|b| (&keys.sign, &b[..])).collect();
    let sigs = sign_batch(&sign_items);

    // Stage C: assemble replies in job order.
    let mut sealed_iter = sealed.into_iter();
    let mut sig_iter = sigs.into_iter();
    jobs.iter()
        .zip(staged)
        .map(|(_, (qos, ss))| {
            let resp_t = SignedSealed {
                sealed: sealed_iter.next().expect("staged sealed_t"),
                sig: sig_iter.next().expect("staged sig_t"),
            };
            let resp_u = SignedSealed {
                sealed: sealed_iter.next().expect("staged sealed_u"),
                sig: sig_iter.next().expect("staged sig_u"),
            };
            (
                BrokerReply {
                    resp_t,
                    resp_u,
                    b_cert: keys.cert.clone(),
                },
                qos,
                ss,
            )
        })
        .collect()
}

/// The owned message buffers and (signature, key) pairs for one request's
/// three Ed25519 checks: CA over the bTelco certificate, bTelco over
/// `authReqT`, UE over the sealed `authVec`. Owning the buffers lets a
/// server pool the material of many requests — from different
/// connections — into one [`verify_batch`] call.
pub struct AuthBatchMaterial {
    cert_tbs: Vec<u8>,
    signed: Bytes,
    sealed_bytes: Vec<u8>,
    cert_sig: Signature,
    ca: VerifyingKey,
    req_sig: Signature,
    telco_pk: VerifyingKey,
    ue_sig: Signature,
    ue_pk: VerifyingKey,
}

impl AuthBatchMaterial {
    /// The three [`BatchItem`]s, borrowing this material.
    #[must_use]
    pub fn items(&self) -> [BatchItem<'_>; 3] {
        [
            BatchItem {
                msg: &self.cert_tbs,
                sig: self.cert_sig,
                key: self.ca,
            },
            BatchItem {
                msg: &self.signed,
                sig: self.req_sig,
                key: self.telco_pk,
            },
            BatchItem {
                msg: &self.sealed_bytes,
                sig: self.ue_sig,
                key: self.ue_pk,
            },
        ]
    }
}

/// Step 3, first half: every check on an `authReqT` that does *not*
/// involve a signature — certificate role/expiry, broker addressing,
/// unsealing the `authVec`, subscriber lookup, and admission policy.
/// `None` means something failed; the caller owning error attribution
/// re-runs [`broker_authenticate_sequential`] via [`broker_process`] (or
/// directly) to name the failure.
///
/// On success, returns the decoded `authVec`, the subscriber entry, and
/// the [`AuthBatchMaterial`] whose three signatures still must verify —
/// either alone ([`broker_process`]'s per-request batch) or pooled
/// across many requests by the wire server.
pub fn broker_precheck(
    keys: &BrokerKeys,
    ca: &VerifyingKey,
    req: &AuthReqT,
    lookup: &impl Fn(Identity) -> Option<SubscriberEntry>,
    telco_ok: &impl Fn(Identity) -> bool,
) -> Option<(AuthVec, SubscriberEntry, AuthBatchMaterial)> {
    let id_t = broker_precheck_pre_open(keys, req)?;
    let vec_bytes = open(&keys.encrypt, &req.req_u.sealed_vec).ok()?;
    broker_precheck_post_open(keys.identity(), ca, req, id_t, &vec_bytes, lookup, telco_ok)
}

/// The [`broker_precheck`] checks that precede unsealing the `authVec`:
/// certificate role/expiry and broker addressing. Split out so a wire
/// server can run the expensive `open`s of a whole readiness batch as
/// one [`open_batch`] between the two precheck halves.
pub fn broker_precheck_pre_open(keys: &BrokerKeys, req: &AuthReqT) -> Option<Identity> {
    req.t_cert.check_role_and_expiry(Role::BTelco, 0).ok()?;
    if req.req_u.broker_name != keys.name {
        return None;
    }
    Some(Identity::of_name(&req.t_cert.subject))
}

/// The [`broker_precheck`] checks that follow unsealing: `authVec`
/// decode, identity binding, subscriber lookup, admission policy, and
/// assembling the signature material. `self_id` is the broker's own
/// identity (`keys.identity()`); `id_t` is what
/// [`broker_precheck_pre_open`] returned.
#[allow(clippy::too_many_arguments)]
pub fn broker_precheck_post_open(
    self_id: Identity,
    ca: &VerifyingKey,
    req: &AuthReqT,
    id_t: Identity,
    vec_bytes: &[u8],
    lookup: &impl Fn(Identity) -> Option<SubscriberEntry>,
    telco_ok: &impl Fn(Identity) -> bool,
) -> Option<(AuthVec, SubscriberEntry, AuthBatchMaterial)> {
    let vec = AuthVec::decode(vec_bytes)?;
    if vec.id_b != self_id || vec.id_t != id_t {
        return None;
    }
    let entry = lookup(vec.id_u)?;
    if entry.suspect || !telco_ok(id_t) {
        return None;
    }
    if entry.lawful_intercept && !req.qos_cap.li_capable {
        return None;
    }
    let material = AuthBatchMaterial {
        cert_tbs: req.t_cert.tbs(),
        signed: AuthReqT::signed_bytes(&req.req_u, &req.qos_cap, &req.t_cert, &req.t_encrypt_pk),
        sealed_bytes: req.req_u.sealed_vec.to_bytes(),
        cert_sig: req.t_cert.signature,
        ca: *ca,
        req_sig: req.sig,
        telco_pk: req.t_cert.key,
        ue_sig: req.req_u.sig,
        ue_pk: entry.sign_pk,
    };
    Some((vec, entry, material))
}

/// The optimistic attach path: run every cheap structural and policy
/// check first, then all three signatures as one Ed25519 batch. `None`
/// means "anything failed" — the caller falls back to
/// [`broker_authenticate_sequential`], which owns error attribution.
fn broker_authenticate_batched(
    keys: &BrokerKeys,
    ca: &VerifyingKey,
    req: &AuthReqT,
    lookup: &impl Fn(Identity) -> Option<SubscriberEntry>,
    telco_ok: &impl Fn(Identity) -> bool,
) -> Option<(AuthVec, SubscriberEntry)> {
    let (vec, entry, material) = broker_precheck(keys, ca, req, lookup, telco_ok)?;
    verify_batch(&material.items()).then_some((vec, entry))
}

/// The seed-order checks, one at a time, attributing the first failure.
/// Signature checks go through the verifier-key cache (result-identical
/// to uncached verification). Public because the `brokerd` wire server's
/// fallback path needs the same exact error attribution after a pooled
/// batch check fails.
///
/// # Errors
/// The [`SapError`] naming the first check that failed, in the exact
/// order the seed implementation checked them.
pub fn broker_authenticate_sequential(
    keys: &BrokerKeys,
    ca: &VerifyingKey,
    req: &AuthReqT,
    lookup: &impl Fn(Identity) -> Option<SubscriberEntry>,
    telco_ok: &impl Fn(Identity) -> bool,
) -> Result<(AuthVec, SubscriberEntry), SapError> {
    // Authenticate the bTelco: certificate chain, then signature.
    if req.t_cert.verify_cached(ca, Role::BTelco, 0).is_err() {
        return Err(SapError::BadTelcoCert);
    }
    let signed = AuthReqT::signed_bytes(&req.req_u, &req.qos_cap, &req.t_cert, &req.t_encrypt_pk);
    if !req.t_cert.key.verify_cached(&signed, &req.sig) {
        return Err(SapError::BadTelcoSig);
    }
    let id_t = Identity::of_name(&req.t_cert.subject);

    // Open and authenticate the UE's request.
    if req.req_u.broker_name != keys.name {
        return Err(SapError::WrongBroker);
    }
    let vec_bytes = open(&keys.encrypt, &req.req_u.sealed_vec).map_err(|_| SapError::SealedVec)?;
    let vec = AuthVec::decode(&vec_bytes).ok_or(SapError::Malformed)?;
    if vec.id_b != keys.identity() {
        return Err(SapError::WrongBroker);
    }
    if vec.id_t != id_t {
        // The UE asked for a different bTelco than the one forwarding —
        // a relay / MITM attempt.
        return Err(SapError::TelcoMismatch);
    }
    let entry = lookup(vec.id_u).ok_or(SapError::UnknownUser)?;
    if !entry
        .sign_pk
        .verify_cached(&req.req_u.sealed_vec.to_bytes(), &req.req_u.sig)
    {
        return Err(SapError::BadUeSig);
    }

    // Authorization policy: suspect users and disreputable bTelcos are
    // refused (paper §4.3).
    if entry.suspect || !telco_ok(id_t) {
        return Err(SapError::PolicyRefused);
    }

    // A lawful-intercept order can only be honoured by a capable bTelco;
    // otherwise the attachment must be refused (the obligation cannot be
    // silently dropped).
    if entry.lawful_intercept && !req.qos_cap.li_capable {
        return Err(SapError::PolicyRefused);
    }
    Ok((vec, entry))
}

/// Step 3→4 (bTelco): verify the broker's reply and extract authorization.
///
/// Both signature checks go through the verifier-key cache: a bTelco
/// checks every reply against the same CA and (typically few) broker
/// keys, so the point decompressions amortize across attachments.
pub fn telco_verify_reply(
    keys: &TelcoKeys,
    ca: &VerifyingKey,
    reply: &BrokerReply,
) -> Result<RespTBody, SapError> {
    if reply.b_cert.verify_cached(ca, Role::Broker, 0).is_err() {
        return Err(SapError::BadResponse);
    }
    if !reply
        .b_cert
        .key
        .verify_cached(&reply.resp_t.sealed.to_bytes(), &reply.resp_t.sig)
    {
        return Err(SapError::BadResponse);
    }
    let body = open(&keys.encrypt, &reply.resp_t.sealed).map_err(|_| SapError::BadResponse)?;
    let mut r = Reader::new(&body);
    let parsed = RespTBody {
        ue_alias: r.get_u64().ok_or(SapError::Malformed)?,
        id_t: Identity(r.get_fixed().ok_or(SapError::Malformed)?),
        ss: r.get_fixed().ok_or(SapError::Malformed)?,
        qos: QosInfo {
            mbr_bps: r.get_u64().ok_or(SapError::Malformed)?,
            qci: r.get_u8().ok_or(SapError::Malformed)?,
            lawful_intercept: r.get_u8().ok_or(SapError::Malformed)? != 0,
        },
        session_id: r.get_u64().ok_or(SapError::Malformed)?,
    };
    if parsed.id_t != keys.identity() {
        return Err(SapError::BadResponse);
    }
    Ok(parsed)
}

/// Step 4 (UE): verify `authRespU` (Fig. 2, steps 5–6).
pub fn ue_verify_response(
    keys: &UeKeys,
    broker_sign_pk: &VerifyingKey,
    expected_nonce: &[u8; 16],
    expected_t: Identity,
    resp: &SignedSealed,
) -> Result<RespUBody, SapError> {
    if !broker_sign_pk.verify_cached(&resp.sealed.to_bytes(), &resp.sig) {
        return Err(SapError::BadResponse);
    }
    let body = open(&keys.encrypt, &resp.sealed).map_err(|_| SapError::BadResponse)?;
    let mut r = Reader::new(&body);
    let parsed = RespUBody {
        id_u: Identity(r.get_fixed().ok_or(SapError::Malformed)?),
        id_t: Identity(r.get_fixed().ok_or(SapError::Malformed)?),
        ss: r.get_fixed().ok_or(SapError::Malformed)?,
        nonce: r.get_fixed().ok_or(SapError::Malformed)?,
        session_id: r.get_u64().ok_or(SapError::Malformed)?,
    };
    if parsed.id_u != keys.identity() {
        return Err(SapError::BadResponse);
    }
    if &parsed.nonce != expected_nonce {
        return Err(SapError::NonceMismatch);
    }
    if parsed.id_t != expected_t {
        return Err(SapError::BadResponse);
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellbricks_crypto::cert::CertificateAuthority;

    struct World {
        ca: CertificateAuthority,
        broker: BrokerKeys,
        telco: TelcoKeys,
        ue: UeKeys,
        rng: SimRng,
    }

    fn world() -> World {
        let mut rng = SimRng::new(0xce11);
        let ca = CertificateAuthority::from_seed([0xCA; 32]);
        World {
            broker: BrokerKeys::generate("broker.example", &ca, &mut rng),
            telco: TelcoKeys::generate("tower-1.example", &ca, &mut rng),
            ue: UeKeys::generate(&mut rng),
            ca,
            rng,
        }
    }

    fn entry_for(w: &World) -> SubscriberEntry {
        let (sign_pk, encrypt_pk) = w.ue.public();
        SubscriberEntry {
            sign_pk,
            encrypt_pk,
            plan_mbr_bps: 50_000_000,
            suspect: false,
            alias: 7,
            lawful_intercept: false,
        }
    }

    fn qos_cap() -> QosCap {
        QosCap {
            max_mbr_bps: 100_000_000,
            qci_supported: vec![9, 8],
            li_capable: true,
        }
    }

    // The pooled-inversion grant path must be byte-identical to granting
    // each job through `broker_grant` with the same rng stream.
    #[test]
    fn grant_batch_matches_sequential() {
        let mut w = world();
        let id_t = w.telco.identity();
        let entry = entry_for(&w);
        let lookup = |_: Identity| Some(entry.clone());
        let reqs: Vec<AuthReqT> = (0..3)
            .map(|_| {
                let (req_u, _) = ue_build_request(
                    &w.ue,
                    "broker.example",
                    &w.broker.encrypt.public_key(),
                    id_t,
                    &mut w.rng,
                );
                telco_wrap_request(&w.telco, req_u, qos_cap())
            })
            .collect();
        let auth: Vec<(AuthVec, SubscriberEntry)> = reqs
            .iter()
            .map(|r| {
                broker_authenticate_sequential(&w.broker, &w.ca.public_key(), r, &lookup, &|_| true)
                    .expect("authenticates")
            })
            .collect();
        let mut rng_a = SimRng::new(0x9a9a);
        let mut rng_b = SimRng::new(0x9a9a);
        let seq: Vec<_> = reqs
            .iter()
            .zip(&auth)
            .enumerate()
            .map(|(i, (req, (vec, entry)))| {
                broker_grant(&w.broker, req, vec, entry, 100 + i as u64, &mut rng_a)
            })
            .collect();
        let jobs: Vec<GrantJob<'_>> = reqs
            .iter()
            .zip(&auth)
            .enumerate()
            .map(|(i, (req, (vec, entry)))| GrantJob {
                req,
                vec,
                entry,
                session_id: 100 + i as u64,
            })
            .collect();
        let batch = broker_grant_batch(&w.broker, &jobs, &mut rng_b);
        assert_eq!(batch.len(), seq.len());
        for ((ra, qa, sa), (rb, qb, sb)) in seq.iter().zip(&batch) {
            assert_eq!(ra.encode(), rb.encode());
            assert_eq!(qa, qb);
            assert_eq!(sa, sb);
        }
    }

    /// Run the whole protocol happy path; returns (ue body, telco body).
    fn run_protocol(w: &mut World) -> (RespUBody, RespTBody) {
        let id_t = w.telco.identity();
        let (req_u, nonce) = ue_build_request(
            &w.ue,
            "broker.example",
            &w.broker.encrypt.public_key(),
            id_t,
            &mut w.rng,
        );
        // Wire round trips at every hop.
        let req_u = AuthReqU::decode(&req_u.encode()).unwrap();
        let req_t = telco_wrap_request(&w.telco, req_u, qos_cap());
        let req_t = AuthReqT::decode(&req_t.encode()).unwrap();

        let entry = entry_for(w);
        let (reply, vec, _qos, ss) = broker_process(
            &w.broker,
            &w.ca.public_key(),
            &req_t,
            |id| {
                (id == w.ue.identity()).then_some(SubscriberEntry {
                    sign_pk: entry.sign_pk,
                    encrypt_pk: entry.encrypt_pk,
                    plan_mbr_bps: entry.plan_mbr_bps,
                    suspect: entry.suspect,
                    alias: entry.alias,
                    lawful_intercept: false,
                })
            },
            |_| true,
            1234,
            &mut w.rng,
        )
        .expect("broker authorizes");
        assert_eq!(vec.id_u, w.ue.identity());

        let reply = BrokerReply::decode(&reply.encode()).unwrap();
        let t_body = telco_verify_reply(&w.telco, &w.ca.public_key(), &reply).expect("telco ok");
        let u_body = ue_verify_response(
            &w.ue,
            &w.broker.sign.verifying_key(),
            &nonce,
            id_t,
            &reply.resp_u,
        )
        .expect("ue ok");
        assert_eq!(t_body.ss, ss);
        (u_body, t_body)
    }

    #[test]
    fn happy_path_all_parties_agree_on_ss() {
        let mut w = world();
        let (u_body, t_body) = run_protocol(&mut w);
        assert_eq!(u_body.ss, t_body.ss);
        assert_eq!(u_body.session_id, t_body.session_id);
        assert_eq!(u_body.id_t, w.telco.identity());
        // QoS granted = min(plan, cap).
        assert_eq!(t_body.qos.mbr_bps, 50_000_000);
        assert_eq!(t_body.qos.qci, 9);
    }

    #[test]
    fn telco_never_sees_ue_identity() {
        let mut w = world();
        let id_t = w.telco.identity();
        let (req_u, _) = ue_build_request(
            &w.ue,
            "broker.example",
            &w.broker.encrypt.public_key(),
            id_t,
            &mut w.rng,
        );
        // The UE identity must not appear anywhere in the bytes the
        // bTelco handles (anti-IMSI-catcher, §4.1).
        let wire = req_u.encode();
        let id = w.ue.identity().0;
        assert!(!wire.windows(id.len()).any(|win| win == id));
    }

    #[test]
    fn forged_telco_cert_rejected() {
        let mut w = world();
        let rogue_ca = CertificateAuthority::from_seed([0xBB; 32]);
        let rogue = TelcoKeys::generate("tower-1.example", &rogue_ca, &mut w.rng);
        let (req_u, _) = ue_build_request(
            &w.ue,
            "broker.example",
            &w.broker.encrypt.public_key(),
            rogue.identity(),
            &mut w.rng,
        );
        let req_t = telco_wrap_request(&rogue, req_u, qos_cap());
        let entry = entry_for(&w);
        let err = broker_process(
            &w.broker,
            &w.ca.public_key(),
            &req_t,
            |_| {
                Some(SubscriberEntry {
                    sign_pk: entry.sign_pk,
                    encrypt_pk: entry.encrypt_pk,
                    plan_mbr_bps: entry.plan_mbr_bps,
                    suspect: false,
                    alias: entry.alias,
                    lawful_intercept: false,
                })
            },
            |_| true,
            1,
            &mut w.rng,
        )
        .unwrap_err();
        assert_eq!(err, SapError::BadTelcoCert);
    }

    #[test]
    fn tampered_qos_cap_rejected() {
        let mut w = world();
        let id_t = w.telco.identity();
        let (req_u, _) = ue_build_request(
            &w.ue,
            "broker.example",
            &w.broker.encrypt.public_key(),
            id_t,
            &mut w.rng,
        );
        let mut req_t = telco_wrap_request(&w.telco, req_u, qos_cap());
        req_t.qos_cap.max_mbr_bps = 1; // Tamper after signing.
        let entry = entry_for(&w);
        let err = broker_process(
            &w.broker,
            &w.ca.public_key(),
            &req_t,
            |_| {
                Some(SubscriberEntry {
                    sign_pk: entry.sign_pk,
                    encrypt_pk: entry.encrypt_pk,
                    plan_mbr_bps: entry.plan_mbr_bps,
                    suspect: false,
                    alias: entry.alias,
                    lawful_intercept: false,
                })
            },
            |_| true,
            1,
            &mut w.rng,
        )
        .unwrap_err();
        assert_eq!(err, SapError::BadTelcoSig);
    }

    #[test]
    fn unknown_user_rejected() {
        let mut w = world();
        let id_t = w.telco.identity();
        let (req_u, _) = ue_build_request(
            &w.ue,
            "broker.example",
            &w.broker.encrypt.public_key(),
            id_t,
            &mut w.rng,
        );
        let req_t = telco_wrap_request(&w.telco, req_u, qos_cap());
        let err = broker_process(
            &w.broker,
            &w.ca.public_key(),
            &req_t,
            |_| None,
            |_| true,
            1,
            &mut w.rng,
        )
        .unwrap_err();
        assert_eq!(err, SapError::UnknownUser);
    }

    #[test]
    fn suspect_user_refused() {
        let mut w = world();
        let id_t = w.telco.identity();
        let (req_u, _) = ue_build_request(
            &w.ue,
            "broker.example",
            &w.broker.encrypt.public_key(),
            id_t,
            &mut w.rng,
        );
        let req_t = telco_wrap_request(&w.telco, req_u, qos_cap());
        let entry = entry_for(&w);
        let err = broker_process(
            &w.broker,
            &w.ca.public_key(),
            &req_t,
            |_| {
                Some(SubscriberEntry {
                    sign_pk: entry.sign_pk,
                    encrypt_pk: entry.encrypt_pk,
                    plan_mbr_bps: entry.plan_mbr_bps,
                    suspect: true,
                    alias: entry.alias,
                    lawful_intercept: false,
                })
            },
            |_| true,
            1,
            &mut w.rng,
        )
        .unwrap_err();
        assert_eq!(err, SapError::PolicyRefused);
    }

    #[test]
    fn disreputable_telco_refused() {
        let mut w = world();
        let id_t = w.telco.identity();
        let (req_u, _) = ue_build_request(
            &w.ue,
            "broker.example",
            &w.broker.encrypt.public_key(),
            id_t,
            &mut w.rng,
        );
        let req_t = telco_wrap_request(&w.telco, req_u, qos_cap());
        let entry = entry_for(&w);
        let err = broker_process(
            &w.broker,
            &w.ca.public_key(),
            &req_t,
            |_| {
                Some(SubscriberEntry {
                    sign_pk: entry.sign_pk,
                    encrypt_pk: entry.encrypt_pk,
                    plan_mbr_bps: entry.plan_mbr_bps,
                    suspect: false,
                    alias: entry.alias,
                    lawful_intercept: false,
                })
            },
            |_| false, // Reputation system says no.
            1,
            &mut w.rng,
        )
        .unwrap_err();
        assert_eq!(err, SapError::PolicyRefused);
    }

    #[test]
    fn relayed_request_to_wrong_telco_rejected() {
        // The UE addressed tower-1, but tower-2 (also validly certified)
        // relays the request as its own: idT mismatch must be caught.
        let mut w = world();
        let other = TelcoKeys::generate("tower-2.example", &w.ca, &mut w.rng);
        let (req_u, _) = ue_build_request(
            &w.ue,
            "broker.example",
            &w.broker.encrypt.public_key(),
            w.telco.identity(), // Addressed to tower-1...
            &mut w.rng,
        );
        let req_t = telco_wrap_request(&other, req_u, qos_cap()); // ...relayed by tower-2.
        let entry = entry_for(&w);
        let err = broker_process(
            &w.broker,
            &w.ca.public_key(),
            &req_t,
            |_| {
                Some(SubscriberEntry {
                    sign_pk: entry.sign_pk,
                    encrypt_pk: entry.encrypt_pk,
                    plan_mbr_bps: entry.plan_mbr_bps,
                    suspect: false,
                    alias: entry.alias,
                    lawful_intercept: false,
                })
            },
            |_| true,
            1,
            &mut w.rng,
        )
        .unwrap_err();
        assert_eq!(err, SapError::TelcoMismatch);
    }

    #[test]
    fn replayed_response_rejected_by_nonce() {
        let mut w = world();
        let (u_body, _) = run_protocol(&mut w);
        // Run the protocol again; the old response must not verify
        // against the new nonce.
        let id_t = w.telco.identity();
        let (_req2, nonce2) = ue_build_request(
            &w.ue,
            "broker.example",
            &w.broker.encrypt.public_key(),
            id_t,
            &mut w.rng,
        );
        assert_ne!(u_body.nonce, nonce2);
    }

    #[test]
    fn response_for_other_ue_rejected() {
        let mut w = world();
        let mallory = UeKeys::generate(&mut w.rng);
        let id_t = w.telco.identity();
        let (req_u, nonce) = ue_build_request(
            &w.ue,
            "broker.example",
            &w.broker.encrypt.public_key(),
            id_t,
            &mut w.rng,
        );
        let req_t = telco_wrap_request(&w.telco, req_u, qos_cap());
        let entry = entry_for(&w);
        let (reply, ..) = broker_process(
            &w.broker,
            &w.ca.public_key(),
            &req_t,
            |_| {
                Some(SubscriberEntry {
                    sign_pk: entry.sign_pk,
                    encrypt_pk: entry.encrypt_pk,
                    plan_mbr_bps: entry.plan_mbr_bps,
                    suspect: false,
                    alias: entry.alias,
                    lawful_intercept: false,
                })
            },
            |_| true,
            1,
            &mut w.rng,
        )
        .unwrap();
        // Mallory cannot use the response addressed to our UE.
        let err = ue_verify_response(
            &mallory,
            &w.broker.sign.verifying_key(),
            &nonce,
            id_t,
            &reply.resp_u,
        )
        .unwrap_err();
        assert_eq!(err, SapError::BadResponse);
    }

    #[test]
    fn wire_roundtrips() {
        let mut w = world();
        let id_t = w.telco.identity();
        let (req_u, _) = ue_build_request(
            &w.ue,
            "broker.example",
            &w.broker.encrypt.public_key(),
            id_t,
            &mut w.rng,
        );
        assert_eq!(AuthReqU::decode(&req_u.encode()).as_ref(), Some(&req_u));
        let req_t = telco_wrap_request(&w.telco, req_u, qos_cap());
        assert_eq!(AuthReqT::decode(&req_t.encode()).as_ref(), Some(&req_t));
    }

    #[test]
    fn lawful_intercept_obligation_relayed() {
        // A user under an LI order attaches through a capable bTelco:
        // the obligation rides qosInfo to the bTelco.
        let mut w = world();
        let id_t = w.telco.identity();
        let (req_u, _) = ue_build_request(
            &w.ue,
            "broker.example",
            &w.broker.encrypt.public_key(),
            id_t,
            &mut w.rng,
        );
        let req_t = telco_wrap_request(&w.telco, req_u, qos_cap());
        let entry = entry_for(&w);
        let (reply, ..) = broker_process(
            &w.broker,
            &w.ca.public_key(),
            &req_t,
            |_| {
                Some(SubscriberEntry {
                    sign_pk: entry.sign_pk,
                    encrypt_pk: entry.encrypt_pk,
                    plan_mbr_bps: entry.plan_mbr_bps,
                    suspect: false,
                    alias: entry.alias,
                    lawful_intercept: true,
                })
            },
            |_| true,
            1,
            &mut w.rng,
        )
        .unwrap();
        let body = telco_verify_reply(&w.telco, &w.ca.public_key(), &reply).unwrap();
        assert!(
            body.qos.lawful_intercept,
            "LI obligation reached the bTelco"
        );
    }

    #[test]
    fn lawful_intercept_refused_on_incapable_btelco() {
        // The broker cannot silently drop an LI order: if the bTelco
        // cannot provision the tap, the attachment is refused.
        let mut w = world();
        let id_t = w.telco.identity();
        let (req_u, _) = ue_build_request(
            &w.ue,
            "broker.example",
            &w.broker.encrypt.public_key(),
            id_t,
            &mut w.rng,
        );
        let cap = QosCap {
            li_capable: false,
            ..qos_cap()
        };
        let req_t = telco_wrap_request(&w.telco, req_u, cap);
        let entry = entry_for(&w);
        let err = broker_process(
            &w.broker,
            &w.ca.public_key(),
            &req_t,
            |_| {
                Some(SubscriberEntry {
                    sign_pk: entry.sign_pk,
                    encrypt_pk: entry.encrypt_pk,
                    plan_mbr_bps: entry.plan_mbr_bps,
                    suspect: false,
                    alias: entry.alias,
                    lawful_intercept: true,
                })
            },
            |_| true,
            1,
            &mut w.rng,
        )
        .unwrap_err();
        assert_eq!(err, SapError::PolicyRefused);
    }

    #[test]
    fn malformed_wire_rejected() {
        assert!(AuthReqU::decode(&[1, 2, 3]).is_none());
        assert!(AuthReqT::decode(&[]).is_none());
        assert!(BrokerReply::decode(&[0; 10]).is_none());
        assert!(SignedSealed::decode(&[0; 4]).is_none());
    }
}
