//! SAP — the Secure Attachment Protocol (paper §4.1, Figs. 2–4).
//!
//! One round trip establishes mutual trust among three parties that share
//! no prior relationship with each other (only U↔B do):
//!
//! 1. **U → T** `authReqU`: the UE seals its authentication vector
//!    `(idU, idB, idT, nonce)` to the broker's public key and signs the
//!    sealed bytes. The bTelco never sees a cleartext UE identifier —
//!    it "cannot act as an IMSI catcher".
//! 2. **T → B** `authReqT`: the bTelco forwards `authReqU` augmented with
//!    its QoS capabilities and certificate, signed under its key.
//! 3. **B → T** `brokerReply`: the broker authenticates both U (signature
//!    against the subscriber DB) and T (certificate + signature), decides
//!    authorization, and returns two sealed sub-responses — `authRespT`
//!    (the shared secret `ss` and `qosInfo`, the bTelco's *irrefutable
//!    proof of authorization*) and `authRespU` (`ss` plus the UE's nonce,
//!    proving freshness to the UE).
//! 4. **T → U** the bTelco relays `authRespU`.
//!
//! `ss` then plays the role of KASME in the unmodified EPS key hierarchy
//! (`cellbricks_epc::aka::derive_*`).
//!
//! This module is pure protocol: message construction, verification and
//! wire codecs. The endpoints live in [`crate::ue`], [`crate::btelco`]
//! and [`crate::brokerd`].

use crate::principal::{BrokerKeys, Identity, TelcoKeys, UeKeys};
use bytes::Bytes;
use cellbricks_crypto::cert::{Certificate, Role};
use cellbricks_crypto::ed25519::{verify_batch, BatchItem, Signature, VerifyingKey};
use cellbricks_crypto::sealed::{open, seal, SealedBox};
use cellbricks_crypto::x25519::X25519PublicKey;
use cellbricks_epc::wire::{Reader, Writer};
use cellbricks_sim::SimRng;

/// QoS options a bTelco can enforce (`qosCap` in Fig. 3). Expressed with
/// 3GPP vocabulary: maximum bit rate and supported QCI classes, plus the
/// service parameters the paper folds into the same negotiation —
/// "B and T1 might also negotiate additional features such as the need
/// for lawful intercept" (§3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QosCap {
    /// Highest maximum-bit-rate the bTelco can enforce, bits/s.
    pub max_mbr_bps: u64,
    /// QCI classes the bTelco supports.
    pub qci_supported: Vec<u8>,
    /// Whether this deployment can provision lawful-intercept taps
    /// (TS 33.107-style).
    pub li_capable: bool,
}

/// QoS parameters the broker selects for this attachment (`qosInfo`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QosInfo {
    /// Granted maximum bit rate, bits/s.
    pub mbr_bps: u64,
    /// Granted QCI class.
    pub qci: u8,
    /// The bTelco must provision a lawful-intercept tap for this session
    /// (the broker relays the obligation without learning its basis).
    pub lawful_intercept: bool,
}

/// The UE's authentication vector (Fig. 2: `(idU, idB, idT, n)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AuthVec {
    /// UE identity.
    pub id_u: Identity,
    /// Broker identity.
    pub id_b: Identity,
    /// Target bTelco identity.
    pub id_t: Identity,
    /// Anti-replay nonce, generated at the UE.
    pub nonce: [u8; 16],
}

impl AuthVec {
    fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        w.put_fixed(&self.id_u.0)
            .put_fixed(&self.id_b.0)
            .put_fixed(&self.id_t.0)
            .put_fixed(&self.nonce);
        w.finish()
    }

    fn decode(bytes: &[u8]) -> Option<AuthVec> {
        let mut r = Reader::new(bytes);
        let v = AuthVec {
            id_u: Identity(r.get_fixed()?),
            id_b: Identity(r.get_fixed()?),
            id_t: Identity(r.get_fixed()?),
            nonce: r.get_fixed()?,
        };
        if !r.is_empty() {
            return None;
        }
        Some(v)
    }
}

/// `authReqU`: the sealed, signed request the UE hands the bTelco.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuthReqU {
    /// `authVec` sealed to the broker's encryption key.
    pub sealed_vec: SealedBox,
    /// UE signature over the sealed bytes.
    pub sig: Signature,
    /// Cleartext broker name so the bTelco can route the request.
    pub broker_name: String,
}

impl AuthReqU {
    /// Encode to wire bytes.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        w.put_bytes(&self.sealed_vec.to_bytes())
            .put_fixed(&self.sig.0)
            .put_str(&self.broker_name);
        w.finish()
    }

    /// Decode from wire bytes.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<AuthReqU> {
        let mut r = Reader::new(bytes);
        let sealed = SealedBox::from_bytes(&r.get_bytes()?)?;
        let sig = Signature(r.get_fixed::<64>()?);
        let broker_name = r.get_str()?;
        if !r.is_empty() {
            return None;
        }
        Some(AuthReqU {
            sealed_vec: sealed,
            sig,
            broker_name,
        })
    }
}

fn encode_cert(w: &mut Writer, cert: &Certificate) {
    w.put_str(&cert.subject);
    w.put_u8(match cert.role {
        Role::Broker => 1,
        Role::BTelco => 2,
    });
    w.put_fixed(&cert.key.0);
    w.put_u64(cert.not_after);
    w.put_fixed(&cert.signature.0);
}

fn decode_cert(r: &mut Reader<'_>) -> Option<Certificate> {
    let subject = r.get_str()?;
    let role = match r.get_u8()? {
        1 => Role::Broker,
        2 => Role::BTelco,
        _ => return None,
    };
    let key = VerifyingKey(r.get_fixed()?);
    let not_after = r.get_u64()?;
    let signature = Signature(r.get_fixed::<64>()?);
    Some(Certificate {
        subject,
        role,
        key,
        not_after,
        signature,
    })
}

/// `authReqT`: the bTelco's augmented, signed forward of `authReqU`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuthReqT {
    /// The UE's request, verbatim.
    pub req_u: AuthReqU,
    /// QoS options the bTelco offers.
    pub qos_cap: QosCap,
    /// The bTelco's certificate.
    pub t_cert: Certificate,
    /// The bTelco's encryption public key (for sealing `authRespT`).
    pub t_encrypt_pk: [u8; 32],
    /// bTelco signature over everything above.
    pub sig: Signature,
}

impl AuthReqT {
    fn signed_bytes(
        req_u: &AuthReqU,
        qos_cap: &QosCap,
        t_cert: &Certificate,
        t_encrypt_pk: &[u8; 32],
    ) -> Bytes {
        let mut w = Writer::new();
        w.put_bytes(&req_u.encode());
        w.put_u64(qos_cap.max_mbr_bps);
        w.put_bytes(&qos_cap.qci_supported);
        w.put_u8(u8::from(qos_cap.li_capable));
        encode_cert(&mut w, t_cert);
        w.put_fixed(t_encrypt_pk);
        w.finish()
    }

    /// Encode to wire bytes.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        w.put_bytes(&Self::signed_bytes(
            &self.req_u,
            &self.qos_cap,
            &self.t_cert,
            &self.t_encrypt_pk,
        ))
        .put_fixed(&self.sig.0);
        w.finish()
    }

    /// Decode from wire bytes.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<AuthReqT> {
        let mut outer = Reader::new(bytes);
        let signed = outer.get_bytes()?;
        let sig = Signature(outer.get_fixed::<64>()?);
        if !outer.is_empty() {
            return None;
        }
        let mut r = Reader::new(&signed);
        let req_u = AuthReqU::decode(&r.get_bytes()?)?;
        let max_mbr_bps = r.get_u64()?;
        let qci_supported = r.get_bytes()?;
        let li_capable = r.get_u8()? != 0;
        let t_cert = decode_cert(&mut r)?;
        let t_encrypt_pk = r.get_fixed()?;
        if !r.is_empty() {
            return None;
        }
        Some(AuthReqT {
            req_u,
            qos_cap: QosCap {
                max_mbr_bps,
                qci_supported,
                li_capable,
            },
            t_cert,
            t_encrypt_pk,
            sig,
        })
    }
}

/// The plaintext inside `authRespT`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RespTBody {
    /// A broker-scoped alias for the UE (the bTelco's billing handle —
    /// never the UE's real identity).
    pub ue_alias: u64,
    /// The bTelco this authorization is for.
    pub id_t: Identity,
    /// The shared secret (KASME-equivalent).
    pub ss: [u8; 32],
    /// Granted QoS.
    pub qos: QosInfo,
    /// Billing session identifier.
    pub session_id: u64,
}

/// The plaintext inside `authRespU`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RespUBody {
    /// The UE this response addresses.
    pub id_u: Identity,
    /// The bTelco the UE is now authorized on.
    pub id_t: Identity,
    /// The shared secret (KASME-equivalent).
    pub ss: [u8; 32],
    /// The UE's nonce, echoed (freshness proof).
    pub nonce: [u8; 16],
    /// Billing session identifier.
    pub session_id: u64,
}

/// A sealed-and-signed sub-response (`authRespT` / `authRespU`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedSealed {
    /// Body sealed to the recipient.
    pub sealed: SealedBox,
    /// Broker signature over the sealed bytes.
    pub sig: Signature,
}

impl SignedSealed {
    /// Encode to wire bytes.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        w.put_bytes(&self.sealed.to_bytes()).put_fixed(&self.sig.0);
        w.finish()
    }

    /// Decode from wire bytes.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<SignedSealed> {
        let mut r = Reader::new(bytes);
        let sealed = SealedBox::from_bytes(&r.get_bytes()?)?;
        let sig = Signature(r.get_fixed::<64>()?);
        if !r.is_empty() {
            return None;
        }
        Some(SignedSealed { sealed, sig })
    }
}

/// The broker's reply to the bTelco: both sub-responses plus the
/// broker's certificate (so a bTelco with no prior relationship can
/// verify the broker's signatures against the CA).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BrokerReply {
    /// `authRespT`, sealed to the bTelco.
    pub resp_t: SignedSealed,
    /// `authRespU`, sealed to the UE (opaque to the bTelco).
    pub resp_u: SignedSealed,
    /// The broker's certificate.
    pub b_cert: Certificate,
}

impl BrokerReply {
    /// Encode to wire bytes.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        w.put_bytes(&self.resp_t.encode());
        w.put_bytes(&self.resp_u.encode());
        encode_cert(&mut w, &self.b_cert);
        w.finish()
    }

    /// Decode from wire bytes.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<BrokerReply> {
        let mut r = Reader::new(bytes);
        let resp_t = SignedSealed::decode(&r.get_bytes()?)?;
        let resp_u = SignedSealed::decode(&r.get_bytes()?)?;
        let b_cert = decode_cert(&mut r)?;
        if !r.is_empty() {
            return None;
        }
        Some(BrokerReply {
            resp_t,
            resp_u,
            b_cert,
        })
    }
}

// ----- Protocol steps -----

/// Step 1 (UE): build `authReqU` for bTelco `id_t` (Fig. 2).
/// Returns the request and the nonce to check in the response.
pub fn ue_build_request(
    keys: &UeKeys,
    broker_name: &str,
    broker_encrypt_pk: &X25519PublicKey,
    id_t: Identity,
    rng: &mut SimRng,
) -> (AuthReqU, [u8; 16]) {
    let mut nonce = [0u8; 16];
    rng.fill_bytes(&mut nonce);
    let vec = AuthVec {
        id_u: keys.identity(),
        id_b: Identity::of_name(broker_name),
        id_t,
        nonce,
    };
    let sealed = seal(rng, broker_encrypt_pk, &vec.encode());
    let sig = keys.sign.sign(&sealed.to_bytes());
    (
        AuthReqU {
            sealed_vec: sealed,
            sig,
            broker_name: broker_name.to_string(),
        },
        nonce,
    )
}

/// Step 2 (bTelco): augment and sign the UE's request (Fig. 3, top).
#[must_use]
pub fn telco_wrap_request(keys: &TelcoKeys, req_u: AuthReqU, qos_cap: QosCap) -> AuthReqT {
    let t_encrypt_pk = keys.encrypt.public_key().0;
    let signed = AuthReqT::signed_bytes(&req_u, &qos_cap, &keys.cert, &t_encrypt_pk);
    let sig = keys.sign.sign(&signed);
    AuthReqT {
        req_u,
        qos_cap,
        t_cert: keys.cert.clone(),
        t_encrypt_pk,
        sig,
    }
}

/// Why the broker refused an attachment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SapError {
    /// Malformed message.
    Malformed,
    /// The bTelco's certificate failed verification.
    BadTelcoCert,
    /// The bTelco's signature failed.
    BadTelcoSig,
    /// The request was not addressed to this broker.
    WrongBroker,
    /// The sealed authVec could not be opened.
    SealedVec,
    /// Unknown subscriber.
    UnknownUser,
    /// The UE's signature failed.
    BadUeSig,
    /// The authVec's target doesn't match the forwarding bTelco.
    TelcoMismatch,
    /// Policy refused the attachment (suspect user / bad reputation).
    PolicyRefused,
    /// Response verification failed at the UE or bTelco.
    BadResponse,
    /// The echoed nonce did not match (replay).
    NonceMismatch,
}

/// What the broker needs to know about a subscriber.
pub struct SubscriberEntry {
    /// UE signing public key (to verify `authReqU`).
    pub sign_pk: VerifyingKey,
    /// UE encryption public key (to seal `authRespU`).
    pub encrypt_pk: X25519PublicKey,
    /// Subscription cap on MBR, bits/s.
    pub plan_mbr_bps: u64,
    /// On the tamper-suspect list (paper §4.3)?
    pub suspect: bool,
    /// Billing alias handed to bTelcos (never the real identity).
    pub alias: u64,
    /// A lawful-intercept order applies to this subscriber: the serving
    /// bTelco must be able (and told) to provision the tap.
    pub lawful_intercept: bool,
}

/// Step 3 (broker): authenticate U and T, authorize, and build the reply
/// (Fig. 3, bottom). `lookup` resolves a UE identity from the subscriber
/// database; `telco_ok` is the reputation-system admission decision.
///
/// The three Ed25519 checks — the CA's signature on the bTelco
/// certificate, the bTelco's signature on `authReqT`, and the UE's
/// signature on the sealed `authVec` — are folded into a single batch
/// verification ([`verify_batch`]) on the optimistic path. If anything
/// at all fails (a bad signature, but also any structural or policy
/// check), the request is re-run through the sequential seed-order
/// checks so the returned [`SapError`] is exactly the one the
/// unbatched implementation produced. Neither path consumes simulation
/// RNG before the accept decision, so event streams are unchanged.
#[allow(clippy::too_many_arguments)]
pub fn broker_process(
    keys: &BrokerKeys,
    ca: &VerifyingKey,
    req: &AuthReqT,
    lookup: impl Fn(Identity) -> Option<SubscriberEntry>,
    telco_ok: impl Fn(Identity) -> bool,
    session_id: u64,
    rng: &mut SimRng,
) -> Result<(BrokerReply, AuthVec, QosInfo, [u8; 32]), SapError> {
    let (vec, entry) = match broker_authenticate_batched(keys, ca, req, &lookup, &telco_ok) {
        Some(ok) => ok,
        None => broker_authenticate_sequential(keys, ca, req, &lookup, &telco_ok)?,
    };

    // Grant QoS: the broker picks within the bTelco's capability and the
    // user's plan.
    let qos = QosInfo {
        mbr_bps: entry.plan_mbr_bps.min(req.qos_cap.max_mbr_bps),
        qci: req.qos_cap.qci_supported.first().copied().unwrap_or(9),
        lawful_intercept: entry.lawful_intercept,
    };

    // Fresh shared secret = the session's KASME.
    let ss = rng.seed32();

    let t_body = {
        let mut w = Writer::new();
        w.put_u64(entry.alias)
            .put_fixed(&vec.id_t.0)
            .put_fixed(&ss)
            .put_u64(qos.mbr_bps)
            .put_u8(qos.qci)
            .put_u8(u8::from(qos.lawful_intercept))
            .put_u64(session_id);
        w.finish()
    };
    let sealed_t = seal(rng, &X25519PublicKey(req.t_encrypt_pk), &t_body);
    let resp_t = SignedSealed {
        sig: keys.sign.sign(&sealed_t.to_bytes()),
        sealed: sealed_t,
    };

    let u_body = {
        let mut w = Writer::new();
        w.put_fixed(&vec.id_u.0)
            .put_fixed(&vec.id_t.0)
            .put_fixed(&ss)
            .put_fixed(&vec.nonce)
            .put_u64(session_id);
        w.finish()
    };
    let sealed_u = seal(rng, &entry.encrypt_pk, &u_body);
    let resp_u = SignedSealed {
        sig: keys.sign.sign(&sealed_u.to_bytes()),
        sealed: sealed_u,
    };

    Ok((
        BrokerReply {
            resp_t,
            resp_u,
            b_cert: keys.cert.clone(),
        },
        vec,
        qos,
        ss,
    ))
}

/// The optimistic attach path: run every cheap structural and policy
/// check first, then all three signatures as one Ed25519 batch. `None`
/// means "anything failed" — the caller falls back to
/// [`broker_authenticate_sequential`], which owns error attribution.
fn broker_authenticate_batched(
    keys: &BrokerKeys,
    ca: &VerifyingKey,
    req: &AuthReqT,
    lookup: &impl Fn(Identity) -> Option<SubscriberEntry>,
    telco_ok: &impl Fn(Identity) -> bool,
) -> Option<(AuthVec, SubscriberEntry)> {
    req.t_cert.check_role_and_expiry(Role::BTelco, 0).ok()?;
    let id_t = Identity::of_name(&req.t_cert.subject);
    if req.req_u.broker_name != keys.name {
        return None;
    }
    let vec_bytes = open(&keys.encrypt, &req.req_u.sealed_vec).ok()?;
    let vec = AuthVec::decode(&vec_bytes)?;
    if vec.id_b != keys.identity() || vec.id_t != id_t {
        return None;
    }
    let entry = lookup(vec.id_u)?;
    if entry.suspect || !telco_ok(id_t) {
        return None;
    }
    if entry.lawful_intercept && !req.qos_cap.li_capable {
        return None;
    }
    let cert_tbs = req.t_cert.tbs();
    let signed = AuthReqT::signed_bytes(&req.req_u, &req.qos_cap, &req.t_cert, &req.t_encrypt_pk);
    let sealed_bytes = req.req_u.sealed_vec.to_bytes();
    verify_batch(&[
        BatchItem {
            msg: &cert_tbs,
            sig: req.t_cert.signature,
            key: *ca,
        },
        BatchItem {
            msg: &signed,
            sig: req.sig,
            key: req.t_cert.key,
        },
        BatchItem {
            msg: &sealed_bytes,
            sig: req.req_u.sig,
            key: entry.sign_pk,
        },
    ])
    .then_some((vec, entry))
}

/// The seed-order checks, one at a time, attributing the first failure.
/// Signature checks go through the verifier-key cache (result-identical
/// to uncached verification).
fn broker_authenticate_sequential(
    keys: &BrokerKeys,
    ca: &VerifyingKey,
    req: &AuthReqT,
    lookup: &impl Fn(Identity) -> Option<SubscriberEntry>,
    telco_ok: &impl Fn(Identity) -> bool,
) -> Result<(AuthVec, SubscriberEntry), SapError> {
    // Authenticate the bTelco: certificate chain, then signature.
    if req.t_cert.verify_cached(ca, Role::BTelco, 0).is_err() {
        return Err(SapError::BadTelcoCert);
    }
    let signed = AuthReqT::signed_bytes(&req.req_u, &req.qos_cap, &req.t_cert, &req.t_encrypt_pk);
    if !req.t_cert.key.verify_cached(&signed, &req.sig) {
        return Err(SapError::BadTelcoSig);
    }
    let id_t = Identity::of_name(&req.t_cert.subject);

    // Open and authenticate the UE's request.
    if req.req_u.broker_name != keys.name {
        return Err(SapError::WrongBroker);
    }
    let vec_bytes = open(&keys.encrypt, &req.req_u.sealed_vec).map_err(|_| SapError::SealedVec)?;
    let vec = AuthVec::decode(&vec_bytes).ok_or(SapError::Malformed)?;
    if vec.id_b != keys.identity() {
        return Err(SapError::WrongBroker);
    }
    if vec.id_t != id_t {
        // The UE asked for a different bTelco than the one forwarding —
        // a relay / MITM attempt.
        return Err(SapError::TelcoMismatch);
    }
    let entry = lookup(vec.id_u).ok_or(SapError::UnknownUser)?;
    if !entry
        .sign_pk
        .verify_cached(&req.req_u.sealed_vec.to_bytes(), &req.req_u.sig)
    {
        return Err(SapError::BadUeSig);
    }

    // Authorization policy: suspect users and disreputable bTelcos are
    // refused (paper §4.3).
    if entry.suspect || !telco_ok(id_t) {
        return Err(SapError::PolicyRefused);
    }

    // A lawful-intercept order can only be honoured by a capable bTelco;
    // otherwise the attachment must be refused (the obligation cannot be
    // silently dropped).
    if entry.lawful_intercept && !req.qos_cap.li_capable {
        return Err(SapError::PolicyRefused);
    }
    Ok((vec, entry))
}

/// Step 3→4 (bTelco): verify the broker's reply and extract authorization.
///
/// Both signature checks go through the verifier-key cache: a bTelco
/// checks every reply against the same CA and (typically few) broker
/// keys, so the point decompressions amortize across attachments.
pub fn telco_verify_reply(
    keys: &TelcoKeys,
    ca: &VerifyingKey,
    reply: &BrokerReply,
) -> Result<RespTBody, SapError> {
    if reply.b_cert.verify_cached(ca, Role::Broker, 0).is_err() {
        return Err(SapError::BadResponse);
    }
    if !reply
        .b_cert
        .key
        .verify_cached(&reply.resp_t.sealed.to_bytes(), &reply.resp_t.sig)
    {
        return Err(SapError::BadResponse);
    }
    let body = open(&keys.encrypt, &reply.resp_t.sealed).map_err(|_| SapError::BadResponse)?;
    let mut r = Reader::new(&body);
    let parsed = RespTBody {
        ue_alias: r.get_u64().ok_or(SapError::Malformed)?,
        id_t: Identity(r.get_fixed().ok_or(SapError::Malformed)?),
        ss: r.get_fixed().ok_or(SapError::Malformed)?,
        qos: QosInfo {
            mbr_bps: r.get_u64().ok_or(SapError::Malformed)?,
            qci: r.get_u8().ok_or(SapError::Malformed)?,
            lawful_intercept: r.get_u8().ok_or(SapError::Malformed)? != 0,
        },
        session_id: r.get_u64().ok_or(SapError::Malformed)?,
    };
    if parsed.id_t != keys.identity() {
        return Err(SapError::BadResponse);
    }
    Ok(parsed)
}

/// Step 4 (UE): verify `authRespU` (Fig. 2, steps 5–6).
pub fn ue_verify_response(
    keys: &UeKeys,
    broker_sign_pk: &VerifyingKey,
    expected_nonce: &[u8; 16],
    expected_t: Identity,
    resp: &SignedSealed,
) -> Result<RespUBody, SapError> {
    if !broker_sign_pk.verify_cached(&resp.sealed.to_bytes(), &resp.sig) {
        return Err(SapError::BadResponse);
    }
    let body = open(&keys.encrypt, &resp.sealed).map_err(|_| SapError::BadResponse)?;
    let mut r = Reader::new(&body);
    let parsed = RespUBody {
        id_u: Identity(r.get_fixed().ok_or(SapError::Malformed)?),
        id_t: Identity(r.get_fixed().ok_or(SapError::Malformed)?),
        ss: r.get_fixed().ok_or(SapError::Malformed)?,
        nonce: r.get_fixed().ok_or(SapError::Malformed)?,
        session_id: r.get_u64().ok_or(SapError::Malformed)?,
    };
    if parsed.id_u != keys.identity() {
        return Err(SapError::BadResponse);
    }
    if &parsed.nonce != expected_nonce {
        return Err(SapError::NonceMismatch);
    }
    if parsed.id_t != expected_t {
        return Err(SapError::BadResponse);
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellbricks_crypto::cert::CertificateAuthority;

    struct World {
        ca: CertificateAuthority,
        broker: BrokerKeys,
        telco: TelcoKeys,
        ue: UeKeys,
        rng: SimRng,
    }

    fn world() -> World {
        let mut rng = SimRng::new(0xce11);
        let ca = CertificateAuthority::from_seed([0xCA; 32]);
        World {
            broker: BrokerKeys::generate("broker.example", &ca, &mut rng),
            telco: TelcoKeys::generate("tower-1.example", &ca, &mut rng),
            ue: UeKeys::generate(&mut rng),
            ca,
            rng,
        }
    }

    fn entry_for(w: &World) -> SubscriberEntry {
        let (sign_pk, encrypt_pk) = w.ue.public();
        SubscriberEntry {
            sign_pk,
            encrypt_pk,
            plan_mbr_bps: 50_000_000,
            suspect: false,
            alias: 7,
            lawful_intercept: false,
        }
    }

    fn qos_cap() -> QosCap {
        QosCap {
            max_mbr_bps: 100_000_000,
            qci_supported: vec![9, 8],
            li_capable: true,
        }
    }

    /// Run the whole protocol happy path; returns (ue body, telco body).
    fn run_protocol(w: &mut World) -> (RespUBody, RespTBody) {
        let id_t = w.telco.identity();
        let (req_u, nonce) = ue_build_request(
            &w.ue,
            "broker.example",
            &w.broker.encrypt.public_key(),
            id_t,
            &mut w.rng,
        );
        // Wire round trips at every hop.
        let req_u = AuthReqU::decode(&req_u.encode()).unwrap();
        let req_t = telco_wrap_request(&w.telco, req_u, qos_cap());
        let req_t = AuthReqT::decode(&req_t.encode()).unwrap();

        let entry = entry_for(w);
        let (reply, vec, _qos, ss) = broker_process(
            &w.broker,
            &w.ca.public_key(),
            &req_t,
            |id| {
                (id == w.ue.identity()).then_some(SubscriberEntry {
                    sign_pk: entry.sign_pk,
                    encrypt_pk: entry.encrypt_pk,
                    plan_mbr_bps: entry.plan_mbr_bps,
                    suspect: entry.suspect,
                    alias: entry.alias,
                    lawful_intercept: false,
                })
            },
            |_| true,
            1234,
            &mut w.rng,
        )
        .expect("broker authorizes");
        assert_eq!(vec.id_u, w.ue.identity());

        let reply = BrokerReply::decode(&reply.encode()).unwrap();
        let t_body = telco_verify_reply(&w.telco, &w.ca.public_key(), &reply).expect("telco ok");
        let u_body = ue_verify_response(
            &w.ue,
            &w.broker.sign.verifying_key(),
            &nonce,
            id_t,
            &reply.resp_u,
        )
        .expect("ue ok");
        assert_eq!(t_body.ss, ss);
        (u_body, t_body)
    }

    #[test]
    fn happy_path_all_parties_agree_on_ss() {
        let mut w = world();
        let (u_body, t_body) = run_protocol(&mut w);
        assert_eq!(u_body.ss, t_body.ss);
        assert_eq!(u_body.session_id, t_body.session_id);
        assert_eq!(u_body.id_t, w.telco.identity());
        // QoS granted = min(plan, cap).
        assert_eq!(t_body.qos.mbr_bps, 50_000_000);
        assert_eq!(t_body.qos.qci, 9);
    }

    #[test]
    fn telco_never_sees_ue_identity() {
        let mut w = world();
        let id_t = w.telco.identity();
        let (req_u, _) = ue_build_request(
            &w.ue,
            "broker.example",
            &w.broker.encrypt.public_key(),
            id_t,
            &mut w.rng,
        );
        // The UE identity must not appear anywhere in the bytes the
        // bTelco handles (anti-IMSI-catcher, §4.1).
        let wire = req_u.encode();
        let id = w.ue.identity().0;
        assert!(!wire.windows(id.len()).any(|win| win == id));
    }

    #[test]
    fn forged_telco_cert_rejected() {
        let mut w = world();
        let rogue_ca = CertificateAuthority::from_seed([0xBB; 32]);
        let rogue = TelcoKeys::generate("tower-1.example", &rogue_ca, &mut w.rng);
        let (req_u, _) = ue_build_request(
            &w.ue,
            "broker.example",
            &w.broker.encrypt.public_key(),
            rogue.identity(),
            &mut w.rng,
        );
        let req_t = telco_wrap_request(&rogue, req_u, qos_cap());
        let entry = entry_for(&w);
        let err = broker_process(
            &w.broker,
            &w.ca.public_key(),
            &req_t,
            |_| {
                Some(SubscriberEntry {
                    sign_pk: entry.sign_pk,
                    encrypt_pk: entry.encrypt_pk,
                    plan_mbr_bps: entry.plan_mbr_bps,
                    suspect: false,
                    alias: entry.alias,
                    lawful_intercept: false,
                })
            },
            |_| true,
            1,
            &mut w.rng,
        )
        .unwrap_err();
        assert_eq!(err, SapError::BadTelcoCert);
    }

    #[test]
    fn tampered_qos_cap_rejected() {
        let mut w = world();
        let id_t = w.telco.identity();
        let (req_u, _) = ue_build_request(
            &w.ue,
            "broker.example",
            &w.broker.encrypt.public_key(),
            id_t,
            &mut w.rng,
        );
        let mut req_t = telco_wrap_request(&w.telco, req_u, qos_cap());
        req_t.qos_cap.max_mbr_bps = 1; // Tamper after signing.
        let entry = entry_for(&w);
        let err = broker_process(
            &w.broker,
            &w.ca.public_key(),
            &req_t,
            |_| {
                Some(SubscriberEntry {
                    sign_pk: entry.sign_pk,
                    encrypt_pk: entry.encrypt_pk,
                    plan_mbr_bps: entry.plan_mbr_bps,
                    suspect: false,
                    alias: entry.alias,
                    lawful_intercept: false,
                })
            },
            |_| true,
            1,
            &mut w.rng,
        )
        .unwrap_err();
        assert_eq!(err, SapError::BadTelcoSig);
    }

    #[test]
    fn unknown_user_rejected() {
        let mut w = world();
        let id_t = w.telco.identity();
        let (req_u, _) = ue_build_request(
            &w.ue,
            "broker.example",
            &w.broker.encrypt.public_key(),
            id_t,
            &mut w.rng,
        );
        let req_t = telco_wrap_request(&w.telco, req_u, qos_cap());
        let err = broker_process(
            &w.broker,
            &w.ca.public_key(),
            &req_t,
            |_| None,
            |_| true,
            1,
            &mut w.rng,
        )
        .unwrap_err();
        assert_eq!(err, SapError::UnknownUser);
    }

    #[test]
    fn suspect_user_refused() {
        let mut w = world();
        let id_t = w.telco.identity();
        let (req_u, _) = ue_build_request(
            &w.ue,
            "broker.example",
            &w.broker.encrypt.public_key(),
            id_t,
            &mut w.rng,
        );
        let req_t = telco_wrap_request(&w.telco, req_u, qos_cap());
        let entry = entry_for(&w);
        let err = broker_process(
            &w.broker,
            &w.ca.public_key(),
            &req_t,
            |_| {
                Some(SubscriberEntry {
                    sign_pk: entry.sign_pk,
                    encrypt_pk: entry.encrypt_pk,
                    plan_mbr_bps: entry.plan_mbr_bps,
                    suspect: true,
                    alias: entry.alias,
                    lawful_intercept: false,
                })
            },
            |_| true,
            1,
            &mut w.rng,
        )
        .unwrap_err();
        assert_eq!(err, SapError::PolicyRefused);
    }

    #[test]
    fn disreputable_telco_refused() {
        let mut w = world();
        let id_t = w.telco.identity();
        let (req_u, _) = ue_build_request(
            &w.ue,
            "broker.example",
            &w.broker.encrypt.public_key(),
            id_t,
            &mut w.rng,
        );
        let req_t = telco_wrap_request(&w.telco, req_u, qos_cap());
        let entry = entry_for(&w);
        let err = broker_process(
            &w.broker,
            &w.ca.public_key(),
            &req_t,
            |_| {
                Some(SubscriberEntry {
                    sign_pk: entry.sign_pk,
                    encrypt_pk: entry.encrypt_pk,
                    plan_mbr_bps: entry.plan_mbr_bps,
                    suspect: false,
                    alias: entry.alias,
                    lawful_intercept: false,
                })
            },
            |_| false, // Reputation system says no.
            1,
            &mut w.rng,
        )
        .unwrap_err();
        assert_eq!(err, SapError::PolicyRefused);
    }

    #[test]
    fn relayed_request_to_wrong_telco_rejected() {
        // The UE addressed tower-1, but tower-2 (also validly certified)
        // relays the request as its own: idT mismatch must be caught.
        let mut w = world();
        let other = TelcoKeys::generate("tower-2.example", &w.ca, &mut w.rng);
        let (req_u, _) = ue_build_request(
            &w.ue,
            "broker.example",
            &w.broker.encrypt.public_key(),
            w.telco.identity(), // Addressed to tower-1...
            &mut w.rng,
        );
        let req_t = telco_wrap_request(&other, req_u, qos_cap()); // ...relayed by tower-2.
        let entry = entry_for(&w);
        let err = broker_process(
            &w.broker,
            &w.ca.public_key(),
            &req_t,
            |_| {
                Some(SubscriberEntry {
                    sign_pk: entry.sign_pk,
                    encrypt_pk: entry.encrypt_pk,
                    plan_mbr_bps: entry.plan_mbr_bps,
                    suspect: false,
                    alias: entry.alias,
                    lawful_intercept: false,
                })
            },
            |_| true,
            1,
            &mut w.rng,
        )
        .unwrap_err();
        assert_eq!(err, SapError::TelcoMismatch);
    }

    #[test]
    fn replayed_response_rejected_by_nonce() {
        let mut w = world();
        let (u_body, _) = run_protocol(&mut w);
        // Run the protocol again; the old response must not verify
        // against the new nonce.
        let id_t = w.telco.identity();
        let (_req2, nonce2) = ue_build_request(
            &w.ue,
            "broker.example",
            &w.broker.encrypt.public_key(),
            id_t,
            &mut w.rng,
        );
        assert_ne!(u_body.nonce, nonce2);
    }

    #[test]
    fn response_for_other_ue_rejected() {
        let mut w = world();
        let mallory = UeKeys::generate(&mut w.rng);
        let id_t = w.telco.identity();
        let (req_u, nonce) = ue_build_request(
            &w.ue,
            "broker.example",
            &w.broker.encrypt.public_key(),
            id_t,
            &mut w.rng,
        );
        let req_t = telco_wrap_request(&w.telco, req_u, qos_cap());
        let entry = entry_for(&w);
        let (reply, ..) = broker_process(
            &w.broker,
            &w.ca.public_key(),
            &req_t,
            |_| {
                Some(SubscriberEntry {
                    sign_pk: entry.sign_pk,
                    encrypt_pk: entry.encrypt_pk,
                    plan_mbr_bps: entry.plan_mbr_bps,
                    suspect: false,
                    alias: entry.alias,
                    lawful_intercept: false,
                })
            },
            |_| true,
            1,
            &mut w.rng,
        )
        .unwrap();
        // Mallory cannot use the response addressed to our UE.
        let err = ue_verify_response(
            &mallory,
            &w.broker.sign.verifying_key(),
            &nonce,
            id_t,
            &reply.resp_u,
        )
        .unwrap_err();
        assert_eq!(err, SapError::BadResponse);
    }

    #[test]
    fn wire_roundtrips() {
        let mut w = world();
        let id_t = w.telco.identity();
        let (req_u, _) = ue_build_request(
            &w.ue,
            "broker.example",
            &w.broker.encrypt.public_key(),
            id_t,
            &mut w.rng,
        );
        assert_eq!(AuthReqU::decode(&req_u.encode()).as_ref(), Some(&req_u));
        let req_t = telco_wrap_request(&w.telco, req_u, qos_cap());
        assert_eq!(AuthReqT::decode(&req_t.encode()).as_ref(), Some(&req_t));
    }

    #[test]
    fn lawful_intercept_obligation_relayed() {
        // A user under an LI order attaches through a capable bTelco:
        // the obligation rides qosInfo to the bTelco.
        let mut w = world();
        let id_t = w.telco.identity();
        let (req_u, _) = ue_build_request(
            &w.ue,
            "broker.example",
            &w.broker.encrypt.public_key(),
            id_t,
            &mut w.rng,
        );
        let req_t = telco_wrap_request(&w.telco, req_u, qos_cap());
        let entry = entry_for(&w);
        let (reply, ..) = broker_process(
            &w.broker,
            &w.ca.public_key(),
            &req_t,
            |_| {
                Some(SubscriberEntry {
                    sign_pk: entry.sign_pk,
                    encrypt_pk: entry.encrypt_pk,
                    plan_mbr_bps: entry.plan_mbr_bps,
                    suspect: false,
                    alias: entry.alias,
                    lawful_intercept: true,
                })
            },
            |_| true,
            1,
            &mut w.rng,
        )
        .unwrap();
        let body = telco_verify_reply(&w.telco, &w.ca.public_key(), &reply).unwrap();
        assert!(
            body.qos.lawful_intercept,
            "LI obligation reached the bTelco"
        );
    }

    #[test]
    fn lawful_intercept_refused_on_incapable_btelco() {
        // The broker cannot silently drop an LI order: if the bTelco
        // cannot provision the tap, the attachment is refused.
        let mut w = world();
        let id_t = w.telco.identity();
        let (req_u, _) = ue_build_request(
            &w.ue,
            "broker.example",
            &w.broker.encrypt.public_key(),
            id_t,
            &mut w.rng,
        );
        let cap = QosCap {
            li_capable: false,
            ..qos_cap()
        };
        let req_t = telco_wrap_request(&w.telco, req_u, cap);
        let entry = entry_for(&w);
        let err = broker_process(
            &w.broker,
            &w.ca.public_key(),
            &req_t,
            |_| {
                Some(SubscriberEntry {
                    sign_pk: entry.sign_pk,
                    encrypt_pk: entry.encrypt_pk,
                    plan_mbr_bps: entry.plan_mbr_bps,
                    suspect: false,
                    alias: entry.alias,
                    lawful_intercept: true,
                })
            },
            |_| true,
            1,
            &mut w.rng,
        )
        .unwrap_err();
        assert_eq!(err, SapError::PolicyRefused);
    }

    #[test]
    fn malformed_wire_rejected() {
        assert!(AuthReqU::decode(&[1, 2, 3]).is_none());
        assert!(AuthReqT::decode(&[]).is_none());
        assert!(BrokerReply::decode(&[0; 10]).is_none());
        assert!(SignedSealed::decode(&[0; 4]).is_none());
    }
}
