//! The distributed broker plane (paper §3: the broker "shards like any
//! online service").
//!
//! Three pieces:
//!
//! - [`BrokerRing`] — consistent hashing with virtual nodes over UE
//!   [`Identity`]. Shard assignment is a pure function of the shard set
//!   and the identity bytes (deterministic across runs and machines —
//!   no `RandomState` anywhere), and adding or removing a shard only
//!   moves the keys that hash onto it (~1/K of the space).
//! - [`BrokerStore`] sharing — each shard is a primary/standby
//!   [`Brokerd`] pair over one store, the simulation stand-in for the
//!   paper's replicated cloud storage: subscriber records, reputation
//!   state, billing sessions and the anti-replay nonce window are all
//!   visible to the standby the instant the primary goes dark.
//! - UE-side selection — the ring pins the *shard* (only the UE knows
//!   its identity; bTelcos route purely by directory name), and the
//!   lowest-RTT reachable replica of that shard gets the request. An
//!   attach timeout quarantines the unresponsive replica for a penalty
//!   window, so the retry deterministically fails over to the standby;
//!   in-flight sessions re-resolve there through the shared store.
//!
//! Determinism argument: the ring never iterates a hash map; replica
//! selection breaks RTT ties by index; failover is driven by the UE's
//! existing retry timer (no new event sources, no extra RNG draws); and
//! both replicas of a shard must be driven by the same engine shard so
//! store access order is the deterministic packet order, not barrier
//! timing. A plane of one shard behaves byte-identically to a lone
//! [`Brokerd`] only if the UE keeps `plane: None` — which is why the
//! single-broker seam is a config option, not a one-shard plane.

use crate::brokerd::{BrokerStore, Brokerd, BrokerdConfig};
use crate::btelco::BrokerContact;
use crate::principal::{BrokerKeys, Identity};
use crate::ue::{BrokerReplica, UePlaneConfig};
use cellbricks_crypto::ed25519::VerifyingKey;
use cellbricks_crypto::x25519::X25519PublicKey;
use cellbricks_net::NodeId;
use cellbricks_sim::{SimDuration, SimRng};
use std::collections::{BTreeSet, HashMap};
use std::net::Ipv4Addr;

/// SplitMix64 finalizer: cheap, well-mixed, dependency-free.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Ring position of a UE identity: FNV-1a over the 16 bytes, then a
/// SplitMix64 finalize to spread FNV's weak low bits over the ring.
fn key_point(id: &Identity) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in &id.0 {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix64(h)
}

/// Ring position of one virtual node of a shard. Salted so vnode points
/// and key points are decorrelated streams.
fn vnode_point(shard: u32, vnode: u32) -> u64 {
    splitmix64((u64::from(shard) << 32 | u64::from(vnode)) ^ 0x5EED_B0B5_0DD5_EED5)
}

/// Consistent-hash ring mapping UE identities to broker shards.
#[derive(Clone, Debug)]
pub struct BrokerRing {
    vnodes: u32,
    /// Sorted `(point, shard)` pairs; a key maps to the first point at
    /// or after it, wrapping at the top of the u64 space.
    points: Vec<(u64, u32)>,
}

impl BrokerRing {
    /// A ring over shards `0..shards` with `vnodes` virtual nodes each
    /// (64 is a good default: load imbalance stays within ~2x).
    #[must_use]
    pub fn new(shards: u32, vnodes: u32) -> Self {
        assert!(shards > 0, "a ring needs at least one shard");
        assert!(vnodes > 0, "a shard needs at least one virtual node");
        let mut ring = Self {
            vnodes,
            points: Vec::new(),
        };
        for s in 0..shards {
            ring.add_shard(s);
        }
        ring
    }

    /// Add a shard's virtual nodes to the ring.
    pub fn add_shard(&mut self, shard: u32) {
        for v in 0..self.vnodes {
            self.points.push((vnode_point(shard, v), shard));
        }
        self.points.sort_unstable();
    }

    /// Remove a shard; only keys that mapped to it move (to their next
    /// point clockwise).
    pub fn remove_shard(&mut self, shard: u32) {
        self.points.retain(|&(_, s)| s != shard);
        assert!(!self.points.is_empty(), "cannot remove the last shard");
    }

    /// Distinct shards on the ring.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.points
            .iter()
            .map(|&(_, s)| s)
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// The shard owning `id`: the first virtual node at or clockwise
    /// after the identity's ring position.
    #[must_use]
    pub fn shard_of(&self, id: &Identity) -> u32 {
        let key = key_point(id);
        let idx = self.points.partition_point(|&(p, _)| p < key);
        self.points[idx % self.points.len()].1
    }
}

/// Where one replica of a shard lives in the topology.
#[derive(Clone, Copy, Debug)]
pub struct ReplicaSite {
    /// The node hosting the broker instance.
    pub node: NodeId,
    /// Its control-plane address.
    pub ip: Ipv4Addr,
}

/// One shard of the plane: a primary/standby pair over a shared store.
pub struct BrokerShard {
    /// The lower-RTT instance UEs prefer while it answers.
    pub primary: Brokerd,
    /// The failover instance; shares the primary's durable store.
    pub standby: Brokerd,
    /// Directory name the primary is registered under at bTelcos.
    pub primary_name: String,
    /// Directory name of the standby.
    pub standby_name: String,
    /// Placement of the primary.
    pub primary_site: ReplicaSite,
    /// Placement of the standby.
    pub standby_site: ReplicaSite,
}

/// Plane-wide configuration.
#[derive(Clone)]
pub struct BrokerPlaneConfig {
    /// The operator name UEs SIM-pin (e.g. `broker.example`); replica
    /// directory names derive from it.
    pub base_name: String,
    /// One key bundle for the whole plane: every replica signs and
    /// unseals as the same operator, so SIM-pinned keys verify anywhere.
    pub keys: BrokerKeys,
    /// The CA all certificates chain to.
    pub ca: VerifyingKey,
    /// Per-request processing delay of each instance.
    pub proc_delay: SimDuration,
    /// Fig. 5 tolerance ratio ε.
    pub epsilon: f64,
    /// Idle-session retention (see [`BrokerdConfig::session_retention`]).
    pub session_retention: SimDuration,
    /// Virtual nodes per shard on the ring.
    pub vnodes: u32,
    /// UE-side quarantine window after an attach attempt times out on a
    /// replica.
    pub replica_penalty: SimDuration,
}

/// K broker shards behind a consistent-hash ring.
pub struct BrokerPlane {
    /// The ring mapping identities to shards.
    pub ring: BrokerRing,
    /// The shards, index-aligned with ring shard ids.
    pub shards: Vec<BrokerShard>,
    cfg: BrokerPlaneConfig,
}

impl BrokerPlane {
    /// Build a plane with one shard per `(primary, standby)` site pair.
    /// Each shard's session-id space is offset by `shard << 32` so ids
    /// stay globally unique; replica RNGs fork from `rng` in site order.
    #[must_use]
    pub fn build(
        cfg: BrokerPlaneConfig,
        sites: &[(ReplicaSite, ReplicaSite)],
        rng: &mut SimRng,
    ) -> Self {
        assert!(!sites.is_empty(), "a plane needs at least one shard");
        let shards = sites
            .iter()
            .enumerate()
            .map(|(s, &(primary_site, standby_site))| {
                let store = BrokerStore::shared(1 + ((s as u64) << 32));
                let bcfg = |ip| BrokerdConfig {
                    ip,
                    keys: cfg.keys.clone(),
                    ca: cfg.ca,
                    proc_delay: cfg.proc_delay,
                    epsilon: cfg.epsilon,
                    session_retention: cfg.session_retention,
                };
                BrokerShard {
                    primary: Brokerd::with_store(
                        primary_site.node,
                        bcfg(primary_site.ip),
                        store.clone(),
                        rng.fork(),
                    ),
                    standby: Brokerd::with_store(
                        standby_site.node,
                        bcfg(standby_site.ip),
                        store,
                        rng.fork(),
                    ),
                    primary_name: format!("{}#{s}a", cfg.base_name),
                    standby_name: format!("{}#{s}b", cfg.base_name),
                    primary_site,
                    standby_site,
                }
            })
            .collect();
        let ring = BrokerRing::new(u32::try_from(sites.len()).expect("shard count"), cfg.vnodes);
        Self { ring, shards, cfg }
    }

    /// The shard index owning `id`.
    #[must_use]
    pub fn shard_of(&self, id: &Identity) -> usize {
        self.ring.shard_of(id) as usize
    }

    /// Provision a subscriber on its home shard; returns the shard.
    pub fn provision(
        &mut self,
        id: Identity,
        sign_pk: VerifyingKey,
        encrypt_pk: X25519PublicKey,
        plan_mbr_bps: u64,
    ) -> usize {
        let s = self.shard_of(&id);
        self.shards[s]
            .primary
            .provision(id, sign_pk, encrypt_pk, plan_mbr_bps);
        s
    }

    /// The directory bTelcos use to resolve a replica name to a broker
    /// contact — both replicas of every shard, under the same operator
    /// encryption key.
    #[must_use]
    pub fn directory(&self) -> HashMap<String, BrokerContact> {
        let encrypt_pk = self.cfg.keys.encrypt.public_key();
        let mut dir = HashMap::new();
        for shard in &self.shards {
            dir.insert(
                shard.primary_name.clone(),
                BrokerContact {
                    ctrl_ip: shard.primary_site.ip,
                    encrypt_pk,
                },
            );
            dir.insert(
                shard.standby_name.clone(),
                BrokerContact {
                    ctrl_ip: shard.standby_site.ip,
                    encrypt_pk,
                },
            );
        }
        dir
    }

    /// The plane view provisioned on one UE's SIM: the replicas of its
    /// home shard with RTT estimates from `rtt_of` (typically
    /// `Topology::path_latency` from the UE's node).
    #[must_use]
    pub fn ue_plane(&self, id: &Identity, rtt_of: impl Fn(NodeId) -> SimDuration) -> UePlaneConfig {
        let shard = &self.shards[self.shard_of(id)];
        UePlaneConfig {
            replicas: vec![
                BrokerReplica {
                    name: shard.primary_name.clone(),
                    ctrl_ip: shard.primary_site.ip,
                    rtt: rtt_of(shard.primary_site.node),
                },
                BrokerReplica {
                    name: shard.standby_name.clone(),
                    ctrl_ip: shard.standby_site.ip,
                    rtt: rtt_of(shard.standby_site.node),
                },
            ],
            penalty: self.cfg.replica_penalty,
        }
    }

    /// All 2K broker endpoints, for driving by an engine.
    pub fn endpoints_mut(&mut self) -> Vec<&mut Brokerd> {
        self.shards
            .iter_mut()
            .flat_map(|s| [&mut s.primary, &mut s.standby])
            .collect()
    }

    /// Authorizations granted across the plane.
    #[must_use]
    pub fn auth_ok(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.primary.auth_ok + s.standby.auth_ok)
            .sum()
    }

    /// Authorizations refused across the plane.
    #[must_use]
    pub fn auth_err(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.primary.auth_err + s.standby.auth_err)
            .sum()
    }

    /// Live billing sessions across the plane (each shard's store
    /// counted once).
    #[must_use]
    pub fn sessions_live(&self) -> usize {
        self.shards.iter().map(|s| s.primary.sessions_live()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(bytes: [u8; 16]) -> Identity {
        Identity(bytes)
    }

    #[test]
    fn ring_is_deterministic_and_total() {
        let a = BrokerRing::new(4, 64);
        let b = BrokerRing::new(4, 64);
        for i in 0..=255u8 {
            let k = id([i; 16]);
            assert_eq!(a.shard_of(&k), b.shard_of(&k));
            assert!(a.shard_of(&k) < 4);
        }
        assert_eq!(a.shard_count(), 4);
    }

    #[test]
    fn ring_remove_only_moves_owned_keys() {
        let full = BrokerRing::new(4, 64);
        let mut reduced = full.clone();
        reduced.remove_shard(2);
        for i in 0..=255u8 {
            let k = id([i; 16]);
            let before = full.shard_of(&k);
            if before != 2 {
                assert_eq!(reduced.shard_of(&k), before, "unowned key moved");
            } else {
                assert_ne!(reduced.shard_of(&k), 2);
            }
        }
    }

    #[test]
    fn ring_spreads_load() {
        let ring = BrokerRing::new(4, 64);
        let mut counts = [0usize; 4];
        for i in 0..4096u32 {
            let mut bytes = [0u8; 16];
            bytes[..4].copy_from_slice(&i.to_le_bytes());
            counts[ring.shard_of(&id(bytes)) as usize] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                c > 4096 / 16 && c < 4096 / 2,
                "shard {s} holds {c} of 4096 keys"
            );
        }
    }
}
