//! The Fig. 7 attachment-latency benchmark (paper §6.1).
//!
//! Builds two testbeds on the simulated network and measures end-to-end
//! attach latency with a per-module breakdown, for three placements of
//! the SubscriberDB/brokerd (local, us-west-1, us-east-1):
//!
//! * **Baseline (BL)** — UE → eNB → AGW with EPS-AKA against the
//!   SubscriberDB: **two** AGW↔cloud round trips (AIR + ULR).
//! * **CellBricks (CB)** — UE → eNB → bTelco gateway with SAP against
//!   brokerd: **one** round trip.
//!
//! Processing delays are calibrated so the local testbed reproduces the
//! paper's ~70%-processing observation (AGW+Brokerd ≈ 20 ms of ≈ 28 ms),
//! and the cloud one-way latencies are calibrated from the paper's
//! us-west/us-east totals. The *shape* — CB beating BL by one cloud RTT —
//! is the reproduction target.

use crate::brokerd::{Brokerd, BrokerdConfig};
use crate::btelco::{BTelcoGateway, BTelcoGatewayConfig, BrokerContact};
use crate::principal::{BrokerKeys, TelcoKeys, UeKeys};
use crate::sap::QosCap;
use crate::ue::{RecoveryConfig, UeDevice, UeDeviceConfig};
use cellbricks_crypto::cert::CertificateAuthority;
use cellbricks_epc::agw::{Agw, AgwConfig};
use cellbricks_epc::aka::SharedKey;
use cellbricks_epc::enb::Enb;
use cellbricks_epc::subscriber_db::SubscriberDb;
use cellbricks_epc::ue_nas::{UeNas, UeNasConfig};
use cellbricks_net::{Driver, LinkConfig, NetWorld, Topology};
use cellbricks_sim::{SimDuration, SimRng, SimTime};
use cellbricks_telemetry as telemetry;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Where the SubscriberDB / brokerd runs (paper: local testbed or EC2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    /// Display name.
    pub name: &'static str,
    /// One-way AGW↔cloud latency.
    pub one_way: SimDuration,
}

/// The three placements of Fig. 7, with one-way latencies calibrated
/// from the paper's measured totals.
pub const PLACEMENTS: [Placement; 3] = [
    Placement {
        name: "local",
        one_way: SimDuration::from_micros(150),
    },
    Placement {
        name: "us-west-1",
        one_way: SimDuration::from_micros(2100),
    },
    Placement {
        name: "us-east-1",
        one_way: SimDuration::from_micros(34_500),
    },
];

/// Calibrated per-module processing delays.
#[derive(Clone, Debug)]
pub struct ProcProfile {
    /// Baseline UE per-NAS-message cost.
    pub bl_ue: SimDuration,
    /// Baseline AGW per-message cost.
    pub bl_agw: SimDuration,
    /// SubscriberDB per-request cost.
    pub bl_sdb: SimDuration,
    /// CellBricks UE request-build cost (seal + sign).
    pub cb_ue_request: SimDuration,
    /// CellBricks UE response-verify cost.
    pub cb_ue_verify: SimDuration,
    /// CellBricks bTelco gateway per-message cost (incl. signatures).
    pub cb_agw: SimDuration,
    /// brokerd per-request cost (certificate checks, unsealing, sealing).
    pub cb_brokerd: SimDuration,
    /// eNB per-relay cost (same in both architectures).
    pub enb: SimDuration,
}

impl Default for ProcProfile {
    fn default() -> Self {
        Self {
            bl_ue: SimDuration::from_micros(1_500),
            bl_agw: SimDuration::from_micros(3_000),
            bl_sdb: SimDuration::from_micros(2_500),
            cb_ue_request: SimDuration::from_micros(3_000),
            cb_ue_verify: SimDuration::from_micros(2_000),
            cb_agw: SimDuration::from_micros(4_500),
            cb_brokerd: SimDuration::from_micros(11_300),
            enb: SimDuration::from_micros(500),
        }
    }
}

/// One row of the Fig. 7 data: a (placement, architecture) cell with the
/// mean attach latency and its per-module breakdown, all in milliseconds.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Placement name.
    pub placement: &'static str,
    /// `"BL"` (unmodified Magma) or `"CB"` (CellBricks).
    pub variant: &'static str,
    /// Mean end-to-end attach latency.
    pub total_ms: f64,
    /// Mean UE processing per attach.
    pub ue_ms: f64,
    /// Mean eNB processing per attach.
    pub enb_ms: f64,
    /// Mean AGW + SubscriberDB/brokerd processing per attach.
    pub agw_cloud_ms: f64,
    /// Leftover (network) time per attach.
    pub other_ms: f64,
    /// Trials run.
    pub trials: u32,
}

/// Telemetry handles for one Fig. 7 cell: per-phase attach-latency
/// histograms named `fig7.<placement>.<variant>.<phase>_ns`, recorded
/// once per trial so the exported percentiles mirror the figure's
/// breakdown (UE / eNB / AGW+cloud / total).
struct CellHists {
    total: telemetry::Histogram,
    ue: telemetry::Histogram,
    enb: telemetry::Histogram,
    agw_cloud: telemetry::Histogram,
    track: u32,
}

impl CellHists {
    fn register(placement: &str, variant: &str, track: u32) -> Self {
        let name = |phase: &str| format!("fig7.{placement}.{variant}.{phase}_ns");
        Self {
            total: telemetry::histogram(name("total")),
            ue: telemetry::histogram(name("ue_proc")),
            enb: telemetry::histogram(name("enb_proc")),
            agw_cloud: telemetry::histogram(name("agw_cloud_proc")),
            track,
        }
    }

    fn record_trial(
        &self,
        started: SimTime,
        total: SimDuration,
        ue: SimDuration,
        enb: SimDuration,
        agw_cloud: SimDuration,
        label: &str,
    ) {
        self.total.record(total.as_nanos());
        self.ue.record(ue.as_nanos());
        self.enb.record(enb.as_nanos());
        self.agw_cloud.record(agw_cloud.as_nanos());
        telemetry::trace_span(
            format!("attach.{label}"),
            "fig7",
            started.as_nanos(),
            (started + total).as_nanos(),
            self.track,
        );
    }
}

const UE_SIG: Ipv4Addr = Ipv4Addr::new(169, 254, 0, 1);
const AGW_SIG: Ipv4Addr = Ipv4Addr::new(172, 16, 1, 1);
const CLOUD_IP: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 1);

fn build_topology(placement: Placement) -> (Topology, [cellbricks_net::NodeId; 4]) {
    let mut t = Topology::new();
    let ue = t.add_node("ue");
    let enb = t.add_node("enb");
    let agw = t.add_node("agw");
    let cloud = t.add_node("cloud");
    let l_radio = t.add_symmetric_link(
        ue,
        enb,
        LinkConfig::delay_only(SimDuration::from_micros(100)),
    );
    let l_back = t.add_symmetric_link(
        enb,
        agw,
        LinkConfig::delay_only(SimDuration::from_micros(100)),
    );
    let l_cloud = t.add_symmetric_link(agw, cloud, LinkConfig::delay_only(placement.one_way));
    t.add_default_route(ue, l_radio);
    t.add_route(enb, UE_SIG, 32, l_radio);
    t.add_default_route(enb, l_back);
    t.add_route(agw, UE_SIG, 32, l_back);
    t.add_default_route(agw, l_cloud);
    t.add_default_route(cloud, l_cloud);
    (t, [ue, enb, agw, cloud])
}

/// Run `trials` baseline attaches and report the breakdown.
#[must_use]
pub fn run_baseline(
    placement: Placement,
    profile: &ProcProfile,
    trials: u32,
    seed: u64,
) -> Fig7Row {
    let (topology, [ue_node, enb_node, agw_node, cloud_node]) = build_topology(placement);
    let mut world = NetWorld::new(topology, SimRng::new(seed));
    let mut ue = UeNas::new(
        ue_node,
        UeNasConfig {
            imsi: 42,
            key: SharedKey([7; 16]),
            ue_sig: UE_SIG,
            agw_sig: AGW_SIG,
            proc_delay: profile.bl_ue,
        },
    );
    let mut enb = Enb::new(enb_node, profile.enb);
    let mut agw = Agw::new(
        agw_node,
        AgwConfig {
            sig_ip: AGW_SIG,
            sdb_ip: CLOUD_IP,
            pool_base: Ipv4Addr::new(10, 1, 0, 0),
            proc_delay: profile.bl_agw,
        },
    );
    let mut sdb = SubscriberDb::new(cloud_node, CLOUD_IP, profile.bl_sdb, SimRng::new(seed + 1));
    sdb.provision(42, SharedKey([7; 16]));

    let mut cursor = SimTime::ZERO;
    let mut driver = Driver::new();
    // Per-module processing is measured as the delta across the attach
    // window only (detach signalling afterwards is not part of Fig. 7).
    let mut ue_proc = SimDuration::ZERO;
    let mut enb_proc = SimDuration::ZERO;
    let mut agw_cloud_proc = SimDuration::ZERO;
    let hists = CellHists::register(placement.name, "BL", 0);
    let cell = format!("BL.{}", placement.name);
    for i in 0..trials {
        let snap = (
            ue.proc_time,
            enb.control_proc_time,
            agw.proc_time,
            sdb.proc_time,
        );
        ue.start_attach(cursor);
        let until = cursor + SimDuration::from_secs(2);
        driver.run_to(
            &mut world,
            &mut [&mut ue, &mut enb, &mut agw, &mut sdb],
            until,
        );
        assert!(ue.is_attached(), "baseline attach {i} failed");
        let d_ue = ue.proc_time - snap.0;
        let d_enb = enb.control_proc_time - snap.1;
        let d_cloud = (agw.proc_time - snap.2) + (sdb.proc_time - snap.3);
        ue_proc = ue_proc + d_ue;
        enb_proc = enb_proc + d_enb;
        agw_cloud_proc = agw_cloud_proc + d_cloud;
        if let Some(total) = ue.last_attach_latency {
            hists.record_trial(cursor, total, d_ue, d_enb, d_cloud, &cell);
        }
        ue.start_detach(until);
        cursor = until + SimDuration::from_secs(1);
        driver.run_to(
            &mut world,
            &mut [&mut ue, &mut enb, &mut agw, &mut sdb],
            cursor,
        );
    }
    let per_trial = |d: SimDuration| d.as_millis_f64() / f64::from(trials);
    let total_ms = ue.attach_latency_ms.mean();
    let ue_ms = per_trial(ue_proc);
    let enb_ms = per_trial(enb_proc);
    let agw_cloud_ms = per_trial(agw_cloud_proc);
    Fig7Row {
        placement: placement.name,
        variant: "BL",
        total_ms,
        ue_ms,
        enb_ms,
        agw_cloud_ms,
        other_ms: total_ms - ue_ms - enb_ms - agw_cloud_ms,
        trials,
    }
}

/// Run `trials` CellBricks attaches and report the breakdown.
#[must_use]
pub fn run_cellbricks(
    placement: Placement,
    profile: &ProcProfile,
    trials: u32,
    seed: u64,
) -> Fig7Row {
    let (topology, [ue_node, enb_node, agw_node, cloud_node]) = build_topology(placement);
    let mut world = NetWorld::new(topology, SimRng::new(seed));
    let mut rng = SimRng::new(seed + 10);

    let ca = CertificateAuthority::from_seed([0xCA; 32]);
    let broker_keys = BrokerKeys::generate("broker.example", &ca, &mut rng);
    let telco_keys = TelcoKeys::generate("tower-1.example", &ca, &mut rng);
    let ue_keys = UeKeys::generate(&mut rng);

    let mut brokerd = Brokerd::new(
        cloud_node,
        BrokerdConfig {
            ip: CLOUD_IP,
            keys: broker_keys.clone(),
            ca: ca.public_key(),
            proc_delay: profile.cb_brokerd,
            epsilon: 0.005,
            session_retention: SimDuration::from_secs(86_400),
        },
        rng.fork(),
    );
    let (sign_pk, encrypt_pk) = ue_keys.public();
    brokerd.provision(ue_keys.identity(), sign_pk, encrypt_pk, 50_000_000);

    let mut brokers = HashMap::new();
    brokers.insert(
        "broker.example".to_string(),
        BrokerContact {
            ctrl_ip: CLOUD_IP,
            encrypt_pk: broker_keys.encrypt.public_key(),
        },
    );
    let mut telco = BTelcoGateway::new(
        agw_node,
        BTelcoGatewayConfig {
            sig_ip: AGW_SIG,
            pool_base: Ipv4Addr::new(10, 1, 0, 0),
            keys: telco_keys,
            ca: ca.public_key(),
            brokers,
            qos_cap: QosCap {
                max_mbr_bps: 100_000_000,
                qci_supported: vec![9],
                li_capable: true,
            },
            proc_delay: profile.cb_agw,
            report_interval: SimDuration::from_secs(3_600),
            overcount_factor: 1.0,
        },
        rng.fork(),
    );
    let mut enb = Enb::new(enb_node, profile.enb);
    let mut ue = UeDevice::new(
        ue_node,
        UeDeviceConfig {
            ue_sig: UE_SIG,
            keys: ue_keys,
            broker_name: "broker.example".to_string(),
            broker_sign_pk: broker_keys.sign.verifying_key(),
            broker_encrypt_pk: broker_keys.encrypt.public_key(),
            broker_ctrl_ip: CLOUD_IP,
            proc_delay: profile.cb_ue_request,
            verify_delay: profile.cb_ue_verify,
            report_interval: SimDuration::from_secs(3_600),
            attach_retry_after: SimDuration::from_secs(2),
            attach_max_tries: 3,
            recovery: RecoveryConfig::default(),
            plane: None,
        },
        rng.fork(),
    );

    let mut cursor = SimTime::ZERO;
    let mut driver = Driver::new();
    let mut ue_proc = SimDuration::ZERO;
    let mut enb_proc = SimDuration::ZERO;
    let mut agw_cloud_proc = SimDuration::ZERO;
    let hists = CellHists::register(placement.name, "CB", 1);
    let cell = format!("CB.{}", placement.name);
    for i in 0..trials {
        let snap = (
            ue.proc_time,
            enb.control_proc_time,
            telco.proc_time,
            brokerd.proc_time,
        );
        ue.start_attach(cursor, "tower-1.example", AGW_SIG);
        let until = cursor + SimDuration::from_secs(2);
        // Step and snapshot at attach completion (see the baseline loop).
        let mut t = cursor;
        while !ue.is_attached() && t < until {
            let next = t + SimDuration::from_millis(1);
            driver.run_to(
                &mut world,
                &mut [&mut ue, &mut enb, &mut telco, &mut brokerd],
                next,
            );
            t = next;
        }
        assert!(ue.is_attached(), "cellbricks attach {i} failed");
        let d_ue = ue.proc_time - snap.0;
        let d_enb = enb.control_proc_time - snap.1;
        let d_cloud = (telco.proc_time - snap.2) + (brokerd.proc_time - snap.3);
        ue_proc = ue_proc + d_ue;
        enb_proc = enb_proc + d_enb;
        agw_cloud_proc = agw_cloud_proc + d_cloud;
        if let Some(total) = ue.last_attach_latency {
            hists.record_trial(cursor, total, d_ue, d_enb, d_cloud, &cell);
        }
        driver.run_to(
            &mut world,
            &mut [&mut ue, &mut enb, &mut telco, &mut brokerd],
            until,
        );
        ue.detach(until);
        cursor = until + SimDuration::from_secs(1);
        driver.run_to(
            &mut world,
            &mut [&mut ue, &mut enb, &mut telco, &mut brokerd],
            cursor,
        );
    }
    let per_trial = |d: SimDuration| d.as_millis_f64() / f64::from(trials);
    let total_ms = ue.attach_latency_ms.mean();
    let ue_ms = per_trial(ue_proc);
    let enb_ms = per_trial(enb_proc);
    let agw_cloud_ms = per_trial(agw_cloud_proc);
    Fig7Row {
        placement: placement.name,
        variant: "CB",
        total_ms,
        ue_ms,
        enb_ms,
        agw_cloud_ms,
        other_ms: total_ms - ue_ms - enb_ms - agw_cloud_ms,
        trials,
    }
}

/// Produce the full Fig. 7 data set: BL and CB at each placement.
#[must_use]
pub fn fig7_table(trials: u32, seed: u64) -> Vec<Fig7Row> {
    let profile = ProcProfile::default();
    let mut rows = Vec::new();
    for placement in PLACEMENTS {
        rows.push(run_baseline(placement, &profile, trials, seed));
        rows.push(run_cellbricks(placement, &profile, trials, seed));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ProcProfile {
        ProcProfile::default()
    }

    #[test]
    fn baseline_local_matches_paper_magnitude() {
        let row = run_baseline(PLACEMENTS[0], &profile(), 10, 1);
        // Paper Fig. 7 local: ≈ 28–30 ms with processing dominating.
        assert!(
            (25.0..35.0).contains(&row.total_ms),
            "BL local {} ms",
            row.total_ms
        );
        let proc = row.ue_ms + row.enb_ms + row.agw_cloud_ms;
        assert!(proc / row.total_ms > 0.85, "processing dominates locally");
    }

    #[test]
    fn cellbricks_beats_baseline_in_cloud_placements() {
        let p = profile();
        for placement in [PLACEMENTS[1], PLACEMENTS[2]] {
            let bl = run_baseline(placement, &p, 10, 2);
            let cb = run_cellbricks(placement, &p, 10, 2);
            assert!(
                cb.total_ms < bl.total_ms,
                "{}: CB {} vs BL {}",
                placement.name,
                cb.total_ms,
                bl.total_ms
            );
        }
    }

    #[test]
    fn us_west_matches_paper_numbers() {
        let p = profile();
        let bl = run_baseline(PLACEMENTS[1], &p, 20, 3);
        let cb = run_cellbricks(PLACEMENTS[1], &p, 20, 3);
        // Paper: BL 36.85 ms, CB 31.68 ms (−14.0%).
        assert!((bl.total_ms - 36.85).abs() < 4.0, "BL west {}", bl.total_ms);
        assert!((cb.total_ms - 31.68).abs() < 4.0, "CB west {}", cb.total_ms);
        let saving = (bl.total_ms - cb.total_ms) / bl.total_ms;
        assert!(saving > 0.05 && saving < 0.30, "saving {saving}");
    }

    #[test]
    fn us_east_saving_near_40_percent() {
        let p = profile();
        let bl = run_baseline(PLACEMENTS[2], &p, 10, 4);
        let cb = run_cellbricks(PLACEMENTS[2], &p, 10, 4);
        // Paper: BL 166.48 ms, CB 98.62 ms (−40.8%).
        assert!(
            (bl.total_ms - 166.48).abs() < 12.0,
            "BL east {}",
            bl.total_ms
        );
        assert!(
            (cb.total_ms - 98.62).abs() < 10.0,
            "CB east {}",
            cb.total_ms
        );
        let saving = (bl.total_ms - cb.total_ms) / bl.total_ms;
        assert!((saving - 0.408).abs() < 0.08, "saving {saving}");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let row = run_cellbricks(PLACEMENTS[0], &profile(), 5, 5);
        let sum = row.ue_ms + row.enb_ms + row.agw_cloud_ms + row.other_ms;
        assert!((sum - row.total_ms).abs() < 1e-6);
        assert!(row.other_ms >= 0.0);
    }
}
