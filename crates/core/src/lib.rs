//! CellBricks: the paper's contribution.
//!
//! CellBricks (SIGCOMM '21) democratizes cellular access by removing the
//! requirement of pre-established trust between users and access
//! networks. Three mechanisms make that possible, and this crate
//! implements all of them:
//!
//! * **Secure attachment (SAP, §4.1)** — [`sap`]: public-key mutual
//!   authentication between UE, broker and bTelco in a single
//!   UE→bTelco→broker round trip, with the UE identity sealed against
//!   IMSI catchers. [`principal`] holds the key bundles; [`brokerd`] is
//!   the broker service; [`btelco`] the bTelco gateway (reusing the EPC
//!   bearer/pool/accounting substrate).
//! * **Host-driven mobility (§4.2)** — [`ue::UeDevice`] detaches and
//!   re-attaches across bTelcos on its own, letting MPTCP (in
//!   `cellbricks-transport`) carry connections across the IP change.
//! * **Verifiable billing (§4.3)** — [`billing`]: tamper-evident traffic
//!   reports sealed on the UE baseband and at the bTelco PGW, the
//!   broker-side Fig. 5 discrepancy check, and the [`reputation`] system.
//!
//! The [`attach_bench`] harness builds the paper's §6.1 testbed
//! (baseline vs. CellBricks attach latency, Fig. 7). The §6.2 drive-test
//! emulation (Table 1, Figs. 8–10) lives in `cellbricks-apps`, which
//! supplies the application workloads it measures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attach_bench;
pub mod billing;
pub mod broker_plane;
pub mod broker_server;
pub mod brokerd;
pub mod btelco;
pub mod principal;
pub mod reputation;
pub mod sap;
pub mod ue;

pub use billing::{BasebandMeter, TrafficReport};
pub use broker_plane::{BrokerPlane, BrokerPlaneConfig, BrokerRing, ReplicaSite};
pub use broker_server::{BrokerServer, BrokerServerConfig, ServeConfig};
pub use brokerd::{Brokerd, BrokerdConfig};
pub use btelco::{BTelcoGateway, BTelcoGatewayConfig};
pub use principal::{BrokerKeys, Identity, TelcoKeys, UeKeys};
pub use reputation::ReputationSystem;
pub use sap::{QosCap, QosInfo};
pub use ue::{RecoveryConfig, UeDevice, UeDeviceConfig};
