//! The bTelco gateway: a CellBricks-native access gateway.
//!
//! Composes the EPC substrate (bearers, IP pool, PGW accounting) with the
//! SAP attach path: instead of EPS-AKA against a SubscriberDB, it relays
//! `authReqU` to the user's broker with its own QoS capabilities attached
//! — a single round trip. It also emits periodic signed traffic reports
//! per session (the bTelco side of the verifiable-billing protocol), and
//! can be configured dishonest (`overcount_factor`) to exercise the
//! reputation system.

use crate::brokerd::BrokerWire;
use crate::principal::TelcoKeys;
use crate::sap::{self, QosCap, RespTBody};
use bytes::Bytes;
use cellbricks_crypto::ed25519::VerifyingKey;
use cellbricks_crypto::x25519::X25519PublicKey;
use cellbricks_epc::gateway::{BearerTable, IpPool};
use cellbricks_epc::nas::NasMessage;
use cellbricks_net::{Endpoint, EndpointFault, NodeId, Packet, PacketKind};
use cellbricks_sim::{EventQueue, SimDuration, SimRng, SimTime};
use cellbricks_telemetry as telemetry;
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

/// How a bTelco reaches (and seals reports to) a broker.
#[derive(Clone)]
pub struct BrokerContact {
    /// Control-plane address of `brokerd`.
    pub ctrl_ip: Ipv4Addr,
    /// The broker's encryption public key (published, like any service
    /// key, via the PKI/directory the paper assumes).
    pub encrypt_pk: X25519PublicKey,
}

/// bTelco gateway configuration.
#[derive(Clone)]
pub struct BTelcoGatewayConfig {
    /// Signalling address.
    pub sig_ip: Ipv4Addr,
    /// UE address pool base (a /16).
    pub pool_base: Ipv4Addr,
    /// Keys + certificate.
    pub keys: TelcoKeys,
    /// CA public key (to verify broker replies).
    pub ca: VerifyingKey,
    /// Brokers this bTelco can reach, by name.
    pub brokers: HashMap<String, BrokerContact>,
    /// QoS this deployment can enforce.
    pub qos_cap: QosCap,
    /// Per-control-message processing delay (the CellBricks "AGW" slice
    /// of Fig. 7, including the signature/sealing work).
    pub proc_delay: SimDuration,
    /// Billing report interval.
    pub report_interval: SimDuration,
    /// Usage inflation factor: 1.0 = honest; >1 inflates DL usage in
    /// reports (the "dishonest but not malicious" threat of §4.3).
    pub overcount_factor: f64,
}

struct SessionState {
    session_id: u64,
    broker_name: String,
    seq: u32,
    /// Counter snapshots at the last report.
    last_dl: u64,
    last_ul: u64,
    last_cycle_at: SimTime,
}

struct PendingAttach {
    ue_sig: Ipv4Addr,
    broker_name: String,
}

/// The bTelco gateway endpoint.
pub struct BTelcoGateway {
    node: NodeId,
    cfg: BTelcoGatewayConfig,
    pool: IpPool,
    /// Active bearers (public for harness inspection).
    pub bearers: BearerTable,
    /// Keyed and iterated in address order (report emission order must be
    /// deterministic).
    sessions: BTreeMap<Ipv4Addr, SessionState>,
    pending_attach: HashMap<u64, PendingAttach>,
    pending: EventQueue<Packet>,
    next_req_id: u64,
    next_report_at: SimTime,
    /// The process is down (crashed or unreachable) before this instant:
    /// everything arriving earlier is dropped on the floor.
    down_until: SimTime,
    rng: SimRng,
    /// Accumulated control-plane processing time (Fig. 7 accounting).
    pub proc_time: SimDuration,
    /// Attaches completed.
    pub attach_count: u64,
    /// Attaches rejected (by broker or locally).
    pub reject_count: u64,
    /// Data packets dropped for lack of a bearer.
    pub no_bearer_drops: u64,
    /// Injected crash+restart faults taken.
    pub crashes: u64,
    /// Packets dropped while crashed/unreachable.
    pub dropped_while_down: u64,
}

impl BTelcoGateway {
    /// Create the gateway on `node`.
    #[must_use]
    pub fn new(node: NodeId, cfg: BTelcoGatewayConfig, rng: SimRng) -> Self {
        let pool = IpPool::new(cfg.pool_base);
        let next_report_at = SimTime::ZERO + cfg.report_interval;
        Self {
            node,
            cfg,
            pool,
            bearers: BearerTable::new(),
            sessions: BTreeMap::new(),
            pending_attach: HashMap::new(),
            pending: EventQueue::new(),
            next_req_id: 1,
            next_report_at,
            down_until: SimTime::ZERO,
            rng,
            proc_time: SimDuration::ZERO,
            attach_count: 0,
            reject_count: 0,
            no_bearer_drops: 0,
            crashes: 0,
            dropped_while_down: 0,
        }
    }

    /// True while the gateway is crashed or unreachable at `now`.
    #[must_use]
    pub fn is_down(&self, now: SimTime) -> bool {
        now < self.down_until
    }

    /// Number of live billing sessions.
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// The /16 this gateway allocates UE addresses from.
    #[must_use]
    pub fn pool_network(&self) -> Ipv4Addr {
        self.pool.network()
    }

    /// Reset Fig. 7 accounting.
    pub fn reset_accounting(&mut self) {
        self.proc_time = SimDuration::ZERO;
    }

    /// Change the usage-inflation factor at runtime (experiments that
    /// turn a bTelco dishonest mid-run).
    pub fn set_overcount_factor(&mut self, factor: f64) {
        self.cfg.overcount_factor = factor;
    }

    fn emit_control(&mut self, now: SimTime, dst: Ipv4Addr, bytes: Bytes) {
        self.proc_time = self.proc_time + self.cfg.proc_delay;
        let pkt = Packet::control(self.cfg.sig_ip, dst, bytes);
        self.pending.push(now + self.cfg.proc_delay, pkt);
    }

    fn on_sap_attach(&mut self, now: SimTime, ue_sig: Ipv4Addr, broker_id: &str, payload: &[u8]) {
        let Some(req_u) = sap::AuthReqU::decode(payload) else {
            self.reject_count += 1;
            self.emit_control(
                now,
                ue_sig,
                NasMessage::SapAttachReject { ue_sig, cause: 1 }.encode(),
            );
            return;
        };
        let Some(contact) = self.cfg.brokers.get(broker_id) else {
            // Unknown broker: this bTelco cannot serve the user.
            self.reject_count += 1;
            self.emit_control(
                now,
                ue_sig,
                NasMessage::SapAttachReject { ue_sig, cause: 2 }.encode(),
            );
            return;
        };
        let ctrl_ip = contact.ctrl_ip;
        let req_t = sap::telco_wrap_request(&self.cfg.keys, req_u, self.cfg.qos_cap.clone());
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        self.pending_attach.insert(
            req_id,
            PendingAttach {
                ue_sig,
                broker_name: broker_id.to_string(),
            },
        );
        self.emit_control(
            now,
            ctrl_ip,
            BrokerWire::AuthReq {
                req_id,
                req_t: req_t.encode(),
            }
            .encode(),
        );
    }

    fn on_broker_reply(&mut self, now: SimTime, msg: BrokerWire) {
        match msg {
            BrokerWire::AuthOk { req_id, reply } => {
                let Some(pending) = self.pending_attach.remove(&req_id) else {
                    return;
                };
                let Some(reply) = sap::BrokerReply::decode(&reply) else {
                    self.reject_count += 1;
                    return;
                };
                let body: RespTBody =
                    match sap::telco_verify_reply(&self.cfg.keys, &self.cfg.ca, &reply) {
                        Ok(b) => b,
                        Err(_) => {
                            self.reject_count += 1;
                            self.emit_control(
                                now,
                                pending.ue_sig,
                                NasMessage::SapAttachReject {
                                    ue_sig: pending.ue_sig,
                                    cause: 3,
                                }
                                .encode(),
                            );
                            return;
                        }
                    };
                let Some(ue_ip) = self.pool.allocate() else {
                    self.reject_count += 1;
                    self.emit_control(
                        now,
                        pending.ue_sig,
                        NasMessage::SapAttachReject {
                            ue_sig: pending.ue_sig,
                            cause: 4,
                        }
                        .encode(),
                    );
                    return;
                };
                // The bearer is keyed by the UE *alias* — the bTelco never
                // learns the user's identity.
                let bearer_id = self.bearers.establish(
                    body.ue_alias,
                    ue_ip,
                    pending.ue_sig,
                    Some(body.qos.mbr_bps as f64),
                    now,
                );
                self.sessions.insert(
                    ue_ip,
                    SessionState {
                        session_id: body.session_id,
                        broker_name: pending.broker_name,
                        seq: 0,
                        last_dl: 0,
                        last_ul: 0,
                        last_cycle_at: now,
                    },
                );
                self.attach_count += 1;
                self.emit_control(
                    now,
                    pending.ue_sig,
                    NasMessage::SapAttachAccept {
                        ue_sig: pending.ue_sig,
                        ue_ip,
                        bearer_id,
                        payload: Bytes::from(reply.resp_u.encode().to_vec()),
                    }
                    .encode(),
                );
            }
            BrokerWire::AuthErr { req_id, .. } => {
                if let Some(pending) = self.pending_attach.remove(&req_id) {
                    self.reject_count += 1;
                    self.emit_control(
                        now,
                        pending.ue_sig,
                        NasMessage::SapAttachReject {
                            ue_sig: pending.ue_sig,
                            cause: 5,
                        }
                        .encode(),
                    );
                }
            }
            _ => {}
        }
    }

    fn on_detach(&mut self, now: SimTime, ue_ip: Ipv4Addr) {
        // Final report for the closing cycle, then release.
        self.emit_session_report(now, ue_ip);
        if let Some(b) = self.bearers.release(ue_ip) {
            self.pool.release(b.ue_ip);
        }
        self.sessions.remove(&ue_ip);
    }

    fn emit_session_report(&mut self, now: SimTime, ue_ip: Ipv4Addr) {
        let Some(bearer) = self.bearers.get(ue_ip) else {
            return;
        };
        let (dl_total, ul_total) = (bearer.dl_bytes, bearer.ul_bytes);
        let Some(session) = self.sessions.get_mut(&ue_ip) else {
            return;
        };
        let dl = dl_total - session.last_dl;
        let ul = ul_total - session.last_ul;
        let elapsed = now.saturating_since(session.last_cycle_at);
        let secs = elapsed.as_secs_f64().max(1e-9);
        // A dishonest bTelco inflates its reported downlink usage.
        let reported_dl = (dl as f64 * self.cfg.overcount_factor) as u64;
        let report = crate::billing::TrafficReport {
            session_id: session.session_id,
            seq: session.seq,
            ul_bytes: ul,
            dl_bytes: reported_dl,
            duration_ms: (secs * 1e3) as u64,
            dl_loss_ppm: 0,
            ul_loss_ppm: 0,
            avg_dl_kbps: (reported_dl as f64 * 8.0 / secs / 1e3) as u32,
            avg_ul_kbps: (ul as f64 * 8.0 / secs / 1e3) as u32,
            delay_ms: 0,
        };
        session.seq += 1;
        session.last_dl = dl_total;
        session.last_ul = ul_total;
        session.last_cycle_at = now;
        let session_id = session.session_id;
        let broker_name = session.broker_name.clone();
        let Some(contact) = self.cfg.brokers.get(&broker_name) else {
            return;
        };
        let ctrl_ip = contact.ctrl_ip;
        let sealed = report.sign_and_seal(&self.cfg.keys.sign, &contact.encrypt_pk, &mut self.rng);
        let msg = BrokerWire::Report {
            session_id,
            from_ue: false,
            sealed,
        };
        let pkt = Packet::control(self.cfg.sig_ip, ctrl_ip, msg.encode());
        self.pending.push(now, pkt);
    }
}

impl Endpoint for BTelcoGateway {
    fn node(&self) -> NodeId {
        self.node
    }

    fn handle_packet(&mut self, now: SimTime, pkt: Packet, out: &mut Vec<Packet>) {
        if now < self.down_until {
            self.dropped_while_down += 1;
            return;
        }
        match &pkt.kind {
            PacketKind::Control(bytes) => {
                if pkt.dst != self.cfg.sig_ip {
                    out.push(pkt.clone());
                    return;
                }
                if let Some(msg) = NasMessage::decode(bytes) {
                    match msg {
                        NasMessage::SapAttachRequest {
                            ue_sig,
                            broker_id,
                            payload,
                        } => self.on_sap_attach(now, ue_sig, &broker_id, &payload),
                        NasMessage::DetachRequest { .. } => {
                            // The UE is identified by its signalling
                            // address (it has no IMSI in CellBricks).
                            let ip = self
                                .bearers
                                .iter()
                                .find(|b| b.ue_sig == pkt.src)
                                .map(|b| b.ue_ip);
                            if let Some(ip) = ip {
                                self.on_detach(now, ip);
                            }
                        }
                        _ => {}
                    }
                } else if let Some(msg) = BrokerWire::decode(bytes) {
                    self.on_broker_reply(now, msg);
                }
            }
            // Data plane: PGW forwarding with accounting and MBR
            // enforcement of the broker-granted qosInfo (paper §4.1:
            // "B can then send specific parameter values (qosInfo)"
            // which T implements).
            _ => {
                let size = pkt.wire_size();
                if let Some(b) = self.bearers.get_mut(pkt.dst) {
                    if b.police_dl(now, size) {
                        b.dl_bytes += u64::from(size);
                        out.push(pkt);
                    }
                } else if let Some(b) = self.bearers.get_mut(pkt.src) {
                    b.ul_bytes += u64::from(size);
                    out.push(pkt);
                } else {
                    self.no_bearer_drops += 1;
                }
            }
        }
    }

    fn poll_at(&self) -> Option<SimTime> {
        let report_at = if self.sessions.is_empty() {
            None
        } else {
            Some(self.next_report_at)
        };
        match (self.pending.peek_time(), report_at) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
        // While down, timers only fire once the process is back up.
        .map(|t| t.max(self.down_until))
    }

    fn poll(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        if now < self.down_until {
            return;
        }
        if now >= self.next_report_at {
            let ips: Vec<Ipv4Addr> = self.sessions.keys().copied().collect();
            for ip in ips {
                self.emit_session_report(now, ip);
            }
            self.next_report_at = now + self.cfg.report_interval;
        }
        while let Some((_, pkt)) = self.pending.pop_due(now) {
            out.push(pkt);
        }
    }

    fn inject_fault(&mut self, now: SimTime, fault: &EndpointFault) {
        match *fault {
            EndpointFault::CrashRestart { restart_at } => {
                // Volatile state dies with the process: sessions, bearers,
                // metering counters, in-flight attach relays and staged
                // output. The address pool restarts too — a recovering UE
                // gets a fresh allocation. The UE-side sealed meter is
                // what keeps billing honest across this (paper §4.3).
                self.crashes += 1;
                telemetry::counter("core.btelco.crashes").inc();
                self.sessions.clear();
                self.bearers = BearerTable::new();
                self.pending_attach.clear();
                self.pending = EventQueue::new();
                self.pool = IpPool::new(self.cfg.pool_base);
                self.down_until = restart_at.max(now);
                self.next_report_at = self.down_until + self.cfg.report_interval;
            }
            EndpointFault::Unavailable { until } => {
                telemetry::counter("core.btelco.unavailable_windows").inc();
                self.down_until = until.max(self.down_until);
            }
        }
    }
}
