//! `brokerd` — the broker service (paper §5: implemented as part of
//! Magma's Orc8r, deployed in the cloud).
//!
//! Handles SAP authorization requests from bTelcos (one round trip),
//! maintains the subscriber database holding each user's broker-issued
//! keys, ingests the two independent streams of sealed traffic reports,
//! runs the Fig. 5 discrepancy check, and feeds the reputation system
//! that gates future authorizations.

use crate::billing::{verify_cycle, CycleVerdict, TrafficReport};
use crate::principal::{BrokerKeys, Identity};
use crate::reputation::ReputationSystem;
use crate::sap::{self, AuthReqT, SubscriberEntry};
use bytes::Bytes;
use cellbricks_crypto::ed25519::{verify_batch, BatchItem, VerifyingKey};
use cellbricks_crypto::x25519::X25519PublicKey;
use cellbricks_epc::wire::{Reader, Writer};
use cellbricks_net::{Endpoint, EndpointFault, NodeId, Packet, PacketKind};
use cellbricks_sim::{EventQueue, SimDuration, SimRng, SimTime};
use cellbricks_telemetry as telemetry;
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Control-plane messages between bTelcos/UEs and the broker.
#[derive(Clone, Debug, PartialEq)]
pub enum BrokerWire {
    /// bTelco → broker: an `authReqT` needing authorization.
    AuthReq {
        /// Correlation id chosen by the bTelco.
        req_id: u64,
        /// Encoded [`AuthReqT`].
        req_t: Bytes,
    },
    /// Broker → bTelco: authorization granted.
    AuthOk {
        /// Correlation id.
        req_id: u64,
        /// Encoded [`sap::BrokerReply`].
        reply: Bytes,
    },
    /// Broker → bTelco: authorization refused.
    AuthErr {
        /// Correlation id.
        req_id: u64,
        /// Failure code.
        code: u8,
    },
    /// UE or bTelco → broker: a sealed traffic report for a session.
    Report {
        /// Billing session.
        session_id: u64,
        /// True if this is the UE's report, false for the bTelco's.
        from_ue: bool,
        /// Sealed, signed [`TrafficReport`].
        sealed: Bytes,
    },
}

impl BrokerWire {
    /// Encode to wire bytes.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        match self {
            BrokerWire::AuthReq { req_id, req_t } => {
                w.put_u8(1).put_u64(*req_id).put_bytes(req_t);
            }
            BrokerWire::AuthOk { req_id, reply } => {
                w.put_u8(2).put_u64(*req_id).put_bytes(reply);
            }
            BrokerWire::AuthErr { req_id, code } => {
                w.put_u8(3).put_u64(*req_id).put_u8(*code);
            }
            BrokerWire::Report {
                session_id,
                from_ue,
                sealed,
            } => {
                w.put_u8(4)
                    .put_u64(*session_id)
                    .put_u8(u8::from(*from_ue))
                    .put_bytes(sealed);
            }
        }
        w.finish()
    }

    /// Decode from wire bytes.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<BrokerWire> {
        let mut r = Reader::new(bytes);
        let msg = match r.get_u8()? {
            1 => BrokerWire::AuthReq {
                req_id: r.get_u64()?,
                req_t: Bytes::from(r.get_bytes()?),
            },
            2 => BrokerWire::AuthOk {
                req_id: r.get_u64()?,
                reply: Bytes::from(r.get_bytes()?),
            },
            3 => BrokerWire::AuthErr {
                req_id: r.get_u64()?,
                code: r.get_u8()?,
            },
            4 => BrokerWire::Report {
                session_id: r.get_u64()?,
                from_ue: r.get_u8()? != 0,
                sealed: Bytes::from(r.get_bytes()?),
            },
            _ => return None,
        };
        if !r.is_empty() {
            return None;
        }
        Some(msg)
    }
}

/// A subscriber record in the broker's database.
pub struct SubscriberRecord {
    /// UE signing public key.
    pub sign_pk: VerifyingKey,
    /// UE encryption public key.
    pub encrypt_pk: X25519PublicKey,
    /// Plan cap on MBR, bits/s.
    pub plan_mbr_bps: u64,
    /// Billing alias handed to bTelcos.
    pub alias: u64,
}

/// Per-session billing state.
struct Session {
    user: Identity,
    telco: Identity,
    telco_sign_pk: VerifyingKey,
    pending_ue: HashMap<u32, TrafficReport>,
    pending_telco: HashMap<u32, TrafficReport>,
    /// Downlink bytes the broker accepts as billable.
    pub settled_dl: u64,
    /// Uplink bytes the broker accepts as billable.
    pub settled_ul: u64,
}

/// Broker configuration.
#[derive(Clone)]
pub struct BrokerdConfig {
    /// Control-plane address.
    pub ip: Ipv4Addr,
    /// Keys + certificate.
    pub keys: BrokerKeys,
    /// The CA all certificates chain to.
    pub ca: VerifyingKey,
    /// Per-request processing delay (covers signature checks, sealing,
    /// DB lookups — the "Brokerd" slice of Fig. 7).
    pub proc_delay: SimDuration,
    /// Fig. 5 tolerance ratio ε.
    pub epsilon: f64,
}

/// The broker service endpoint.
pub struct Brokerd {
    node: NodeId,
    cfg: BrokerdConfig,
    subscribers: HashMap<Identity, SubscriberRecord>,
    /// The reputation system gating admissions.
    pub reputation: ReputationSystem,
    sessions: HashMap<u64, Session>,
    /// Nonces seen in authorized requests: a replayed `authReqT` (captured
    /// on the wire and re-submitted, e.g. by a bTelco trying to open ghost
    /// billing sessions) is rejected — the UE nonce in `authVec` is the
    /// anti-replay anchor the paper describes (§4.1).
    seen_nonces: HashSet<[u8; 16]>,
    pending: EventQueue<Packet>,
    /// The service is single-threaded: requests queue behind this.
    busy_until: SimTime,
    /// Unreachable before this instant: requests and reports arriving
    /// earlier are dropped (the sender's retry machinery must cover it).
    down_until: SimTime,
    rng: SimRng,
    next_session: u64,
    next_alias: u64,
    /// Accumulated processing time (Fig. 7 accounting).
    pub proc_time: SimDuration,
    /// Authorizations granted.
    pub auth_ok: u64,
    /// Authorizations refused.
    pub auth_err: u64,
    /// Reports that failed verification (tampered / wrong key).
    pub bad_reports: u64,
    /// Billing cycles cross-checked.
    pub cycles_checked: u64,
    /// Packets dropped while unreachable.
    pub dropped_while_down: u64,
}

impl Brokerd {
    /// Create the broker service on `node`.
    #[must_use]
    pub fn new(node: NodeId, cfg: BrokerdConfig, rng: SimRng) -> Self {
        Self {
            node,
            cfg,
            subscribers: HashMap::new(),
            reputation: ReputationSystem::new(),
            sessions: HashMap::new(),
            seen_nonces: HashSet::new(),
            pending: EventQueue::new(),
            busy_until: SimTime::ZERO,
            down_until: SimTime::ZERO,
            rng,
            next_session: 1,
            next_alias: 1,
            proc_time: SimDuration::ZERO,
            auth_ok: 0,
            auth_err: 0,
            bad_reports: 0,
            cycles_checked: 0,
            dropped_while_down: 0,
        }
    }

    /// True while the broker is unreachable at `now`.
    #[must_use]
    pub fn is_down(&self, now: SimTime) -> bool {
        now < self.down_until
    }

    /// Provision a subscriber (issue keys out of band; store publics).
    pub fn provision(
        &mut self,
        id: Identity,
        sign_pk: VerifyingKey,
        encrypt_pk: X25519PublicKey,
        plan_mbr_bps: u64,
    ) {
        let alias = self.next_alias;
        self.next_alias += 1;
        self.subscribers.insert(
            id,
            SubscriberRecord {
                sign_pk,
                encrypt_pk,
                plan_mbr_bps,
                alias,
            },
        );
    }

    /// Number of provisioned subscribers.
    #[must_use]
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// Billable (settled) downlink+uplink bytes for a session.
    #[must_use]
    pub fn settled_bytes(&self, session_id: u64) -> Option<(u64, u64)> {
        self.sessions
            .get(&session_id)
            .map(|s| (s.settled_dl, s.settled_ul))
    }

    /// Reset Fig. 7 accounting.
    pub fn reset_accounting(&mut self) {
        self.proc_time = SimDuration::ZERO;
    }

    fn send_later(&mut self, now: SimTime, dst: Ipv4Addr, msg: BrokerWire) {
        self.proc_time = self.proc_time + self.cfg.proc_delay;
        // Single-threaded service: requests queue behind one another,
        // which is what bounds attach throughput at scale.
        let start = self.busy_until.max(now);
        let done = start + self.cfg.proc_delay;
        self.busy_until = done;
        let pkt = Packet::control(self.cfg.ip, dst, msg.encode());
        self.pending.push(done, pkt);
    }

    fn handle_auth(&mut self, now: SimTime, src: Ipv4Addr, req_id: u64, req_t: &[u8]) {
        let Some(req) = AuthReqT::decode(req_t) else {
            self.auth_err += 1;
            telemetry::counter("core.brokerd.auth_rejected").inc();
            self.send_later(now, src, BrokerWire::AuthErr { req_id, code: 0 });
            return;
        };
        let session_id = self.next_session;
        let subscribers = &self.subscribers;
        let reputation = &self.reputation;
        let result = sap::broker_process(
            &self.cfg.keys,
            &self.cfg.ca,
            &req,
            |id| {
                subscribers.get(&id).map(|rec| SubscriberEntry {
                    sign_pk: rec.sign_pk,
                    encrypt_pk: rec.encrypt_pk,
                    plan_mbr_bps: rec.plan_mbr_bps,
                    suspect: reputation.is_suspect(id),
                    alias: rec.alias,
                    lawful_intercept: false,
                })
            },
            |telco| reputation.admit(telco),
            session_id,
            &mut self.rng,
        );
        match result {
            Ok((reply, vec, _qos, _ss)) => {
                // Replay protection: each authVec nonce authorizes once.
                if !self.seen_nonces.insert(vec.nonce) {
                    self.auth_err += 1;
                    telemetry::counter("core.brokerd.auth_rejected").inc();
                    self.send_later(
                        now,
                        src,
                        BrokerWire::AuthErr {
                            req_id,
                            code: sap::SapError::NonceMismatch as u8,
                        },
                    );
                    return;
                }
                self.next_session += 1;
                self.auth_ok += 1;
                telemetry::counter("core.brokerd.auth_granted").inc();
                telemetry::trace_instant("brokerd.auth_ok", "billing", now.as_nanos());
                self.sessions.insert(
                    session_id,
                    Session {
                        user: vec.id_u,
                        telco: vec.id_t,
                        telco_sign_pk: req.t_cert.key,
                        pending_ue: HashMap::new(),
                        pending_telco: HashMap::new(),
                        settled_dl: 0,
                        settled_ul: 0,
                    },
                );
                self.send_later(
                    now,
                    src,
                    BrokerWire::AuthOk {
                        req_id,
                        reply: reply.encode(),
                    },
                );
            }
            Err(e) => {
                self.auth_err += 1;
                telemetry::counter("core.brokerd.auth_rejected").inc();
                self.send_later(
                    now,
                    src,
                    BrokerWire::AuthErr {
                        req_id,
                        code: e as u8,
                    },
                );
            }
        }
    }

    /// The key a report for `session_id`/`from_ue` must verify under.
    fn reporter_pk(&self, session_id: u64, from_ue: bool) -> Option<VerifyingKey> {
        let session = self.sessions.get(&session_id)?;
        if from_ue {
            self.subscribers.get(&session.user).map(|rec| rec.sign_pk)
        } else {
            Some(session.telco_sign_pk)
        }
    }

    fn handle_report(&mut self, session_id: u64, from_ue: bool, sealed: &[u8]) {
        // Touch the rejection counter up front so it is registered (at 0)
        // even in runs where every report verifies.
        let claims_rejected = telemetry::counter("core.billing.claims_rejected");
        let Some(reporter_pk) = self.reporter_pk(session_id, from_ue) else {
            self.bad_reports += 1;
            claims_rejected.inc();
            return;
        };
        match TrafficReport::open_and_verify(sealed, &self.cfg.keys.encrypt, &reporter_pk) {
            Some(report) => self.accept_report(session_id, from_ue, report),
            None => self.reject_unverifiable(session_id, from_ue),
        }
    }

    fn reject_unverifiable(&mut self, session_id: u64, from_ue: bool) {
        self.bad_reports += 1;
        telemetry::counter("core.billing.claims_rejected").inc();
        if from_ue {
            // A UE submitting unverifiable reports goes on the
            // suspect list (paper §4.3).
            if let Some(session) = self.sessions.get(&session_id) {
                self.reputation.mark_suspect(session.user);
            }
        }
    }

    /// Book a report whose signature has already been checked (either
    /// individually or as part of an Ed25519 batch).
    fn accept_report(&mut self, session_id: u64, from_ue: bool, report: TrafficReport) {
        let Some(session) = self.sessions.get_mut(&session_id) else {
            return;
        };
        if report.session_id != session_id {
            self.bad_reports += 1;
            telemetry::counter("core.billing.claims_rejected").inc();
            return;
        }
        let seq = report.seq;
        telemetry::counter("core.billing.claims_issued").inc();
        if from_ue {
            session.pending_ue.insert(seq, report);
        } else {
            session.pending_telco.insert(seq, report);
        }
        // When both sides of a cycle are present, cross-check (Fig. 5).
        if let (Some(ue_r), Some(t_r)) = (
            session.pending_ue.get(&seq),
            session.pending_telco.get(&seq),
        ) {
            let verdict = verify_cycle(ue_r, t_r, self.cfg.epsilon);
            match verdict {
                CycleVerdict::Consistent => {
                    telemetry::counter("core.billing.claims_verified").inc();
                    session.settled_dl += t_r.dl_bytes;
                    session.settled_ul += t_r.ul_bytes;
                }
                CycleVerdict::Mismatch { .. } => {
                    telemetry::counter("core.billing.claims_mismatched").inc();
                    // Settle conservatively at the UE's figure; the
                    // mismatch feeds the telco's reputation.
                    session.settled_dl += ue_r.dl_bytes;
                    session.settled_ul += ue_r.ul_bytes;
                }
            }
            let telco = session.telco;
            session.pending_ue.remove(&seq);
            session.pending_telco.remove(&seq);
            self.cycles_checked += 1;
            self.reputation.record_cycle(telco, verdict);
        }
    }

    /// Opt-in bulk ingest for traffic reports: unseal every report, then
    /// check all of their signatures as one Ed25519 batch
    /// ([`cellbricks_crypto::verify_batch`]) instead of one Strauss
    /// chain each. Reports that fail structurally (unknown session,
    /// unsealing or parse failure) — and every report of a batch whose
    /// combined check fails — go through the per-report path, so
    /// accounting, suspect-marking and telemetry end up exactly as if
    /// each report had been handled individually.
    pub fn ingest_reports(&mut self, reports: &[(u64, bool, Bytes)]) {
        // Same eager registration as `handle_report`.
        let _ = telemetry::counter("core.billing.claims_rejected");
        let mut verifiable = Vec::with_capacity(reports.len());
        let mut structural_failures = Vec::new();
        for (i, (session_id, from_ue, sealed)) in reports.iter().enumerate() {
            let opened = self.reporter_pk(*session_id, *from_ue).and_then(|pk| {
                TrafficReport::open_deferring_verify(sealed, &self.cfg.keys.encrypt)
                    .map(|(report, body, sig)| (report, body, sig, pk))
            });
            match opened {
                Some(item) => verifiable.push((i, item)),
                None => structural_failures.push(i),
            }
        }
        let batch_ok = {
            let items: Vec<BatchItem<'_>> = verifiable
                .iter()
                .map(|(_, (_, body, sig, pk))| BatchItem {
                    msg: body,
                    sig: *sig,
                    key: *pk,
                })
                .collect();
            verify_batch(&items)
        };
        for (i, (report, _, _, _)) in verifiable {
            let (session_id, from_ue, ref sealed) = reports[i];
            if batch_ok {
                self.accept_report(session_id, from_ue, report);
            } else {
                // At least one signature in the batch is bad; re-check
                // each report individually to attribute the failures.
                self.handle_report(session_id, from_ue, sealed);
            }
        }
        for i in structural_failures {
            let (session_id, from_ue, ref sealed) = reports[i];
            self.handle_report(session_id, from_ue, sealed);
        }
    }
}

impl Endpoint for Brokerd {
    fn node(&self) -> NodeId {
        self.node
    }

    fn handle_packet(&mut self, now: SimTime, pkt: Packet, _out: &mut Vec<Packet>) {
        if now < self.down_until {
            self.dropped_while_down += 1;
            return;
        }
        let PacketKind::Control(bytes) = &pkt.kind else {
            return;
        };
        if pkt.dst != self.cfg.ip {
            return;
        }
        match BrokerWire::decode(bytes) {
            Some(BrokerWire::AuthReq { req_id, req_t }) => {
                self.handle_auth(now, pkt.src, req_id, &req_t);
            }
            Some(BrokerWire::Report {
                session_id,
                from_ue,
                sealed,
            }) => {
                self.handle_report(session_id, from_ue, &sealed);
            }
            _ => {}
        }
    }

    fn poll_at(&self) -> Option<SimTime> {
        // While down, staged replies only leave once the service is back.
        self.pending.peek_time().map(|t| t.max(self.down_until))
    }

    fn poll(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        if now < self.down_until {
            return;
        }
        while let Some((_, pkt)) = self.pending.pop_due(now) {
            out.push(pkt);
        }
    }

    fn inject_fault(&mut self, now: SimTime, fault: &EndpointFault) {
        match *fault {
            EndpointFault::Unavailable { until } => {
                telemetry::counter("core.brokerd.unavailable_windows").inc();
                self.down_until = until.max(self.down_until);
            }
            EndpointFault::CrashRestart { restart_at } => {
                // The subscriber DB and billing sessions are durable (the
                // broker is a cloud service over persistent storage); only
                // the in-memory request queue dies with the process.
                telemetry::counter("core.brokerd.crashes").inc();
                self.pending = EventQueue::new();
                self.busy_until = SimTime::ZERO;
                self.down_until = restart_at.max(now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::principal::{BrokerKeys, TelcoKeys, UeKeys};
    use crate::sap::QosCap;
    use cellbricks_crypto::cert::CertificateAuthority;
    use cellbricks_net::Endpoint;

    #[test]
    fn replayed_auth_request_rejected() {
        let mut rng = SimRng::new(3);
        let ca = CertificateAuthority::from_seed([0xCA; 32]);
        let broker_keys = BrokerKeys::generate("broker.example", &ca, &mut rng);
        let telco_keys = TelcoKeys::generate("tower-1.example", &ca, &mut rng);
        let ue_keys = UeKeys::generate(&mut rng);
        let mut brokerd = Brokerd::new(
            cellbricks_net::NodeId(0),
            BrokerdConfig {
                ip: Ipv4Addr::new(172, 16, 0, 1),
                keys: broker_keys.clone(),
                ca: ca.public_key(),
                proc_delay: SimDuration::ZERO,
                epsilon: 0.01,
            },
            rng.fork(),
        );
        let (spk, epk) = ue_keys.public();
        brokerd.provision(ue_keys.identity(), spk, epk, 1_000_000);
        let (req_u, _) = sap::ue_build_request(
            &ue_keys,
            "broker.example",
            &broker_keys.encrypt.public_key(),
            telco_keys.identity(),
            &mut rng,
        );
        let req_t = sap::telco_wrap_request(
            &telco_keys,
            req_u,
            QosCap {
                max_mbr_bps: 1_000_000,
                qci_supported: vec![9],
                li_capable: true,
            },
        );
        let wire = BrokerWire::AuthReq {
            req_id: 1,
            req_t: req_t.encode(),
        }
        .encode();
        let src = Ipv4Addr::new(172, 16, 1, 1);
        let dst = Ipv4Addr::new(172, 16, 0, 1);
        let mut sink = Vec::new();
        brokerd.handle_packet(
            SimTime::ZERO,
            Packet::control(src, dst, wire.clone()),
            &mut sink,
        );
        assert_eq!(brokerd.auth_ok, 1);
        // The exact same (captured) request again: refused.
        brokerd.handle_packet(SimTime::ZERO, Packet::control(src, dst, wire), &mut sink);
        assert_eq!(brokerd.auth_ok, 1, "replay must not create a session");
        assert_eq!(brokerd.auth_err, 1);
    }

    /// A world with one UE attached (session id 1), for report tests.
    fn attached_world() -> (Brokerd, UeKeys, TelcoKeys, BrokerKeys, SimRng) {
        let mut rng = SimRng::new(7);
        let ca = CertificateAuthority::from_seed([0xCA; 32]);
        let broker_keys = BrokerKeys::generate("broker.example", &ca, &mut rng);
        let telco_keys = TelcoKeys::generate("tower-1.example", &ca, &mut rng);
        let ue_keys = UeKeys::generate(&mut rng);
        let mut brokerd = Brokerd::new(
            cellbricks_net::NodeId(0),
            BrokerdConfig {
                ip: Ipv4Addr::new(172, 16, 0, 1),
                keys: broker_keys.clone(),
                ca: ca.public_key(),
                proc_delay: SimDuration::ZERO,
                epsilon: 0.01,
            },
            rng.fork(),
        );
        let (spk, epk) = ue_keys.public();
        brokerd.provision(ue_keys.identity(), spk, epk, 1_000_000);
        let (req_u, _) = sap::ue_build_request(
            &ue_keys,
            "broker.example",
            &broker_keys.encrypt.public_key(),
            telco_keys.identity(),
            &mut rng,
        );
        let req_t = sap::telco_wrap_request(
            &telco_keys,
            req_u,
            QosCap {
                max_mbr_bps: 1_000_000,
                qci_supported: vec![9],
                li_capable: true,
            },
        );
        let wire = BrokerWire::AuthReq {
            req_id: 1,
            req_t: req_t.encode(),
        }
        .encode();
        let mut sink = Vec::new();
        brokerd.handle_packet(
            SimTime::ZERO,
            Packet::control(
                Ipv4Addr::new(172, 16, 1, 1),
                Ipv4Addr::new(172, 16, 0, 1),
                wire,
            ),
            &mut sink,
        );
        assert_eq!(brokerd.auth_ok, 1);
        (brokerd, ue_keys, telco_keys, broker_keys, rng)
    }

    fn report(dl_bytes: u64) -> TrafficReport {
        TrafficReport {
            session_id: 1,
            seq: 0,
            ul_bytes: 10,
            dl_bytes,
            duration_ms: 1_000,
            dl_loss_ppm: 0,
            ul_loss_ppm: 0,
            avg_dl_kbps: 0,
            avg_ul_kbps: 0,
            delay_ms: 0,
        }
    }

    #[test]
    fn batch_ingest_settles_a_cycle() {
        let (mut brokerd, ue_keys, telco_keys, broker_keys, mut rng) = attached_world();
        let broker_pk = broker_keys.encrypt.public_key();
        let ue_sealed = report(1_000).sign_and_seal(&ue_keys.sign, &broker_pk, &mut rng);
        let t_sealed = report(1_000).sign_and_seal(&telco_keys.sign, &broker_pk, &mut rng);
        brokerd.ingest_reports(&[(1, true, ue_sealed), (1, false, t_sealed)]);
        assert_eq!(brokerd.cycles_checked, 1);
        assert_eq!(brokerd.settled_bytes(1), Some((1_000, 10)));
        assert_eq!(brokerd.bad_reports, 0);
    }

    #[test]
    fn batch_ingest_bad_signature_falls_back_to_sequential() {
        let (mut brokerd, ue_keys, telco_keys, broker_keys, mut rng) = attached_world();
        let broker_pk = broker_keys.encrypt.public_key();
        // Forged UE report: seals fine, but is signed by the wrong key,
        // so only the signature check can catch it — first the combined
        // batch, then the per-report re-check that attributes it.
        let forger = UeKeys::generate(&mut rng);
        let forged = report(500).sign_and_seal(&forger.sign, &broker_pk, &mut rng);
        let t_sealed = report(1_000).sign_and_seal(&telco_keys.sign, &broker_pk, &mut rng);
        brokerd.ingest_reports(&[(1, true, forged), (1, false, t_sealed)]);
        assert_eq!(brokerd.bad_reports, 1, "forged report must be rejected");
        assert_eq!(brokerd.cycles_checked, 0, "no cycle without the UE side");
        assert!(
            brokerd.reputation.is_suspect(ue_keys.identity()),
            "unverifiable UE report marks the subscriber suspect"
        );
    }

    #[test]
    fn batch_ingest_unknown_session_rejected() {
        let (mut brokerd, ue_keys, _telco_keys, broker_keys, mut rng) = attached_world();
        let broker_pk = broker_keys.encrypt.public_key();
        let mut r = report(100);
        r.session_id = 99;
        let sealed = r.sign_and_seal(&ue_keys.sign, &broker_pk, &mut rng);
        brokerd.ingest_reports(&[(99, true, sealed)]);
        assert_eq!(brokerd.bad_reports, 1);
        assert_eq!(brokerd.cycles_checked, 0);
    }

    #[test]
    fn broker_wire_roundtrip() {
        let msgs = [
            BrokerWire::AuthReq {
                req_id: 7,
                req_t: Bytes::from_static(b"req"),
            },
            BrokerWire::AuthOk {
                req_id: 7,
                reply: Bytes::from_static(b"reply"),
            },
            BrokerWire::AuthErr { req_id: 7, code: 3 },
            BrokerWire::Report {
                session_id: 9,
                from_ue: true,
                sealed: Bytes::from_static(b"sealed"),
            },
        ];
        for m in &msgs {
            assert_eq!(BrokerWire::decode(&m.encode()).as_ref(), Some(m));
        }
        assert!(BrokerWire::decode(&[77]).is_none());
    }
}
