//! `brokerd` — the broker service (paper §5: implemented as part of
//! Magma's Orc8r, deployed in the cloud).
//!
//! Handles SAP authorization requests from bTelcos (one round trip),
//! maintains the subscriber database holding each user's broker-issued
//! keys, ingests the two independent streams of sealed traffic reports,
//! runs the Fig. 5 discrepancy check, and feeds the reputation system
//! that gates future authorizations.
//!
//! The durable slice of that state (subscriber DB, billing sessions,
//! reputation, anti-replay window) lives in a [`BrokerStore`] behind an
//! `Arc<Mutex<_>>`: a standalone broker owns a private store, while a
//! replica pair in a [`crate::broker_plane::BrokerPlane`] shares one —
//! the paper's broker is a cloud service over replicated storage, so
//! failover to the standby replica resolves the same subscribers,
//! sessions and seen nonces.

use crate::billing::{verify_cycle, CycleVerdict, TrafficReport};
use crate::principal::{BrokerKeys, Identity};
use crate::reputation::ReputationSystem;
use crate::sap::{self, AuthReqT, SubscriberEntry};
use bytes::Bytes;
use cellbricks_crypto::ed25519::{verify_batch, BatchItem, VerifyingKey};
use cellbricks_crypto::x25519::X25519PublicKey;
use cellbricks_epc::wire::{Reader, Writer};
use cellbricks_net::{Endpoint, EndpointFault, NodeId, Packet, PacketKind};
use cellbricks_sim::{EventQueue, SimDuration, SimRng, SimTime};
use cellbricks_telemetry as telemetry;
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::Ipv4Addr;
use std::sync::{Arc, Mutex, MutexGuard};

/// Control-plane messages between bTelcos/UEs and the broker.
#[derive(Clone, Debug, PartialEq)]
pub enum BrokerWire {
    /// bTelco → broker: an `authReqT` needing authorization.
    AuthReq {
        /// Correlation id chosen by the bTelco.
        req_id: u64,
        /// Encoded [`AuthReqT`].
        req_t: Bytes,
    },
    /// Broker → bTelco: authorization granted.
    AuthOk {
        /// Correlation id.
        req_id: u64,
        /// Encoded [`sap::BrokerReply`].
        reply: Bytes,
    },
    /// Broker → bTelco: authorization refused.
    AuthErr {
        /// Correlation id.
        req_id: u64,
        /// Failure code.
        code: u8,
    },
    /// UE or bTelco → broker: a sealed traffic report for a session.
    Report {
        /// Billing session.
        session_id: u64,
        /// True if this is the UE's report, false for the bTelco's.
        from_ue: bool,
        /// Sealed, signed [`TrafficReport`].
        sealed: Bytes,
    },
}

impl BrokerWire {
    /// Encode to wire bytes.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        match self {
            BrokerWire::AuthReq { req_id, req_t } => {
                w.put_u8(1).put_u64(*req_id).put_bytes(req_t);
            }
            BrokerWire::AuthOk { req_id, reply } => {
                w.put_u8(2).put_u64(*req_id).put_bytes(reply);
            }
            BrokerWire::AuthErr { req_id, code } => {
                w.put_u8(3).put_u64(*req_id).put_u8(*code);
            }
            BrokerWire::Report {
                session_id,
                from_ue,
                sealed,
            } => {
                w.put_u8(4)
                    .put_u64(*session_id)
                    .put_u8(u8::from(*from_ue))
                    .put_bytes(sealed);
            }
        }
        w.finish()
    }

    /// Decode from wire bytes.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<BrokerWire> {
        let mut r = Reader::new(bytes);
        let msg = match r.get_u8()? {
            1 => BrokerWire::AuthReq {
                req_id: r.get_u64()?,
                req_t: Bytes::from(r.get_bytes()?),
            },
            2 => BrokerWire::AuthOk {
                req_id: r.get_u64()?,
                reply: Bytes::from(r.get_bytes()?),
            },
            3 => BrokerWire::AuthErr {
                req_id: r.get_u64()?,
                code: r.get_u8()?,
            },
            4 => BrokerWire::Report {
                session_id: r.get_u64()?,
                from_ue: r.get_u8()? != 0,
                sealed: Bytes::from(r.get_bytes()?),
            },
            _ => return None,
        };
        if !r.is_empty() {
            return None;
        }
        Some(msg)
    }
}

/// A subscriber record in the broker's database.
#[derive(Clone)]
pub struct SubscriberRecord {
    /// UE signing public key.
    pub sign_pk: VerifyingKey,
    /// UE encryption public key.
    pub encrypt_pk: X25519PublicKey,
    /// Plan cap on MBR, bits/s.
    pub plan_mbr_bps: u64,
    /// Billing alias handed to bTelcos.
    pub alias: u64,
}

/// Per-session billing state.
struct Session {
    user: Identity,
    telco: Identity,
    telco_sign_pk: VerifyingKey,
    pending_ue: HashMap<u32, TrafficReport>,
    pending_telco: HashMap<u32, TrafficReport>,
    /// Downlink bytes the broker accepts as billable.
    pub settled_dl: u64,
    /// Uplink bytes the broker accepts as billable.
    pub settled_ul: u64,
    /// Last instant the broker saw traffic for this session (creation,
    /// or a report arriving over the network); idle-expiry reference.
    last_activity: SimTime,
}

/// FIFO cap on the anti-replay nonce window, mirroring the crypto-layer
/// key caches: a replayed `authReqT` is only useful to an attacker while
/// the original authorization is recent, so the window holds the most
/// recent authorizations and evicts the oldest past the cap. 64 Ki
/// nonces (1 MiB) is orders of magnitude more than any in-flight attach
/// horizon; without the cap, million-UE attach churn grows the set
/// forever.
pub const NONCE_WINDOW_CAP: usize = 1 << 16;

/// The durable state of one broker shard: everything the paper's broker
/// keeps in replicated cloud storage, as opposed to the per-process
/// state (service queue, busy horizon) that dies with an instance.
///
/// Shared via `Arc<Mutex<_>>` between the replicas of a shard; the
/// simulation is single-threaded per engine shard, so the lock is
/// uncontended and exists to keep `Brokerd: Send` for the sharded
/// engine.
pub struct BrokerStore {
    subscribers: HashMap<Identity, SubscriberRecord>,
    reputation: ReputationSystem,
    sessions: HashMap<u64, Session>,
    /// Lazy idle-expiry heap over session ids: one live entry per
    /// session; popped entries whose session saw activity since are
    /// re-pushed at the refreshed deadline.
    expiry: EventQueue<u64>,
    /// Nonces seen in authorized requests: a replayed `authReqT`
    /// (captured on the wire and re-submitted, e.g. by a bTelco trying
    /// to open ghost billing sessions) is rejected — the UE nonce in
    /// `authVec` is the anti-replay anchor the paper describes (§4.1).
    seen_nonces: HashSet<[u8; 16]>,
    /// FIFO order of `seen_nonces` for bounded eviction.
    nonce_order: VecDeque<[u8; 16]>,
    next_session: u64,
    next_alias: u64,
    /// Sessions reclaimed after going idle past the retention window.
    reclaimed: u64,
    /// Settled bytes across all sessions, including reclaimed ones.
    settled_dl_total: u64,
    settled_ul_total: u64,
    /// Last value this store pushed to the `sessions_live` gauge; the
    /// gauge is updated by delta so it sums correctly across stores.
    published_live: i64,
}

impl Default for BrokerStore {
    fn default() -> Self {
        Self::new()
    }
}

impl BrokerStore {
    /// A fresh store; session ids start at 1.
    #[must_use]
    pub fn new() -> Self {
        Self::with_session_base(1)
    }

    /// A fresh store whose session ids start at `base` — shards of a
    /// broker plane carve the id space so sessions stay globally unique.
    #[must_use]
    pub fn with_session_base(base: u64) -> Self {
        Self {
            subscribers: HashMap::new(),
            reputation: ReputationSystem::new(),
            sessions: HashMap::new(),
            expiry: EventQueue::new(),
            seen_nonces: HashSet::new(),
            nonce_order: VecDeque::new(),
            next_session: base,
            next_alias: 1,
            reclaimed: 0,
            settled_dl_total: 0,
            settled_ul_total: 0,
            published_live: 0,
        }
    }

    /// A shareable handle for a replica pair.
    #[must_use]
    pub fn shared(base: u64) -> Arc<Mutex<BrokerStore>> {
        Arc::new(Mutex::new(Self::with_session_base(base)))
    }

    /// Record a nonce; `false` means it was already in the window (a
    /// replay). Past [`NONCE_WINDOW_CAP`] the oldest nonce is evicted.
    fn insert_nonce(&mut self, nonce: [u8; 16]) -> bool {
        if !self.seen_nonces.insert(nonce) {
            return false;
        }
        self.nonce_order.push_back(nonce);
        if self.nonce_order.len() > NONCE_WINDOW_CAP {
            if let Some(oldest) = self.nonce_order.pop_front() {
                self.seen_nonces.remove(&oldest);
            }
        }
        true
    }

    /// Reclaim sessions idle past `retention`. Lazy-heap sweep: entries
    /// pop in deadline order, and a session whose activity moved its
    /// deadline forward is re-pushed instead of reclaimed, so the sweep
    /// is deterministic (never iterates a `HashMap`) and O(due).
    fn reclaim_idle(&mut self, now: SimTime, retention: SimDuration) {
        let mut changed = false;
        while let Some((_, sid)) = self.expiry.pop_due(now) {
            let Some(session) = self.sessions.get(&sid) else {
                continue;
            };
            let deadline = session.last_activity + retention;
            if deadline <= now {
                // Settled bytes were already folded into the totals at
                // settlement time, so dropping the record loses nothing
                // billable.
                self.sessions.remove(&sid);
                self.reclaimed += 1;
                changed = true;
            } else {
                self.expiry.push(deadline, sid);
            }
        }
        if changed {
            self.publish_sessions_live();
        }
    }

    fn publish_sessions_live(&mut self) {
        let live = i64::try_from(self.sessions.len()).unwrap_or(i64::MAX);
        telemetry::gauge("core.brokerd.sessions_live").add(live - self.published_live);
        self.published_live = live;
    }
}

fn lock_store(store: &Arc<Mutex<BrokerStore>>) -> MutexGuard<'_, BrokerStore> {
    store.lock().expect("broker store poisoned")
}

/// Read access to a broker's reputation system, held behind the shared
/// store lock. Derefs to [`ReputationSystem`].
pub struct ReputationRef<'a>(MutexGuard<'a, BrokerStore>);

impl std::ops::Deref for ReputationRef<'_> {
    type Target = ReputationSystem;
    fn deref(&self) -> &ReputationSystem {
        &self.0.reputation
    }
}

/// Broker configuration.
#[derive(Clone)]
pub struct BrokerdConfig {
    /// Control-plane address.
    pub ip: Ipv4Addr,
    /// Keys + certificate.
    pub keys: BrokerKeys,
    /// The CA all certificates chain to.
    pub ca: VerifyingKey,
    /// Per-request processing delay (covers signature checks, sealing,
    /// DB lookups — the "Brokerd" slice of Fig. 7).
    pub proc_delay: SimDuration,
    /// Fig. 5 tolerance ratio ε.
    pub epsilon: f64,
    /// Sessions with no traffic for this long are reclaimed from the
    /// store (their settled bytes stay in the totals). Reclamation
    /// piggybacks on packet arrivals — it schedules no wakeups of its
    /// own, so a retention longer than the run leaves the event stream
    /// untouched.
    pub session_retention: SimDuration,
}

/// The broker service endpoint: one *instance* (process) of a shard.
/// Durable state lives in the shard's [`BrokerStore`]; everything here
/// is per-process and dies on a crash.
pub struct Brokerd {
    node: NodeId,
    cfg: BrokerdConfig,
    store: Arc<Mutex<BrokerStore>>,
    pending: EventQueue<Packet>,
    /// The service is single-threaded: requests queue behind this.
    busy_until: SimTime,
    /// Unreachable before this instant: requests and reports arriving
    /// earlier are dropped (the sender's retry machinery must cover it).
    down_until: SimTime,
    rng: SimRng,
    /// Accumulated processing time (Fig. 7 accounting).
    pub proc_time: SimDuration,
    /// Authorizations granted.
    pub auth_ok: u64,
    /// Authorizations refused.
    pub auth_err: u64,
    /// Reports that failed verification (tampered / wrong key).
    pub bad_reports: u64,
    /// Billing cycles cross-checked.
    pub cycles_checked: u64,
    /// Packets dropped while unreachable.
    pub dropped_while_down: u64,
}

impl Brokerd {
    /// Create a standalone broker on `node` with a private store.
    #[must_use]
    pub fn new(node: NodeId, cfg: BrokerdConfig, rng: SimRng) -> Self {
        Self::with_store(node, cfg, BrokerStore::shared(1), rng)
    }

    /// Create a broker instance over an existing (possibly shared)
    /// store — how a plane builds the replicas of one shard.
    #[must_use]
    pub fn with_store(
        node: NodeId,
        cfg: BrokerdConfig,
        store: Arc<Mutex<BrokerStore>>,
        rng: SimRng,
    ) -> Self {
        Self {
            node,
            cfg,
            store,
            pending: EventQueue::new(),
            busy_until: SimTime::ZERO,
            down_until: SimTime::ZERO,
            rng,
            proc_time: SimDuration::ZERO,
            auth_ok: 0,
            auth_err: 0,
            bad_reports: 0,
            cycles_checked: 0,
            dropped_while_down: 0,
        }
    }

    /// A handle to this broker's (shared) durable store.
    #[must_use]
    pub fn store(&self) -> Arc<Mutex<BrokerStore>> {
        Arc::clone(&self.store)
    }

    /// True while the broker is unreachable at `now`.
    #[must_use]
    pub fn is_down(&self, now: SimTime) -> bool {
        now < self.down_until
    }

    /// Provision a subscriber (issue keys out of band; store publics).
    pub fn provision(
        &mut self,
        id: Identity,
        sign_pk: VerifyingKey,
        encrypt_pk: X25519PublicKey,
        plan_mbr_bps: u64,
    ) {
        let mut store = lock_store(&self.store);
        let alias = store.next_alias;
        store.next_alias += 1;
        store.subscribers.insert(
            id,
            SubscriberRecord {
                sign_pk,
                encrypt_pk,
                plan_mbr_bps,
                alias,
            },
        );
    }

    /// Number of provisioned subscribers.
    #[must_use]
    pub fn subscriber_count(&self) -> usize {
        lock_store(&self.store).subscribers.len()
    }

    /// Billable (settled) downlink+uplink bytes for a session.
    #[must_use]
    pub fn settled_bytes(&self, session_id: u64) -> Option<(u64, u64)> {
        lock_store(&self.store)
            .sessions
            .get(&session_id)
            .map(|s| (s.settled_dl, s.settled_ul))
    }

    /// Settled bytes across all sessions, including reclaimed ones.
    #[must_use]
    pub fn settled_totals(&self) -> (u64, u64) {
        let store = lock_store(&self.store);
        (store.settled_dl_total, store.settled_ul_total)
    }

    /// Billing sessions currently held in the store.
    #[must_use]
    pub fn sessions_live(&self) -> usize {
        lock_store(&self.store).sessions.len()
    }

    /// Sessions reclaimed after idling past the retention window.
    #[must_use]
    pub fn sessions_reclaimed(&self) -> u64 {
        lock_store(&self.store).reclaimed
    }

    /// The reputation system gating admissions (read access; the guard
    /// holds the store lock, so keep it short-lived).
    #[must_use]
    pub fn reputation(&self) -> ReputationRef<'_> {
        ReputationRef(lock_store(&self.store))
    }

    /// Reset Fig. 7 accounting.
    pub fn reset_accounting(&mut self) {
        self.proc_time = SimDuration::ZERO;
    }

    fn send_later(&mut self, now: SimTime, dst: Ipv4Addr, msg: BrokerWire) {
        self.proc_time = self.proc_time + self.cfg.proc_delay;
        // Single-threaded service: requests queue behind one another,
        // which is what bounds attach throughput at scale.
        let start = self.busy_until.max(now);
        let done = start + self.cfg.proc_delay;
        self.busy_until = done;
        let pkt = Packet::control(self.cfg.ip, dst, msg.encode());
        self.pending.push(done, pkt);
    }

    fn handle_auth(&mut self, now: SimTime, src: Ipv4Addr, req_id: u64, req_t: &[u8]) {
        let Some(req) = AuthReqT::decode(req_t) else {
            self.auth_err += 1;
            telemetry::counter("core.brokerd.auth_rejected").inc();
            self.send_later(now, src, BrokerWire::AuthErr { req_id, code: 0 });
            return;
        };
        // All durable-state work runs under one store lock; the reply is
        // staged after the guard drops (`send_later` needs `&mut self`).
        let outcome = {
            let mut guard = lock_store(&self.store);
            let store = &mut *guard;
            let session_id = store.next_session;
            let subscribers = &store.subscribers;
            let reputation = &store.reputation;
            let result = sap::broker_process(
                &self.cfg.keys,
                &self.cfg.ca,
                &req,
                |id| {
                    subscribers.get(&id).map(|rec| SubscriberEntry {
                        sign_pk: rec.sign_pk,
                        encrypt_pk: rec.encrypt_pk,
                        plan_mbr_bps: rec.plan_mbr_bps,
                        suspect: reputation.is_suspect(id),
                        alias: rec.alias,
                        lawful_intercept: false,
                    })
                },
                |telco| reputation.admit(telco),
                session_id,
                &mut self.rng,
            );
            match result {
                Ok((reply, vec, _qos, _ss)) => {
                    // Replay protection: each authVec nonce authorizes once.
                    if store.insert_nonce(vec.nonce) {
                        store.next_session += 1;
                        store.sessions.insert(
                            session_id,
                            Session {
                                user: vec.id_u,
                                telco: vec.id_t,
                                telco_sign_pk: req.t_cert.key,
                                pending_ue: HashMap::new(),
                                pending_telco: HashMap::new(),
                                settled_dl: 0,
                                settled_ul: 0,
                                last_activity: now,
                            },
                        );
                        store
                            .expiry
                            .push(now + self.cfg.session_retention, session_id);
                        store.publish_sessions_live();
                        Ok(reply.encode())
                    } else {
                        Err(sap::SapError::NonceMismatch as u8)
                    }
                }
                Err(e) => Err(e as u8),
            }
        };
        match outcome {
            Ok(reply) => {
                self.auth_ok += 1;
                telemetry::counter("core.brokerd.auth_granted").inc();
                telemetry::trace_instant("brokerd.auth_ok", "billing", now.as_nanos());
                self.send_later(now, src, BrokerWire::AuthOk { req_id, reply });
            }
            Err(code) => {
                self.auth_err += 1;
                telemetry::counter("core.brokerd.auth_rejected").inc();
                self.send_later(now, src, BrokerWire::AuthErr { req_id, code });
            }
        }
    }

    /// The key a report for `session_id`/`from_ue` must verify under.
    fn reporter_pk(&self, session_id: u64, from_ue: bool) -> Option<VerifyingKey> {
        let store = lock_store(&self.store);
        let session = store.sessions.get(&session_id)?;
        if from_ue {
            store.subscribers.get(&session.user).map(|rec| rec.sign_pk)
        } else {
            Some(session.telco_sign_pk)
        }
    }

    /// Refresh a session's idle-expiry clock (a report arrived for it).
    fn touch_session(&mut self, session_id: u64, now: SimTime) {
        let mut store = lock_store(&self.store);
        if let Some(session) = store.sessions.get_mut(&session_id) {
            session.last_activity = session.last_activity.max(now);
        }
    }

    fn handle_report(&mut self, session_id: u64, from_ue: bool, sealed: &[u8]) {
        // Touch the rejection counter up front so it is registered (at 0)
        // even in runs where every report verifies.
        let claims_rejected = telemetry::counter("core.billing.claims_rejected");
        let Some(reporter_pk) = self.reporter_pk(session_id, from_ue) else {
            self.bad_reports += 1;
            claims_rejected.inc();
            return;
        };
        match TrafficReport::open_and_verify(sealed, &self.cfg.keys.encrypt, &reporter_pk) {
            Some(report) => self.accept_report(session_id, from_ue, report),
            None => self.reject_unverifiable(session_id, from_ue),
        }
    }

    fn reject_unverifiable(&mut self, session_id: u64, from_ue: bool) {
        self.bad_reports += 1;
        telemetry::counter("core.billing.claims_rejected").inc();
        if from_ue {
            // A UE submitting unverifiable reports goes on the
            // suspect list (paper §4.3).
            let mut store = lock_store(&self.store);
            if let Some(user) = store.sessions.get(&session_id).map(|s| s.user) {
                store.reputation.mark_suspect(user);
            }
        }
    }

    /// Book a report whose signature has already been checked (either
    /// individually or as part of an Ed25519 batch).
    fn accept_report(&mut self, session_id: u64, from_ue: bool, report: TrafficReport) {
        let mut guard = lock_store(&self.store);
        let store = &mut *guard;
        let Some(session) = store.sessions.get_mut(&session_id) else {
            return;
        };
        if report.session_id != session_id {
            drop(guard);
            self.bad_reports += 1;
            telemetry::counter("core.billing.claims_rejected").inc();
            return;
        }
        let seq = report.seq;
        telemetry::counter("core.billing.claims_issued").inc();
        if from_ue {
            session.pending_ue.insert(seq, report);
        } else {
            session.pending_telco.insert(seq, report);
        }
        // When both sides of a cycle are present, cross-check (Fig. 5).
        if let (Some(ue_r), Some(t_r)) = (
            session.pending_ue.get(&seq),
            session.pending_telco.get(&seq),
        ) {
            let verdict = verify_cycle(ue_r, t_r, self.cfg.epsilon);
            let (dl, ul) = match verdict {
                CycleVerdict::Consistent => {
                    telemetry::counter("core.billing.claims_verified").inc();
                    (t_r.dl_bytes, t_r.ul_bytes)
                }
                CycleVerdict::Mismatch { .. } => {
                    telemetry::counter("core.billing.claims_mismatched").inc();
                    // Settle conservatively at the UE's figure; the
                    // mismatch feeds the telco's reputation.
                    (ue_r.dl_bytes, ue_r.ul_bytes)
                }
            };
            session.settled_dl += dl;
            session.settled_ul += ul;
            let telco = session.telco;
            session.pending_ue.remove(&seq);
            session.pending_telco.remove(&seq);
            store.settled_dl_total += dl;
            store.settled_ul_total += ul;
            store.reputation.record_cycle(telco, verdict);
            drop(guard);
            self.cycles_checked += 1;
        }
    }

    /// Opt-in bulk ingest for traffic reports: unseal every report, then
    /// check all of their signatures as one Ed25519 batch
    /// ([`cellbricks_crypto::verify_batch`]) instead of one Strauss
    /// chain each. Reports that fail structurally (unknown session,
    /// unsealing or parse failure) — and every report of a batch whose
    /// combined check fails — go through the per-report path, so
    /// accounting, suspect-marking and telemetry end up exactly as if
    /// each report had been handled individually.
    pub fn ingest_reports(&mut self, reports: &[(u64, bool, Bytes)]) {
        // Same eager registration as `handle_report`.
        let _ = telemetry::counter("core.billing.claims_rejected");
        let mut verifiable = Vec::with_capacity(reports.len());
        let mut structural_failures = Vec::new();
        for (i, (session_id, from_ue, sealed)) in reports.iter().enumerate() {
            let opened = self.reporter_pk(*session_id, *from_ue).and_then(|pk| {
                TrafficReport::open_deferring_verify(sealed, &self.cfg.keys.encrypt)
                    .map(|(report, body, sig)| (report, body, sig, pk))
            });
            match opened {
                Some(item) => verifiable.push((i, item)),
                None => structural_failures.push(i),
            }
        }
        let batch_ok = {
            let items: Vec<BatchItem<'_>> = verifiable
                .iter()
                .map(|(_, (_, body, sig, pk))| BatchItem {
                    msg: body,
                    sig: *sig,
                    key: *pk,
                })
                .collect();
            verify_batch(&items)
        };
        for (i, (report, _, _, _)) in verifiable {
            let (session_id, from_ue, ref sealed) = reports[i];
            if batch_ok {
                self.accept_report(session_id, from_ue, report);
            } else {
                // At least one signature in the batch is bad; re-check
                // each report individually to attribute the failures.
                self.handle_report(session_id, from_ue, sealed);
            }
        }
        for i in structural_failures {
            let (session_id, from_ue, ref sealed) = reports[i];
            self.handle_report(session_id, from_ue, sealed);
        }
    }
}

impl Endpoint for Brokerd {
    fn node(&self) -> NodeId {
        self.node
    }

    fn handle_packet(&mut self, now: SimTime, pkt: Packet, _out: &mut Vec<Packet>) {
        if now < self.down_until {
            self.dropped_while_down += 1;
            return;
        }
        let PacketKind::Control(bytes) = &pkt.kind else {
            return;
        };
        if pkt.dst != self.cfg.ip {
            return;
        }
        // Idle-session reclamation piggybacks on arrivals: it schedules
        // no wakeups of its own, so the event stream is unchanged.
        {
            let retention = self.cfg.session_retention;
            lock_store(&self.store).reclaim_idle(now, retention);
        }
        match BrokerWire::decode(bytes) {
            Some(BrokerWire::AuthReq { req_id, req_t }) => {
                self.handle_auth(now, pkt.src, req_id, &req_t);
            }
            Some(BrokerWire::Report {
                session_id,
                from_ue,
                sealed,
            }) => {
                self.touch_session(session_id, now);
                self.handle_report(session_id, from_ue, &sealed);
            }
            _ => {}
        }
    }

    fn poll_at(&self) -> Option<SimTime> {
        // While down, staged replies only leave once the service is back.
        self.pending.peek_time().map(|t| t.max(self.down_until))
    }

    fn poll(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        if now < self.down_until {
            return;
        }
        while let Some((_, pkt)) = self.pending.pop_due(now) {
            out.push(pkt);
        }
    }

    fn inject_fault(&mut self, now: SimTime, fault: &EndpointFault) {
        match *fault {
            EndpointFault::Unavailable { until } => {
                telemetry::counter("core.brokerd.unavailable_windows").inc();
                self.down_until = until.max(self.down_until);
            }
            EndpointFault::CrashRestart { restart_at } => {
                // The subscriber DB and billing sessions are durable (the
                // broker is a cloud service over persistent storage); only
                // the in-memory request queue dies with the process.
                telemetry::counter("core.brokerd.crashes").inc();
                self.pending = EventQueue::new();
                self.busy_until = SimTime::ZERO;
                self.down_until = restart_at.max(now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::principal::{BrokerKeys, TelcoKeys, UeKeys};
    use crate::sap::QosCap;
    use cellbricks_crypto::cert::CertificateAuthority;
    use cellbricks_net::Endpoint;

    fn test_config(keys: BrokerKeys, ca: &CertificateAuthority) -> BrokerdConfig {
        BrokerdConfig {
            ip: Ipv4Addr::new(172, 16, 0, 1),
            keys,
            ca: ca.public_key(),
            proc_delay: SimDuration::ZERO,
            epsilon: 0.01,
            session_retention: SimDuration::from_secs(86_400),
        }
    }

    #[test]
    fn replayed_auth_request_rejected() {
        let mut rng = SimRng::new(3);
        let ca = CertificateAuthority::from_seed([0xCA; 32]);
        let broker_keys = BrokerKeys::generate("broker.example", &ca, &mut rng);
        let telco_keys = TelcoKeys::generate("tower-1.example", &ca, &mut rng);
        let ue_keys = UeKeys::generate(&mut rng);
        let mut brokerd = Brokerd::new(
            cellbricks_net::NodeId(0),
            test_config(broker_keys.clone(), &ca),
            rng.fork(),
        );
        let (spk, epk) = ue_keys.public();
        brokerd.provision(ue_keys.identity(), spk, epk, 1_000_000);
        let (req_u, _) = sap::ue_build_request(
            &ue_keys,
            "broker.example",
            &broker_keys.encrypt.public_key(),
            telco_keys.identity(),
            &mut rng,
        );
        let req_t = sap::telco_wrap_request(
            &telco_keys,
            req_u,
            QosCap {
                max_mbr_bps: 1_000_000,
                qci_supported: vec![9],
                li_capable: true,
            },
        );
        let wire = BrokerWire::AuthReq {
            req_id: 1,
            req_t: req_t.encode(),
        }
        .encode();
        let src = Ipv4Addr::new(172, 16, 1, 1);
        let dst = Ipv4Addr::new(172, 16, 0, 1);
        let mut sink = Vec::new();
        brokerd.handle_packet(
            SimTime::ZERO,
            Packet::control(src, dst, wire.clone()),
            &mut sink,
        );
        assert_eq!(brokerd.auth_ok, 1);
        // The exact same (captured) request again: refused.
        brokerd.handle_packet(SimTime::ZERO, Packet::control(src, dst, wire), &mut sink);
        assert_eq!(brokerd.auth_ok, 1, "replay must not create a session");
        assert_eq!(brokerd.auth_err, 1);
    }

    /// Satellite regression: the anti-replay window is bounded (FIFO
    /// eviction past the cap) while replays inside the window are still
    /// rejected.
    #[test]
    fn nonce_window_bounded_with_fifo_eviction() {
        let mut store = BrokerStore::new();
        let nonce_of = |i: u64| -> [u8; 16] {
            let mut n = [0u8; 16];
            n[..8].copy_from_slice(&i.to_le_bytes());
            n
        };
        for i in 0..(NONCE_WINDOW_CAP as u64 + 1_000) {
            assert!(store.insert_nonce(nonce_of(i)), "fresh nonce {i} accepted");
        }
        assert_eq!(
            store.seen_nonces.len(),
            NONCE_WINDOW_CAP,
            "window bounded at the cap"
        );
        assert_eq!(store.nonce_order.len(), NONCE_WINDOW_CAP);
        // A replay inside the window is still caught...
        let recent = nonce_of(NONCE_WINDOW_CAP as u64 + 999);
        assert!(!store.insert_nonce(recent), "recent replay rejected");
        // ...while the oldest entries were evicted (the replay horizon
        // the cap trades away).
        assert!(!store.seen_nonces.contains(&nonce_of(0)));
        assert!(!store.seen_nonces.contains(&nonce_of(999)));
        assert!(store.seen_nonces.contains(&nonce_of(1_000)));
    }

    /// A world with one UE attached (session id 1), for report tests.
    fn attached_world() -> (Brokerd, UeKeys, TelcoKeys, BrokerKeys, SimRng) {
        attached_world_with_retention(SimDuration::from_secs(86_400))
    }

    /// Same, with the session-retention window chosen up front (the
    /// expiry deadline is armed at auth time, so it must be set before
    /// the attach).
    fn attached_world_with_retention(
        retention: SimDuration,
    ) -> (Brokerd, UeKeys, TelcoKeys, BrokerKeys, SimRng) {
        let mut rng = SimRng::new(7);
        let ca = CertificateAuthority::from_seed([0xCA; 32]);
        let broker_keys = BrokerKeys::generate("broker.example", &ca, &mut rng);
        let telco_keys = TelcoKeys::generate("tower-1.example", &ca, &mut rng);
        let ue_keys = UeKeys::generate(&mut rng);
        let mut brokerd = Brokerd::new(
            cellbricks_net::NodeId(0),
            BrokerdConfig {
                session_retention: retention,
                ..test_config(broker_keys.clone(), &ca)
            },
            rng.fork(),
        );
        let (spk, epk) = ue_keys.public();
        brokerd.provision(ue_keys.identity(), spk, epk, 1_000_000);
        let (req_u, _) = sap::ue_build_request(
            &ue_keys,
            "broker.example",
            &broker_keys.encrypt.public_key(),
            telco_keys.identity(),
            &mut rng,
        );
        let req_t = sap::telco_wrap_request(
            &telco_keys,
            req_u,
            QosCap {
                max_mbr_bps: 1_000_000,
                qci_supported: vec![9],
                li_capable: true,
            },
        );
        let wire = BrokerWire::AuthReq {
            req_id: 1,
            req_t: req_t.encode(),
        }
        .encode();
        let mut sink = Vec::new();
        brokerd.handle_packet(
            SimTime::ZERO,
            Packet::control(
                Ipv4Addr::new(172, 16, 1, 1),
                Ipv4Addr::new(172, 16, 0, 1),
                wire,
            ),
            &mut sink,
        );
        assert_eq!(brokerd.auth_ok, 1);
        (brokerd, ue_keys, telco_keys, broker_keys, rng)
    }

    fn report(dl_bytes: u64) -> TrafficReport {
        TrafficReport {
            session_id: 1,
            seq: 0,
            ul_bytes: 10,
            dl_bytes,
            duration_ms: 1_000,
            dl_loss_ppm: 0,
            ul_loss_ppm: 0,
            avg_dl_kbps: 0,
            avg_ul_kbps: 0,
            delay_ms: 0,
        }
    }

    #[test]
    fn batch_ingest_settles_a_cycle() {
        let (mut brokerd, ue_keys, telco_keys, broker_keys, mut rng) = attached_world();
        let broker_pk = broker_keys.encrypt.public_key();
        let ue_sealed = report(1_000).sign_and_seal(&ue_keys.sign, &broker_pk, &mut rng);
        let t_sealed = report(1_000).sign_and_seal(&telco_keys.sign, &broker_pk, &mut rng);
        brokerd.ingest_reports(&[(1, true, ue_sealed), (1, false, t_sealed)]);
        assert_eq!(brokerd.cycles_checked, 1);
        assert_eq!(brokerd.settled_bytes(1), Some((1_000, 10)));
        assert_eq!(brokerd.bad_reports, 0);
    }

    #[test]
    fn batch_ingest_bad_signature_falls_back_to_sequential() {
        let (mut brokerd, ue_keys, telco_keys, broker_keys, mut rng) = attached_world();
        let broker_pk = broker_keys.encrypt.public_key();
        // Forged UE report: seals fine, but is signed by the wrong key,
        // so only the signature check can catch it — first the combined
        // batch, then the per-report re-check that attributes it.
        let forger = UeKeys::generate(&mut rng);
        let forged = report(500).sign_and_seal(&forger.sign, &broker_pk, &mut rng);
        let t_sealed = report(1_000).sign_and_seal(&telco_keys.sign, &broker_pk, &mut rng);
        brokerd.ingest_reports(&[(1, true, forged), (1, false, t_sealed)]);
        assert_eq!(brokerd.bad_reports, 1, "forged report must be rejected");
        assert_eq!(brokerd.cycles_checked, 0, "no cycle without the UE side");
        assert!(
            brokerd.reputation().is_suspect(ue_keys.identity()),
            "unverifiable UE report marks the subscriber suspect"
        );
    }

    #[test]
    fn batch_ingest_unknown_session_rejected() {
        let (mut brokerd, ue_keys, _telco_keys, broker_keys, mut rng) = attached_world();
        let broker_pk = broker_keys.encrypt.public_key();
        let mut r = report(100);
        r.session_id = 99;
        let sealed = r.sign_and_seal(&ue_keys.sign, &broker_pk, &mut rng);
        brokerd.ingest_reports(&[(99, true, sealed)]);
        assert_eq!(brokerd.bad_reports, 1);
        assert_eq!(brokerd.cycles_checked, 0);
    }

    /// Satellite regression: a settled session is reclaimed after the
    /// retention window, its bytes survive in the totals, and the live
    /// count drops.
    #[test]
    fn idle_session_reclaimed_after_retention() {
        let (mut brokerd, ue_keys, telco_keys, broker_keys, mut rng) =
            attached_world_with_retention(SimDuration::from_secs(5));
        let broker_pk = broker_keys.encrypt.public_key();
        let ue_sealed = report(1_000).sign_and_seal(&ue_keys.sign, &broker_pk, &mut rng);
        let t_sealed = report(1_000).sign_and_seal(&telco_keys.sign, &broker_pk, &mut rng);
        brokerd.ingest_reports(&[(1, true, ue_sealed), (1, false, t_sealed)]);
        assert_eq!(brokerd.sessions_live(), 1);
        assert_eq!(brokerd.settled_totals(), (1_000, 10));
        // Any packet arrival past the idle deadline triggers the sweep;
        // an undecodable control frame is activity enough.
        let mut sink = Vec::new();
        brokerd.handle_packet(
            SimTime::from_secs(60),
            Packet::control(
                Ipv4Addr::new(172, 16, 1, 1),
                Ipv4Addr::new(172, 16, 0, 1),
                Bytes::from_static(&[0xFF]),
            ),
            &mut sink,
        );
        assert_eq!(brokerd.sessions_live(), 0, "idle session reclaimed");
        assert_eq!(brokerd.sessions_reclaimed(), 1);
        assert_eq!(brokerd.settled_bytes(1), None);
        assert_eq!(
            brokerd.settled_totals(),
            (1_000, 10),
            "settled bytes survive reclamation"
        );
    }

    /// Replicas sharing a store resolve each other's sessions and
    /// nonces: the failover contract of the broker plane.
    #[test]
    fn shared_store_replicates_sessions_and_nonces() {
        let (brokerd, ue_keys, telco_keys, broker_keys, mut rng) = attached_world();
        let ca = CertificateAuthority::from_seed([0xCA; 32]);
        let mut standby = Brokerd::with_store(
            cellbricks_net::NodeId(1),
            BrokerdConfig {
                ip: Ipv4Addr::new(172, 16, 0, 2),
                ..test_config(broker_keys.clone(), &ca)
            },
            brokerd.store(),
            rng.fork(),
        );
        // The session authorized on the primary is visible to the standby.
        assert_eq!(standby.settled_bytes(1), Some((0, 0)));
        assert_eq!(standby.subscriber_count(), 1);
        // A report sent to the standby settles against it.
        let broker_pk = broker_keys.encrypt.public_key();
        let ue_sealed = report(2_000).sign_and_seal(&ue_keys.sign, &broker_pk, &mut rng);
        let t_sealed = report(2_000).sign_and_seal(&telco_keys.sign, &broker_pk, &mut rng);
        standby.ingest_reports(&[(1, true, ue_sealed), (1, false, t_sealed)]);
        assert_eq!(brokerd.settled_bytes(1), Some((2_000, 10)));
        // A replay of an authorization the primary already granted is
        // rejected by the standby too.
        let (req_u, _) = sap::ue_build_request(
            &ue_keys,
            "broker.example",
            &broker_keys.encrypt.public_key(),
            telco_keys.identity(),
            &mut rng,
        );
        let req_t = sap::telco_wrap_request(
            &telco_keys,
            req_u,
            QosCap {
                max_mbr_bps: 1_000_000,
                qci_supported: vec![9],
                li_capable: true,
            },
        );
        let wire = BrokerWire::AuthReq {
            req_id: 9,
            req_t: req_t.encode(),
        }
        .encode();
        let mut sink = Vec::new();
        standby.handle_packet(
            SimTime::ZERO,
            Packet::control(
                Ipv4Addr::new(172, 16, 1, 1),
                Ipv4Addr::new(172, 16, 0, 2),
                wire.clone(),
            ),
            &mut sink,
        );
        assert_eq!(standby.auth_ok, 1, "fresh request authorized on standby");
        standby.handle_packet(
            SimTime::ZERO,
            Packet::control(
                Ipv4Addr::new(172, 16, 1, 1),
                Ipv4Addr::new(172, 16, 0, 2),
                wire,
            ),
            &mut sink,
        );
        assert_eq!(standby.auth_err, 1, "replay rejected via the shared window");
    }

    #[test]
    fn broker_wire_roundtrip() {
        let msgs = [
            BrokerWire::AuthReq {
                req_id: 7,
                req_t: Bytes::from_static(b"req"),
            },
            BrokerWire::AuthOk {
                req_id: 7,
                reply: Bytes::from_static(b"reply"),
            },
            BrokerWire::AuthErr { req_id: 7, code: 3 },
            BrokerWire::Report {
                session_id: 9,
                from_ue: true,
                sealed: Bytes::from_static(b"sealed"),
            },
        ];
        for m in &msgs {
            assert_eq!(BrokerWire::decode(&m.encode()).as_ref(), Some(m));
        }
        assert!(BrokerWire::decode(&[77]).is_none());
    }
}
