//! Hostile-input property tests for the `brokerd` wire server: truncated,
//! bit-flipped, and outright-garbage datagrams must never panic the
//! server or corrupt its state — every hostile datagram is either counted
//! as a bad frame (`core.brokerd.bad_frames`) or refused with an
//! attributed `AuthErr`, and a well-formed request served *afterwards*
//! still authorizes exactly as it would on a fresh server.

use cellbricks_core::broker_server::{build_requests, population, BrokerServer};
use cellbricks_core::brokerd::BrokerWire;
use cellbricks_net::wire::unframe;
use cellbricks_sim::SimRng;
use cellbricks_telemetry as telemetry;
use proptest::prelude::*;

/// A provisioned server plus a pool of valid framed requests to mutate.
/// `workers` = 0 runs the decision thread inline (the PR 9 single-thread
/// path); 1 and 4 route the same batches through the crypto worker pool,
/// so every property below is checked against the parallel pipeline too.
fn world(n_reqs: usize, workers: usize) -> (BrokerServer, Vec<Vec<u8>>) {
    let pop = population(7, 4);
    let server = pop.server_with_workers(SimRng::new(99), workers);
    let mut rng = SimRng::new(1234);
    let reqs = build_requests(&pop, &[0, 1, 2, 3], n_reqs, &mut rng);
    (server, reqs)
}

/// The worker counts every property runs under: inline, one worker
/// (must match inline byte-for-byte), and a real pool.
fn any_workers() -> impl Strategy<Value = usize> {
    prop_oneof![Just(0usize), Just(1usize), Just(4usize)]
}

/// Every reply the server emits must itself be a well-formed frame whose
/// payload decodes as `AuthOk` or `AuthErr` — hostile input never makes
/// the server emit garbage.
fn assert_replies_well_formed(out: &[(usize, Vec<u8>)]) {
    for (_, bytes) in out {
        let payload = unframe(bytes).expect("server reply must be framed");
        match BrokerWire::decode(payload) {
            Some(BrokerWire::AuthOk { .. } | BrokerWire::AuthErr { .. }) => {}
            other => panic!("server emitted a non-reply frame: {other:?}"),
        }
    }
}

/// After a hostile barrage, the server must still serve a fresh valid
/// request: state (nonce window, session allocator, subscriber DB) is
/// intact.
fn assert_still_serves(server: &mut BrokerServer, fresh: &[u8]) {
    let before = server.counters.served_auths;
    let mut out = Vec::new();
    server.process_batch(&[(0, fresh)], &mut out);
    assert_eq!(
        server.counters.served_auths,
        before + 1,
        "server stopped serving valid requests after hostile input"
    );
    assert_replies_well_formed(&out);
}

proptest! {
    /// Pure garbage datagrams: random bytes of random length. None may
    /// panic; each is either a bad frame or (if it accidentally frames
    /// and decodes) refused — never served.
    #[test]
    fn prop_garbage_datagrams_never_served(
        datagrams in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64),
            1..12,
        ),
        workers in any_workers(),
    ) {
        let (mut server, reqs) = world(1, workers);
        // The process-global registry starts disabled; the daemon enables
        // it at startup, tests must do the same to observe the mirror.
        telemetry::enable();
        let bad_before = telemetry::counter("core.brokerd.bad_frames").get();
        let views: Vec<(usize, &[u8])> =
            datagrams.iter().map(|d| (0usize, d.as_slice())).collect();
        let mut out = Vec::new();
        server.process_batch(&views, &mut out);
        prop_assert_eq!(server.counters.served_auths, 0);
        // Every datagram was accounted for in exactly one bucket.
        let c = server.counters;
        prop_assert_eq!(
            c.bad_frames + c.auth_errs + c.wire_reports + c.unexpected_frames,
            datagrams.len() as u64
        );
        // The telemetry mirror moved in lockstep with the plain counter
        // (>= because other tests in this binary share the registry).
        prop_assert!(
            telemetry::counter("core.brokerd.bad_frames").get()
                >= bad_before + c.bad_frames
        );
        assert_replies_well_formed(&out);
        assert_still_serves(&mut server, &reqs[0]);
    }

    /// Truncating a valid framed request at any point breaks the length
    /// prefix's promise: always a bad frame, never a panic, never served.
    #[test]
    fn prop_truncated_frames_are_bad_frames(
        cut_scale in 0u32..10_000,
        workers in any_workers(),
    ) {
        let (mut server, reqs) = world(2, workers);
        let full = &reqs[0];
        // Map the scale onto a strict truncation point [0, len).
        let cut = (cut_scale as usize * full.len()) / 10_000;
        let truncated = &full[..cut];
        let mut out = Vec::new();
        server.process_batch(&[(0, truncated)], &mut out);
        prop_assert_eq!(server.counters.bad_frames, 1);
        prop_assert_eq!(server.counters.served_auths, 0);
        prop_assert!(out.is_empty(), "a bad frame gets no reply");
        assert_still_serves(&mut server, &reqs[1]);
    }

    /// Flipping one bit anywhere in a valid framed request must never
    /// panic or corrupt state. The outcome is exactly one of: bad frame
    /// (length prefix / wire tag damaged), refused with `AuthErr`
    /// (signature or structure damaged), or served (the flip landed in
    /// an unauthenticated field like `req_id`).
    #[test]
    fn prop_bit_flipped_frames_never_panic(
        byte_scale in 0u32..10_000,
        bit in 0u32..8,
        workers in any_workers(),
    ) {
        let (mut server, reqs) = world(2, workers);
        let mut flipped = reqs[0].clone();
        let idx = (byte_scale as usize * flipped.len()) / 10_000;
        flipped[idx] ^= 1 << bit;
        let mut out = Vec::new();
        server.process_batch(&[(0, &flipped)], &mut out);
        let c = server.counters;
        prop_assert_eq!(
            c.bad_frames + c.auth_errs + c.wire_reports
                + c.unexpected_frames + c.served_auths,
            1,
            "one datagram, one outcome"
        );
        assert_replies_well_formed(&out);
        assert_still_serves(&mut server, &reqs[1]);
    }

    /// A hostile barrage mixed into the same batch as valid requests
    /// must not poison them: every valid request is still served.
    #[test]
    fn prop_hostile_frames_do_not_poison_valid_neighbors(
        garbage in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..48),
            1..6,
        ),
        seed in 0u64..1_000,
        workers in any_workers(),
    ) {
        let (mut server, reqs) = world(3, workers);
        // Interleave deterministically off the seed.
        let mut datagrams: Vec<(usize, &[u8])> = Vec::new();
        let mut g = garbage.iter();
        for (i, r) in reqs.iter().enumerate() {
            if (seed >> i) & 1 == 0 {
                if let Some(bad) = g.next() {
                    datagrams.push((1, bad.as_slice()));
                }
            }
            datagrams.push((0, r.as_slice()));
        }
        for bad in g {
            datagrams.push((1, bad.as_slice()));
        }
        let mut out = Vec::new();
        server.process_batch(&datagrams, &mut out);
        prop_assert_eq!(
            server.counters.served_auths, 3,
            "hostile neighbors must not block valid requests"
        );
        assert_replies_well_formed(&out);
    }
}
