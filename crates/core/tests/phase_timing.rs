//! Ad-hoc phase timing for the brokerd hot path. Ignored by default:
//! run with
//! `cargo test --release -p cellbricks-core --test phase_timing -- --ignored --nocapture`
//! to see where a served auth spends its time, at batch depth and alone.

use cellbricks_core::broker_server::{build_requests, population};
use cellbricks_core::brokerd::BrokerWire;
use cellbricks_core::sap::{self, AuthReqT, SubscriberEntry};
use cellbricks_net::wire::unframe;
use cellbricks_sim::SimRng;
use std::time::Instant;

fn decode_all(framed: &[Vec<u8>]) -> Vec<AuthReqT> {
    framed
        .iter()
        .map(|f| {
            let payload = unframe(f).expect("frame");
            match BrokerWire::decode(payload) {
                Some(BrokerWire::AuthReq { req_t, .. }) => {
                    AuthReqT::decode(&req_t).expect("authReqT")
                }
                _ => panic!("not an AuthReq"),
            }
        })
        .collect()
}

#[test]
#[ignore]
fn server_phase_timing() {
    const N: usize = 128;
    let pop = population(42, 64);
    let mut server = pop.server(SimRng::new(7));
    let mut rng = SimRng::new(9);
    let ues: Vec<usize> = (0..64).collect();
    let framed = build_requests(&pop, &ues, 4 * N, &mut rng);

    // Warm every cache (DH tables, verifier tables, signature memo).
    let mut out = Vec::new();
    let warm: Vec<(usize, &[u8])> = framed[..N].iter().map(|f| (0usize, &f[..])).collect();
    server.process_batch(&warm, &mut out);

    // Whole-server cost, one deep batch vs N singleton batches.
    out.clear();
    let deep: Vec<(usize, &[u8])> = framed[N..2 * N].iter().map(|f| (0usize, &f[..])).collect();
    let t0 = Instant::now();
    server.process_batch(&deep, &mut out);
    let deep_us = t0.elapsed().as_micros() as f64 / N as f64;

    out.clear();
    let t0 = Instant::now();
    for f in &framed[2 * N..3 * N] {
        server.process_batch(&[(0usize, &f[..])], &mut out);
    }
    let single_us = t0.elapsed().as_micros() as f64 / N as f64;
    println!("process_batch: deep {deep_us:.1} us/auth, single {single_us:.1} us/auth");

    // Phase breakdown at depth, on fresh requests.
    let reqs = decode_all(&framed[3 * N..4 * N]);
    let keys = &pop.broker;
    let ca = pop.ca.public_key();
    let entries: std::collections::HashMap<_, _> = pop
        .ues
        .iter()
        .map(|ue| {
            let (sign_pk, encrypt_pk) = ue.public();
            (
                ue.identity(),
                SubscriberEntry {
                    sign_pk,
                    encrypt_pk,
                    plan_mbr_bps: 50_000_000,
                    suspect: false,
                    alias: 1,
                    lawful_intercept: false,
                },
            )
        })
        .collect();
    let lookup = |id| entries.get(&id).cloned();
    let telco_ok = |_| true;

    let t0 = Instant::now();
    let pre: Vec<_> = reqs
        .iter()
        .map(|r| sap::broker_precheck_pre_open(keys, r).expect("pre"))
        .collect();
    let pre_us = t0.elapsed().as_micros() as f64 / N as f64;

    let boxes: Vec<_> = reqs.iter().map(|r| &r.req_u.sealed_vec).collect();
    let t0 = Instant::now();
    let opened = cellbricks_crypto::open_batch(&keys.encrypt, &boxes);
    let open_us = t0.elapsed().as_micros() as f64 / N as f64;

    let t0 = Instant::now();
    let checked: Vec<_> = reqs
        .iter()
        .zip(&pre)
        .zip(&opened)
        .map(|((r, id_t), vec_bytes)| {
            sap::broker_precheck_post_open(
                keys.identity(),
                &ca,
                r,
                *id_t,
                vec_bytes.as_ref().expect("opened"),
                &lookup,
                &telco_ok,
            )
            .expect("post")
        })
        .collect();
    let post_us = t0.elapsed().as_micros() as f64 / N as f64;

    let t0 = Instant::now();
    let items: Vec<_> = checked.iter().flat_map(|(_, _, m)| m.items()).collect();
    assert!(cellbricks_crypto::verify_batch(&items));
    let verify_us = t0.elapsed().as_micros() as f64 / N as f64;

    let jobs: Vec<sap::GrantJob<'_>> = reqs
        .iter()
        .zip(&checked)
        .enumerate()
        .map(|(i, (req, (vec, entry, _)))| sap::GrantJob {
            req,
            vec,
            entry,
            session_id: i as u64,
        })
        .collect();
    let mut grant_rng = SimRng::new(11);
    let t0 = Instant::now();
    let replies = sap::broker_grant_batch(keys, &jobs, &mut grant_rng);
    let grant_us = t0.elapsed().as_micros() as f64 / N as f64;

    let t0 = Instant::now();
    let encoded: Vec<_> = replies.iter().map(|(r, _, _)| r.encode()).collect();
    let encode_us = t0.elapsed().as_micros() as f64 / N as f64;
    assert_eq!(encoded.len(), N);

    println!("phase us/auth at depth {N}:");
    println!("  pre_open   {pre_us:.1}");
    println!("  open_batch {open_us:.1}");
    println!("  post_open  {post_us:.1}");
    println!("  verify     {verify_us:.1}");
    println!("  grant      {grant_us:.1}");
    println!("  encode     {encode_us:.1}");
}
