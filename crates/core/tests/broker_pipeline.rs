//! Determinism and drain guarantees of the multi-worker `brokerd`
//! pipeline.
//!
//! The parallel crypto stage is only allowed to change *when* work
//! happens, never *what* comes out: every grant's randomness is drawn by
//! the sequential decision phase (in arrival order) before the work is
//! scattered, and chunks gather back by index. So the replies must be
//! byte-identical across worker counts — including `W = 0`, the inline
//! path that is the PR 9 single-threaded server — and across how the
//! same request stream happens to be sliced into batches. These tests
//! pin both properties, plus the shutdown contract: stopping the serve
//! loop mid-stream loses no reply the server claims to have sent and
//! duplicates none.

use cellbricks_core::broker_server::{self, build_requests, population, Population, ServeConfig};
use cellbricks_core::brokerd::BrokerWire;
use cellbricks_net::wire::unframe;
use cellbricks_sim::SimRng;
use std::collections::HashSet;
use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 20231;

fn request_stream(pop: &Population, n: usize) -> Vec<Vec<u8>> {
    let ues: Vec<usize> = (0..pop.ues.len()).collect();
    let mut rng = SimRng::new(77);
    build_requests(pop, &ues, n, &mut rng)
}

/// Feed `reqs` to a fresh server with `workers` crypto threads, split
/// into batches by `splits` (each entry = one `process_batch` call), and
/// return every (slot, reply-bytes) pair in emission order.
fn replies_for(
    pop: &Population,
    workers: usize,
    reqs: &[Vec<u8>],
    splits: &[usize],
) -> Vec<(usize, Vec<u8>)> {
    assert_eq!(splits.iter().sum::<usize>(), reqs.len());
    let mut server = pop.server_with_workers(SimRng::new(SEED), workers);
    let mut all = Vec::new();
    let mut cursor = 0;
    for &len in splits {
        let batch: Vec<(usize, &[u8])> = reqs[cursor..cursor + len]
            .iter()
            .enumerate()
            .map(|(i, r)| (cursor + i, r.as_slice()))
            .collect();
        cursor += len;
        let mut out = Vec::new();
        server.process_batch(&batch, &mut out);
        all.extend(out);
    }
    assert_eq!(server.counters.served_auths, reqs.len() as u64);
    all
}

/// W = 0 (inline, the PR 9 code path), W = 1, and W = 4 must produce
/// byte-identical reply streams for the same requests and grant rng:
/// parallelism may only move work across threads, never change bytes.
#[test]
fn worker_count_never_changes_reply_bytes() {
    let pop = population(SEED, 6);
    let reqs = request_stream(&pop, 36);
    let splits = [12usize, 12, 12];
    let inline = replies_for(&pop, 0, &reqs, &splits);
    assert_eq!(inline.len(), reqs.len());
    for workers in [1usize, 4] {
        let pooled = replies_for(&pop, workers, &reqs, &splits);
        assert_eq!(
            inline, pooled,
            "W={workers} replies diverged from the inline server"
        );
    }
}

/// How the stream is sliced into batches is an I/O-stage accident (the
/// adaptive window closes wherever load says it should) and must not
/// leak into reply bytes: same arrival order, same replies.
#[test]
fn batch_split_never_changes_reply_bytes() {
    let pop = population(SEED, 6);
    let reqs = request_stream(&pop, 30);
    let whole = replies_for(&pop, 4, &reqs, &[30]);
    let single = replies_for(&pop, 4, &reqs, &vec![1; 30]);
    let ragged = replies_for(&pop, 4, &reqs, &[7, 1, 13, 9]);
    assert_eq!(whole, single, "per-request batches diverged");
    assert_eq!(whole, ragged, "ragged batches diverged");
}

/// Stop the serve loop while a W = 4 pipeline is mid-stream and account
/// for every reply: the client receives exactly as many replies as the
/// server counts served (a gathered batch is always fully processed and
/// flushed before the stop flag is honored — nothing is lost in the
/// pool), and no `req_id` is ever answered twice (nothing is duplicated).
#[test]
fn stop_mid_stream_loses_and_duplicates_nothing() {
    let pop = Arc::new(population(SEED, 8));
    let mut server = pop.server_with_workers(SimRng::new(SEED ^ 0xd0), 4);
    let sock = UdpSocket::bind("127.0.0.1:0").expect("bind server");
    let addr = sock.local_addr().expect("local addr");
    let stop = Arc::new(AtomicBool::new(false));
    let stop_server = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        broker_server::serve(&mut server, &sock, &stop_server, &ServeConfig::default())
            .expect("serve");
        server
    });

    // Blast the whole burst (no client-side window) so batches pile up,
    // then pull the plug while the pipeline is still chewing.
    let reqs = request_stream(&pop, 128);
    let client = UdpSocket::bind("127.0.0.1:0").expect("bind client");
    client.connect(addr).expect("connect");
    for r in &reqs {
        client.send(r).expect("send");
    }
    std::thread::sleep(Duration::from_millis(2));
    stop.store(true, Ordering::Relaxed);

    // Collect replies until the line goes quiet for longer than any
    // in-flight batch could take to flush.
    client
        .set_read_timeout(Some(Duration::from_millis(500)))
        .expect("read timeout");
    let mut buf = vec![0u8; 8 * 1024];
    let mut answered: Vec<u64> = Vec::new();
    while let Ok(n) = client.recv(&mut buf) {
        let payload = unframe(&buf[..n]).expect("framed reply");
        match BrokerWire::decode(payload) {
            Some(BrokerWire::AuthOk { req_id, .. } | BrokerWire::AuthErr { req_id, .. }) => {
                answered.push(req_id);
            }
            other => panic!("non-reply frame: {other:?}"),
        }
    }
    let server = handle.join().expect("server thread");

    let served = server.counters.served_auths + server.counters.auth_errs;
    assert!(served >= 1, "the pipeline served nothing before the stop");
    assert_eq!(
        answered.len() as u64,
        served,
        "replies on the wire must match replies the server counted — \
         a stopped pipeline may strand requests, never replies"
    );
    let distinct: HashSet<u64> = answered.iter().copied().collect();
    assert_eq!(
        distinct.len(),
        answered.len(),
        "a req_id was answered twice"
    );
    assert_eq!(server.counters.bad_frames, 0);
}
