//! Dense typed arenas for hot per-endpoint state.
//!
//! The million-UE engine keeps per-endpoint hot state in contiguous
//! struct-of-arrays stores instead of scattered boxed structs, so the
//! steady-state wake path walks cache lines instead of chasing
//! pointers. [`Arena`] is the building block: a dense `Vec`-backed
//! store addressed by a stable [`ArenaId`] handed out at insertion.
//!
//! The arena is deliberately append-only (no per-slot free list): the
//! simulation's endpoint population is fixed at build time, and an
//! append-only store keeps iteration order == insertion order, which
//! the deterministic engine relies on. `clear` resets the whole store
//! for reuse between runs while keeping its capacity.
//!
//! The kernel crate has no telemetry dependency, so the arena exposes
//! its occupancy via plain accessors ([`Arena::len`],
//! [`Arena::capacity`], [`Arena::bytes_capacity`]) and consumers
//! publish the `sim.arena.*` gauges.

/// Stable handle into an [`Arena`]: a dense index, valid until the
/// arena is cleared.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ArenaId(pub u32);

/// A dense append-only typed store. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct Arena<T> {
    slots: Vec<T>,
}

impl<T> Arena<T> {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self { slots: Vec::new() }
    }

    /// An empty arena with room for `cap` entries before reallocating.
    /// Pre-sizing matters at N=1M: one allocation instead of a
    /// doubling cascade, and `bytes_capacity` is exact from the start.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            slots: Vec::with_capacity(cap),
        }
    }

    /// Append a value and return its stable handle.
    ///
    /// # Panics
    /// Panics if the arena already holds `u32::MAX` entries.
    pub fn push(&mut self, value: T) -> ArenaId {
        let id = u32::try_from(self.slots.len()).expect("arena overflow");
        self.slots.push(value);
        ArenaId(id)
    }

    /// Shared access to the entry at `id`.
    #[must_use]
    pub fn get(&self, id: ArenaId) -> &T {
        &self.slots[id.0 as usize]
    }

    /// Exclusive access to the entry at `id`.
    #[must_use]
    pub fn get_mut(&mut self, id: ArenaId) -> &mut T {
        &mut self.slots[id.0 as usize]
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the arena holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Allocated capacity in entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    /// Bytes of backing storage currently allocated (capacity × entry
    /// size) — what the `sim.arena.*.bytes` gauges report.
    #[must_use]
    pub fn bytes_capacity(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<T>()
    }

    /// Drop all entries, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.slots.clear();
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.slots.iter()
    }

    /// Iterate entries mutably in insertion order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.slots.iter_mut()
    }

    /// The whole store as a contiguous slice.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.slots
    }

    /// The whole store as a contiguous mutable slice.
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.slots
    }
}

impl<'a, T> IntoIterator for &'a Arena<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.slots.iter()
    }
}

impl<'a, T> IntoIterator for &'a mut Arena<T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.slots.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let mut a = Arena::new();
        let x = a.push(10u64);
        let y = a.push(20u64);
        assert_eq!(*a.get(x), 10);
        assert_eq!(*a.get(y), 20);
        *a.get_mut(x) += 1;
        assert_eq!(*a.get(x), 11);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }

    #[test]
    fn ids_are_dense_insertion_order() {
        let mut a = Arena::new();
        for i in 0..100u32 {
            assert_eq!(a.push(i), ArenaId(i));
        }
        let collected: Vec<u32> = a.iter().copied().collect();
        assert_eq!(collected, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn with_capacity_is_exact_and_clear_keeps_it() {
        let mut a: Arena<[u8; 48]> = Arena::with_capacity(1000);
        assert!(a.capacity() >= 1000);
        assert_eq!(a.bytes_capacity(), a.capacity() * 48);
        a.push([0; 48]);
        let cap = a.capacity();
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.capacity(), cap);
    }
}
