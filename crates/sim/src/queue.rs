//! A stable-ordered discrete-event queue.
//!
//! Events scheduled for the same instant pop in insertion order, which
//! keeps simulations deterministic regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first,
        // breaking ties by insertion sequence.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of `(SimTime, E)` with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` at instant `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// The instant of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// The earliest pending event and its instant, without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.heap.peek().map(|e| (e.at, &e.event))
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Pop the earliest event only if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        // Hold the root entry across the check so the due case costs one
        // heap traversal (the sift-down in `PeekMut::pop`), not a peek
        // traversal followed by a second full pop.
        let entry = self.heap.peek_mut()?;
        if entry.at <= now {
            let e = std::collections::binary_heap::PeekMut::pop(entry);
            Some((e.at, e.event))
        } else {
            None
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), "later");
        assert!(q.pop_due(SimTime::from_secs(4)).is_none());
        assert_eq!(q.pop_due(SimTime::from_secs(5)).unwrap().1, "later");
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), ());
        q.push(SimTime::from_secs(1) + SimDuration::from_nanos(1), ());
        let t = q.peek_time().unwrap();
        assert_eq!(q.pop().unwrap().0, t);
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Pops are globally sorted by time, FIFO within a timestamp.
        #[test]
        fn prop_pops_sorted_fifo(times in proptest::collection::vec(0u64..50, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(*t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((at, seq)) = q.pop() {
                if let Some((lt, lseq)) = last {
                    prop_assert!(at >= lt);
                    if at == lt {
                        prop_assert!(seq > lseq, "FIFO within a timestamp");
                    }
                }
                last = Some((at, seq));
            }
        }

        /// pop_due never returns future events and drains exactly the
        /// due prefix.
        #[test]
        fn prop_pop_due_boundary(times in proptest::collection::vec(0u64..100, 1..100), cut in 0u64..100) {
            let mut q = EventQueue::new();
            for t in &times {
                q.push(SimTime::from_nanos(*t), *t);
            }
            let now = SimTime::from_nanos(cut);
            let mut due = 0;
            while let Some((at, _)) = q.pop_due(now) {
                prop_assert!(at <= now);
                due += 1;
            }
            let expected = times.iter().filter(|&&t| t <= cut).count();
            prop_assert_eq!(due, expected);
            if let Some(t) = q.peek_time() {
                prop_assert!(t > now);
            }
        }

        /// Determinism: two queues fed the same interleaved push/pop
        /// schedule produce byte-identical pop sequences — the FIFO
        /// tie-break depends only on insertion order, never on heap
        /// internals or capacity history.
        #[test]
        fn prop_fifo_tiebreak_deterministic(
            ops in proptest::collection::vec((0u64..8, any::<bool>()), 1..300),
        ) {
            let mut q1 = EventQueue::new();
            // q2 sees extra capacity churn before the same schedule.
            let mut q2 = EventQueue::new();
            for i in 0..64 {
                q2.push(SimTime::from_nanos(i), usize::MAX);
            }
            while q2.pop().is_some() {}

            let mut out1 = Vec::new();
            let mut out2 = Vec::new();
            for (i, (t, do_pop)) in ops.iter().enumerate() {
                if *do_pop {
                    out1.push(q1.pop());
                    out2.push(q2.pop());
                } else {
                    q1.push(SimTime::from_nanos(*t), i);
                    q2.push(SimTime::from_nanos(*t), i);
                }
            }
            while let Some(e) = q1.pop() {
                out1.push(Some(e));
            }
            while let Some(e) = q2.pop() {
                out2.push(Some(e));
            }
            prop_assert_eq!(out1, out2);
        }
    }
}
