//! The experiment's single deterministic randomness source.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded RNG with the distribution helpers the simulation needs.
///
/// One `SimRng` per experiment; subsystems that need independent streams
/// should [`fork`](SimRng::fork) so adding draws in one subsystem does not
/// perturb another.
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Seeded constructor — the seed fully determines the experiment.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream.
    #[must_use]
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.inner.next_u64())
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// Exponential with the given mean (inter-arrival times).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.unit(); // in (0, 1]
        -mean * u.ln()
    }

    /// Normal via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = 1.0 - self.unit();
        let u2 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Log-normal parameterized by the mean and standard deviation of the
    /// *resulting* distribution (not of the underlying normal).
    pub fn lognormal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(mean > 0.0, "log-normal mean must be positive");
        let variance = std_dev * std_dev;
        let sigma2 = (1.0 + variance / (mean * mean)).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        let n = self.normal(mu, sigma2.sqrt());
        n.exp()
    }

    /// Fill a byte buffer (key generation in tests and simulations).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.inner.fill_bytes(buf);
    }

    /// A fresh 32-byte seed (for key generation).
    pub fn seed32(&mut self) -> [u8; 32] {
        let mut out = [0u8; 32];
        self.fill_bytes(&mut out);
        out
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn fork_is_independent() {
        let mut root1 = SimRng::new(9);
        let mut fork1 = root1.fork();
        let mut root2 = SimRng::new(9);
        let mut fork2 = root2.fork();
        // Consuming extra draws from one root must not change the fork.
        let _ = root1.next_u64();
        assert_eq!(fork1.next_u64(), fork2.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::new(4);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| r.exponential(5.0)).sum();
        let mean = total / f64::from(n);
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut r = SimRng::new(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn lognormal_moments_close() {
        let mut r = SimRng::new(6);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.lognormal(15.0, 9.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 15.0).abs() < 0.5, "mean {mean}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::new(8);
        for _ in 0..1000 {
            let v = r.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
            let u = r.uniform_u64(5, 10);
            assert!((5..10).contains(&u));
        }
    }
}
