//! Statistics helpers used by the benchmark harness.

use crate::time::{SimDuration, SimTime};

/// An online mean/variance/min/max accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (NaN if empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum observation (NaN if empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merge another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Percentile of a sample set via linear interpolation (`p` in `[0, 100]`).
///
/// Returns NaN for an empty sample set.
#[must_use]
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A time series binned at a fixed interval: each bin accumulates a sum
/// (e.g. bytes delivered per second → throughput series).
#[derive(Clone, Debug)]
pub struct TimeSeries {
    bin: SimDuration,
    sums: Vec<f64>,
}

impl TimeSeries {
    /// Create a series with the given bin width.
    ///
    /// # Panics
    /// Panics if the bin width is zero.
    #[must_use]
    pub fn new(bin: SimDuration) -> Self {
        assert!(bin > SimDuration::ZERO, "bin width must be positive");
        Self {
            bin,
            sums: Vec::new(),
        }
    }

    /// Add `value` to the bin containing `at`.
    pub fn record(&mut self, at: SimTime, value: f64) {
        let idx = (at.as_nanos() / self.bin.as_nanos()) as usize;
        if idx >= self.sums.len() {
            self.sums.resize(idx + 1, 0.0);
        }
        self.sums[idx] += value;
    }

    /// Bin width.
    #[must_use]
    pub fn bin_width(&self) -> SimDuration {
        self.bin
    }

    /// Per-bin sums.
    #[must_use]
    pub fn sums(&self) -> &[f64] {
        &self.sums
    }

    /// Per-bin rate: sum divided by bin width in seconds.
    #[must_use]
    pub fn rates_per_sec(&self) -> Vec<f64> {
        let w = self.bin.as_secs_f64();
        self.sums.iter().map(|s| s / w).collect()
    }

    /// Mean of per-bin rates over bins `[from, to)` (NaN if empty).
    #[must_use]
    pub fn mean_rate(&self, from_bin: usize, to_bin: usize) -> f64 {
        let rates = self.rates_per_sec();
        let to = to_bin.min(rates.len());
        if from_bin >= to {
            return f64::NAN;
        }
        let slice = &rates[from_bin..to];
        slice.iter().sum::<f64>() / slice.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
    }

    #[test]
    fn summary_merge_matches_combined() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        let mut a = Summary::new();
        let mut b = Summary::new();
        for (i, v) in values.iter().enumerate() {
            whole.record(*v);
            if i < 37 {
                a.record(*v);
            } else {
                b.record(*v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn percentile_interpolates() {
        let samples = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 100.0), 4.0);
        assert_eq!(percentile(&samples, 50.0), 2.5);
    }

    #[test]
    fn percentile_single_sample() {
        assert_eq!(percentile(&[42.0], 99.0), 42.0);
    }

    #[test]
    fn percentile_empty_is_nan() {
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn timeseries_bins_and_rates() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        ts.record(SimTime::from_secs_f64(0.25), 100.0);
        ts.record(SimTime::from_secs_f64(0.75), 100.0);
        ts.record(SimTime::from_secs_f64(1.5), 300.0);
        assert_eq!(ts.sums(), &[200.0, 300.0]);
        assert_eq!(ts.rates_per_sec(), vec![200.0, 300.0]);
        assert!((ts.mean_rate(0, 2) - 250.0).abs() < 1e-12);
    }

    #[test]
    fn timeseries_sparse_fills_zero() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        ts.record(SimTime::from_secs(3), 5.0);
        assert_eq!(ts.sums(), &[0.0, 0.0, 0.0, 5.0]);
    }
}
