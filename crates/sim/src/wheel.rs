//! A hierarchical timing wheel (Varghese–Lauck) over [`SimTime`].
//!
//! [`TimerWheel`] is a drop-in replacement for [`EventQueue`](crate::EventQueue)
//! on hot scheduling paths: same pop order (earliest instant first, FIFO
//! by insertion within an instant), but O(1) amortized insert/cancel
//! instead of O(log n), and no stale entries — cancelling a timer removes
//! it immediately rather than leaving a generation-tagged tombstone to be
//! skipped later.
//!
//! # Structure
//!
//! Time is the raw nanosecond count of [`SimTime`]. The wheel keeps a
//! monotone scan position `cur` and 11 levels of 64 slots each; level `l`
//! buckets pending entries by bits `[6l, 6l+6)` of their deadline
//! (6 bits/level × 11 levels = 66 bits ≥ the full 64-bit range, so any
//! deadline, including [`SimTime::FAR_FUTURE`], fits without overflow
//! wraparound). An entry due at `t > cur` lands at the level of the
//! highest bit where `t` differs from `cur` — which is exactly the
//! deepest level at which `t`'s slot index exceeds `cur`'s, so scanning
//! each level for the first occupied slot *after* `cur`'s finds the
//! global minimum. A level-0 slot spans a single nanosecond: by the time
//! an entry cascades down to level 0 its slot *is* its deadline, which is
//! what makes exact FIFO ordering cheap (everything in the slot shares
//! one instant).
//!
//! Entries with a deadline at or before `cur` go straight to the `ready`
//! buffer, keeping their original deadline; `ready` is kept sorted by
//! `(deadline, seq)`, so even "schedule in the past" inserts (the
//! engine's *as-soon-as-possible* polls) pop in exactly the order
//! [`EventQueue`](crate::EventQueue) would produce.
//!
//! # Freelist pool
//!
//! Entries live in a slab (`Vec<Node>`) with an embedded freelist; slots
//! store `u32` slab indices. Once the slab has grown to the high-water
//! mark of concurrently pending timers, insert/cancel/pop allocate
//! nothing — the freelist is the pool.
//!
//! # Determinism contract
//!
//! For any interleaved sequence of `push`/`pop`/`pop_due` calls,
//! `TimerWheel` returns exactly what `EventQueue` returns (property-tested
//! against it as an oracle in this module). `cancel` additionally removes
//! an entry in O(1); a cancelled-then-reinserted timer behaves like a
//! fresh push (new sequence number, FIFO slot at the back of its instant).

use crate::time::SimTime;

const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS; // 64
const LEVELS: usize = 11; // 6 × 11 = 66 bits ≥ 64

/// Handle to a pending timer, returned by [`TimerWheel::insert`].
///
/// The handle is validated on [`cancel`](TimerWheel::cancel): cancelling
/// a timer that already fired (or was already cancelled) is a no-op
/// returning `None`, even if its slab cell has since been reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimerId {
    cell: u32,
    seq: u64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// In `slots[level * SLOTS + slot]` at position `idx`.
    Slot { level: u8, slot: u8, idx: u32 },
    /// In the `ready` buffer (position found by scan; cancels here are
    /// rare and the buffer is small).
    Ready,
    /// Not pending (fired, cancelled, or never used).
    Free,
}

struct Node<E> {
    at: SimTime,
    seq: u64,
    event: Option<E>,
    loc: Loc,
}

/// A hierarchical timing wheel with [`EventQueue`](crate::EventQueue)-equivalent
/// ordering and O(1) insert/cancel. See the module docs for the design.
pub struct TimerWheel<E> {
    /// Monotone scan position (ns). All slot-resident entries are due
    /// strictly after `cur`; everything due at or before it is in `ready`.
    cur: u64,
    next_seq: u64,
    /// `LEVELS × SLOTS` buckets of slab indices, flattened.
    slots: Vec<Vec<u32>>,
    /// Per-level bitmap of non-empty slots.
    occupied: [u64; LEVELS],
    /// Entry storage; freed cells are recycled via `free`.
    slab: Vec<Node<E>>,
    /// Freelist of slab cells (the allocation pool).
    free: Vec<u32>,
    /// Due entries, sorted by `(at, seq)` from `ready_head` on.
    ready: Vec<u32>,
    ready_head: usize,
    ready_dirty: bool,
    len: usize,
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimerWheel<E> {
    /// An empty wheel positioned at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            cur: 0,
            next_seq: 0,
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            slab: Vec::new(),
            free: Vec::new(),
            ready: Vec::new(),
            ready_head: 0,
            ready_dirty: false,
            len: 0,
        }
    }

    /// Number of pending timers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no timers are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop all pending timers (outstanding [`TimerId`]s become stale).
    /// Slot, slab and freelist capacity is retained; the scan position is
    /// not rewound — time stays monotone across a clear.
    pub fn clear(&mut self) {
        if self.len == 0 && self.ready.is_empty() {
            return;
        }
        for v in &mut self.slots {
            v.clear();
        }
        self.occupied = [0; LEVELS];
        self.slab.clear();
        self.free.clear();
        self.ready.clear();
        self.ready_head = 0;
        self.ready_dirty = false;
        self.len = 0;
    }

    /// Schedule `event` at instant `at`. Equivalent to
    /// [`EventQueue::push`](crate::EventQueue::push), additionally
    /// returning a handle usable with [`cancel`](Self::cancel).
    pub fn insert(&mut self, at: SimTime, event: E) -> TimerId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let cell = match self.free.pop() {
            Some(c) => {
                self.slab[c as usize] = Node {
                    at,
                    seq,
                    event: Some(event),
                    loc: Loc::Free,
                };
                c
            }
            None => {
                let c = u32::try_from(self.slab.len()).expect("timer wheel slab overflow");
                self.slab.push(Node {
                    at,
                    seq,
                    event: Some(event),
                    loc: Loc::Free,
                });
                c
            }
        };
        self.place(cell);
        self.len += 1;
        TimerId { cell, seq }
    }

    /// File `cell` into the slot (or ready buffer) dictated by its
    /// deadline relative to `cur`.
    fn place(&mut self, cell: u32) {
        let at = self.slab[cell as usize].at.as_nanos();
        let t = at.max(self.cur);
        let xor = t ^ self.cur;
        if xor == 0 {
            // Due now (or scheduled in the past): straight to ready.
            self.slab[cell as usize].loc = Loc::Ready;
            self.ready.push(cell);
            self.ready_dirty = true;
            return;
        }
        let level = ((63 - xor.leading_zeros()) / SLOT_BITS) as usize;
        let slot = ((t >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        let bucket = &mut self.slots[level * SLOTS + slot];
        self.slab[cell as usize].loc = Loc::Slot {
            level: level as u8,
            slot: slot as u8,
            idx: bucket.len() as u32,
        };
        bucket.push(cell);
        self.occupied[level] |= 1 << slot;
    }

    /// Cancel a pending timer in O(1), returning its event, or `None` if
    /// the handle is stale (the timer already fired or was cancelled).
    pub fn cancel(&mut self, id: TimerId) -> Option<E> {
        let node = self.slab.get(id.cell as usize)?;
        if node.seq != id.seq || node.loc == Loc::Free {
            return None;
        }
        match node.loc {
            Loc::Slot { level, slot, idx } => {
                let bucket = &mut self.slots[level as usize * SLOTS + slot as usize];
                bucket.swap_remove(idx as usize);
                if let Some(&moved) = bucket.get(idx as usize) {
                    self.slab[moved as usize].loc = Loc::Slot { level, slot, idx };
                }
                if bucket.is_empty() {
                    self.occupied[level as usize] &= !(1 << slot);
                }
            }
            Loc::Ready => {
                // Rare path: linear scan of the (small) due buffer.
                let pos = self.ready[self.ready_head..]
                    .iter()
                    .position(|&c| c == id.cell)
                    .expect("ready entry missing")
                    + self.ready_head;
                self.ready.swap_remove(pos);
                self.ready_dirty = true;
            }
            Loc::Free => unreachable!(),
        }
        let node = &mut self.slab[id.cell as usize];
        node.loc = Loc::Free;
        let ev = node.event.take();
        self.free.push(id.cell);
        self.len -= 1;
        ev
    }

    /// Bitmask of slot indices strictly greater than `base`.
    fn above(base: u64) -> u64 {
        if base >= (SLOTS as u64 - 1) {
            0
        } else {
            !0u64 << (base + 1)
        }
    }

    /// Advance `cur` and cascade until the ready buffer holds the
    /// earliest pending entries (sorted), or return `false` if empty.
    fn ensure_ready(&mut self) -> bool {
        loop {
            if self.ready_head < self.ready.len() {
                if self.ready_dirty {
                    let (ready, slab) = (&mut self.ready, &self.slab);
                    ready[self.ready_head..].sort_unstable_by_key(|&c| {
                        let n = &slab[c as usize];
                        (n.at, n.seq)
                    });
                    self.ready_dirty = false;
                }
                return true;
            }
            self.ready.clear();
            self.ready_head = 0;
            self.ready_dirty = false;

            let mut advanced = false;
            for level in 0..LEVELS {
                let shift = SLOT_BITS * level as u32;
                let base = (self.cur >> shift) & (SLOTS as u64 - 1);
                let mask = self.occupied[level] & Self::above(base);
                if mask == 0 {
                    continue;
                }
                let slot = u64::from(mask.trailing_zeros());
                if level == 0 {
                    // A level-0 slot is one exact nanosecond: activate it.
                    self.cur = (self.cur & !(SLOTS as u64 - 1)) | slot;
                    let idx = slot as usize;
                    let mut bucket = std::mem::take(&mut self.slots[idx]);
                    self.occupied[0] &= !(1 << slot);
                    for &cell in &bucket {
                        self.slab[cell as usize].loc = Loc::Ready;
                    }
                    self.ready.append(&mut bucket);
                    self.slots[idx] = bucket;
                    self.ready_dirty = true;
                } else {
                    // Jump to the slot's base time and redistribute its
                    // entries one level down (or to ready if due exactly).
                    let upper_shift = SLOT_BITS * (level as u32 + 1);
                    let upper = if upper_shift >= 64 {
                        0
                    } else {
                        (self.cur >> upper_shift) << upper_shift
                    };
                    self.cur = upper | (slot << shift);
                    let idx = level * SLOTS + slot as usize;
                    let mut bucket = std::mem::take(&mut self.slots[idx]);
                    self.occupied[level] &= !(1 << slot);
                    for &cell in &bucket {
                        self.place(cell);
                    }
                    bucket.clear();
                    self.slots[idx] = bucket;
                }
                advanced = true;
                break;
            }
            if !advanced {
                return false;
            }
        }
    }

    /// The instant of the earliest pending timer.
    ///
    /// Takes `&mut self` (unlike
    /// [`EventQueue::peek_time`](crate::EventQueue::peek_time)) because
    /// peeking may advance the internal scan position.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if !self.ensure_ready() {
            return None;
        }
        Some(self.slab[self.ready[self.ready_head] as usize].at)
    }

    /// Pop the earliest pending timer.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if !self.ensure_ready() {
            return None;
        }
        Some(self.take_ready_front())
    }

    /// Pop the earliest timer only if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        if !self.ensure_ready() {
            return None;
        }
        if self.slab[self.ready[self.ready_head] as usize].at > now {
            return None;
        }
        Some(self.take_ready_front())
    }

    fn take_ready_front(&mut self) -> (SimTime, E) {
        let cell = self.ready[self.ready_head];
        self.ready_head += 1;
        if self.ready_head == self.ready.len() {
            self.ready.clear();
            self.ready_head = 0;
        }
        let node = &mut self.slab[cell as usize];
        node.loc = Loc::Free;
        let at = node.at;
        let ev = node.event.take().expect("ready entry without event");
        self.free.push(cell);
        self.len -= 1;
        (at, ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut w = TimerWheel::new();
        w.insert(SimTime::from_secs(3), "c");
        w.insert(SimTime::from_secs(1), "a");
        w.insert(SimTime::from_secs(2), "b");
        assert_eq!(w.pop().unwrap().1, "a");
        assert_eq!(w.pop().unwrap().1, "b");
        assert_eq!(w.pop().unwrap().1, "c");
        assert!(w.pop().is_none());
    }

    #[test]
    fn same_time_is_fifo() {
        let mut w = TimerWheel::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            w.insert(t, i);
        }
        for i in 0..100 {
            assert_eq!(w.pop().unwrap().1, i);
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut w = TimerWheel::new();
        w.insert(SimTime::from_secs(5), "later");
        assert!(w.pop_due(SimTime::from_secs(4)).is_none());
        assert_eq!(w.pop_due(SimTime::from_secs(5)).unwrap().1, "later");
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut w = TimerWheel::new();
        w.insert(SimTime::from_secs(2), ());
        w.insert(SimTime::from_secs(1) + SimDuration::from_nanos(1), ());
        let t = w.peek_time().unwrap();
        assert_eq!(w.pop().unwrap().0, t);
    }

    #[test]
    fn past_insert_pops_before_later_entries() {
        let mut w = TimerWheel::new();
        w.insert(SimTime::from_secs(10), "ten");
        // Advance the scan position to t=10s…
        assert_eq!(w.peek_time(), Some(SimTime::from_secs(10)));
        // …then schedule in the past: must still pop first, at its
        // original instant.
        w.insert(SimTime::from_secs(2), "two");
        assert_eq!(w.pop().unwrap(), (SimTime::from_secs(2), "two"));
        assert_eq!(w.pop().unwrap(), (SimTime::from_secs(10), "ten"));
    }

    #[test]
    fn cancel_removes_and_returns_event() {
        let mut w = TimerWheel::new();
        let a = w.insert(SimTime::from_secs(1), "a");
        let b = w.insert(SimTime::from_secs(2), "b");
        assert_eq!(w.cancel(a), Some("a"));
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop().unwrap().1, "b");
        // Stale handles (fired or already cancelled) are no-ops.
        assert_eq!(w.cancel(a), None);
        assert_eq!(w.cancel(b), None);
    }

    #[test]
    fn cancel_from_ready_buffer() {
        let mut w = TimerWheel::new();
        let t = SimTime::from_secs(1);
        let ids: Vec<_> = (0..4).map(|i| w.insert(t, i)).collect();
        assert_eq!(w.peek_time(), Some(t)); // all four now in ready
        assert_eq!(w.cancel(ids[1]), Some(1));
        assert_eq!(w.pop().unwrap().1, 0);
        assert_eq!(w.pop().unwrap().1, 2);
        assert_eq!(w.pop().unwrap().1, 3);
        assert!(w.pop().is_none());
    }

    #[test]
    fn stale_handle_against_recycled_cell() {
        let mut w = TimerWheel::new();
        let a = w.insert(SimTime::from_secs(1), 1u32);
        w.pop().unwrap();
        // The freed cell is recycled by the next insert; the old handle
        // must not cancel the new timer.
        let b = w.insert(SimTime::from_secs(2), 2u32);
        assert_eq!(a.cell, b.cell);
        assert_eq!(w.cancel(a), None);
        assert_eq!(w.pop().unwrap().1, 2);
    }

    #[test]
    fn far_future_deadline() {
        let mut w = TimerWheel::new();
        w.insert(SimTime::FAR_FUTURE, "end");
        w.insert(SimTime::from_secs(1), "soon");
        assert_eq!(w.pop().unwrap().1, "soon");
        assert_eq!(w.pop().unwrap(), (SimTime::FAR_FUTURE, "end"));
    }

    #[test]
    fn len_and_clear() {
        let mut w = TimerWheel::new();
        w.insert(SimTime::ZERO, 1);
        w.insert(SimTime::from_secs(100), 2);
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
        w.clear();
        assert!(w.is_empty());
        assert!(w.pop().is_none());
        // Reusable after clear.
        w.insert(SimTime::from_secs(1), 3);
        assert_eq!(w.pop().unwrap().1, 3);
    }

    #[test]
    fn freelist_recycles_cells() {
        let mut w = TimerWheel::new();
        for round in 0..10 {
            for i in 0..8u64 {
                w.insert(SimTime::from_nanos(round * 1000 + i), i);
            }
            while w.pop().is_some() {}
        }
        // High-water mark, not total inserts.
        assert!(w.slab.len() <= 8, "slab grew to {}", w.slab.len());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::queue::EventQueue;
    use proptest::prelude::*;

    proptest! {
        /// Pops are globally sorted by time, FIFO within a timestamp —
        /// the same contract `queue.rs` pins for `EventQueue`.
        #[test]
        fn prop_pops_sorted_fifo(times in proptest::collection::vec(0u64..50, 1..200)) {
            let mut w = TimerWheel::new();
            for (i, t) in times.iter().enumerate() {
                w.insert(SimTime::from_nanos(*t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((at, seq)) = w.pop() {
                if let Some((lt, lseq)) = last {
                    prop_assert!(at >= lt);
                    if at == lt {
                        prop_assert!(seq > lseq, "FIFO within a timestamp");
                    }
                }
                last = Some((at, seq));
            }
        }

        /// Interleaved push/pop/pop_due against `EventQueue` as the
        /// oracle: identical output, including boundary behaviour and
        /// scheduling in the past after the wheel has advanced.
        #[test]
        fn prop_matches_event_queue(
            ops in proptest::collection::vec((0u64..2_000_000, 0u8..3), 1..300),
        ) {
            let mut q = EventQueue::new();
            let mut w = TimerWheel::new();
            for (i, (t, op)) in ops.iter().enumerate() {
                match op {
                    0 => {
                        q.push(SimTime::from_nanos(*t), i);
                        w.insert(SimTime::from_nanos(*t), i);
                    }
                    1 => prop_assert_eq!(q.pop(), w.pop()),
                    _ => prop_assert_eq!(
                        q.pop_due(SimTime::from_nanos(*t)),
                        w.pop_due(SimTime::from_nanos(*t))
                    ),
                }
                prop_assert_eq!(q.len(), w.len());
            }
            loop {
                let (a, b) = (q.pop(), w.pop());
                prop_assert_eq!(a, b);
                if b.is_none() {
                    break;
                }
            }
        }

        /// Cancel/re-arm equivalence: a timer that is cancelled and
        /// re-inserted behaves exactly like a queue where the entry was
        /// never pushed and the replacement was pushed at re-arm time.
        /// Drives both structures through arm/re-arm/fire cycles.
        #[test]
        fn prop_cancel_rearm_matches_oracle(
            ops in proptest::collection::vec((0u64..100_000, 0u8..4, 0usize..8), 1..200),
        ) {
            let mut q: EventQueue<usize> = EventQueue::new();
            let mut w = TimerWheel::new();
            // Per-key live handle; the oracle models cancel by tracking
            // which (key, nonce) pushes are still valid.
            let mut live: [Option<TimerId>; 8] = [None; 8];
            let mut q_live: [Option<usize>; 8] = [None; 8];
            let mut nonce = 0usize;
            let drain_one = |q: &mut EventQueue<usize>,
                                 q_live: &mut [Option<usize>; 8]|
             -> Option<(SimTime, usize)> {
                // Oracle pop: skip entries whose nonce is stale (the
                // generation-style lazy invalidation the wheel replaces).
                while let Some((at, v)) = q.pop() {
                    let (key, n) = (v >> 32, v & 0xffff_ffff);
                    if q_live[key] == Some(n) {
                        q_live[key] = None;
                        return Some((at, key));
                    }
                }
                None
            };
            for (t, op, key) in ops {
                match op {
                    0 | 1 => {
                        // (Re-)arm `key` at t: cancel any live entry first.
                        if let Some(id) = live[key].take() {
                            w.cancel(id);
                        }
                        q_live[key] = Some(nonce);
                        q.push(SimTime::from_nanos(t), (key << 32) | nonce);
                        live[key] = Some(w.insert(SimTime::from_nanos(t), key));
                        nonce += 1;
                    }
                    2 => {
                        // Cancel `key` if armed.
                        if let Some(id) = live[key].take() {
                            prop_assert_eq!(w.cancel(id), Some(key));
                        }
                        q_live[key] = None;
                    }
                    _ => {
                        let expect = drain_one(&mut q, &mut q_live);
                        let got = w.pop();
                        if let Some((_, k)) = got {
                            live[k] = None;
                        }
                        prop_assert_eq!(expect, got);
                    }
                }
            }
            loop {
                let expect = drain_one(&mut q, &mut q_live);
                let got = w.pop();
                prop_assert_eq!(expect, got);
                if got.is_none() {
                    break;
                }
            }
        }
    }
}
