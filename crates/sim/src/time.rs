//! The virtual clock: instants and durations in nanosecond ticks.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A duration on the virtual clock, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }
    /// From microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        Self(us * 1_000)
    }
    /// From milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }
    /// From whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000_000)
    }
    /// From fractional seconds. Saturates at zero for negative input.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        Self((s.max(0.0) * 1e9).round() as u64)
    }

    /// Nanosecond count.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// As fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// As fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scale by a non-negative float.
    #[must_use]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative SimDuration"))
    }
}

impl core::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl core::ops::Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// An instant on the virtual clock. Instants start at [`SimTime::ZERO`]
/// when an experiment begins.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The experiment epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// A sentinel far in the future (useful as "no deadline").
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    /// Construct from nanoseconds since the epoch.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }
    /// Construct from seconds since the epoch.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000_000)
    }
    /// Construct from fractional seconds since the epoch.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        Self((s.max(0.0) * 1e9).round() as u64)
    }
    /// Construct from milliseconds since the epoch.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// Nanoseconds since the epoch.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Fractional seconds since the epoch.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed duration since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self` (a causality bug).
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier is in the future"),
        )
    }

    /// Saturating elapsed duration since `earlier` (zero if earlier is
    /// actually later).
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.as_nanos()))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == u64::MAX {
            write!(f, "t=∞")
        } else {
            write!(f, "t={:.6}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn time_add_and_since() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(1500);
        assert_eq!(t1.since(t0), SimDuration::from_millis(1500));
        assert_eq!(t1.as_secs_f64(), 1.5);
    }

    #[test]
    #[should_panic(expected = "earlier is in the future")]
    fn since_panics_on_causality_violation() {
        let t0 = SimTime::from_secs(1);
        let t1 = SimTime::from_secs(2);
        let _ = t0.since(t1);
    }

    #[test]
    fn saturating_since_clamps() {
        let t0 = SimTime::from_secs(1);
        let t1 = SimTime::from_secs(2);
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
    }

    #[test]
    fn far_future_ordering() {
        assert!(SimTime::FAR_FUTURE > SimTime::from_secs(1_000_000));
    }

    #[test]
    fn negative_secs_f64_saturates() {
        assert_eq!(SimDuration::from_secs_f64(-2.0), SimDuration::ZERO);
    }

    #[test]
    fn display_scales() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn mul_f64_scaling() {
        assert_eq!(
            SimDuration::from_secs(2).mul_f64(0.25),
            SimDuration::from_millis(500)
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// `from_secs_f64` rounds to the nearest nanosecond and never
        /// drifts by more than half a tick.
        #[test]
        fn prop_from_secs_f64_rounds_to_nearest(ns in 0u64..1_000_000_000_000) {
            let d = SimDuration::from_secs_f64(ns as f64 / 1e9);
            // f64 has 52 mantissa bits: below 2^52 ns the conversion is
            // exact except for the final rounding step.
            let err = d.as_nanos().abs_diff(ns);
            prop_assert!(err <= 1, "{ns} ns roundtripped to {} ns", d.as_nanos());
        }

        /// Negative and NaN-free inputs saturate at zero, never panic.
        #[test]
        fn prop_from_secs_f64_saturates_negative(s in -1.0e12f64..0.0) {
            prop_assert_eq!(SimDuration::from_secs_f64(s), SimDuration::ZERO);
        }

        /// Duration saturating_sub never underflows and agrees with
        /// checked arithmetic when in range.
        #[test]
        fn prop_duration_saturating_sub(a in any::<u64>(), b in any::<u64>()) {
            let d = SimDuration::from_nanos(a).saturating_sub(SimDuration::from_nanos(b));
            prop_assert_eq!(d.as_nanos(), a.saturating_sub(b));
        }

        /// Instant + duration saturates at FAR_FUTURE instead of
        /// wrapping, and ordering is preserved.
        #[test]
        fn prop_time_add_saturates(t in any::<u64>(), d in any::<u64>()) {
            let sum = SimTime::from_nanos(t) + SimDuration::from_nanos(d);
            prop_assert_eq!(sum.as_nanos(), t.saturating_add(d));
            prop_assert!(sum >= SimTime::from_nanos(t));
        }

        /// `saturating_since` is `since` when causal and zero otherwise.
        #[test]
        fn prop_saturating_since(a in any::<u64>(), b in any::<u64>()) {
            let (ta, tb) = (SimTime::from_nanos(a), SimTime::from_nanos(b));
            let d = ta.saturating_since(tb);
            if a >= b {
                prop_assert_eq!(d, ta.since(tb));
            } else {
                prop_assert_eq!(d, SimDuration::ZERO);
            }
        }

        /// (t + d1) + d2 == (t + d2) + d1 when no saturation occurs:
        /// event scheduling is order-insensitive.
        #[test]
        fn prop_time_add_commutes(
            t in 0u64..1_000_000_000_000,
            d1 in 0u64..1_000_000_000_000,
            d2 in 0u64..1_000_000_000_000,
        ) {
            let t = SimTime::from_nanos(t);
            let (d1, d2) = (SimDuration::from_nanos(d1), SimDuration::from_nanos(d2));
            prop_assert_eq!((t + d1) + d2, (t + d2) + d1);
        }
    }
}
