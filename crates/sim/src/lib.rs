//! Deterministic discrete-event simulation kernel.
//!
//! Everything in the CellBricks reproduction runs on a virtual clock:
//! following the smoltcp philosophy, components are event-driven and
//! poll-based, never touching wall-clock time or OS timers, so every
//! experiment is reproducible bit-for-bit from its RNG seed.
//!
//! * [`SimTime`] / [`SimDuration`] — the virtual clock (nanosecond ticks),
//! * [`EventQueue`] — a stable-ordered pending-event set,
//! * [`TimerWheel`] — a hierarchical timing wheel with the same ordering
//!   contract but O(1) insert/cancel, for hot scheduling paths,
//! * [`SimRng`] — one seeded random stream per experiment,
//! * [`stats`] — Welford summaries, percentiles, and binned time series
//!   used by the benchmark harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod wheel;

pub use arena::{Arena, ArenaId};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use stats::{percentile, Summary, TimeSeries};
pub use time::{SimDuration, SimTime};
pub use wheel::{TimerId, TimerWheel};
