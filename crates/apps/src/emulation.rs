//! The §6.2 drive-test emulation.
//!
//! Reproduces the paper's methodology over the simulated network: a UE on
//! a policed access path (the T-Mobile stand-in), handover events from the
//! RAN drive model, and two arms per experiment —
//!
//! * **MNO**: plain TCP, IP preserved across handovers, only a brief
//!   radio outage (today's in-network mobility), and
//! * **CellBricks**: MPTCP; each handover emulates a bTelco switch —
//!   address invalidated, radio dark for the attach delay `d`
//!   (§6.1-measured), then a *new* address assigned, which MPTCP absorbs
//!   by joining a fresh subflow after its address-worker wait.
//!
//! The same deterministic rate-policy trace is applied to both arms, so
//! comparisons are paired exactly like the paper's two UE–VM pairs.

use crate::harness::{App, AppHost};
use crate::iperf::{IperfClient, IperfServer, Transport};
use crate::ping::{EchoServer, PingClient};
use crate::video::{VideoClient, VideoServer};
use crate::voip::VoipPeer;
use crate::web::{PageModel, WebClient, WebServer};
use cellbricks_net::{
    BurstLoss, CarrierPolicy, Driver, EndpointAddr, FaultPlan, LinkConfig, LinkId, NetWorld,
    RateSchedule, Router, Shaper, TimeOfDay, Topology,
};
use cellbricks_ran::{CellSelector, DriveProfile, DriveSim, RouteKind};
use cellbricks_sim::{SimDuration, SimRng, SimTime, TimeSeries};
use cellbricks_transport::{CcAlgo, Host, MpConfig, TcpConfig};
use std::net::Ipv4Addr;

/// Which architecture arm to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Arch {
    /// Today's cellular network: TCP, stable IP, seamless-ish handover.
    Mno,
    /// CellBricks: MPTCP, IP change + attach delay per handover.
    CellBricks,
}

/// Which application workload to measure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Workload {
    /// Bulk downlink throughput.
    Iperf,
    /// UDP echo latency.
    Ping,
    /// Two-way voice.
    Voip,
    /// ABR video streaming.
    Video,
    /// Batched page loads.
    Web,
}

/// Emulation parameters.
#[derive(Clone)]
pub struct EmulationConfig {
    /// Drive route.
    pub route: RouteKind,
    /// Day or night regime.
    pub tod: TimeOfDay,
    /// Architecture arm.
    pub arch: Arch,
    /// Application.
    pub workload: Workload,
    /// Drive duration.
    pub duration: SimDuration,
    /// CellBricks attach delay `d` (default: the §6.1 us-west result).
    pub attach_delay: SimDuration,
    /// MPTCP address-worker wait (mainline default 500 ms; Fig. 9 sweeps
    /// this to zero).
    pub mptcp_wait: SimDuration,
    /// MNO handover radio interruption (default 40 ms): in the paper's
    /// methodology the baseline UE drives through the *same physical*
    /// handovers as the MPTCP UE, so it too sees a brief radio
    /// interruption — only the IP change is CellBricks-specific.
    pub mno_outage: SimDuration,
    /// Override the RAN-derived handover schedule (for Fig. 8/9's
    /// controlled experiments); times are seconds from start.
    pub forced_handovers_s: Option<Vec<f64>>,
    /// Carrier rate policy.
    pub policy: CarrierPolicy,
    /// Congestion-control algorithm for both endpoints (UE and server —
    /// the sender side is what matters for downlink throughput).
    pub tcp_cc: CcAlgo,
    /// Standing Gilbert–Elliott burst-loss model on the radio link (the
    /// flaky-small-cell stressor); `None` keeps uniform loss.
    pub radio_burst: Option<BurstLoss>,
    /// Scripted radio-link flap train, composed with the fault planner
    /// at run time (the handover-storm stressor).
    pub radio_flaps: Option<RadioFlaps>,
    /// Experiment seed.
    pub seed: u64,
}

/// A declarative flap train on the radio link: `count` outages of `down`
/// each, `up` apart, starting at `from_s`. Kept as plain numbers (not a
/// pre-built [`FaultPlan`]) so the config stays `Clone` and the plan is
/// materialized per run.
#[derive(Clone, Copy, Debug)]
pub struct RadioFlaps {
    /// First outage instant, seconds from start.
    pub from_s: f64,
    /// Number of outages.
    pub count: u32,
    /// Outage duration.
    pub down: SimDuration,
    /// Gap between outages.
    pub up: SimDuration,
}

impl EmulationConfig {
    /// Defaults matching the paper's main Table 1 setup.
    #[must_use]
    pub fn new(route: RouteKind, tod: TimeOfDay, arch: Arch, workload: Workload) -> Self {
        Self {
            route,
            tod,
            arch,
            workload,
            duration: SimDuration::from_secs(600),
            attach_delay: SimDuration::from_micros(31_680),
            mptcp_wait: SimDuration::from_millis(500),
            mno_outage: SimDuration::from_millis(40),
            forced_handovers_s: None,
            policy: CarrierPolicy::default(),
            tcp_cc: CcAlgo::default(),
            radio_burst: None,
            radio_flaps: None,
            seed: 42,
        }
    }
}

/// Results of one drive.
#[derive(Clone, Debug, Default)]
pub struct DriveOutcome {
    /// Mean time between handovers, seconds.
    pub mttho_s: f64,
    /// Handover count.
    pub handovers: usize,
    /// iperf mean throughput, Mbit/s.
    pub iperf_mbps: Option<f64>,
    /// iperf per-second delivered-byte series.
    pub iperf_series: Option<TimeSeries>,
    /// Ping median RTT, ms.
    pub ping_p50_ms: Option<f64>,
    /// VoIP MOS (1–4.5).
    pub mos: Option<f64>,
    /// Mean video quality level (0–5).
    pub video_level: Option<f64>,
    /// Mean web page load time, seconds.
    pub web_load_s: Option<f64>,
    /// The handover instants, seconds from start.
    pub handover_times_s: Vec<f64>,
}

const UE_IP0: Ipv4Addr = Ipv4Addr::new(10, 200, 0, 2);
const SRV_IP: Ipv4Addr = Ipv4Addr::new(52, 9, 1, 1);

/// Access-path latency: UE↔access 18 ms + access↔server 5 ms each way
/// gives the paper's ≈46 ms RTT.
const RADIO_LATENCY: SimDuration = SimDuration::from_millis(18);
const WAN_LATENCY: SimDuration = SimDuration::from_millis(5);

struct DriveWorld {
    world: NetWorld,
    radio_link: LinkId,
    handover_times: Vec<SimTime>,
    mttho_s: f64,
}

fn build_world(cfg: &EmulationConfig) -> DriveWorld {
    let mut rng = SimRng::new(cfg.seed);
    let mut trace_rng = rng.fork();
    let mut ran_rng = rng.fork();
    let world_rng = rng.fork();

    // Handover schedule: forced, or emergent from the RAN drive model.
    let (handover_times, mttho_s) = match &cfg.forced_handovers_s {
        Some(times) => {
            let times: Vec<SimTime> = times.iter().map(|s| SimTime::from_secs_f64(*s)).collect();
            let mttho = if times.len() >= 2 {
                (times.last().unwrap().as_secs_f64() - times[0].as_secs_f64())
                    / (times.len() - 1) as f64
            } else {
                f64::NAN
            };
            (times, mttho)
        }
        None => {
            let profile =
                DriveProfile::build(cfg.route, cfg.tod, cfg.duration.as_secs_f64(), &mut ran_rng);
            let (_, events) = DriveSim::run(
                &profile,
                &CellSelector::default(),
                cfg.duration,
                &mut ran_rng,
            );
            let mttho = cellbricks_ran::mttho(&events);
            (events.iter().map(|e| e.at).collect(), mttho)
        }
    };

    // The policed access path.
    let dl_trace: RateSchedule = cfg.policy.trace(cfg.tod, cfg.duration, &mut trace_rng);
    let burst = cfg.policy.burst_bytes(cfg.tod);
    let mut t = Topology::new();
    let ue = t.add_node("ue");
    let access = t.add_node("access");
    let server = t.add_node("server");
    let dl_cfg = LinkConfig {
        latency: RADIO_LATENCY,
        loss: 0.0005,
        shaper: Shaper::TokenBucket {
            schedule: dl_trace,
            burst_bytes: burst,
        },
        queue_cap: SimDuration::from_millis(600),
        burst: cfg.radio_burst,
    };
    let ul_cfg = LinkConfig {
        latency: RADIO_LATENCY,
        loss: 0.0005,
        shaper: Shaper::FixedRate(match cfg.tod {
            TimeOfDay::Day => 4.0e6,
            TimeOfDay::Night => 20.0e6,
        }),
        queue_cap: SimDuration::from_millis(300),
        burst: None,
    };
    let radio_link = t.add_link(access, ue, dl_cfg, ul_cfg);
    let wan = t.add_symmetric_link(access, server, LinkConfig::delay_only(WAN_LATENCY));
    t.add_default_route(ue, radio_link);
    t.add_route(access, Ipv4Addr::new(10, 0, 0, 0), 8, radio_link);
    t.add_default_route(access, wan);
    t.add_default_route(server, wan);

    DriveWorld {
        world: NetWorld::new(t, world_rng),
        radio_link,
        handover_times,
        mttho_s,
    }
}

fn transport_for(arch: Arch) -> Transport {
    match arch {
        Arch::Mno => Transport::Tcp,
        Arch::CellBricks => Transport::Mptcp,
    }
}

fn tcp_config(cfg: &EmulationConfig) -> TcpConfig {
    TcpConfig {
        cc: cfg.tcp_cc,
        ..TcpConfig::default()
    }
}

fn ue_host(cfg: &EmulationConfig) -> Host {
    let mp_cfg = MpConfig {
        tcp: tcp_config(cfg),
        address_worker_wait: cfg.mptcp_wait,
        ..MpConfig::default()
    };
    Host::with_configs(
        cellbricks_net::NodeId(0),
        Some(UE_IP0),
        tcp_config(cfg),
        mp_cfg,
    )
}

fn server_host(cfg: &EmulationConfig) -> Host {
    let mp_cfg = MpConfig {
        tcp: tcp_config(cfg),
        ..MpConfig::default()
    };
    Host::with_configs(
        cellbricks_net::NodeId(2),
        Some(SRV_IP),
        tcp_config(cfg),
        mp_cfg,
    )
}

fn nth_ue_ip(n: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 200, (n / 250) as u8, (n % 250 + 2) as u8)
}

/// Drive the emulation with a *custom* client/server app pair (used by
/// the QUIC ablation and extension experiments); returns both apps plus
/// the handover schedule actually applied.
pub fn run_with_apps<C: App, S: App>(
    cfg: &EmulationConfig,
    client_app: C,
    server_app: S,
) -> (C, S, Vec<f64>) {
    let (c, s, dw) = run_drive(cfg, client_app, server_app);
    let handovers = dw.handover_times.iter().map(|t| t.as_secs_f64()).collect();
    (c, s, handovers)
}

/// Drive the emulation with a generic client/server app pair; returns
/// both apps after the run.
fn run_drive<C: App, S: App>(
    cfg: &EmulationConfig,
    client_app: C,
    server_app: S,
) -> (C, S, DriveWorld) {
    let mut dw = build_world(cfg);
    let mut client = AppHost::new(ue_host(cfg), client_app);
    let mut access = Router::new(cellbricks_net::NodeId(1), SimDuration::ZERO);
    let mut server = AppHost::new(server_host(cfg), server_app);
    let end = SimTime::ZERO + cfg.duration;
    let mut driver = Driver::new();
    // Handover-storm stressor: materialize the declarative flap train
    // into a fault plan on the radio link.
    if let Some(f) = cfg.radio_flaps {
        let mut plan = FaultPlan::new();
        plan.link_flaps(
            dw.radio_link,
            SimTime::from_secs_f64(f.from_s),
            f.count,
            f.down,
            f.up,
        );
        driver.set_fault_plan(plan);
    }
    let handovers = dw.handover_times.clone();
    for (i, &ho) in handovers.iter().enumerate() {
        if ho >= end {
            break;
        }
        driver.run_to(
            &mut dw.world,
            &mut [&mut client, &mut access, &mut server],
            ho,
        );
        match cfg.arch {
            Arch::Mno => {
                // In-network handover: IP kept; optional brief radio
                // interruption (zero by default — see `mno_outage`).
                if cfg.mno_outage > SimDuration::ZERO {
                    dw.world.set_outage(dw.radio_link, ho + cfg.mno_outage);
                }
            }
            Arch::CellBricks => {
                // bTelco switch: detach (address invalid), radio dark for
                // the SAP attach, then a new address from the new bTelco.
                dw.world.set_outage(dw.radio_link, ho + cfg.attach_delay);
                client.host.invalidate_addr(ho);
                let attach_done = ho + cfg.attach_delay;
                driver.run_to(
                    &mut dw.world,
                    &mut [&mut client, &mut access, &mut server],
                    attach_done,
                );
                client.host.assign_addr(attach_done, nth_ue_ip(i + 1));
            }
        }
    }
    driver.run_to(
        &mut dw.world,
        &mut [&mut client, &mut access, &mut server],
        end,
    );
    (client.app, server.app, dw)
}

/// Run one (route, time-of-day, architecture, workload) cell.
#[must_use]
pub fn run(cfg: &EmulationConfig) -> DriveOutcome {
    let mut outcome = DriveOutcome::default();
    let secs = cfg.duration.as_secs_f64() as usize;
    match cfg.workload {
        Workload::Iperf => {
            let client = IperfClient::new(
                EndpointAddr::new(SRV_IP, 5001),
                transport_for(cfg.arch),
                SimDuration::from_secs(1),
            );
            let (client, _server, dw) = run_drive(cfg, client, IperfServer::new(5001));
            outcome.iperf_mbps = Some(client.mean_mbps(2, secs));
            outcome.iperf_series = Some(client.series);
            fill_common(&mut outcome, &dw);
        }
        Workload::Ping => {
            let client =
                PingClient::new(EndpointAddr::new(SRV_IP, 7), SimDuration::from_millis(200));
            let (client, _server, dw) = run_drive(cfg, client, EchoServer::new(7));
            outcome.ping_p50_ms = Some(client.p50_ms());
            fill_common(&mut outcome, &dw);
        }
        Workload::Voip => {
            let caller = VoipPeer::caller(EndpointAddr::new(SRV_IP, 4000), 4000);
            let (caller, callee, dw) = run_drive(cfg, caller, VoipPeer::callee(4000));
            // The call MOS combines both directions (the worse matters).
            let mos = caller.stats.mos().min(callee.stats.mos());
            outcome.mos = Some(mos);
            fill_common(&mut outcome, &dw);
        }
        Workload::Video => {
            let client = VideoClient::new(
                EndpointAddr::new(SRV_IP, 8081),
                EndpointAddr::new(SRV_IP, 8082),
                transport_for(cfg.arch),
            );
            let (client, _server, dw) = run_drive(cfg, client, VideoServer::new(8081, 8082));
            outcome.video_level = Some(client.avg_level());
            fill_common(&mut outcome, &dw);
        }
        Workload::Web => {
            let client = WebClient::new(
                EndpointAddr::new(SRV_IP, 8091),
                EndpointAddr::new(SRV_IP, 8092),
                transport_for(cfg.arch),
                PageModel::default(),
            );
            let (client, _server, dw) = run_drive(cfg, client, WebServer::new(8091, 8092));
            outcome.web_load_s = Some(client.avg_load_time_s());
            fill_common(&mut outcome, &dw);
        }
    }
    outcome
}

fn fill_common(outcome: &mut DriveOutcome, dw: &DriveWorld) {
    outcome.mttho_s = dw.mttho_s;
    outcome.handovers = dw.handover_times.len();
    outcome.handover_times_s = dw.handover_times.iter().map(|t| t.as_secs_f64()).collect();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(arch: Arch, workload: Workload) -> EmulationConfig {
        let mut cfg = EmulationConfig::new(RouteKind::Downtown, TimeOfDay::Day, arch, workload);
        cfg.duration = SimDuration::from_secs(120);
        cfg
    }

    #[test]
    fn mno_iperf_tracks_day_rate() {
        let out = run(&quick_cfg(Arch::Mno, Workload::Iperf));
        let mbps = out.iperf_mbps.unwrap();
        assert!((0.7..1.6).contains(&mbps), "day MNO iperf {mbps} Mbps");
    }

    #[test]
    fn cellbricks_iperf_close_to_mno() {
        let mno = run(&quick_cfg(Arch::Mno, Workload::Iperf))
            .iperf_mbps
            .unwrap();
        let cb = run(&quick_cfg(Arch::CellBricks, Workload::Iperf))
            .iperf_mbps
            .unwrap();
        let slowdown = (mno - cb) / mno;
        // Paper Table 1: at most ~3% slowdown (sometimes negative).
        assert!(
            slowdown < 0.10,
            "slowdown {slowdown:.3} (mno {mno}, cb {cb})"
        );
    }

    #[test]
    fn ping_p50_matches_path() {
        let out = run(&quick_cfg(Arch::Mno, Workload::Ping));
        let p50 = out.ping_p50_ms.unwrap();
        assert!((44.0..55.0).contains(&p50), "p50 {p50} ms");
    }

    #[test]
    fn voip_mos_in_table1_range() {
        let out = run(&quick_cfg(Arch::CellBricks, Workload::Voip));
        let mos = out.mos.unwrap();
        assert!((4.0..4.5).contains(&mos), "mos {mos}");
    }

    #[test]
    fn handovers_happen() {
        let out = run(&quick_cfg(Arch::CellBricks, Workload::Iperf));
        assert!(
            out.handovers >= 1,
            "{} handovers in 120 s downtown",
            out.handovers
        );
    }

    #[test]
    fn forced_handover_schedule_respected() {
        let mut cfg = quick_cfg(Arch::CellBricks, Workload::Iperf);
        cfg.forced_handovers_s = Some(vec![23.0, 60.0]);
        let out = run(&cfg);
        assert_eq!(out.handovers, 2);
        assert_eq!(out.handover_times_s, vec![23.0, 60.0]);
    }
}
