//! Application workloads and the drive-test emulation harness.
//!
//! The paper's §6.2 evaluation (Table 1, Figs. 8–10) measures four
//! application classes over emulated CellBricks mobility versus the MNO
//! baseline. This crate implements each workload against the
//! `cellbricks-transport` host stack, with the same metrics the paper
//! reports:
//!
//! * [`iperf`] — bulk downlink transfer; average and per-second throughput,
//! * [`ping`] — UDP echo round trips; p50 latency,
//! * [`voip`] — 50 pps RTP-like media with an E-model MOS score,
//! * [`video`] — HLS-style ABR streaming over a 6-level ladder
//!   (144p–720p); average quality level,
//! * [`web`] — batched multi-object page loads; average load time,
//! * [`quic_app`] — QUIC-based bulk transfer (the §4.2 "future work"
//!   transport) for the migration-vs-MPTCP ablation,
//! * [`harness`] — the [`harness::AppHost`] endpoint wrapper
//!   shared by all workloads,
//! * [`emulation`] — the §6.2 drive emulation: a policed access path,
//!   RAN-derived handover schedules, and the MNO/CellBricks arms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod emulation;
pub mod harness;
pub mod iperf;
pub mod metrics;
pub mod ping;
pub mod quic_app;
pub mod video;
pub mod voip;
pub mod web;

pub use emulation::{Arch, DriveOutcome, EmulationConfig, RadioFlaps, Workload};
pub use harness::{App, AppHost};
pub use metrics::mos_from_network;
