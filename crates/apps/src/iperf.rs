//! iperf-style bulk downlink transfer.
//!
//! The server pushes an unbounded byte stream; the client records
//! delivered bytes into a per-second time series — the raw material of
//! Table 1's throughput column and the Fig. 8/9/10 series.

use crate::harness::App;
use cellbricks_net::EndpointAddr;
use cellbricks_sim::{SimDuration, SimTime, TimeSeries};
use cellbricks_transport::{Host, MpId, SockId};

/// Which transport the client uses (the paper's two arms).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Transport {
    /// Plain TCP — today's MNO baseline (IP never changes).
    Tcp,
    /// MPTCP — the CellBricks arm (survives IP changes).
    Mptcp,
}

enum Conn {
    Tcp(SockId),
    Mp(MpId),
}

/// The receiving (UE-side) iperf client.
pub struct IperfClient {
    server: EndpointAddr,
    transport: Transport,
    conn: Option<Conn>,
    /// Delivered bytes, binned per second.
    pub series: TimeSeries,
    /// Total bytes delivered.
    pub total_bytes: u64,
}

impl IperfClient {
    /// A client that will connect to `server`.
    #[must_use]
    pub fn new(server: EndpointAddr, transport: Transport, bin: SimDuration) -> Self {
        Self {
            server,
            transport,
            conn: None,
            series: TimeSeries::new(bin),
            total_bytes: 0,
        }
    }

    /// Mean delivered throughput over `[from_s, to_s)`, Mbit/s.
    #[must_use]
    pub fn mean_mbps(&self, from_s: usize, to_s: usize) -> f64 {
        self.series.mean_rate(from_s, to_s) * 8.0 / 1e6
    }
}

impl App for IperfClient {
    fn start(&mut self, now: SimTime, host: &mut Host) {
        self.conn = Some(match self.transport {
            Transport::Tcp => Conn::Tcp(host.tcp_connect(now, self.server)),
            Transport::Mptcp => Conn::Mp(host.mp_connect(now, self.server)),
        });
    }

    fn on_activity(&mut self, now: SimTime, host: &mut Host) {
        let delivered = match &self.conn {
            Some(Conn::Tcp(id)) => host.tcp_mut(*id).take_delivered(),
            Some(Conn::Mp(id)) => host.mp_mut(*id).take_delivered(),
            None => 0,
        };
        if delivered > 0 {
            self.total_bytes += delivered;
            self.series.record(now, delivered as f64);
        }
    }

    fn tick(&self) -> SimDuration {
        SimDuration::from_millis(100)
    }
}

/// The sending (cloud-side) iperf server: accepts any connection on its
/// port and switches it to bulk mode.
pub struct IperfServer {
    port: u16,
}

impl IperfServer {
    /// A server listening on `port` for both TCP and MPTCP.
    #[must_use]
    pub fn new(port: u16) -> Self {
        Self { port }
    }
}

impl App for IperfServer {
    fn start(&mut self, _now: SimTime, host: &mut Host) {
        host.tcp_listen(self.port);
        host.mp_listen(self.port);
    }

    fn on_activity(&mut self, now: SimTime, host: &mut Host) {
        for id in host.take_accepted_tcp() {
            host.tcp_set_bulk(now, id);
        }
        for id in host.take_accepted_mp() {
            host.mp_set_bulk(now, id);
        }
    }

    fn tick(&self) -> SimDuration {
        SimDuration::from_millis(100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::AppHost;
    use cellbricks_net::{Driver, LinkConfig, NetWorld, Shaper, Topology};
    use cellbricks_sim::SimRng;
    use std::net::Ipv4Addr;

    const UE: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const SRV: Ipv4Addr = Ipv4Addr::new(1, 1, 1, 1);

    fn world(rate_bps: f64) -> NetWorld {
        let mut t = Topology::new();
        let a = t.add_node("ue");
        let b = t.add_node("server");
        let dl = LinkConfig {
            latency: SimDuration::from_millis(20),
            loss: 0.0,
            shaper: Shaper::FixedRate(rate_bps),
            queue_cap: SimDuration::from_millis(400),
            burst: None,
        };
        let ul = LinkConfig::delay_only(SimDuration::from_millis(20));
        let l = t.add_link(b, a, dl, ul); // b→a is DL.
        t.add_default_route(a, l);
        t.add_default_route(b, l);
        NetWorld::new(t, SimRng::new(5))
    }

    fn run(transport: Transport, rate_bps: f64, secs: u64) -> IperfClient {
        let mut world = world(rate_bps);
        let client_node = cellbricks_net::NodeId(0);
        let server_node = cellbricks_net::NodeId(1);
        let mut client = AppHost::new(
            Host::new(client_node, Some(UE)),
            IperfClient::new(
                EndpointAddr::new(SRV, 5001),
                transport,
                SimDuration::from_secs(1),
            ),
        );
        let mut server = AppHost::new(Host::new(server_node, Some(SRV)), IperfServer::new(5001));
        Driver::new().run_to(
            &mut world,
            &mut [&mut client, &mut server],
            SimTime::from_secs(secs),
        );
        client.app
    }

    #[test]
    fn tcp_fills_the_pipe() {
        let app = run(Transport::Tcp, 10e6, 20);
        let mbps = app.mean_mbps(5, 20);
        assert!(
            (mbps - 10.0).abs() < 1.5,
            "tcp {mbps} Mbps on a 10 Mbps pipe"
        );
    }

    #[test]
    fn mptcp_fills_the_pipe() {
        let app = run(Transport::Mptcp, 10e6, 20);
        let mbps = app.mean_mbps(5, 20);
        assert!(
            (mbps - 10.0).abs() < 1.5,
            "mptcp {mbps} Mbps on a 10 Mbps pipe"
        );
    }

    #[test]
    fn throughput_scales_with_rate_limit() {
        let slow = run(Transport::Tcp, 1.16e6, 20).mean_mbps(5, 20);
        let fast = run(Transport::Tcp, 15.5e6, 20).mean_mbps(5, 20);
        assert!((slow - 1.16).abs() < 0.3, "day-like rate {slow}");
        assert!((fast - 15.5).abs() < 2.0, "night-like rate {fast}");
    }
}
