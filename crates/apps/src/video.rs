//! HLS-style adaptive-bitrate video streaming.
//!
//! A 6-level ladder (144p → 720p, paper §6.2iv) of 4-second segments.
//! The player requests one segment at a time over a persistent
//! (MP)TCP connection, estimates throughput from segment download rates,
//! and adapts the quality level — the metric is the average level played,
//! Table 1's "Video: Avg. Quality Level" column.
//!
//! Requests travel as small UDP control messages (standing in for HTTP
//! GETs, whose bodies our content-free TCP does not carry); segment data
//! flows on the TCP connection.

use crate::harness::App;
use crate::iperf::Transport;
use cellbricks_epc::wire::{Reader, Writer};
use cellbricks_net::EndpointAddr;
use cellbricks_sim::{SimDuration, SimTime};
use cellbricks_transport::{Host, MpId, SockId, UdpId};

/// Segment duration.
pub const SEGMENT_SECS: f64 = 4.0;
/// The bitrate ladder, kbit/s (144p, 240p, 360p, 480p, 576p, 720p).
pub const LADDER_KBPS: [u32; 6] = [200, 400, 800, 1500, 3000, 5000];

/// Bytes of a segment at `level`.
#[must_use]
pub fn segment_bytes(level: usize) -> u64 {
    (f64::from(LADDER_KBPS[level]) * 1000.0 / 8.0 * SEGMENT_SECS) as u64
}

enum Conn {
    Tcp(SockId),
    Mp(MpId),
}

/// The HLS player (UE side).
pub struct VideoClient {
    server: EndpointAddr,
    control: EndpointAddr,
    transport: Transport,
    conn: Option<Conn>,
    sock: Option<UdpId>,
    /// Throughput estimate, bits/s (EWMA of segment download rates).
    estimate_bps: f64,
    /// In-flight segment: (level, expected bytes, received bytes, started).
    outstanding: Option<(usize, u64, u64, SimTime)>,
    /// Media buffered ahead of playback, seconds.
    pub buffer_secs: f64,
    last_drain: Option<SimTime>,
    /// Quality level of each downloaded segment.
    pub levels: Vec<usize>,
    /// Total rebuffering time, seconds.
    pub rebuffer_secs: f64,
    /// Maximum buffer before the player pauses requests.
    pub max_buffer_secs: f64,
}

impl VideoClient {
    /// A player streaming from `server` (data) / `control` (requests).
    #[must_use]
    pub fn new(server: EndpointAddr, control: EndpointAddr, transport: Transport) -> Self {
        Self {
            server,
            control,
            transport,
            conn: None,
            sock: None,
            estimate_bps: 0.0,
            outstanding: None,
            buffer_secs: 0.0,
            last_drain: None,
            levels: Vec::new(),
            rebuffer_secs: 0.0,
            max_buffer_secs: 16.0,
        }
    }

    /// Mean quality level over the session (Table 1's metric).
    #[must_use]
    pub fn avg_level(&self) -> f64 {
        if self.levels.is_empty() {
            return 0.0;
        }
        self.levels.iter().map(|&l| l as f64).sum::<f64>() / self.levels.len() as f64
    }

    fn pick_level(&self) -> usize {
        // Throughput rule with a 1.2x safety factor; start at the bottom.
        if self.estimate_bps <= 0.0 {
            return 0;
        }
        let mut level = 0;
        for (i, &kbps) in LADDER_KBPS.iter().enumerate() {
            if f64::from(kbps) * 1000.0 * 1.2 <= self.estimate_bps {
                level = i;
            }
        }
        level
    }

    fn request_segment(&mut self, now: SimTime, host: &mut Host) {
        let level = self.pick_level();
        let bytes = segment_bytes(level);
        let Some(sock) = self.sock else { return };
        let mut w = Writer::new();
        w.put_u8(level as u8);
        host.udp_send(now, sock, self.control, w.finish());
        self.outstanding = Some((level, bytes, 0, now));
    }
}

impl App for VideoClient {
    fn start(&mut self, now: SimTime, host: &mut Host) {
        self.sock = Some(host.udp_bind(46_000));
        self.conn = Some(match self.transport {
            Transport::Tcp => Conn::Tcp(host.tcp_connect(now, self.server)),
            Transport::Mptcp => Conn::Mp(host.mp_connect(now, self.server)),
        });
        self.last_drain = Some(now);
    }

    fn on_activity(&mut self, now: SimTime, host: &mut Host) {
        // Playback drains the buffer in real time; empty buffer = rebuffer.
        if let Some(last) = self.last_drain {
            let dt = now.saturating_since(last).as_secs_f64();
            if dt > 0.0 {
                if self.buffer_secs >= dt {
                    self.buffer_secs -= dt;
                } else {
                    self.rebuffer_secs += dt - self.buffer_secs;
                    self.buffer_secs = 0.0;
                }
                self.last_drain = Some(now);
            }
        }
        let delivered = match &self.conn {
            Some(Conn::Tcp(id)) => host.tcp_mut(*id).take_delivered(),
            Some(Conn::Mp(id)) => host.mp_mut(*id).take_delivered(),
            None => 0,
        };
        if let Some((level, expected, received, started)) = &mut self.outstanding {
            *received += delivered;
            if *received >= *expected {
                let secs = now.saturating_since(*started).as_secs_f64().max(1e-3);
                let rate = *expected as f64 * 8.0 / secs;
                self.estimate_bps = if self.estimate_bps == 0.0 {
                    rate
                } else {
                    0.7 * self.estimate_bps + 0.3 * rate
                };
                self.buffer_secs += SEGMENT_SECS;
                self.levels.push(*level);
                self.outstanding = None;
            }
        }
        let established = match &self.conn {
            Some(Conn::Tcp(id)) => host.tcp(*id).is_established(),
            Some(Conn::Mp(id)) => host.mp(*id).is_established(),
            None => false,
        };
        if self.outstanding.is_none()
            && established
            && self.buffer_secs < self.max_buffer_secs
            && host.addr().is_some()
        {
            self.request_segment(now, host);
        }
    }

    fn tick(&self) -> SimDuration {
        SimDuration::from_millis(100)
    }
}

/// The HLS origin server.
pub struct VideoServer {
    data_port: u16,
    control_port: u16,
    sock: Option<UdpId>,
    conns: Vec<Conn>,
    /// Segments served.
    pub served: u64,
}

impl VideoServer {
    /// A server on `data_port` (TCP/MPTCP) + `control_port` (requests).
    #[must_use]
    pub fn new(data_port: u16, control_port: u16) -> Self {
        Self {
            data_port,
            control_port,
            sock: None,
            conns: Vec::new(),
            served: 0,
        }
    }
}

impl App for VideoServer {
    fn start(&mut self, _now: SimTime, host: &mut Host) {
        host.tcp_listen(self.data_port);
        host.mp_listen(self.data_port);
        self.sock = Some(host.udp_bind(self.control_port));
    }

    fn on_activity(&mut self, now: SimTime, host: &mut Host) {
        for id in host.take_accepted_tcp() {
            self.conns.push(Conn::Tcp(id));
        }
        for id in host.take_accepted_mp() {
            self.conns.push(Conn::Mp(id));
        }
        let Some(sock) = self.sock else { return };
        for (_at, _from, payload, _pad) in host.udp_recv(sock) {
            let mut r = Reader::new(&payload);
            let Some(level) = r.get_u8() else { continue };
            let bytes = segment_bytes(usize::from(level).min(LADDER_KBPS.len() - 1));
            // Serve on the most recent connection (single-client model).
            match self.conns.last() {
                Some(Conn::Tcp(id)) => host.tcp_write(now, *id, bytes),
                Some(Conn::Mp(id)) => host.mp_write(now, *id, bytes),
                None => continue,
            }
            self.served += 1;
        }
    }

    fn tick(&self) -> SimDuration {
        SimDuration::from_millis(100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::AppHost;
    use cellbricks_net::{Driver, LinkConfig, NetWorld, Shaper, Topology};
    use cellbricks_sim::SimRng;
    use std::net::Ipv4Addr;

    const UE: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const SRV: Ipv4Addr = Ipv4Addr::new(1, 1, 1, 1);

    fn run(rate_bps: f64, secs: u64) -> VideoClient {
        let mut t = Topology::new();
        let a = t.add_node("ue");
        let b = t.add_node("server");
        let dl = LinkConfig {
            latency: SimDuration::from_millis(23),
            loss: 0.0,
            shaper: Shaper::FixedRate(rate_bps),
            queue_cap: SimDuration::from_millis(400),
            burst: None,
        };
        let ul = LinkConfig::delay_only(SimDuration::from_millis(23));
        let l = t.add_link(b, a, dl, ul);
        t.add_default_route(a, l);
        t.add_default_route(b, l);
        let mut world = NetWorld::new(t, SimRng::new(3));
        let mut client = AppHost::new(
            Host::new(cellbricks_net::NodeId(0), Some(UE)),
            VideoClient::new(
                EndpointAddr::new(SRV, 8081),
                EndpointAddr::new(SRV, 8082),
                Transport::Tcp,
            ),
        );
        let mut server = AppHost::new(
            Host::new(cellbricks_net::NodeId(1), Some(SRV)),
            VideoServer::new(8081, 8082),
        );
        Driver::new().run_to(
            &mut world,
            &mut [&mut client, &mut server],
            SimTime::from_secs(secs),
        );
        client.app
    }

    #[test]
    fn day_rate_settles_around_level_2() {
        let app = run(1.16e6, 120);
        assert!(app.levels.len() > 10, "{} segments", app.levels.len());
        // Skip the slow-start ramp; steady-state should sit at level 2
        // (800 kbps is the highest level fitting 1.16 Mbps with margin).
        let steady = &app.levels[3..];
        let avg = steady.iter().map(|&l| l as f64).sum::<f64>() / steady.len() as f64;
        assert!((1.5..2.5).contains(&avg), "avg level {avg}");
    }

    #[test]
    fn night_rate_reaches_top_levels() {
        let app = run(15.5e6, 120);
        let steady = &app.levels[3..];
        let avg = steady.iter().map(|&l| l as f64).sum::<f64>() / steady.len() as f64;
        assert!(avg > 4.4, "avg level {avg}");
        assert!(app.rebuffer_secs < 6.0, "rebuffer {}", app.rebuffer_secs);
    }

    #[test]
    fn segment_sizes_match_ladder() {
        assert_eq!(segment_bytes(0), 100_000);
        assert_eq!(segment_bytes(5), 2_500_000);
    }
}
