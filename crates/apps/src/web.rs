//! Web page loads: batched multi-object downloads with browser think time.
//!
//! A page is modelled as an HTML document followed by dependent resource
//! batches discovered progressively (scripts → styles → images), the
//! structure that makes real page loads latency-bound even on fast links.
//! The metric is mean page load time (Table 1's "Web: Avg. Load Time").

use crate::harness::App;
use crate::iperf::Transport;
use cellbricks_epc::wire::{Reader, Writer};
use cellbricks_net::EndpointAddr;
use cellbricks_sim::{SimDuration, SimTime};
use cellbricks_transport::{Host, MpId, SockId, UdpId};

/// Page structure model (calibrated so day ≈ 5 s, night ≈ 1.8 s as in
/// Table 1 — see EXPERIMENTS.md for the calibration notes).
#[derive(Clone, Debug)]
pub struct PageModel {
    /// Bytes of the root HTML document.
    pub html_bytes: u64,
    /// Dependent batches discovered after the HTML (and each other).
    pub batches: u32,
    /// Objects per batch.
    pub objects_per_batch: u32,
    /// Bytes per object.
    pub object_bytes: u64,
    /// Browser parse/render think time between batches.
    pub think: SimDuration,
    /// Parallel connections.
    pub parallelism: u32,
    /// Idle gap between consecutive page loads.
    pub page_gap: SimDuration,
}

impl Default for PageModel {
    fn default() -> Self {
        Self {
            html_bytes: 60_000,
            batches: 3,
            objects_per_batch: 5,
            object_bytes: 28_000,
            think: SimDuration::from_millis(250),
            parallelism: 4,
            page_gap: SimDuration::from_secs(2),
        }
    }
}

enum Conn {
    Tcp(SockId),
    Mp(MpId),
}

enum Phase {
    /// Waiting to start the next page at this instant.
    Idle(SimTime),
    /// Connections opening.
    Connecting,
    /// Fetching the HTML document.
    Html,
    /// Browser think time until this instant, then fetch `next_batch`.
    Thinking(SimTime),
    /// Fetching batch `current` (objects outstanding).
    Batch,
}

/// The browser (UE side).
pub struct WebClient {
    server: EndpointAddr,
    control: EndpointAddr,
    transport: Transport,
    model: PageModel,
    conns: Vec<Conn>,
    sock: Option<UdpId>,
    phase: Phase,
    page_started: SimTime,
    current_batch: u32,
    /// Per-connection bytes still expected.
    expected: Vec<u64>,
    /// Outstanding requests for retry: (conn_idx, req_id, bytes).
    outstanding: Vec<(usize, u32, u64)>,
    /// Monotonic request id (deduplicates retries at the server).
    next_req_id: u32,
    /// Last time any byte made progress (drives the retry timer).
    last_progress: SimTime,
    /// Completed page load times, seconds.
    pub load_times_s: Vec<f64>,
    /// Pages started.
    pub pages_started: u64,
    /// Requests retried after a stall (handover-induced loss).
    pub retries: u64,
}

impl WebClient {
    /// A browser fetching pages from `server`/`control`.
    #[must_use]
    pub fn new(
        server: EndpointAddr,
        control: EndpointAddr,
        transport: Transport,
        model: PageModel,
    ) -> Self {
        Self {
            server,
            control,
            transport,
            model,
            conns: Vec::new(),
            sock: None,
            phase: Phase::Idle(SimTime::ZERO),
            page_started: SimTime::ZERO,
            current_batch: 0,
            expected: Vec::new(),
            outstanding: Vec::new(),
            next_req_id: 0,
            last_progress: SimTime::ZERO,
            load_times_s: Vec::new(),
            pages_started: 0,
            retries: 0,
        }
    }

    /// Mean page load time, seconds.
    #[must_use]
    pub fn avg_load_time_s(&self) -> f64 {
        if self.load_times_s.is_empty() {
            return f64::NAN;
        }
        self.load_times_s.iter().sum::<f64>() / self.load_times_s.len() as f64
    }

    fn conn_established(&self, host: &Host, i: usize) -> bool {
        match &self.conns[i] {
            Conn::Tcp(id) => host.tcp(*id).is_established(),
            Conn::Mp(id) => host.mp(*id).is_established(),
        }
    }

    fn conn_port(&self, host: &Host, i: usize) -> u16 {
        match &self.conns[i] {
            Conn::Tcp(id) => host.tcp(*id).local.port,
            Conn::Mp(_) => {
                // MPTCP connections are identified to the server by their
                // connection index instead (subflow ports change).
                i as u16
            }
        }
    }

    fn take_delivered(&mut self, host: &mut Host, i: usize) -> u64 {
        match &self.conns[i] {
            Conn::Tcp(id) => host.tcp_mut(*id).take_delivered(),
            Conn::Mp(id) => host.mp_mut(*id).take_delivered(),
        }
    }

    fn request(&mut self, now: SimTime, host: &mut Host, conn_idx: usize, bytes: u64) {
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        self.send_request(now, host, conn_idx, req_id, bytes);
        self.expected[conn_idx] += bytes;
        self.outstanding.push((conn_idx, req_id, bytes));
    }

    fn send_request(
        &mut self,
        now: SimTime,
        host: &mut Host,
        conn_idx: usize,
        req_id: u32,
        bytes: u64,
    ) {
        let Some(sock) = self.sock else { return };
        let mut w = Writer::new();
        // Identify the connection: for TCP by local port, for MPTCP by
        // accept order (stable at the server). The request id makes
        // retries idempotent at the server.
        let is_mp = matches!(self.conns[conn_idx], Conn::Mp(_));
        w.put_u8(u8::from(is_mp))
            .put_u16(self.conn_port(host, conn_idx))
            .put_u32(req_id)
            .put_u64(bytes);
        host.udp_send(now, sock, self.control, w.finish());
    }

    fn start_page(&mut self, now: SimTime, host: &mut Host) {
        self.pages_started += 1;
        self.page_started = now;
        self.current_batch = 0;
        self.outstanding.clear();
        self.last_progress = now;
        // HTTP/1.1-style persistent connections: open once, reuse across
        // pages; replace any connection that died (e.g. a plain-TCP
        // connection severed by an IP change — the paper's fallback case).
        let alive = |host: &Host, c: &Conn| match c {
            Conn::Tcp(id) => {
                let t = host.tcp(*id);
                t.is_established() && !t.is_aborted()
            }
            Conn::Mp(id) => !host.mp(*id).is_dead(),
        };
        if self.conns.len() == self.model.parallelism as usize
            && self.conns.iter().all(|c| alive(host, c))
        {
            for e in &mut self.expected {
                *e = 0;
            }
        } else {
            self.conns.clear();
            self.expected.clear();
            for _ in 0..self.model.parallelism {
                let conn = match self.transport {
                    Transport::Tcp => Conn::Tcp(host.tcp_connect(now, self.server)),
                    Transport::Mptcp => Conn::Mp(host.mp_connect(now, self.server)),
                };
                self.conns.push(conn);
                self.expected.push(0);
            }
        }
        self.phase = Phase::Connecting;
    }

    fn issue_batch(&mut self, now: SimTime, host: &mut Host) {
        let per_conn = self.model.objects_per_batch.max(1);
        for k in 0..per_conn {
            let conn_idx = (k as usize) % self.conns.len();
            self.request(now, host, conn_idx, self.model.object_bytes);
        }
        let _ = per_conn;
        self.phase = Phase::Batch;
    }

    fn all_received(&self) -> bool {
        self.expected.iter().all(|&e| e == 0)
    }
}

impl App for WebClient {
    fn start(&mut self, now: SimTime, host: &mut Host) {
        self.sock = Some(host.udp_bind(47_000));
        self.phase = Phase::Idle(now);
    }

    fn on_activity(&mut self, now: SimTime, host: &mut Host) {
        // Drain deliveries.
        let mut progressed = false;
        for i in 0..self.conns.len() {
            let got = self.take_delivered(host, i);
            if got > 0 {
                progressed = true;
                self.expected[i] = self.expected[i].saturating_sub(got);
            }
        }
        if progressed {
            self.last_progress = now;
            self.outstanding.retain(|&(i, ..)| self.expected[i] > 0);
        }
        // Stall recovery: a UDP request lost to a handover outage would
        // otherwise hang the page forever — re-issue outstanding requests
        // (the request id lets the server drop duplicates).
        if !self.outstanding.is_empty()
            && host.addr().is_some()
            && now.saturating_since(self.last_progress) > SimDuration::from_millis(1000)
        {
            self.last_progress = now;
            self.retries += self.outstanding.len() as u64;
            #[cfg(feature = "debug-trace")]
            eprintln!(
                "web retry at {now}: outstanding={:?} expected={:?}",
                self.outstanding, self.expected
            );
            let pending = self.outstanding.clone();
            for (conn_idx, req_id, bytes) in pending {
                self.send_request(now, host, conn_idx, req_id, bytes);
            }
        }
        match self.phase {
            Phase::Idle(at) => {
                if now >= at && host.addr().is_some() {
                    self.start_page(now, host);
                }
            }
            Phase::Connecting => {
                let ready = (0..self.conns.len()).all(|i| self.conn_established(host, i));
                if ready {
                    // Fetch the HTML on the first connection.
                    self.request(now, host, 0, self.model.html_bytes);
                    self.phase = Phase::Html;
                }
            }
            Phase::Html => {
                if self.all_received() {
                    #[cfg(feature = "debug-trace")]
                    eprintln!("html done at {now}");
                    self.phase = Phase::Thinking(now + self.model.think);
                }
            }
            Phase::Thinking(until) => {
                // Hold requests while detached (they would be dropped at
                // the interface); the batch goes out after re-attach.
                if now >= until && host.addr().is_some() {
                    self.current_batch += 1;
                    #[cfg(feature = "debug-trace")]
                    eprintln!("issue batch {} at {now}", self.current_batch);
                    self.issue_batch(now, host);
                }
            }
            Phase::Batch => {
                if self.all_received() {
                    #[cfg(feature = "debug-trace")]
                    eprintln!("batch {} done at {now}", self.current_batch);
                    if self.current_batch >= self.model.batches {
                        // Page complete.
                        self.load_times_s
                            .push(now.since(self.page_started).as_secs_f64());
                        // Keep-alive: connections persist to the next page.
                        self.phase = Phase::Idle(now + self.model.page_gap);
                    } else {
                        self.phase = Phase::Thinking(now + self.model.think);
                    }
                }
            }
        }
    }

    fn tick(&self) -> SimDuration {
        SimDuration::from_millis(50)
    }
}

/// The web origin server.
pub struct WebServer {
    data_port: u16,
    control_port: u16,
    sock: Option<UdpId>,
    tcp_conns: Vec<SockId>,
    mp_conns: Vec<MpId>,
    seen_requests: std::collections::HashSet<u32>,
    /// Objects served.
    pub served: u64,
}

impl WebServer {
    /// A server on `data_port` (TCP/MPTCP) + `control_port` (requests).
    #[must_use]
    pub fn new(data_port: u16, control_port: u16) -> Self {
        Self {
            data_port,
            control_port,
            sock: None,
            tcp_conns: Vec::new(),
            mp_conns: Vec::new(),
            seen_requests: std::collections::HashSet::new(),
            served: 0,
        }
    }
}

impl App for WebServer {
    fn start(&mut self, _now: SimTime, host: &mut Host) {
        host.tcp_listen(self.data_port);
        host.mp_listen(self.data_port);
        self.sock = Some(host.udp_bind(self.control_port));
    }

    fn on_activity(&mut self, now: SimTime, host: &mut Host) {
        for id in host.take_accepted_tcp() {
            self.tcp_conns.push(id);
        }
        for id in host.take_accepted_mp() {
            self.mp_conns.push(id);
        }
        let Some(sock) = self.sock else { return };
        for (_at, _from, payload, _pad) in host.udp_recv(sock) {
            let mut r = Reader::new(&payload);
            let (Some(is_mp), Some(key), Some(req_id), Some(bytes)) =
                (r.get_u8(), r.get_u16(), r.get_u32(), r.get_u64())
            else {
                continue;
            };
            if !self.seen_requests.insert(req_id) {
                continue; // Duplicate (client retry); already served.
            }
            if is_mp == 1 {
                // Key = accept-order index within the current page's wave;
                // count from the end (most recent page's connections).
                let base = self.mp_conns.len().saturating_sub(4);
                if let Some(id) = self.mp_conns.get(base + usize::from(key)) {
                    host.mp_write(now, *id, bytes);
                    self.served += 1;
                }
            } else if let Some(id) = self
                .tcp_conns
                .iter()
                .rev()
                .find(|id| host.tcp(**id).remote.port == key)
            {
                host.tcp_write(now, *id, bytes);
                self.served += 1;
            }
        }
    }

    fn tick(&self) -> SimDuration {
        SimDuration::from_millis(100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::AppHost;
    use cellbricks_net::{Driver, LinkConfig, NetWorld, Shaper, Topology};
    use cellbricks_sim::SimRng;
    use std::net::Ipv4Addr;

    const UE: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const SRV: Ipv4Addr = Ipv4Addr::new(1, 1, 1, 1);

    fn run(rate_bps: f64, transport: Transport, secs: u64) -> WebClient {
        let mut t = Topology::new();
        let a = t.add_node("ue");
        let b = t.add_node("server");
        let dl = LinkConfig {
            latency: SimDuration::from_millis(23),
            loss: 0.0,
            shaper: Shaper::FixedRate(rate_bps),
            queue_cap: SimDuration::from_millis(400),
            burst: None,
        };
        let ul = LinkConfig::delay_only(SimDuration::from_millis(23));
        let l = t.add_link(b, a, dl, ul);
        t.add_default_route(a, l);
        t.add_default_route(b, l);
        let mut world = NetWorld::new(t, SimRng::new(4));
        let mut client = AppHost::new(
            Host::new(cellbricks_net::NodeId(0), Some(UE)),
            WebClient::new(
                EndpointAddr::new(SRV, 8091),
                EndpointAddr::new(SRV, 8092),
                transport,
                PageModel::default(),
            ),
        );
        let mut server = AppHost::new(
            Host::new(cellbricks_net::NodeId(1), Some(SRV)),
            WebServer::new(8091, 8092),
        );
        Driver::new().run_to(
            &mut world,
            &mut [&mut client, &mut server],
            SimTime::from_secs(secs),
        );
        client.app
    }

    #[test]
    fn day_rate_pages_take_about_five_seconds() {
        let app = run(1.16e6, Transport::Tcp, 60);
        assert!(
            app.load_times_s.len() >= 4,
            "{} pages",
            app.load_times_s.len()
        );
        let avg = app.avg_load_time_s();
        assert!((4.0..6.5).contains(&avg), "avg load {avg}s");
    }

    #[test]
    fn night_rate_pages_take_under_two_seconds() {
        let app = run(15.46e6, Transport::Tcp, 60);
        let avg = app.avg_load_time_s();
        assert!((1.2..2.3).contains(&avg), "avg load {avg}s");
    }

    #[test]
    fn mptcp_transport_also_loads_pages() {
        let app = run(15.46e6, Transport::Mptcp, 40);
        assert!(!app.load_times_s.is_empty());
    }
}
