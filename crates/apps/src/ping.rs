//! UDP echo ("ping") with RTT percentiles.

use crate::harness::App;
use bytes::Bytes;
use cellbricks_epc::wire::{Reader, Writer};
use cellbricks_net::EndpointAddr;
use cellbricks_sim::{percentile, SimDuration, SimTime};
use cellbricks_transport::{Host, UdpId};

/// The pinging client.
pub struct PingClient {
    server: EndpointAddr,
    interval: SimDuration,
    sock: Option<UdpId>,
    next_seq: u64,
    next_send: SimTime,
    /// Collected round-trip times, milliseconds.
    pub rtts_ms: Vec<f64>,
    /// Pings sent.
    pub sent: u64,
}

impl PingClient {
    /// A client pinging `server` every `interval`.
    #[must_use]
    pub fn new(server: EndpointAddr, interval: SimDuration) -> Self {
        Self {
            server,
            interval,
            sock: None,
            next_seq: 0,
            next_send: SimTime::ZERO,
            rtts_ms: Vec::new(),
            sent: 0,
        }
    }

    /// Median RTT, milliseconds.
    #[must_use]
    pub fn p50_ms(&self) -> f64 {
        percentile(&self.rtts_ms, 50.0)
    }

    /// Fraction of pings lost.
    #[must_use]
    pub fn loss(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        1.0 - self.rtts_ms.len() as f64 / self.sent as f64
    }
}

impl App for PingClient {
    fn start(&mut self, now: SimTime, host: &mut Host) {
        self.sock = Some(host.udp_bind(33_434));
        self.next_send = now;
    }

    fn on_activity(&mut self, now: SimTime, host: &mut Host) {
        let Some(sock) = self.sock else { return };
        // Receive echoes.
        for (at, _from, payload, _pad) in host.udp_recv(sock) {
            let mut r = Reader::new(&payload);
            let (Some(_seq), Some(sent_ns)) = (r.get_u64(), r.get_u64()) else {
                continue;
            };
            let rtt = at.since(SimTime::from_nanos(sent_ns));
            self.rtts_ms.push(rtt.as_millis_f64());
        }
        // Send on schedule (ticks drive this).
        while now >= self.next_send {
            let mut w = Writer::new();
            w.put_u64(self.next_seq).put_u64(now.as_nanos());
            // Pad to a 64-byte ICMP-ish probe.
            w.put_fixed(&[0u8; 48]);
            host.udp_send(now, sock, self.server, w.finish());
            self.next_seq += 1;
            self.sent += 1;
            self.next_send += self.interval;
        }
    }

    fn tick(&self) -> SimDuration {
        self.interval
    }
}

/// The echo server: reflects every datagram back to its source.
pub struct EchoServer {
    port: u16,
    sock: Option<UdpId>,
    /// Datagrams echoed.
    pub echoed: u64,
}

impl EchoServer {
    /// An echo server on `port`.
    #[must_use]
    pub fn new(port: u16) -> Self {
        Self {
            port,
            sock: None,
            echoed: 0,
        }
    }
}

impl App for EchoServer {
    fn start(&mut self, _now: SimTime, host: &mut Host) {
        self.sock = Some(host.udp_bind(self.port));
    }

    fn on_activity(&mut self, now: SimTime, host: &mut Host) {
        let Some(sock) = self.sock else { return };
        for (_at, from, payload, _pad) in host.udp_recv(sock) {
            host.udp_send(now, sock, from, Bytes::from(payload.to_vec()));
            self.echoed += 1;
        }
    }

    fn tick(&self) -> SimDuration {
        SimDuration::from_secs(3600)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::AppHost;
    use cellbricks_net::{Driver, LinkConfig, NetWorld, Topology};
    use cellbricks_sim::SimRng;
    use std::net::Ipv4Addr;

    const UE: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const SRV: Ipv4Addr = Ipv4Addr::new(1, 1, 1, 1);

    #[test]
    fn rtt_matches_path_latency() {
        let mut t = Topology::new();
        let a = t.add_node("ue");
        let b = t.add_node("server");
        let l = t.add_symmetric_link(a, b, LinkConfig::delay_only(SimDuration::from_millis(23)));
        t.add_default_route(a, l);
        t.add_default_route(b, l);
        let mut world = NetWorld::new(t, SimRng::new(1));
        let mut client = AppHost::new(
            Host::new(a, Some(UE)),
            PingClient::new(EndpointAddr::new(SRV, 7), SimDuration::from_millis(200)),
        );
        let mut server = AppHost::new(Host::new(b, Some(SRV)), EchoServer::new(7));
        Driver::new().run_to(
            &mut world,
            &mut [&mut client, &mut server],
            SimTime::from_secs(10),
        );
        assert!(client.app.rtts_ms.len() > 40);
        assert!(
            (client.app.p50_ms() - 46.0).abs() < 1.0,
            "p50 {}",
            client.app.p50_ms()
        );
        // The final probe may still be in flight when the run ends.
        assert!(client.app.loss() < 0.05, "loss {}", client.app.loss());
    }

    #[test]
    fn loss_counted_when_link_drops() {
        let mut t = Topology::new();
        let a = t.add_node("ue");
        let b = t.add_node("server");
        let l = t.add_symmetric_link(
            a,
            b,
            LinkConfig::delay_only(SimDuration::from_millis(5)).with_loss(0.2),
        );
        t.add_default_route(a, l);
        t.add_default_route(b, l);
        let mut world = NetWorld::new(t, SimRng::new(2));
        let mut client = AppHost::new(
            Host::new(a, Some(UE)),
            PingClient::new(EndpointAddr::new(SRV, 7), SimDuration::from_millis(50)),
        );
        let mut server = AppHost::new(Host::new(b, Some(SRV)), EchoServer::new(7));
        Driver::new().run_to(
            &mut world,
            &mut [&mut client, &mut server],
            SimTime::from_secs(30),
        );
        // ~36% round-trip loss on a 20%-per-direction link.
        let loss = client.app.loss();
        assert!((loss - 0.36).abs() < 0.08, "loss {loss}");
    }
}
