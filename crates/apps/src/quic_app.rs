//! QUIC-based bulk transfer apps: the paper's "future work" transport
//! (§4.2 names QUIC alongside MPTCP) wired into the drive emulation so
//! the two mobility mechanisms can be compared head to head.

use crate::harness::App;
use bytes::Bytes;
use cellbricks_net::EndpointAddr;
use cellbricks_sim::{SimDuration, SimTime, TimeSeries};
use cellbricks_transport::quic::QuicConn;
use cellbricks_transport::{Host, UdpId};
use std::net::Ipv4Addr;

const QUIC_PORT: u16 = 8443;

fn pump(conn: &mut QuicConn, sock: UdpId, now: SimTime, host: &mut Host) {
    // Inbound.
    for (at, from, payload, padding) in host.udp_recv(sock) {
        conn.on_datagram(at, from, &payload, padding);
    }
    // Outbound.
    let mut out = Vec::new();
    conn.poll(now, &mut out);
    for (to, hdr, pad) in out {
        host.udp_send_padded(now, sock, to, Bytes::from(hdr.to_vec()), pad);
    }
}

/// The downloading client (UE side): opens a QUIC connection and records
/// per-second delivered bytes, exactly like [`crate::iperf::IperfClient`].
pub struct QuicIperfClient {
    server: EndpointAddr,
    sock: Option<UdpId>,
    conn: Option<QuicConn>,
    last_addr: Option<Ipv4Addr>,
    /// Delivered bytes, binned per second.
    pub series: TimeSeries,
    /// Total stream bytes delivered.
    pub total_bytes: u64,
}

impl QuicIperfClient {
    /// A client that will connect to `server`.
    #[must_use]
    pub fn new(server: EndpointAddr, bin: SimDuration) -> Self {
        Self {
            server,
            sock: None,
            conn: None,
            last_addr: None,
            series: TimeSeries::new(bin),
            total_bytes: 0,
        }
    }

    /// Path migrations the connection's peer validated (from our side we
    /// count local address changes absorbed).
    #[must_use]
    pub fn addr_changes(&self) -> u32 {
        self.conn.as_ref().map_or(0, |c| c.migrations)
    }
}

impl App for QuicIperfClient {
    fn start(&mut self, now: SimTime, host: &mut Host) {
        self.sock = Some(host.udp_bind(QUIC_PORT));
        self.conn = Some(QuicConn::client(0xC0FFEE, self.server, now));
        self.last_addr = host.addr();
    }

    fn on_activity(&mut self, now: SimTime, host: &mut Host) {
        let (Some(sock), Some(conn)) = (self.sock, self.conn.as_mut()) else {
            return;
        };
        // Address change: QUIC migrates in place — no teardown, no wait.
        let addr = host.addr();
        if addr != self.last_addr {
            self.last_addr = addr;
            if addr.is_some() {
                conn.on_local_addr_change();
            }
        }
        pump(conn, sock, now, host);
        let delivered = conn.take_delivered();
        if delivered > 0 {
            self.total_bytes += delivered;
            self.series.record(now, delivered as f64);
        }
    }

    fn tick(&self) -> SimDuration {
        SimDuration::from_millis(50)
    }
}

/// The bulk-sending QUIC server.
pub struct QuicIperfServer {
    sock: Option<UdpId>,
    conn: Option<QuicConn>,
    /// Path migrations validated (one per CellBricks handover).
    pub migrations: u32,
}

impl QuicIperfServer {
    /// A server awaiting one client on the QUIC port.
    #[must_use]
    pub fn new() -> Self {
        Self {
            sock: None,
            conn: None,
            migrations: 0,
        }
    }
}

impl Default for QuicIperfServer {
    fn default() -> Self {
        Self::new()
    }
}

impl App for QuicIperfServer {
    fn start(&mut self, _now: SimTime, host: &mut Host) {
        self.sock = Some(host.udp_bind(QUIC_PORT));
    }

    fn on_activity(&mut self, now: SimTime, host: &mut Host) {
        let Some(sock) = self.sock else { return };
        if self.conn.is_none() {
            // Accept the first client we hear from.
            let datagrams = host.udp_recv(sock);
            if let Some((at, from, payload, padding)) = datagrams.into_iter().next() {
                let mut conn = QuicConn::server(0xC0FFEE, from);
                conn.on_datagram(at, from, &payload, padding);
                conn.set_bulk();
                self.conn = Some(conn);
            } else {
                return;
            }
        }
        if let Some(conn) = self.conn.as_mut() {
            pump(conn, sock, now, host);
            self.migrations = conn.migrations;
        }
    }

    fn tick(&self) -> SimDuration {
        SimDuration::from_millis(50)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::AppHost;
    use cellbricks_net::{Driver, LinkConfig, NetWorld, Shaper, Topology};
    use cellbricks_sim::SimRng;

    const UE: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const UE2: Ipv4Addr = Ipv4Addr::new(10, 0, 7, 1);
    const SRV: Ipv4Addr = Ipv4Addr::new(1, 1, 1, 1);

    fn setup(rate_bps: f64) -> (NetWorld, AppHost<QuicIperfClient>, AppHost<QuicIperfServer>) {
        let mut t = Topology::new();
        let a = t.add_node("ue");
        let b = t.add_node("server");
        let dl = LinkConfig {
            latency: SimDuration::from_millis(20),
            loss: 0.0,
            shaper: Shaper::FixedRate(rate_bps),
            queue_cap: SimDuration::from_millis(400),
            burst: None,
        };
        let ul = LinkConfig::delay_only(SimDuration::from_millis(20));
        let l = t.add_link(b, a, dl, ul);
        t.add_default_route(a, l);
        t.add_default_route(b, l);
        let world = NetWorld::new(t, SimRng::new(9));
        let client = AppHost::new(
            Host::new(cellbricks_net::NodeId(0), Some(UE)),
            QuicIperfClient::new(EndpointAddr::new(SRV, QUIC_PORT), SimDuration::from_secs(1)),
        );
        let server = AppHost::new(
            Host::new(cellbricks_net::NodeId(1), Some(SRV)),
            QuicIperfServer::new(),
        );
        (world, client, server)
    }

    #[test]
    fn quic_fills_the_pipe() {
        let (mut world, mut client, mut server) = setup(10e6);
        Driver::new().run_to(
            &mut world,
            &mut [&mut client, &mut server],
            SimTime::from_secs(15),
        );
        let mbps = client.app.series.mean_rate(3, 15) * 8.0 / 1e6;
        let c_est = client.app.conn.as_ref().map(|c| c.is_established());
        let s_conn = server.app.conn.is_some();
        let s_est = server.app.conn.as_ref().map(|c| c.is_established());
        assert!(
            (mbps - 10.0).abs() < 2.0,
            "quic {mbps} Mbps on a 10 Mbps pipe (client est {c_est:?}, server conn {s_conn} est {s_est:?}, total {}, srv {:?})",
            client.app.total_bytes,
            server.app.conn.as_ref().map(|c| c.debug_state())
        );
    }

    #[test]
    fn quic_migrates_across_ip_change_over_netsim() {
        let (mut world, mut client, mut server) = setup(10e6);
        let mut driver = Driver::new();
        driver.run_to(
            &mut world,
            &mut [&mut client, &mut server],
            SimTime::from_secs(5),
        );
        let before = client.app.total_bytes;
        assert!(before > 0);
        let t0 = SimTime::from_secs(5);
        client.host.invalidate_addr(t0);
        driver.run_to(
            &mut world,
            &mut [&mut client, &mut server],
            t0 + SimDuration::from_millis(32),
        );
        client
            .host
            .assign_addr(t0 + SimDuration::from_millis(32), UE2);
        driver.run_to(
            &mut world,
            &mut [&mut client, &mut server],
            SimTime::from_secs(10),
        );
        assert!(
            client.app.total_bytes > before + 1_000_000,
            "transfer resumed: {} -> {}",
            before,
            client.app.total_bytes
        );
        assert_eq!(server.app.migrations, 1, "server validated the new path");
    }
}
