//! The [`AppHost`] endpoint: a transport [`Host`] driven by an [`App`].

use cellbricks_net::{Endpoint, NodeId, Packet};
use cellbricks_sim::{SimDuration, SimTime};
use cellbricks_transport::Host;

/// Application logic layered over a host's sockets.
///
/// Apps are polled: [`App::on_activity`] runs after every packet delivery
/// and on every tick, and is where the app drains socket state and issues
/// new work. This mirrors how the workloads only observe kernel sockets
/// in the paper's testbed.
pub trait App {
    /// Called once, at the first poll.
    fn start(&mut self, now: SimTime, host: &mut Host);
    /// Called after packet activity and on every tick.
    fn on_activity(&mut self, now: SimTime, host: &mut Host);
    /// The tick interval driving time-based behaviour.
    fn tick(&self) -> SimDuration;
}

/// A topology endpoint combining a transport host and an application.
pub struct AppHost<A: App> {
    /// The transport stack.
    pub host: Host,
    /// The application.
    pub app: A,
    started: bool,
    next_tick: SimTime,
}

impl<A: App> AppHost<A> {
    /// Wrap `host` and `app`.
    #[must_use]
    pub fn new(host: Host, app: A) -> Self {
        Self {
            host,
            app,
            started: false,
            next_tick: SimTime::ZERO,
        }
    }
}

impl<A: App> Endpoint for AppHost<A> {
    fn node(&self) -> NodeId {
        self.host.node()
    }

    fn handle_packet(&mut self, now: SimTime, pkt: Packet, out: &mut Vec<Packet>) {
        self.host.handle_packet(now, pkt);
        self.app.on_activity(now, &mut self.host);
        self.host.drain_out(out);
    }

    fn poll_at(&self) -> Option<SimTime> {
        let mut earliest = Some(self.next_tick);
        if !self.started {
            earliest = Some(SimTime::ZERO);
        }
        match (earliest, self.host.poll_at()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }

    fn poll(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        if !self.started {
            self.started = true;
            self.app.start(now, &mut self.host);
            self.next_tick = now + self.app.tick();
        }
        if now >= self.next_tick {
            self.next_tick = now + self.app.tick();
        }
        self.host.poll(now);
        self.app.on_activity(now, &mut self.host);
        self.host.drain_out(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cellbricks_net::{Driver, LinkConfig, NetWorld, Topology};
    use cellbricks_sim::SimRng;
    use std::net::Ipv4Addr;

    struct TickCounter {
        ticks: u32,
        started: bool,
    }

    impl App for TickCounter {
        fn start(&mut self, _now: SimTime, _host: &mut Host) {
            self.started = true;
        }
        fn on_activity(&mut self, _now: SimTime, _host: &mut Host) {
            self.ticks += 1;
        }
        fn tick(&self) -> SimDuration {
            SimDuration::from_millis(100)
        }
    }

    #[test]
    fn app_starts_and_ticks() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.add_symmetric_link(a, b, LinkConfig::delay_only(SimDuration::from_millis(1)));
        let mut world = NetWorld::new(t, SimRng::new(1));
        let mut ep = AppHost::new(
            Host::new(a, Some(Ipv4Addr::new(10, 0, 0, 1))),
            TickCounter {
                ticks: 0,
                started: false,
            },
        );
        Driver::new().run_to(&mut world, &mut [&mut ep], SimTime::from_secs(1));
        assert!(ep.app.started);
        assert!(ep.app.ticks >= 10, "{} ticks", ep.app.ticks);
    }
}
