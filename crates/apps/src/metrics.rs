//! Application-quality metrics, chiefly the E-model MOS used for VoIP
//! (paper §6.2: "an industry standard quantitative call quality metric,
//! the Mean Opinion Score (MOS), which can be numerically derived from
//! the packet loss, latency, and jitter measured during the call").

/// Compute a MOS score (1.0–4.5) from network measurements using the
/// ITU-T G.107 E-model with G.711+PLC equipment parameters.
///
/// * `one_way_ms` — mouth-to-ear one-way delay (network + jitter buffer),
/// * `jitter_ms` — mean inter-arrival jitter (inflates effective delay),
/// * `loss` — packet loss ratio in `[0, 1]`.
#[must_use]
pub fn mos_from_network(one_way_ms: f64, jitter_ms: f64, loss: f64) -> f64 {
    // Effective delay: jitter must be absorbed by the jitter buffer,
    // which adds delay (a common E-model practice: d = owd + 2·jitter).
    let d = one_way_ms + 2.0 * jitter_ms;
    // Delay impairment Id (G.107 simplified form).
    let mut id = 0.024 * d;
    if d > 177.3 {
        id += 0.11 * (d - 177.3);
    }
    // Equipment impairment with packet loss: Ie-eff for G.711 with packet
    // loss concealment (Ie = 0, Bpl = 25.1).
    let p = loss * 100.0;
    let ie_eff = 95.0 * p / (p + 25.1);
    let r = (93.2 - id - ie_eff).clamp(0.0, 100.0);
    // R → MOS mapping (G.107 Annex B).
    if r <= 0.0 {
        1.0
    } else if r >= 100.0 {
        4.5
    } else {
        1.0 + 0.035 * r + 7.0e-6 * r * (r - 60.0) * (100.0 - r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_short_path_scores_high() {
        let mos = mos_from_network(25.0, 2.0, 0.0);
        assert!(mos > 4.3, "mos {mos}");
    }

    #[test]
    fn paper_conditions_score_around_4_3() {
        // ~23 ms one-way, small jitter, sub-percent loss — the Table 1
        // regime where both architectures score ≈ 4.3.
        let mos = mos_from_network(43.0, 3.0, 0.003);
        assert!((4.2..4.45).contains(&mos), "mos {mos}");
    }

    #[test]
    fn loss_degrades_score() {
        let clean = mos_from_network(40.0, 2.0, 0.0);
        let lossy = mos_from_network(40.0, 2.0, 0.05);
        assert!(lossy < clean - 0.4, "clean {clean} lossy {lossy}");
    }

    #[test]
    fn delay_degrades_score() {
        let near = mos_from_network(30.0, 0.0, 0.0);
        let far = mos_from_network(400.0, 0.0, 0.0);
        assert!(far < near - 0.7, "near {near} far {far}");
    }

    #[test]
    fn bounded_one_to_four_point_five() {
        assert!(mos_from_network(10_000.0, 100.0, 1.0) >= 1.0);
        assert!(mos_from_network(0.0, 0.0, 0.0) <= 4.5);
    }

    #[test]
    fn monotone_in_loss() {
        let mut prev = f64::INFINITY;
        for i in 0..20 {
            let mos = mos_from_network(40.0, 2.0, f64::from(i) * 0.01);
            assert!(mos <= prev + 1e-12);
            prev = mos;
        }
    }
}
