//! VoIP: a bidirectional 50 pps RTP-like media stream with E-model MOS.
//!
//! The paper modifies pjsua to use SIP re-INVITE on IP changes (§6.2iv):
//! here the client announces its new address with a re-INVITE datagram
//! after every address change, and the callee always streams to the
//! client's most recently seen address — the same recovery semantics.

use crate::harness::App;
use crate::metrics::mos_from_network;
use cellbricks_epc::wire::{Reader, Writer};
use cellbricks_net::EndpointAddr;
use cellbricks_sim::{SimDuration, SimTime};
use cellbricks_transport::{Host, UdpId};
use std::net::Ipv4Addr;

const FRAME_INTERVAL: SimDuration = SimDuration::from_millis(20);
/// G.711 frame: 160 payload bytes @ 50 pps ≈ 64 kbit/s + headers.
const FRAME_BYTES: usize = 160;

/// Receive-side stream statistics.
#[derive(Clone, Debug, Default)]
pub struct StreamStats {
    /// Frames received.
    pub received: u64,
    /// Highest sequence seen + 1 (expected count).
    pub expected: u64,
    /// Sum of one-way delays, ms.
    delay_sum: f64,
    /// Sum of |delay delta| between consecutive frames (jitter), ms.
    jitter_sum: f64,
    last_delay: Option<f64>,
}

impl StreamStats {
    fn on_frame(&mut self, seq: u64, delay_ms: f64) {
        self.received += 1;
        self.expected = self.expected.max(seq + 1);
        self.delay_sum += delay_ms;
        if let Some(last) = self.last_delay {
            self.jitter_sum += (delay_ms - last).abs();
        }
        self.last_delay = Some(delay_ms);
    }

    /// Fraction of frames lost.
    #[must_use]
    pub fn loss(&self) -> f64 {
        if self.expected == 0 {
            return 0.0;
        }
        1.0 - self.received as f64 / self.expected as f64
    }

    /// Mean one-way delay, ms.
    #[must_use]
    pub fn mean_delay_ms(&self) -> f64 {
        if self.received == 0 {
            return 0.0;
        }
        self.delay_sum / self.received as f64
    }

    /// Mean jitter, ms.
    #[must_use]
    pub fn mean_jitter_ms(&self) -> f64 {
        if self.received < 2 {
            return 0.0;
        }
        self.jitter_sum / (self.received - 1) as f64
    }

    /// The call's MOS from these measurements.
    #[must_use]
    pub fn mos(&self) -> f64 {
        mos_from_network(self.mean_delay_ms(), self.mean_jitter_ms(), self.loss())
    }
}

/// One side of the call. The *caller* (UE) knows the callee's address;
/// the *callee* learns the caller's address from incoming traffic
/// (re-INVITE semantics).
pub struct VoipPeer {
    /// Fixed peer address (caller side); None for the callee.
    peer: Option<EndpointAddr>,
    /// Latest peer address learned from traffic (callee side).
    learned_peer: Option<EndpointAddr>,
    port: u16,
    sock: Option<UdpId>,
    next_seq: u64,
    next_frame: SimTime,
    last_addr: Option<Ipv4Addr>,
    /// Receive statistics (this side's listening experience).
    pub stats: StreamStats,
}

impl VoipPeer {
    /// The caller (UE side), streaming to `callee`.
    #[must_use]
    pub fn caller(callee: EndpointAddr, port: u16) -> Self {
        Self {
            peer: Some(callee),
            learned_peer: None,
            port,
            sock: None,
            next_seq: 0,
            next_frame: SimTime::ZERO,
            last_addr: None,
            stats: StreamStats::default(),
        }
    }

    /// The callee (server side), listening on `port`.
    #[must_use]
    pub fn callee(port: u16) -> Self {
        Self {
            peer: None,
            learned_peer: None,
            port,
            sock: None,
            next_seq: 0,
            next_frame: SimTime::ZERO,
            last_addr: None,
            stats: StreamStats::default(),
        }
    }

    fn target(&self) -> Option<EndpointAddr> {
        self.peer.or(self.learned_peer)
    }
}

impl App for VoipPeer {
    fn start(&mut self, now: SimTime, host: &mut Host) {
        self.sock = Some(host.udp_bind(self.port));
        self.next_frame = now;
        self.last_addr = host.addr();
    }

    fn on_activity(&mut self, now: SimTime, host: &mut Host) {
        let Some(sock) = self.sock else { return };
        // Receive media; learn/refresh the peer address (re-INVITE).
        for (at, from, payload, _pad) in host.udp_recv(sock) {
            self.learned_peer = Some(from);
            let mut r = Reader::new(&payload);
            let (Some(seq), Some(sent_ns)) = (r.get_u64(), r.get_u64()) else {
                continue; // A bare re-INVITE announcement.
            };
            let delay = at.since(SimTime::from_nanos(sent_ns)).as_millis_f64();
            self.stats.on_frame(seq, delay);
        }
        // On an address change, the caller re-INVITEs so the callee
        // re-targets its media immediately.
        let addr = host.addr();
        if addr != self.last_addr {
            self.last_addr = addr;
            if addr.is_some() && self.peer.is_some() {
                if let Some(target) = self.target() {
                    let mut w = Writer::new();
                    w.put_fixed(b"INVITE  "); // 8-byte marker, no seq.
                    host.udp_send(now, sock, target, w.finish().slice(0..6));
                }
            }
        }
        // Stream frames on schedule. Frames during an outage are dropped
        // at the host (no address) — exactly the loss a real call sees.
        while now >= self.next_frame {
            if let Some(target) = self.target() {
                let mut w = Writer::new();
                w.put_u64(self.next_seq).put_u64(self.next_frame.as_nanos());
                w.put_fixed(&[0u8; FRAME_BYTES - 16]);
                host.udp_send(self.next_frame, sock, target, w.finish());
                self.next_seq += 1;
            }
            self.next_frame += FRAME_INTERVAL;
        }
    }

    fn tick(&self) -> SimDuration {
        FRAME_INTERVAL
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::AppHost;
    use cellbricks_net::{Driver, LinkConfig, NetWorld, Topology};
    use cellbricks_sim::SimRng;

    const UE: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const UE2: Ipv4Addr = Ipv4Addr::new(10, 0, 7, 1);
    const SRV: Ipv4Addr = Ipv4Addr::new(1, 1, 1, 1);

    fn setup() -> (NetWorld, AppHost<VoipPeer>, AppHost<VoipPeer>) {
        let mut t = Topology::new();
        let a = t.add_node("ue");
        let b = t.add_node("server");
        let l = t.add_symmetric_link(a, b, LinkConfig::delay_only(SimDuration::from_millis(23)));
        t.add_default_route(a, l);
        t.add_default_route(b, l);
        let world = NetWorld::new(t, SimRng::new(1));
        let caller = AppHost::new(
            Host::new(a, Some(UE)),
            VoipPeer::caller(EndpointAddr::new(SRV, 4000), 4000),
        );
        let callee = AppHost::new(Host::new(b, Some(SRV)), VoipPeer::callee(4000));
        (world, caller, callee)
    }

    #[test]
    fn clean_call_scores_high_mos() {
        let (mut world, mut caller, mut callee) = setup();
        Driver::new().run_to(
            &mut world,
            &mut [&mut caller, &mut callee],
            SimTime::from_secs(30),
        );
        // Both directions flow.
        assert!(callee.app.stats.received > 1000);
        assert!(caller.app.stats.received > 1000);
        let mos = caller.app.stats.mos();
        assert!((4.25..4.45).contains(&mos), "mos {mos}");
        assert!(caller.app.stats.loss() < 0.01);
        assert!((caller.app.stats.mean_delay_ms() - 23.0).abs() < 2.0);
    }

    #[test]
    fn ip_change_recovers_via_reinvite() {
        let (mut world, mut caller, mut callee) = setup();
        let mut driver = Driver::new();
        driver.run_to(
            &mut world,
            &mut [&mut caller, &mut callee],
            SimTime::from_secs(10),
        );
        let t0 = SimTime::from_secs(10);
        caller.host.invalidate_addr(t0);
        driver.run_to(
            &mut world,
            &mut [&mut caller, &mut callee],
            t0 + SimDuration::from_millis(40),
        );
        caller
            .host
            .assign_addr(t0 + SimDuration::from_millis(40), UE2);
        let before = caller.app.stats.received;
        driver.run_to(
            &mut world,
            &mut [&mut caller, &mut callee],
            SimTime::from_secs(20),
        );
        // Media resumed to the new address in both directions.
        assert!(
            caller.app.stats.received > before + 400,
            "caller resumed receiving"
        );
        // Only a brief loss burst around the change.
        assert!(
            caller.app.stats.loss() < 0.05,
            "loss {}",
            caller.app.stats.loss()
        );
    }
}
