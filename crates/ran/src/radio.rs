//! Towers and the radio propagation model.

use cellbricks_sim::SimRng;

/// Identifies a tower (and, in CellBricks mode, its single-tower bTelco).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TowerId(pub u32);

/// A cell tower along the drive route.
#[derive(Clone, Debug)]
pub struct Tower {
    /// Identity.
    pub id: TowerId,
    /// Position along the route axis, metres.
    pub x: f64,
    /// Perpendicular offset from the road, metres.
    pub y: f64,
    /// Operator this tower belongs to (one per tower in CellBricks mode).
    pub operator: u32,
}

impl Tower {
    /// Straight-line distance to a UE at route position `ue_x` (on the
    /// road, y = 0), metres. Clamped to 10 m so pathloss stays finite.
    #[must_use]
    pub fn distance_to(&self, ue_x: f64) -> f64 {
        let dx = self.x - ue_x;
        (dx * dx + self.y * self.y).sqrt().max(10.0)
    }
}

/// Log-distance pathloss with log-normal shadow fading
/// (3GPP-UMa-flavoured: `PL(d) = 128.1 + 37.6·log10(d_km)`).
#[derive(Clone, Debug)]
pub struct PathlossModel {
    /// Transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Pathloss at 1 km, dB.
    pub pl_1km_db: f64,
    /// Pathloss exponent ×10 (37.6 → n = 3.76).
    pub slope_db_per_decade: f64,
    /// Shadow-fading standard deviation, dB.
    pub shadow_std_db: f64,
}

impl Default for PathlossModel {
    fn default() -> Self {
        Self {
            tx_power_dbm: 46.0,
            pl_1km_db: 128.1,
            slope_db_per_decade: 37.6,
            shadow_std_db: 4.0,
        }
    }
}

impl PathlossModel {
    /// Median received power (RSRP-like) at distance `d` metres, dBm.
    #[must_use]
    pub fn median_rsrp_dbm(&self, d_m: f64) -> f64 {
        let d_km = (d_m / 1000.0).max(1e-3);
        self.tx_power_dbm - (self.pl_1km_db + self.slope_db_per_decade * d_km.log10())
    }

    /// Received power with a shadow-fading draw.
    #[must_use]
    pub fn rsrp_dbm(&self, d_m: f64, rng: &mut SimRng) -> f64 {
        self.median_rsrp_dbm(d_m) + rng.normal(0.0, self.shadow_std_db)
    }

    /// A crude loss-rate model: loss grows as RSRP falls below a
    /// threshold (cell-edge effect). Returns a probability in `[0, 0.05]`.
    #[must_use]
    pub fn loss_probability(&self, rsrp_dbm: f64) -> f64 {
        // Above -95 dBm: essentially clean. Below -115 dBm: 5% loss.
        let span = (-95.0 - rsrp_dbm) / 20.0;
        (span * 0.05).clamp(0.0, 0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_clamps_at_10m() {
        let t = Tower {
            id: TowerId(0),
            x: 100.0,
            y: 0.0,
            operator: 0,
        };
        assert_eq!(t.distance_to(100.0), 10.0);
        assert!((t.distance_to(400.0) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn pathloss_monotonic_in_distance() {
        let m = PathlossModel::default();
        let near = m.median_rsrp_dbm(100.0);
        let far = m.median_rsrp_dbm(1000.0);
        assert!(near > far);
        // 1 km median: 46 - 128.1 = -82.1 dBm.
        assert!((m.median_rsrp_dbm(1000.0) + 82.1).abs() < 1e-9);
    }

    #[test]
    fn slope_is_37_6_per_decade() {
        let m = PathlossModel::default();
        let d1 = m.median_rsrp_dbm(100.0);
        let d2 = m.median_rsrp_dbm(1000.0);
        assert!((d1 - d2 - 37.6).abs() < 1e-9);
    }

    #[test]
    fn shadowing_has_configured_std() {
        let m = PathlossModel::default();
        let mut rng = SimRng::new(5);
        let samples: Vec<f64> = (0..20_000).map(|_| m.rsrp_dbm(500.0, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!((var.sqrt() - 4.0).abs() < 0.1, "std {}", var.sqrt());
        assert!((mean - m.median_rsrp_dbm(500.0)).abs() < 0.1);
    }

    #[test]
    fn loss_probability_bounds() {
        let m = PathlossModel::default();
        assert_eq!(m.loss_probability(-80.0), 0.0);
        assert!((m.loss_probability(-115.0) - 0.05).abs() < 1e-9);
        assert!(m.loss_probability(-200.0) <= 0.05);
        let mid = m.loss_probability(-105.0);
        assert!(mid > 0.0 && mid < 0.05);
    }
}
