//! Drive-test routes calibrated to the paper's measured MTTHO.
//!
//! Table 1 reports mean-time-to-handover for three routes, day (D) and
//! night (N):
//!
//! | route    | D (s) | N (s) |
//! |----------|-------|-------|
//! | suburb   | 73.50 | 65.60 |
//! | downtown | 68.16 | 50.60 |
//! | highway  | 44.72 | 25.50 |
//!
//! The model places towers along a straight road with spacing
//! `speed × target MTTHO` (±jitter) and lets the cell selector produce
//! emergent handovers; night drives are faster (empty roads), matching
//! the paper's observation that MTTHO drops at night.

use crate::mobility::HandoverEvent;
use crate::radio::{Tower, TowerId};
use cellbricks_net::TimeOfDay;
use cellbricks_sim::SimRng;

/// Which of the paper's three drive routes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum RouteKind {
    /// Suburban arterial roads.
    Suburb,
    /// City-centre grid.
    Downtown,
    /// Freeway.
    Highway,
}

impl RouteKind {
    /// All routes, in Table 1 order.
    pub const ALL: [RouteKind; 3] = [RouteKind::Suburb, RouteKind::Downtown, RouteKind::Highway];

    /// Display name matching Table 1.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RouteKind::Suburb => "Suburb",
            RouteKind::Downtown => "Downtown",
            RouteKind::Highway => "Highway",
        }
    }

    /// The paper's measured MTTHO in seconds for calibration/reporting.
    #[must_use]
    pub fn paper_mttho_secs(self, tod: TimeOfDay) -> f64 {
        match (self, tod) {
            (RouteKind::Suburb, TimeOfDay::Day) => 73.50,
            (RouteKind::Suburb, TimeOfDay::Night) => 65.60,
            (RouteKind::Downtown, TimeOfDay::Day) => 68.16,
            (RouteKind::Downtown, TimeOfDay::Night) => 50.60,
            (RouteKind::Highway, TimeOfDay::Day) => 44.72,
            (RouteKind::Highway, TimeOfDay::Night) => 25.50,
        }
    }

    /// Drive speed, m/s. Day speeds are traffic-limited; night drives on
    /// empty roads are faster (the paper's explanation for lower MTTHO).
    #[must_use]
    pub fn speed_mps(self, tod: TimeOfDay) -> f64 {
        match (self, tod) {
            (RouteKind::Suburb, TimeOfDay::Day) => 12.0,
            (RouteKind::Suburb, TimeOfDay::Night) => 13.4,
            (RouteKind::Downtown, TimeOfDay::Day) => 8.0,
            (RouteKind::Downtown, TimeOfDay::Night) => 10.8,
            (RouteKind::Highway, TimeOfDay::Day) => 28.0,
            (RouteKind::Highway, TimeOfDay::Night) => 33.0,
        }
    }
}

/// A fully instantiated drive scenario: towers plus motion parameters.
#[derive(Clone, Debug)]
pub struct DriveProfile {
    /// Route kind.
    pub kind: RouteKind,
    /// Time of day.
    pub tod: TimeOfDay,
    /// Drive speed, m/s.
    pub speed_mps: f64,
    /// Towers along the route.
    pub towers: Vec<Tower>,
}

impl DriveProfile {
    /// Build a profile long enough for `duration_secs` of driving.
    ///
    /// Tower spacing is `speed × MTTHO_target` with ±15% jitter; in the
    /// paper's CellBricks scenario each tower is its own single-tower
    /// bTelco, so `operator == tower id`.
    #[must_use]
    pub fn build(
        kind: RouteKind,
        tod: TimeOfDay,
        duration_secs: f64,
        rng: &mut SimRng,
    ) -> DriveProfile {
        let speed = kind.speed_mps(tod);
        let target_spacing = speed * kind.paper_mttho_secs(tod);
        let route_len = speed * duration_secs + 2.0 * target_spacing;
        let mut towers = Vec::new();
        // First tower slightly behind the start so the UE begins attached.
        let mut x = -target_spacing * rng.uniform(0.2, 0.6);
        let mut id = 0u32;
        while x < route_len {
            let side = if id.is_multiple_of(2) { 1.0 } else { -1.0 };
            towers.push(Tower {
                id: TowerId(id),
                x,
                y: side * rng.uniform(30.0, 80.0),
                operator: id,
            });
            x += target_spacing * rng.uniform(0.85, 1.15);
            id += 1;
        }
        DriveProfile {
            kind,
            tod,
            speed_mps: speed,
            towers,
        }
    }

    /// UE position (metres along the route) at time `t_secs`.
    #[must_use]
    pub fn position_at(&self, t_secs: f64) -> f64 {
        self.speed_mps * t_secs
    }
}

/// Mean time between handovers, seconds (NaN if fewer than 2 events).
#[must_use]
pub fn mttho(events: &[HandoverEvent]) -> f64 {
    if events.len() < 2 {
        return f64::NAN;
    }
    let first = events.first().unwrap().at.as_secs_f64();
    let last = events.last().unwrap().at.as_secs_f64();
    (last - first) / (events.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_covers_duration() {
        let mut rng = SimRng::new(1);
        let p = DriveProfile::build(RouteKind::Downtown, TimeOfDay::Day, 600.0, &mut rng);
        let end = p.position_at(600.0);
        assert!(p.towers.last().unwrap().x >= end);
        assert!(p.towers.len() >= 9, "{} towers", p.towers.len());
    }

    #[test]
    fn night_faster_than_day() {
        for kind in RouteKind::ALL {
            assert!(kind.speed_mps(TimeOfDay::Night) > kind.speed_mps(TimeOfDay::Day));
        }
    }

    #[test]
    fn spacing_tracks_target() {
        let mut rng = SimRng::new(2);
        let p = DriveProfile::build(RouteKind::Highway, TimeOfDay::Night, 2000.0, &mut rng);
        let spacings: Vec<f64> = p.towers.windows(2).map(|w| w[1].x - w[0].x).collect();
        let mean = spacings.iter().sum::<f64>() / spacings.len() as f64;
        let target = 33.0 * 25.50;
        assert!(
            (mean - target).abs() / target < 0.1,
            "mean spacing {mean}, target {target}"
        );
    }

    #[test]
    fn each_tower_is_its_own_operator() {
        let mut rng = SimRng::new(3);
        let p = DriveProfile::build(RouteKind::Suburb, TimeOfDay::Day, 300.0, &mut rng);
        for t in &p.towers {
            assert_eq!(t.operator, t.id.0);
        }
    }

    #[test]
    fn mttho_of_evenly_spaced_events() {
        use cellbricks_sim::SimTime;
        let events: Vec<HandoverEvent> = (0..5)
            .map(|i| HandoverEvent {
                at: SimTime::from_secs(10 * (i + 1)),
                from: TowerId(i as u32),
                to: TowerId(i as u32 + 1),
                crosses_operator: true,
            })
            .collect();
        assert!((mttho(&events) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mttho_undefined_for_single_event() {
        assert!(mttho(&[]).is_nan());
    }
}
