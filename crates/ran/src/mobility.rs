//! Cell selection and handover-event generation.
//!
//! The UE samples RSRP from nearby towers as it drives and performs
//! strongest-cell selection with hysteresis and a minimum dwell time —
//! the UE-driven, network-assisted selection of paper §4.2. The output
//! is the handover schedule that the emulation harness replays against
//! the transport stack (exactly as the paper replays Qualcomm-detected
//! handovers against its MPTCP UE).

use crate::radio::{PathlossModel, TowerId};
use crate::routes::DriveProfile;
use cellbricks_sim::{SimDuration, SimRng, SimTime};

/// One handover observed during a drive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HandoverEvent {
    /// When the handover fires.
    pub at: SimTime,
    /// Serving tower before.
    pub from: TowerId,
    /// Serving tower after.
    pub to: TowerId,
    /// True if the towers belong to different operators — in CellBricks
    /// mode (one bTelco per tower) this is always true.
    pub crosses_operator: bool,
}

/// Strongest-cell selection with hysteresis and minimum dwell.
#[derive(Clone, Debug)]
pub struct CellSelector {
    /// Pathloss / fading model.
    pub pathloss: PathlossModel,
    /// Candidate must beat serving by this margin, dB (A3 offset).
    pub hysteresis_db: f64,
    /// Minimum time between handovers (suppresses ping-pong).
    pub min_dwell: SimDuration,
    /// RSRP sampling period.
    pub sample_period: SimDuration,
    /// L3 filter coefficient in `[0, 1)`: the weight of the *previous*
    /// filtered value (3GPP layer-3 filtering; higher = smoother).
    pub l3_filter: f64,
}

impl Default for CellSelector {
    fn default() -> Self {
        Self {
            pathloss: PathlossModel::default(),
            hysteresis_db: 3.0,
            min_dwell: SimDuration::from_secs(4),
            sample_period: SimDuration::from_millis(500),
            l3_filter: 0.9,
        }
    }
}

/// Simulates a drive and produces the handover schedule.
pub struct DriveSim;

impl DriveSim {
    /// Run the cell selector over `profile` for `duration`, returning the
    /// serving tower at t=0 and all handover events.
    #[must_use]
    pub fn run(
        profile: &DriveProfile,
        selector: &CellSelector,
        duration: SimDuration,
        rng: &mut SimRng,
    ) -> (TowerId, Vec<HandoverEvent>) {
        assert!(!profile.towers.is_empty(), "profile has no towers");
        let mut events = Vec::new();

        // Initial attachment: strongest median cell at t=0.
        let pos0 = profile.position_at(0.0);
        let mut serving = profile
            .towers
            .iter()
            .max_by(|a, b| {
                let ra = selector.pathloss.median_rsrp_dbm(a.distance_to(pos0));
                let rb = selector.pathloss.median_rsrp_dbm(b.distance_to(pos0));
                ra.partial_cmp(&rb).unwrap()
            })
            .unwrap()
            .id;
        let mut last_ho = SimTime::ZERO;
        // 3GPP L3-filtered RSRP per tower: raw shadow-faded samples are
        // smoothed before the A3 comparison, as real UEs do — without
        // this, independent fading draws cause noise-driven ping-pong.
        let mut filtered: std::collections::HashMap<TowerId, f64> =
            std::collections::HashMap::new();
        let alpha = selector.l3_filter;

        let mut t = SimTime::ZERO;
        while t <= SimTime::ZERO + duration {
            let pos = profile.position_at(t.as_secs_f64());
            // Update filtered measurements for towers in radio range.
            for tw in &profile.towers {
                let d = tw.distance_to(pos);
                if d > 10_000.0 {
                    filtered.remove(&tw.id);
                    continue;
                }
                let raw = selector.pathloss.rsrp_dbm(d, rng);
                filtered
                    .entry(tw.id)
                    .and_modify(|f| *f = alpha * *f + (1.0 - alpha) * raw)
                    .or_insert(raw);
            }
            let serving_tower = profile
                .towers
                .iter()
                .find(|tw| tw.id == serving)
                .expect("serving tower exists");
            let serving_rsrp = filtered.get(&serving).copied().unwrap_or(f64::NEG_INFINITY);
            let mut best: Option<(TowerId, f64, u32)> = None;
            for tw in &profile.towers {
                if tw.id == serving {
                    continue;
                }
                let Some(&rsrp) = filtered.get(&tw.id) else {
                    continue;
                };
                if best.is_none_or(|(_, b, _)| rsrp > b) {
                    best = Some((tw.id, rsrp, tw.operator));
                }
            }
            if let Some((cand, rsrp, op)) = best {
                let dwell_ok = t.saturating_since(last_ho) >= selector.min_dwell;
                if rsrp > serving_rsrp + selector.hysteresis_db && dwell_ok {
                    let serving_op = serving_tower.operator;
                    events.push(HandoverEvent {
                        at: t,
                        from: serving,
                        to: cand,
                        crosses_operator: serving_op != op,
                    });
                    serving = cand;
                    last_ho = t;
                }
            }
            t += selector.sample_period;
        }
        let initial = events.first().map_or(serving, |e| e.from);
        (initial, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routes::{mttho, RouteKind};
    use cellbricks_net::TimeOfDay;

    fn run_route(kind: RouteKind, tod: TimeOfDay, seed: u64) -> f64 {
        let mut rng = SimRng::new(seed);
        let dur = 3_600.0;
        let profile = DriveProfile::build(kind, tod, dur, &mut rng);
        let selector = CellSelector::default();
        let (_initial, events) = DriveSim::run(
            &profile,
            &selector,
            SimDuration::from_secs_f64(dur),
            &mut rng,
        );
        mttho(&events)
    }

    #[test]
    fn mttho_matches_paper_within_tolerance() {
        for kind in RouteKind::ALL {
            for tod in [TimeOfDay::Day, TimeOfDay::Night] {
                let target = kind.paper_mttho_secs(tod);
                let got = run_route(kind, tod, 42);
                let err = (got - target).abs() / target;
                assert!(
                    err < 0.25,
                    "{:?} {:?}: mttho {got:.1}s vs paper {target:.1}s ({:.0}% off)",
                    kind,
                    tod,
                    err * 100.0
                );
            }
        }
    }

    #[test]
    fn handovers_are_monotone_in_time() {
        let mut rng = SimRng::new(7);
        let profile = DriveProfile::build(RouteKind::Downtown, TimeOfDay::Night, 1000.0, &mut rng);
        let (_, events) = DriveSim::run(
            &profile,
            &CellSelector::default(),
            SimDuration::from_secs(1000),
            &mut rng,
        );
        for w in events.windows(2) {
            assert!(w[1].at > w[0].at);
            // The chain is consistent: each handover starts where the
            // previous one ended.
            assert_eq!(w[1].from, w[0].to);
        }
    }

    #[test]
    fn cellbricks_mode_always_crosses_operators() {
        let mut rng = SimRng::new(9);
        let profile = DriveProfile::build(RouteKind::Suburb, TimeOfDay::Day, 2000.0, &mut rng);
        let (_, events) = DriveSim::run(
            &profile,
            &CellSelector::default(),
            SimDuration::from_secs(2000),
            &mut rng,
        );
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.crosses_operator));
    }

    #[test]
    fn dwell_time_enforced() {
        let mut rng = SimRng::new(11);
        let profile = DriveProfile::build(RouteKind::Highway, TimeOfDay::Night, 2000.0, &mut rng);
        let selector = CellSelector::default();
        let (_, events) =
            DriveSim::run(&profile, &selector, SimDuration::from_secs(2000), &mut rng);
        for w in events.windows(2) {
            assert!(w[1].at.since(w[0].at) >= selector.min_dwell);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_route(RouteKind::Downtown, TimeOfDay::Day, 5);
        let b = run_route(RouteKind::Downtown, TimeOfDay::Day, 5);
        assert_eq!(a, b);
    }
}
