//! Radio access network model.
//!
//! CellBricks leaves the RAN unmodified (paper §2.1), so this crate models
//! only what the evaluation needs: where towers are, which tower a moving
//! UE selects, and *when handovers happen* — the mean-time-to-handover
//! (MTTHO) column of Table 1 is the calibration target. The model is
//! geometric rather than trace-driven: towers sit along a drive route,
//! received power follows a log-distance pathloss law with shadow fading,
//! and the UE runs strongest-cell selection with hysteresis, exactly the
//! UE-driven "network-assisted" selection the paper sketches in §4.2.
//!
//! In CellBricks mode every tower belongs to a distinct bTelco (the
//! paper's "extreme scenario in which each provider operates only a
//! single tower", §6.2); in MNO mode all towers belong to one operator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod mobility;
pub mod radio;
pub mod routes;

pub use fleet::{FleetRadioState, FleetUeId};
pub use mobility::{CellSelector, DriveSim, HandoverEvent};
pub use radio::{PathlossModel, Tower, TowerId};
pub use routes::{mttho, DriveProfile, RouteKind};
