//! Dense structure-of-arrays radio state for large UE fleets.
//!
//! [`crate::mobility::DriveSim`] models one richly-instrumented UE; a
//! million-UE run cannot afford a `HashMap<TowerId, f64>` per device.
//! [`FleetRadioState`] keeps the per-UE mobility hot state — serving
//! cell, L3-filtered serving RSRP, last-handover time — in three dense
//! columns indexed by a fleet-local id, so the per-tick working set is
//! `3 × 8` bytes per UE, contiguous, and trivially reported through the
//! `sim.arena.*` gauges by whoever owns the fleet.
//!
//! The selection rule is the same A3-style comparison as
//! [`crate::mobility::CellSelector`]: a candidate must beat the
//! L3-filtered serving RSRP by `hysteresis_db` and the UE must have
//! dwelt on the serving cell for `min_dwell`.

use crate::radio::TowerId;
use cellbricks_sim::{SimDuration, SimTime};

/// Index of a UE inside a [`FleetRadioState`] (dense, starts at 0).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FleetUeId(pub u32);

/// SoA hot state for a fleet of UEs running strongest-cell selection.
pub struct FleetRadioState {
    /// Candidate must beat the filtered serving RSRP by this margin, dB.
    pub hysteresis_db: f64,
    /// Minimum time between handovers per UE (suppresses ping-pong).
    pub min_dwell: SimDuration,
    /// L3 filter coefficient in `[0, 1)`: weight of the previous
    /// filtered value.
    pub l3_filter: f64,
    /// Column: serving cell per UE.
    serving: Vec<TowerId>,
    /// Column: L3-filtered serving-cell RSRP per UE, dBm.
    filtered_rsrp: Vec<f64>,
    /// Column: when the UE last handed over.
    last_ho: Vec<SimTime>,
    /// Total handovers executed across the fleet.
    handovers: u64,
}

impl FleetRadioState {
    /// An empty fleet with the given selection parameters.
    #[must_use]
    pub fn new(hysteresis_db: f64, min_dwell: SimDuration, l3_filter: f64) -> Self {
        assert!((0.0..1.0).contains(&l3_filter), "filter coeff in [0,1)");
        Self {
            hysteresis_db,
            min_dwell,
            l3_filter,
            serving: Vec::new(),
            filtered_rsrp: Vec::new(),
            last_ho: Vec::new(),
            handovers: 0,
        }
    }

    /// Pre-size every column for `n` UEs (one reservation each — no
    /// incremental regrowth while building a million-UE fleet).
    pub fn reserve(&mut self, n: usize) {
        self.serving.reserve(n);
        self.filtered_rsrp.reserve(n);
        self.last_ho.reserve(n);
    }

    /// Admit a UE camped on `serving` with an initial RSRP measurement.
    /// Ids are dense and returned in admission order.
    ///
    /// # Panics
    /// Panics past `u32::MAX` UEs.
    pub fn add_ue(&mut self, serving: TowerId, initial_rsrp_dbm: f64) -> FleetUeId {
        let id = u32::try_from(self.serving.len()).expect("fleet exceeds u32 ids");
        self.serving.push(serving);
        self.filtered_rsrp.push(initial_rsrp_dbm);
        self.last_ho.push(SimTime::ZERO);
        FleetUeId(id)
    }

    /// Number of UEs in the fleet.
    #[must_use]
    pub fn len(&self) -> usize {
        self.serving.len()
    }

    /// True if no UE has been admitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.serving.is_empty()
    }

    /// Bytes reserved by the SoA columns (capacity, not occupancy) —
    /// the number the owner publishes as `sim.arena.<fleet>.bytes_peak`.
    #[must_use]
    pub fn bytes_capacity(&self) -> usize {
        self.serving.capacity() * std::mem::size_of::<TowerId>()
            + self.filtered_rsrp.capacity() * std::mem::size_of::<f64>()
            + self.last_ho.capacity() * std::mem::size_of::<SimTime>()
    }

    /// The UE's serving cell.
    #[must_use]
    pub fn serving(&self, ue: FleetUeId) -> TowerId {
        self.serving[ue.0 as usize]
    }

    /// The UE's L3-filtered serving RSRP, dBm.
    #[must_use]
    pub fn filtered_rsrp(&self, ue: FleetUeId) -> f64 {
        self.filtered_rsrp[ue.0 as usize]
    }

    /// When the UE last handed over (`SimTime::ZERO` if never).
    #[must_use]
    pub fn last_handover(&self, ue: FleetUeId) -> SimTime {
        self.last_ho[ue.0 as usize]
    }

    /// Total handovers executed across the fleet.
    #[must_use]
    pub fn handovers(&self) -> u64 {
        self.handovers
    }

    /// Fold a raw serving-cell RSRP sample into the UE's L3 filter.
    pub fn observe(&mut self, ue: FleetUeId, raw_rsrp_dbm: f64) {
        let f = &mut self.filtered_rsrp[ue.0 as usize];
        *f = self.l3_filter * *f + (1.0 - self.l3_filter) * raw_rsrp_dbm;
    }

    /// Offer the UE its strongest neighbour. Executes the handover —
    /// serving swaps, the filter re-seeds from the candidate measurement,
    /// the dwell clock restarts — iff the A3 margin and dwell both pass.
    /// Returns whether the handover happened.
    pub fn maybe_handover(
        &mut self,
        ue: FleetUeId,
        now: SimTime,
        candidate: TowerId,
        candidate_rsrp_dbm: f64,
    ) -> bool {
        let i = ue.0 as usize;
        if candidate == self.serving[i] {
            return false;
        }
        let dwell_ok = now.saturating_since(self.last_ho[i]) >= self.min_dwell;
        if !dwell_ok || candidate_rsrp_dbm <= self.filtered_rsrp[i] + self.hysteresis_db {
            return false;
        }
        self.serving[i] = candidate;
        self.filtered_rsrp[i] = candidate_rsrp_dbm;
        self.last_ho[i] = now;
        self.handovers += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> FleetRadioState {
        FleetRadioState::new(3.0, SimDuration::from_secs(4), 0.9)
    }

    #[test]
    fn ids_are_dense_and_columns_grow_together() {
        let mut f = fleet();
        for i in 0..100u32 {
            let id = f.add_ue(TowerId(i % 7), -80.0 - f64::from(i));
            assert_eq!(id, FleetUeId(i));
        }
        assert_eq!(f.len(), 100);
        assert_eq!(f.serving(FleetUeId(13)), TowerId(6));
        assert_eq!(f.filtered_rsrp(FleetUeId(13)), -93.0);
        assert_eq!(f.last_handover(FleetUeId(13)), SimTime::ZERO);
        assert!(f.bytes_capacity() >= 100 * (4 + 8 + 8));
    }

    #[test]
    fn observe_applies_l3_filter() {
        let mut f = fleet();
        let ue = f.add_ue(TowerId(0), -80.0);
        f.observe(ue, -90.0);
        assert!((f.filtered_rsrp(ue) - (0.9 * -80.0 + 0.1 * -90.0)).abs() < 1e-12);
    }

    #[test]
    fn hysteresis_blocks_marginal_candidates() {
        let mut f = fleet();
        let ue = f.add_ue(TowerId(0), -85.0);
        let t = SimTime::from_secs(10);
        // 2 dB better: inside the 3 dB margin, no handover.
        assert!(!f.maybe_handover(ue, t, TowerId(1), -83.0));
        assert_eq!(f.serving(ue), TowerId(0));
        // 4 dB better: handover.
        assert!(f.maybe_handover(ue, t, TowerId(1), -81.0));
        assert_eq!(f.serving(ue), TowerId(1));
        assert_eq!(f.filtered_rsrp(ue), -81.0);
        assert_eq!(f.last_handover(ue), t);
        assert_eq!(f.handovers(), 1);
    }

    #[test]
    fn dwell_time_enforced() {
        let mut f = fleet();
        let ue = f.add_ue(TowerId(0), -100.0);
        // Strong candidate, but the fleet-admission dwell clock (t=0)
        // has not expired at t=2s.
        assert!(!f.maybe_handover(ue, SimTime::from_secs(2), TowerId(1), -60.0));
        assert!(f.maybe_handover(ue, SimTime::from_secs(4), TowerId(1), -60.0));
        // And again: 2 s after the first handover is still too soon.
        assert!(!f.maybe_handover(ue, SimTime::from_secs(6), TowerId(2), -20.0));
        assert!(f.maybe_handover(ue, SimTime::from_secs(8), TowerId(2), -20.0));
    }

    #[test]
    fn candidate_equal_to_serving_is_ignored() {
        let mut f = fleet();
        let ue = f.add_ue(TowerId(5), -120.0);
        assert!(!f.maybe_handover(ue, SimTime::from_secs(100), TowerId(5), -10.0));
        assert_eq!(f.handovers(), 0);
    }
}
