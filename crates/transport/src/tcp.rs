//! A content-free Reno TCP.
//!
//! Sequence numbers are 64-bit (no wraparound) and payloads carry only
//! their length. The congestion-control behaviour that matters for the
//! CellBricks evaluation — slow start from a fresh subflow, fast
//! retransmit on triple duplicate ACKs, RTO with go-back-N and backoff —
//! follows RFC 5681/6298/6582 closely enough to reproduce the dynamics of
//! Fig. 8 and Fig. 9.
//!
//! Congestion-control *policy* is pluggable: the datapath reports ACK /
//! loss / RTO events to a [`crate::cc::CongestionControl`] implementation
//! (selected by [`TcpConfig::cc`]) and reads the window back, so CUBIC,
//! Reno and BBR swap without touching the mechanism below.

use crate::cc::{self, AckKind, CcAlgo, CongestionControl, LossKind};
use cellbricks_net::{EndpointAddr, MpSignal, SackBlocks, TcpFlags, TcpSegment, MAX_SACK_BLOCKS};
use cellbricks_sim::{SimDuration, SimTime};
use cellbricks_telemetry as telemetry;
use std::collections::BTreeMap;

/// Telemetry handles shared by every connection (registered per `Tcp`;
/// the cells are process-global, so the histograms aggregate across
/// connections).
#[derive(Debug)]
struct TcpMetrics {
    cwnd_bytes: telemetry::Histogram,
    srtt_ns: telemetry::Histogram,
    fast_retx: telemetry::Counter,
    rto_fired: telemetry::Counter,
}

impl TcpMetrics {
    fn register() -> Self {
        Self {
            cwnd_bytes: telemetry::histogram("transport.tcp.cwnd_bytes"),
            srtt_ns: telemetry::histogram("transport.tcp.srtt_ns"),
            fast_retx: telemetry::counter("transport.tcp.fast_retransmits"),
            rto_fired: telemetry::counter("transport.tcp.rto_events"),
        }
    }
}

/// TCP tuning parameters.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes).
    pub mss: u32,
    /// Initial congestion window in MSS (RFC 6928: 10).
    pub init_cwnd_mss: u32,
    /// Advertised receive window (bytes).
    pub rwnd: u32,
    /// Lower bound on the retransmission timeout.
    pub min_rto: SimDuration,
    /// Upper bound on the retransmission timeout.
    pub max_rto: SimDuration,
    /// Initial RTO before any RTT sample (RFC 6298: 1 s).
    pub initial_rto: SimDuration,
    /// Give up (reset) after this many consecutive RTOs on one segment.
    pub max_rto_retries: u32,
    /// Congestion-control algorithm (default CUBIC).
    pub cc: CcAlgo,
}

impl Default for TcpConfig {
    fn default() -> Self {
        Self {
            mss: 1460,
            init_cwnd_mss: 10,
            rwnd: 4 << 20,
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(60),
            initial_rto: SimDuration::from_secs(1),
            max_rto_retries: 8,
            cc: CcAlgo::default(),
        }
    }
}

/// Connection phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TcpState {
    /// Client sent SYN, awaiting SYN-ACK.
    SynSent,
    /// Server received SYN, sent SYN-ACK, awaiting ACK.
    SynReceived,
    /// Data transfer.
    Established,
    /// Connection finished or aborted.
    Closed,
}

/// A TCP connection endpoint (either side).
///
/// Poll discipline: after feeding a segment with [`Tcp::on_segment`] or
/// mutating application state, call [`Tcp::poll`] to emit due segments.
/// [`Tcp::poll_at`] reports only *timer* deadlines (RTO); immediate work
/// is flushed synchronously by `poll`.
#[derive(Debug)]
pub struct Tcp {
    // Layout note: the demux fields (`local`, `remote`, `state`) lead —
    // the host scans every socket's 4-tuple for every arriving segment —
    // and the cold tuning/telemetry handles trail the struct so a dense
    // fleet of connections keeps its per-segment working set compact.
    /// Local address/port (source of emitted segments).
    pub local: EndpointAddr,
    /// Remote address/port.
    pub remote: EndpointAddr,
    state: TcpState,

    // --- Sender ---
    /// Oldest unacknowledged sequence.
    snd_una: u64,
    /// Next sequence to send.
    snd_nxt: u64,
    /// Highest sequence ever sent (go-back-N rewinds `snd_nxt`, not this).
    snd_max: u64,
    /// Emit a SYN / SYN-ACK on the next poll.
    syn_pending: bool,
    /// Congestion-control policy (owns cwnd/ssthresh and all algorithm
    /// state; the datapath feeds it events and reads the window back).
    cc: Box<dyn CongestionControl>,
    /// Peer's advertised window.
    peer_rwnd: u32,
    dup_acks: u32,
    /// NewReno: recovery ends when snd_una passes this point.
    recover: u64,
    in_recovery: bool,
    /// Retransmit the segment at `snd_una` on the next poll (fast
    /// retransmit or SACK partial-ACK hole fill).
    force_retransmit_head: bool,
    /// Receiver-reported SACK ranges (merged), i.e. bytes the peer holds
    /// above the cumulative ACK.
    sacked: BTreeMap<u64, u64>,
    /// Hole-scan cursor for SACK-based retransmission.
    retx_next: u64,
    /// Total bytes the application has written (None = unbounded bulk).
    app_written: Option<u64>,
    /// Application requested close once all data is sent.
    fin_requested: bool,
    fin_sent: bool,
    fin_acked: bool,

    // --- Timers / RTT ---
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    rto_deadline: Option<SimTime>,
    rto_retries: u32,
    /// One outstanding RTT sample: (sequence that acks it, send time).
    rtt_sample: Option<(u64, SimTime)>,

    // --- Receiver ---
    rcv_nxt: u64,
    /// Out-of-order ranges: start → end (exclusive).
    ooo: BTreeMap<u64, u64>,
    /// Start of the most recently updated out-of-order range (advertised
    /// first, per RFC 2018).
    ooo_recent: Option<u64>,
    /// Rotation cursor so successive ACKs advertise different blocks.
    sack_rotate: usize,
    /// Reusable scratch for flattening `ooo` during SACK-block selection
    /// (cleared each use; avoids a per-ACK allocation).
    sack_scratch: Vec<(u64, u64)>,
    /// In-order payload bytes delivered but not yet read by the app.
    delivered_unread: u64,
    peer_fin_seq: Option<u64>,
    ack_pending: bool,

    // --- MPTCP hooks (used by the mptcp module) ---
    /// Option to attach to the SYN (MP_CAPABLE / MP_JOIN).
    pub(crate) syn_mp: Option<MpSignal>,
    /// One-shot option to attach to the next emitted segment.
    pub(crate) pending_mp: Option<MpSignal>,
    /// If set, emitted payload segments carry `data_seq = data_base + seq`.
    pub(crate) data_base: Option<u64>,
    /// Data-level cumulative ACK to piggyback on emitted segments.
    pub(crate) data_ack_out: Option<u64>,
    /// Set when the connection aborted after too many RTOs.
    aborted: bool,
    /// Fast-retransmit episodes entered (diagnostics).
    pub fast_retx_events: u64,
    /// Retransmission timeouts fired (diagnostics).
    pub rto_events: u64,

    // --- Cold: construction-time tuning and telemetry handles ---
    cfg: TcpConfig,
    metrics: TcpMetrics,
}

/// Events surfaced to the caller by `on_segment`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TcpEvents {
    /// The connection just became established.
    pub connected: bool,
    /// New in-order payload bytes became available.
    pub delivered: u64,
    /// Data-level ACK carried by the segment (MPTCP).
    pub data_ack: Option<u64>,
}

impl Tcp {
    /// Active open: returns a connection in `SynSent`; `poll` emits the SYN.
    #[must_use]
    pub fn connect(
        cfg: TcpConfig,
        local: EndpointAddr,
        remote: EndpointAddr,
        now: SimTime,
        syn_mp: Option<MpSignal>,
    ) -> Tcp {
        let mut tcp = Tcp::new(cfg, local, remote, TcpState::SynSent);
        tcp.syn_mp = syn_mp;
        tcp.arm_rto(now);
        tcp
    }

    /// Passive open: accept `syn` and return a connection in
    /// `SynReceived`; `poll` emits the SYN-ACK.
    #[must_use]
    pub fn accept(
        cfg: TcpConfig,
        local: EndpointAddr,
        remote: EndpointAddr,
        syn: &TcpSegment,
        now: SimTime,
    ) -> Tcp {
        debug_assert!(syn.flags.syn && !syn.flags.ack);
        let mut tcp = Tcp::new(cfg, local, remote, TcpState::SynReceived);
        tcp.rcv_nxt = syn.seq + 1;
        tcp.peer_rwnd = syn.window;
        tcp.ack_pending = true; // The SYN-ACK.
        tcp.arm_rto(now);
        tcp
    }

    fn new(cfg: TcpConfig, local: EndpointAddr, remote: EndpointAddr, state: TcpState) -> Tcp {
        let cc = cc::build(cfg.cc, &cfg);
        Tcp {
            rto: cfg.initial_rto,
            cfg,
            metrics: TcpMetrics::register(),
            local,
            remote,
            state,
            snd_una: 0,
            snd_nxt: 0,
            snd_max: 0,
            syn_pending: true,
            cc,
            peer_rwnd: u32::MAX,
            dup_acks: 0,
            recover: 0,
            in_recovery: false,
            force_retransmit_head: false,
            sacked: BTreeMap::new(),
            retx_next: 0,
            app_written: Some(0),
            fin_requested: false,
            fin_sent: false,
            fin_acked: false,
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto_deadline: None,
            rto_retries: 0,
            rtt_sample: None,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            ooo_recent: None,
            sack_rotate: 0,
            sack_scratch: Vec::new(),
            delivered_unread: 0,
            peer_fin_seq: None,
            ack_pending: false,
            syn_mp: None,
            pending_mp: None,
            data_base: None,
            data_ack_out: None,
            aborted: false,
            fast_retx_events: 0,
            rto_events: 0,
        }
    }

    // ----- Application surface -----

    /// Queue `bytes` more application data for transmission.
    pub fn write(&mut self, bytes: u64) {
        if let Some(total) = &mut self.app_written {
            *total += bytes;
        }
    }

    /// Switch to an unbounded data source (iperf-style bulk sender).
    pub fn set_bulk(&mut self) {
        self.app_written = None;
    }

    /// Request an orderly close once all queued data is delivered.
    pub fn close(&mut self) {
        self.fin_requested = true;
    }

    /// Take (and reset) the count of in-order bytes delivered to the app.
    pub fn take_delivered(&mut self) -> u64 {
        std::mem::take(&mut self.delivered_unread)
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// True once the three-way handshake completed.
    #[must_use]
    pub fn is_established(&self) -> bool {
        self.state == TcpState::Established
    }

    /// True if the connection was aborted by retransmission failure.
    #[must_use]
    pub fn is_aborted(&self) -> bool {
        self.aborted
    }

    /// Bytes in flight (sent but unacknowledged).
    #[must_use]
    pub fn flight_size(&self) -> u64 {
        self.snd_max - self.snd_una
    }

    /// Congestion window in bytes.
    #[must_use]
    pub fn cwnd(&self) -> u64 {
        self.cc.cwnd() as u64
    }

    /// Name of the congestion-control algorithm in use.
    #[must_use]
    pub fn cc_name(&self) -> &'static str {
        self.cc.name()
    }

    /// Pacing rate (bytes/sec) exported by rate-based algorithms.
    #[must_use]
    pub fn pacing_rate(&self) -> Option<f64> {
        self.cc.pacing_rate()
    }

    /// Reset congestion-control state to a fresh connection's: used when
    /// the path under this connection changed (CellBricks re-attach
    /// reassigned the local address), so learned epochs/w_max/bandwidth
    /// estimates describe a path that no longer exists.
    pub fn reset_cc(&mut self) {
        self.cc.reset();
    }

    /// Smoothed RTT, if sampled.
    #[must_use]
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Diagnostic snapshot: (in_recovery, dup_acks, sacked_bytes, ssthresh).
    #[must_use]
    pub fn debug_cc(&self) -> (bool, u32, u64, f64) {
        (
            self.in_recovery,
            self.dup_acks,
            self.sacked_bytes(),
            self.cc.ssthresh(),
        )
    }

    /// Diagnostic snapshot: (snd_una, snd_nxt, snd_max, rto_deadline, rto).
    #[must_use]
    pub fn debug_seq(&self) -> (u64, u64, u64, Option<SimTime>, SimDuration) {
        (
            self.snd_una,
            self.snd_nxt,
            self.snd_max,
            self.rto_deadline,
            self.rto,
        )
    }

    /// Cumulative bytes acknowledged by the peer.
    #[must_use]
    pub fn bytes_acked(&self) -> u64 {
        // Subtract the virtual SYN byte once the handshake completed.
        self.snd_una.saturating_sub(1)
    }

    /// Abort immediately (used when a subflow's address disappears).
    pub fn abort(&mut self) {
        self.state = TcpState::Closed;
        self.aborted = true;
        self.rto_deadline = None;
        self.ack_pending = false;
    }

    // ----- Segment input -----

    /// Process an incoming segment addressed to this connection.
    /// Follow with [`Tcp::poll`] to flush responses.
    pub fn on_segment(&mut self, now: SimTime, seg: &TcpSegment) -> TcpEvents {
        let mut ev = TcpEvents {
            data_ack: seg.data_ack,
            ..TcpEvents::default()
        };
        if self.state == TcpState::Closed {
            return ev;
        }
        if seg.flags.rst {
            self.abort();
            return ev;
        }
        self.peer_rwnd = seg.window;

        match self.state {
            TcpState::SynSent => {
                if seg.flags.syn && seg.flags.ack && seg.ack == 1 {
                    self.snd_una = 1;
                    self.snd_nxt = self.snd_nxt.max(1);
                    self.rcv_nxt = seg.seq + 1;
                    self.state = TcpState::Established;
                    self.rto_retries = 0;
                    self.rto_deadline = None;
                    let _ = self.take_rtt_sample_on_ack(now, seg.ack);
                    self.ack_pending = true;
                    ev.connected = true;
                }
                return ev;
            }
            TcpState::SynReceived => {
                if seg.flags.ack && seg.ack >= 1 {
                    self.snd_una = self.snd_una.max(1);
                    self.state = TcpState::Established;
                    self.rto_retries = 0;
                    self.rto_deadline = None;
                    let _ = self.take_rtt_sample_on_ack(now, seg.ack);
                    ev.connected = true;
                    // Fall through: the ACK may carry data.
                } else if seg.flags.syn && !seg.flags.ack {
                    // Duplicate SYN: re-send the SYN-ACK.
                    self.ack_pending = true;
                    return ev;
                } else {
                    return ev;
                }
            }
            TcpState::Established => {}
            TcpState::Closed => return ev,
        }

        // --- Established processing ---
        if seg.flags.ack {
            self.process_ack(now, seg);
        }
        if seg.payload_len > 0 {
            ev.delivered = self.process_payload(seg);
        }
        if seg.flags.fin {
            let fin_seq = seg.seq + u64::from(seg.payload_len);
            self.peer_fin_seq = Some(fin_seq);
            self.ack_pending = true;
        }
        // Consume a peer FIN that is now in order.
        if let Some(fin_seq) = self.peer_fin_seq {
            if self.rcv_nxt == fin_seq {
                self.rcv_nxt = fin_seq + 1;
                self.ack_pending = true;
            }
        }
        self.maybe_close();
        ev
    }

    fn process_ack(&mut self, now: SimTime, seg: &TcpSegment) {
        let ack = seg.ack;
        if ack > self.snd_max.max(1) {
            return; // Acks data never sent; ignore.
        }
        // Merge the receiver's SACK blocks into the scoreboard. Fresh
        // SACK information permits another round of hole retransmission.
        let before = self.sacked_bytes();
        for &(start, end) in &seg.sack {
            if end <= start || end > self.snd_max {
                continue; // Malformed or beyond anything sent.
            }
            self.merge_sack(start, end);
        }
        if self.in_recovery && self.sacked_bytes() != before {
            self.force_retransmit_head = true;
        }
        if ack > self.snd_una {
            // After a go-back-N rewind the cumulative ACK may be ahead of
            // the resend position; skip what the receiver already has.
            self.snd_nxt = self.snd_nxt.max(ack);
            let newly = ack - self.snd_una;
            self.snd_una = ack;
            self.rto_retries = 0;
            // Drop scoreboard entries at or below the cumulative ACK.
            // Removing one entry per iteration (rather than collecting
            // the keys first) keeps this allocation-free; a re-inserted
            // tail keyed at `ack` is outside `..ack`, so the loop
            // terminates.
            while let Some((&key, &end)) = self.sacked.range(..ack).next() {
                self.sacked.remove(&key);
                if end > ack {
                    self.sacked.insert(ack, end);
                }
            }
            self.retx_next = self.snd_una;
            let rtt = self.take_rtt_sample_on_ack(now, ack);
            let flight = self.effective_flight();

            if self.in_recovery {
                if ack >= self.recover {
                    // Full ACK: leave recovery.
                    self.in_recovery = false;
                    self.force_retransmit_head = false;
                    self.cc
                        .on_ack(now, newly, rtt, AckKind::RecoveryFull, flight);
                    self.dup_acks = 0;
                } else {
                    // Partial ACK (NewReno): retransmit next hole.
                    self.cc
                        .on_ack(now, newly, rtt, AckKind::RecoveryPartial, flight);
                    self.force_retransmit_head = true;
                }
            } else {
                self.dup_acks = 0;
                self.cc.on_ack(now, newly, rtt, AckKind::Open, flight);
            }
            // Restart the RTO for remaining flight.
            self.rto_deadline = if self.outstanding() {
                Some(now + self.rto)
            } else {
                None
            };
            if self.fin_sent && ack > self.fin_seq() {
                self.fin_acked = true;
            }
        } else if ack == self.snd_una
            && seg.payload_len == 0
            && !seg.flags.syn
            && !seg.flags.fin
            && self.snd_max > self.snd_una
        {
            // Duplicate ACK. (No window inflation: with SACK, sending
            // during recovery is pipe-limited per RFC 6675 — the
            // selectively-acked credit in the window check plays the
            // role NewReno's inflation did.)
            self.dup_acks += 1;
            if self.in_recovery {
                // Scoreboard updates above may have exposed new holes.
            } else if self.dup_acks >= 3 && !self.sacked.is_empty() {
                // Fast retransmit / SACK-based loss recovery: duplicate
                // ACKs alone are not loss evidence (our own spurious
                // retransmissions also produce them) — a real hole shows
                // up as SACKed data above snd_una (RFC 6675 spirit).
                self.fast_retx_events += 1;
                self.metrics.fast_retx.inc();
                telemetry::trace_instant("tcp.fast_retransmit", "tcp", now.as_nanos());
                let flight = self.effective_flight();
                self.cc.on_loss(now, LossKind::FastRetransmit, flight);
                self.in_recovery = true;
                self.recover = self.snd_nxt;
                self.force_retransmit_head = true;
                self.retx_next = self.snd_una;
                self.rtt_sample = None; // Karn.
            }
        }
    }

    fn process_payload(&mut self, seg: &TcpSegment) -> u64 {
        let start = seg.seq;
        let end = seg.seq + u64::from(seg.payload_len);
        self.ack_pending = true;
        if end <= self.rcv_nxt {
            return 0; // Entirely duplicate.
        }
        let before = self.rcv_nxt;
        if start <= self.rcv_nxt {
            self.rcv_nxt = end;
            // Merge any now-contiguous out-of-order ranges.
            while let Some((&s, &e)) = self.ooo.range(..=self.rcv_nxt).next_back() {
                if s <= self.rcv_nxt {
                    self.ooo.remove(&s);
                    self.rcv_nxt = self.rcv_nxt.max(e);
                } else {
                    break;
                }
            }
        } else {
            // Out of order: record the range (coalescing overlaps lazily).
            let entry = self.ooo.entry(start).or_insert(end);
            *entry = (*entry).max(end);
            self.ooo_recent = Some(start);
        }
        let delivered = self.rcv_nxt - before;
        self.delivered_unread += delivered;
        delivered
    }

    fn maybe_close(&mut self) {
        let peer_done = self.peer_fin_seq.is_some_and(|fin| self.rcv_nxt > fin);
        if self.fin_acked && peer_done {
            self.state = TcpState::Closed;
            self.rto_deadline = None;
        }
    }

    // ----- Output -----

    /// Emit all segments that are due at `now`.
    pub fn poll(&mut self, now: SimTime, out: &mut Vec<TcpSegment>) {
        // Discard a stale RTT sample (its segment was probably lost);
        // otherwise a single loss freezes RTT estimation forever.
        if let Some((_, sent_at)) = self.rtt_sample {
            if now.saturating_since(sent_at) > self.rto * 2 {
                self.rtt_sample = None;
            }
        }
        // RTO expiry.
        if let Some(deadline) = self.rto_deadline {
            if now >= deadline {
                self.on_rto(now);
            }
        }
        match self.state {
            TcpState::SynSent => {
                if self.syn_pending {
                    out.push(self.make_syn());
                    self.syn_pending = false;
                    self.ack_pending = false;
                }
            }
            TcpState::SynReceived => {
                if self.syn_pending || self.ack_pending {
                    out.push(self.make_syn_ack());
                    self.syn_pending = false;
                    self.ack_pending = false;
                }
            }
            TcpState::Established => {
                self.emit_data(now, out);
                if self.ack_pending {
                    out.push(self.make_ack());
                    self.ack_pending = false;
                }
            }
            TcpState::Closed => {}
        }
        if self.outstanding() && self.rto_deadline.is_none() {
            self.rto_deadline = Some(now + self.rto);
        }
    }

    /// The earliest timer deadline (RTO only; immediate work is flushed
    /// synchronously by `poll`).
    #[must_use]
    #[inline]
    pub fn poll_at(&self) -> Option<SimTime> {
        self.rto_deadline
    }

    fn emit_data(&mut self, now: SimTime, out: &mut Vec<TcpSegment>) {
        // Loss recovery: fill holes the SACK scoreboard exposes, lowest
        // first. Armed once per ACK/SACK event (never per poll) so
        // retransmissions stay ACK-clocked like RFC 6675's pipe rule.
        if self.in_recovery && self.force_retransmit_head {
            self.force_retransmit_head = false;
            let mut quota = 2u32;
            let mut seq = self.retx_next.max(self.snd_una);
            while quota > 0 && seq < self.snd_max.min(self.app_limit()) {
                if let Some(covered_to) = self.sack_cover(seq) {
                    seq = covered_to;
                    continue;
                }
                let hole_end = self
                    .sacked
                    .range(seq..)
                    .next()
                    .map_or(self.snd_max, |(&s2, _)| s2);
                let len = self.sendable_at(seq).min((hole_end - seq) as u32);
                if len == 0 {
                    break;
                }
                out.push(self.make_data(seq, len));
                self.rtt_sample = None; // Karn: no sampling over retransmits.
                seq += u64::from(len);
                quota -= 1;
            }
            self.retx_next = seq;
        }
        // Fresh data within the window; selectively-acked bytes don't
        // count against the congestion window (pipe accounting).
        loop {
            let window = (self.cc.cwnd() as u64)
                .min(u64::from(self.peer_rwnd))
                .saturating_add(self.sacked_bytes());
            let limit = self.snd_una + window;
            if self.snd_nxt >= limit {
                break;
            }
            let available = self.app_limit().saturating_sub(self.snd_nxt);
            if available == 0 {
                break;
            }
            let window_room = limit - self.snd_nxt;
            let len = available.min(u64::from(self.cfg.mss)).min(window_room) as u32;
            if len == 0 {
                break;
            }
            // Sender-side silly-window avoidance (RFC 1122 §4.2.3.4):
            // never emit a sub-MSS segment unless it carries the final
            // bytes of application data.
            if u64::from(len) < u64::from(self.cfg.mss).min(available) {
                break;
            }
            let seg = self.make_data(self.snd_nxt, len);
            // Only fresh (never-sent) data is eligible for RTT sampling.
            if self.rtt_sample.is_none() && self.snd_nxt == self.snd_max {
                self.rtt_sample = Some((self.snd_nxt + u64::from(len), now));
            }
            self.snd_nxt += u64::from(len);
            self.snd_max = self.snd_max.max(self.snd_nxt);
            out.push(seg);
        }
        // FIN when everything is sent.
        if self.fin_requested && !self.fin_sent && self.snd_nxt == self.app_limit() {
            self.fin_sent = true;
            let mut seg = self.base_segment();
            seg.seq = self.snd_nxt;
            seg.flags = TcpFlags {
                fin: true,
                ack: true,
                ..TcpFlags::default()
            };
            self.snd_nxt += 1; // FIN occupies one sequence number.
            self.snd_max = self.snd_max.max(self.snd_nxt);
            out.push(seg);
            self.ack_pending = false;
        }
    }

    /// How many payload bytes can be (re)sent starting at `seq`.
    fn sendable_at(&self, seq: u64) -> u32 {
        let end = self.snd_max.min(self.app_limit());
        end.saturating_sub(seq).min(u64::from(self.cfg.mss)) as u32
    }

    fn on_rto(&mut self, now: SimTime) {
        self.rto_deadline = None;
        if !self.outstanding() {
            return;
        }
        self.rto_retries += 1;
        if self.rto_retries > self.cfg.max_rto_retries {
            self.abort();
            return;
        }
        match self.state {
            TcpState::SynSent | TcpState::SynReceived => {
                self.syn_pending = true;
            }
            TcpState::Established => {
                // Go-back-N from snd_una (SACKed ranges are skipped by
                // the hole filler once recovery re-enters).
                self.rto_events += 1;
                self.metrics.rto_fired.inc();
                telemetry::trace_instant("tcp.rto", "tcp", now.as_nanos());
                self.cc.on_rto(now);
                self.in_recovery = false;
                self.dup_acks = 0;
                self.retx_next = self.snd_una;
                self.snd_nxt = self.snd_una;
                if self.fin_sent && !self.fin_acked {
                    self.fin_sent = false; // Will be re-emitted after data.
                }
                self.rtt_sample = None;
            }
            TcpState::Closed => return,
        }
        self.rto = (self.rto * 2).min(self.cfg.max_rto);
        self.rto_deadline = Some(now + self.rto);
    }

    /// Arm the retransmission timer (handshake phase).
    fn arm_rto(&mut self, now: SimTime) {
        self.rto_deadline = Some(now + self.rto);
    }

    /// Merge `[start, end)` into the SACK scoreboard, coalescing overlaps.
    fn merge_sack(&mut self, mut start: u64, mut end: u64) {
        if end <= self.snd_una {
            return;
        }
        start = start.max(self.snd_una);
        // Absorb any ranges overlapping or adjacent to [start, end).
        loop {
            let overlap = self
                .sacked
                .range(..=end)
                .next_back()
                .filter(|&(&_s, &e)| e >= start)
                .map(|(&s, &e)| (s, e));
            match overlap {
                Some((s, e)) => {
                    self.sacked.remove(&s);
                    start = start.min(s);
                    end = end.max(e);
                }
                None => break,
            }
        }
        self.sacked.insert(start, end);
    }

    /// Bytes the receiver has acknowledged selectively.
    fn sacked_bytes(&self) -> u64 {
        self.sacked.iter().map(|(s, e)| e - s).sum()
    }

    /// Outstanding bytes actually believed in flight (RFC 6675 pipe-ish):
    /// sent minus cumulative-acked minus selectively-acked.
    fn effective_flight(&self) -> u64 {
        (self.snd_max - self.snd_una).saturating_sub(self.sacked_bytes())
    }

    /// Is `[seq, seq+1)` covered by the SACK scoreboard? If so, return
    /// the end of the covering range.
    fn sack_cover(&self, seq: u64) -> Option<u64> {
        self.sacked
            .range(..=seq)
            .next_back()
            .filter(|(_, &e)| e > seq)
            .map(|(_, &e)| e)
    }

    fn outstanding(&self) -> bool {
        match self.state {
            TcpState::SynSent | TcpState::SynReceived => true,
            TcpState::Established => self.snd_max > self.snd_una,
            TcpState::Closed => false,
        }
    }

    fn app_limit(&self) -> u64 {
        // Sequence space: SYN occupies byte 0; app data starts at 1.
        match self.app_written {
            Some(total) => total + 1,
            None => u64::MAX / 2,
        }
    }

    fn fin_seq(&self) -> u64 {
        self.app_limit()
    }

    /// Complete a pending RTT measurement if `ack` covers it: update
    /// srtt/rttvar/RTO (RFC 6298) and return the raw sample so the
    /// caller can report it to congestion control.
    fn take_rtt_sample_on_ack(&mut self, now: SimTime, ack: u64) -> Option<SimDuration> {
        let sample = match self.state {
            // Handshake ACK samples the SYN round trip.
            TcpState::Established if self.srtt.is_none() && self.rtt_sample.is_none() => {
                // SYN was sent at connection creation; approximate with the
                // configured initial RTO start (no stored timestamp) — skip.
                None
            }
            _ => self.rtt_sample,
        };
        if let Some((seq_end, sent_at)) = sample {
            if ack >= seq_end {
                let r = now.since(sent_at);
                match self.srtt {
                    None => {
                        self.srtt = Some(r);
                        self.rttvar = r / 2;
                    }
                    Some(srtt) => {
                        // RFC 6298: beta=1/4, alpha=1/8.
                        let delta = if r > srtt { r - srtt } else { srtt - r };
                        self.rttvar = (self.rttvar * 3 + delta) / 4;
                        self.srtt = Some((srtt * 7 + r) / 8);
                    }
                }
                let srtt = self.srtt.unwrap();
                self.metrics.srtt_ns.record(srtt.as_nanos());
                self.metrics.cwnd_bytes.record(self.cc.cwnd() as u64);
                let var4 = self.rttvar * 4;
                let floor = SimDuration::from_millis(1);
                self.rto = (srtt + var4.max(floor))
                    .max(self.cfg.min_rto)
                    .min(self.cfg.max_rto);
                self.rtt_sample = None;
                return Some(r);
            }
        }
        None
    }

    // ----- Segment construction -----

    fn base_segment(&mut self) -> TcpSegment {
        // Advertise up to 3 out-of-order ranges (RFC 2018): the most
        // recently received block first, then rotate through the rest so
        // the sender's scoreboard converges on the full picture across
        // successive ACKs.
        let mut sack = SackBlocks::new();
        if let Some(recent) = self.ooo_recent {
            if let Some((&rs, &re)) = self.ooo.range(..=recent).next_back() {
                if re > recent {
                    sack.push((rs, re));
                }
            }
        }
        if !self.ooo.is_empty() {
            self.sack_scratch.clear();
            self.sack_scratch
                .extend(self.ooo.iter().map(|(&s2, &e)| (s2, e)));
            let n = self.sack_scratch.len();
            let mut idx = self.sack_rotate;
            for _ in 0..n {
                if sack.len() >= MAX_SACK_BLOCKS {
                    break;
                }
                let block = self.sack_scratch[idx % n];
                if !sack.contains(&block) {
                    sack.push(block);
                }
                idx += 1;
            }
            self.sack_rotate = idx % n.max(1);
        }
        TcpSegment {
            src_port: self.local.port,
            dst_port: self.remote.port,
            seq: 0,
            ack: self.rcv_nxt,
            flags: TcpFlags::ACK,
            payload_len: 0,
            window: self.cfg.rwnd,
            mp: self.pending_mp.take(),
            data_seq: None,
            data_ack: self.data_ack_out,
            sack,
        }
    }

    fn make_syn(&mut self) -> TcpSegment {
        let mut seg = self.base_segment();
        seg.seq = 0;
        seg.ack = 0;
        seg.flags = TcpFlags::SYN;
        seg.mp = self.syn_mp;
        seg.data_ack = None;
        self.snd_nxt = self.snd_nxt.max(1);
        self.snd_max = self.snd_max.max(1);
        seg
    }

    fn make_syn_ack(&mut self) -> TcpSegment {
        let mut seg = self.base_segment();
        seg.seq = 0;
        seg.flags = TcpFlags::SYN_ACK;
        seg.mp = self.syn_mp;
        self.snd_nxt = self.snd_nxt.max(1);
        self.snd_max = self.snd_max.max(1);
        seg
    }

    fn make_ack(&mut self) -> TcpSegment {
        self.base_segment()
    }

    fn make_data(&mut self, seq: u64, len: u32) -> TcpSegment {
        let mut seg = self.base_segment();
        seg.seq = seq;
        seg.payload_len = len;
        if let Some(base) = self.data_base {
            // Data bytes start at subflow seq 1 (0 is the SYN).
            seg.data_seq = Some(base + (seq - 1));
        }
        self.ack_pending = false; // Data segments carry the ACK.
        seg
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    pub(crate) fn ep(last: u8, port: u16) -> EndpointAddr {
        EndpointAddr::new(Ipv4Addr::new(10, 0, 0, last), port)
    }

    /// Drive two Tcp endpoints through an ideal (in-memory, lossless,
    /// fixed-delay) channel until quiescent or `steps` exhausted.
    pub(crate) struct Loopback {
        pub(crate) a: Tcp,
        pub(crate) b: Tcp,
        pub(crate) now: SimTime,
        pub(crate) delay: SimDuration,
        /// In-flight segments: (deliver_at, to_b?, segment).
        pub(crate) wire: Vec<(SimTime, bool, TcpSegment)>,
        /// Segments to drop (by global emission index), for loss tests.
        pub(crate) drop_indices: Vec<usize>,
        /// Payload-bearing segments to drop (by data-emission index);
        /// pure ACKs always pass.
        pub(crate) drop_data_indices: Vec<usize>,
        pub(crate) emitted: usize,
        pub(crate) data_emitted: usize,
    }

    impl Loopback {
        fn new(a: Tcp, b: Tcp) -> Self {
            Self {
                a,
                b,
                now: SimTime::ZERO,
                delay: SimDuration::from_millis(10),
                wire: Vec::new(),
                drop_indices: Vec::new(),
                drop_data_indices: Vec::new(),
                emitted: 0,
                data_emitted: 0,
            }
        }

        fn offer(&mut self, to_b: bool, seg: TcpSegment) {
            let idx = self.emitted;
            self.emitted += 1;
            let mut drop = self.drop_indices.contains(&idx);
            if seg.payload_len > 0 {
                let didx = self.data_emitted;
                self.data_emitted += 1;
                drop |= self.drop_data_indices.contains(&didx);
            }
            if !drop {
                self.wire.push((self.now + self.delay, to_b, seg));
            }
        }

        fn flush(&mut self) {
            let mut out = Vec::new();
            self.a.poll(self.now, &mut out);
            for seg in out.drain(..) {
                self.offer(true, seg);
            }
            self.b.poll(self.now, &mut out);
            for seg in out.drain(..) {
                self.offer(false, seg);
            }
        }

        /// Advance to the next wire delivery or timer; returns false when idle.
        pub(crate) fn step(&mut self) -> bool {
            self.flush();
            let next_wire = self.wire.iter().map(|(t, ..)| *t).min();
            let next_timer = [self.a.poll_at(), self.b.poll_at()]
                .into_iter()
                .flatten()
                .min();
            let next = match (next_wire, next_timer) {
                (Some(w), Some(t)) => w.min(t),
                (Some(w), None) => w,
                (None, Some(t)) => t,
                (None, None) => return false,
            };
            self.now = self.now.max(next);
            let due: Vec<_> = {
                let now = self.now;
                let mut due = Vec::new();
                self.wire.retain(|(t, to_b, seg)| {
                    if *t <= now {
                        due.push((*to_b, seg.clone()));
                        false
                    } else {
                        true
                    }
                });
                due
            };
            for (to_b, seg) in due {
                if to_b {
                    self.b.on_segment(self.now, &seg);
                } else {
                    self.a.on_segment(self.now, &seg);
                }
            }
            self.flush();
            true
        }

        pub(crate) fn run(&mut self, steps: usize) {
            for _ in 0..steps {
                if !self.step() {
                    break;
                }
            }
        }
    }

    pub(crate) fn pair() -> Loopback {
        let now = SimTime::ZERO;
        let client = Tcp::connect(TcpConfig::default(), ep(1, 4000), ep(2, 80), now, None);
        // Simulate the listener: build the SYN by polling the client once.
        let mut out = Vec::new();
        let mut client = client;
        client.poll(now, &mut out);
        let syn = out.pop().unwrap();
        let server = Tcp::accept(TcpConfig::default(), ep(2, 80), ep(1, 4000), &syn, now);
        Loopback::new(client, server)
    }

    #[test]
    fn handshake_establishes_both_sides() {
        let mut lb = pair();
        lb.run(10);
        assert!(lb.a.is_established());
        assert!(lb.b.is_established());
    }

    #[test]
    fn data_transfer_completes() {
        let mut lb = pair();
        lb.a.write(100_000);
        lb.run(500);
        assert_eq!(lb.b.take_delivered(), 100_000);
        assert_eq!(lb.a.bytes_acked(), 100_000);
    }

    #[test]
    fn bidirectional_transfer() {
        let mut lb = pair();
        lb.a.write(40_000);
        lb.b.write(25_000);
        lb.run(500);
        assert_eq!(lb.b.take_delivered(), 40_000);
        assert_eq!(lb.a.take_delivered(), 25_000);
    }

    #[test]
    fn slow_start_doubles_cwnd() {
        let mut lb = pair();
        lb.a.set_bulk();
        let init = lb.a.cwnd();
        // One RTT of acks should roughly double cwnd in slow start.
        for _ in 0..6 {
            lb.step();
        }
        assert!(
            lb.a.cwnd() >= init * 2 - 1460,
            "cwnd {} not doubled from {init}",
            lb.a.cwnd()
        );
    }

    #[test]
    fn lost_data_segment_recovered_by_fast_retransmit() {
        let mut lb = pair();
        // Drop the 4th data segment of the first burst; ACKs still flow,
        // so triple duplicate ACKs trigger fast retransmit.
        lb.drop_data_indices = vec![3];
        lb.a.write(60_000);
        lb.run(800);
        assert_eq!(lb.b.take_delivered(), 60_000, "receiver got all data");
        assert_eq!(lb.a.bytes_acked(), 60_000);
    }

    #[test]
    fn lost_syn_retried_by_rto() {
        let mut lb = pair();
        lb.drop_indices = vec![0]; // The first SYN... already captured in pair();
                                   // pair() already consumed the first SYN to build the server, so drop
                                   // the retransmitted one instead and ensure we still establish.
        lb.run(50);
        assert!(lb.a.is_established());
        assert!(lb.b.is_established());
    }

    #[test]
    fn rto_recovers_from_burst_loss() {
        let mut lb = pair();
        // Drop a long run of data segments (ACKs still flow); recovery
        // must eventually come from RTOs / NewReno hole-filling.
        lb.drop_data_indices = (5..15).collect();
        lb.a.write(30_000);
        lb.run(2000);
        assert_eq!(lb.b.take_delivered(), 30_000);
    }

    #[test]
    fn srtt_converges_to_path_rtt() {
        let mut lb = pair();
        lb.a.write(200_000);
        lb.run(1000);
        let srtt = lb.a.srtt().expect("sampled");
        let rtt_ms = srtt.as_millis_f64();
        assert!((rtt_ms - 20.0).abs() < 10.0, "srtt {rtt_ms} ms");
    }

    #[test]
    fn fin_closes_both_sides() {
        let mut lb = pair();
        lb.a.write(5_000);
        lb.a.close();
        lb.b.close();
        lb.run(500);
        assert_eq!(lb.a.state(), TcpState::Closed);
        assert_eq!(lb.b.state(), TcpState::Closed);
        assert!(!lb.a.is_aborted());
    }

    #[test]
    fn abort_after_max_retries() {
        let now = SimTime::ZERO;
        let mut client = Tcp::connect(TcpConfig::default(), ep(1, 1), ep(2, 2), now, None);
        // Never deliver anything; just fire timers until abort.
        let mut out = Vec::new();
        let mut now = now;
        for _ in 0..64 {
            client.poll(now, &mut out);
            out.clear();
            match client.poll_at() {
                Some(t) => now = t,
                None => break,
            }
        }
        assert!(client.is_aborted());
    }

    #[test]
    fn rst_aborts() {
        let mut lb = pair();
        lb.run(5);
        let rst = TcpSegment {
            src_port: 80,
            dst_port: 4000,
            seq: 0,
            ack: 0,
            flags: TcpFlags::RST,
            payload_len: 0,
            window: 0,
            mp: None,
            data_seq: None,
            data_ack: None,
            sack: SackBlocks::new(),
        };
        lb.a.on_segment(lb.now, &rst);
        assert!(lb.a.is_aborted());
    }

    #[test]
    fn out_of_order_delivery_counts_once() {
        let mut lb = pair();
        lb.a.write(14_600); // Exactly 10 MSS.
        lb.run(500);
        assert_eq!(lb.b.take_delivered(), 14_600);
        // A second read returns nothing.
        assert_eq!(lb.b.take_delivered(), 0);
    }

    #[test]
    fn mp_syn_option_carried() {
        let now = SimTime::ZERO;
        let mut client = Tcp::connect(
            TcpConfig::default(),
            ep(1, 1),
            ep(2, 2),
            now,
            Some(MpSignal::Capable { token: 99 }),
        );
        let mut out = Vec::new();
        client.poll(now, &mut out);
        assert_eq!(out[0].mp, Some(MpSignal::Capable { token: 99 }));
    }

    #[test]
    fn data_base_stamps_dss() {
        // Drive the handshake by hand so we can observe the first data
        // segment directly.
        let now = SimTime::ZERO;
        let mut client = Tcp::connect(TcpConfig::default(), ep(1, 4000), ep(2, 80), now, None);
        let mut out = Vec::new();
        client.poll(now, &mut out);
        let syn = out.pop().unwrap();
        let mut server = Tcp::accept(TcpConfig::default(), ep(2, 80), ep(1, 4000), &syn, now);
        server.poll(now, &mut out);
        let syn_ack = out.pop().unwrap();
        client.on_segment(now, &syn_ack);
        assert!(client.is_established());
        client.data_base = Some(1000);
        client.write(1460);
        client.poll(now, &mut out);
        let data_seg = out.iter().find(|s| s.payload_len > 0).expect("data");
        // First app byte is subflow seq 1 -> data_seq = 1000.
        assert_eq!(data_seg.data_seq, Some(1000));
    }
}

#[cfg(test)]
mod proptests {
    use super::tests::*;

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Exactly-once in-order delivery under arbitrary data-segment
        /// loss patterns: whatever is dropped, the receiver ends up with
        /// exactly the bytes written, and the sender knows it.
        #[test]
        fn prop_delivery_exact_under_loss(
            bytes in 1_000u64..120_000,
            drops in proptest::collection::btree_set(0usize..60, 0..12),
        ) {
            let mut lb = pair();
            lb.drop_data_indices = drops.into_iter().collect();
            lb.a.write(bytes);
            lb.run(4000);
            prop_assert_eq!(lb.b.take_delivered(), bytes);
            prop_assert_eq!(lb.a.bytes_acked(), bytes);
        }

        /// cwnd never collapses below one MSS and flight never exceeds
        /// what was actually sent.
        #[test]
        fn prop_cwnd_and_flight_invariants(
            bytes in 10_000u64..80_000,
            drops in proptest::collection::btree_set(0usize..40, 0..8),
        ) {
            let mut lb = pair();
            lb.drop_data_indices = drops.into_iter().collect();
            lb.a.write(bytes);
            for _ in 0..2000 {
                if !lb.step() {
                    break;
                }
                prop_assert!(lb.a.cwnd() >= 1460);
                prop_assert!(lb.a.flight_size() <= bytes + 2);
            }
        }
    }
}
